//! Sanity checks on the analytic experiments: the regenerated Figures
//! 21/22 and Table III must have the paper's qualitative shapes.

use ivleague_repro::ivl_analysis::hardware::hardware_cost;
use ivleague_repro::ivl_analysis::scalability::{paper_ivleague, success_rate, PartitionScheme};
use ivleague_repro::ivl_analysis::starvation::{fig21_sweep, treelings_required};
use ivleague_repro::ivl_sim_core::config::SystemConfig;

const GIB: u64 = 1 << 30;

#[test]
fn fig21_required_treelings_fall_then_flatten() {
    for mem in [8 * GIB, 32 * GIB] {
        let pts = fig21_sweep(mem, 4096);
        // For fixed skew 0.1, requirements are non-increasing in TreeLing
        // size and bounded below by the domain count.
        let series: Vec<u64> = pts
            .iter()
            .filter(|p| (p.skew - 0.1).abs() < 1e-9)
            .map(|p| p.required)
            .collect();
        for pair in series.windows(2) {
            assert!(pair[0] >= pair[1], "series must fall: {series:?}");
        }
        assert!(*series.last().unwrap() >= 4095, "domain floor");
        assert!(series[0] > 2 * series[series.len() - 1] || series[0] >= 4096);
    }
}

#[test]
fn fig21_worst_case_matches_closed_form() {
    // #τ = (D−1) + (M − (D−1)·4KB)/S at full skew with the rest minimal.
    let d = 4096u64;
    let m = 32 * GIB;
    let s = 64 << 20;
    let formula = (d - 1) + (m - (d - 1) * 4096).div_ceil(s);
    // Worst case: one domain takes everything beyond one page per domain.
    let sim = (d - 1) + treelings_required(1, m - (d - 1) * 4096, s, 1.0);
    assert_eq!(formula, sim);
}

#[test]
fn fig22_static_collapses_ivleague_holds() {
    let mem = 128 * GIB;
    let hard = success_rate(PartitionScheme::Static, mem, 128, 0.8, 200, 7);
    let easy = success_rate(PartitionScheme::Static, mem, 8, 0.2, 200, 8);
    assert!(hard < 0.05, "static at high pressure: {hard}");
    assert!(easy > hard);
    let iv = success_rate(paper_ivleague(), mem, 128, 0.8, 200, 9);
    assert!(iv > 0.98, "IvLeague: {iv}");
}

#[test]
fn table3_cost_is_modest() {
    let cost = hardware_cost(&SystemConfig::default());
    assert!(
        cost.total_area_mm2() < 1.0,
        "area {}",
        cost.total_area_mm2()
    );
    assert!(cost.offchip_nfl_fraction < 0.01);
    assert!(cost.tree_metadata_fraction < 0.05);
    // The LMM cache dominates on-chip storage, as in the paper.
    let lmm = cost
        .rows
        .iter()
        .find(|r| r.component.contains("LMM"))
        .unwrap();
    for r in &cost.rows {
        assert!(lmm.storage_bytes >= r.storage_bytes);
    }
}
