//! End-to-end security properties: the functional secure memory detects
//! every physical-attack class, the metadata side channel works against the
//! global tree and collapses under IvLeague, and TreeLing isolation holds
//! under multi-domain stress.

use ivleague_repro::ivl_attack::{run_attack, AttackConfig, TargetScheme};
use ivleague_repro::ivl_secure_mem::functional::{IntegrityError, SecureMemory};
use ivleague_repro::ivl_sim_core::addr::{BlockAddr, PageNum};
use ivleague_repro::ivl_sim_core::config::IvVariant;
use ivleague_repro::ivl_sim_core::domain::DomainId;
use ivleague_repro::ivl_sim_core::rng::Xoshiro256;
use ivleague_repro::ivleague::forest::{Forest, ForestConfig};

fn mem() -> SecureMemory {
    SecureMemory::new(256, [11u8; 16], [22u8; 16], [33u8; 16])
}

#[test]
fn spoofing_splicing_replay_all_detected() {
    let mut m = mem();
    let a = BlockAddr::new(10);
    let b = BlockAddr::new(20);
    m.write_block(a, &[1u8; 64]).unwrap();
    m.write_block(b, &[2u8; 64]).unwrap();

    // Spoofing: flip ciphertext bits.
    let mut spoofed = m.clone();
    spoofed.corrupt_data(a, 0, 0x01);
    assert_eq!(spoofed.read_block(a), Err(IntegrityError::MacMismatch));

    // Splicing: move a valid (ciphertext, MAC) pair to another address.
    let mut spliced = m.clone();
    spliced.splice(a, b);
    assert_eq!(spliced.read_block(b), Err(IntegrityError::MacMismatch));

    // Replay: restore a stale but self-consistent snapshot.
    let snap = m.snapshot_block(a);
    m.write_block(a, &[3u8; 64]).unwrap();
    m.replay_block(&snap);
    assert!(matches!(m.read_block(a), Err(IntegrityError::Tree(_))));
}

#[test]
fn integrity_tree_node_tampering_detected_at_every_level() {
    let mut m = mem();
    let block = BlockAddr::new(0);
    m.write_block(block, &[9u8; 64]).unwrap();
    let layout = m.tree().layout().clone();
    let path = layout.path_to_root(block.page());
    for node in path {
        let mut tampered = m.clone();
        tampered.tree_mut().tamper_slot(node, 0, 0xBEEF);
        assert!(
            matches!(tampered.read_block(block), Err(IntegrityError::Tree(_))),
            "tamper at level {} undetected",
            node.level
        );
    }
}

#[test]
fn metadata_side_channel_leaks_globally_but_not_under_ivleague() {
    let cfg = AttackConfig {
        bits: 384,
        noise: 0.0,
        seed: 1234,
    };
    let leak = run_attack(TargetScheme::GlobalTree, &cfg);
    assert!(
        leak.accuracy > 0.95,
        "global tree accuracy {}",
        leak.accuracy
    );

    let safe = run_attack(TargetScheme::IvLeague, &cfg);
    assert!(
        (0.30..0.72).contains(&safe.accuracy),
        "IvLeague accuracy {} should be ~0.5",
        safe.accuracy
    );
}

#[test]
fn isolation_survives_multi_domain_churn_in_every_variant() {
    for variant in IvVariant::ALL {
        let mut forest = Forest::new(ForestConfig::small_for_tests(variant));
        let mut rng = Xoshiro256::seed_from(99);
        let mut live: Vec<(DomainId, PageNum)> = Vec::new();
        let mut next = 0u64;
        for step in 0..4000 {
            let d = DomainId::new_unchecked((step % 3) as u16);
            if live.is_empty() || rng.chance(0.6) {
                let p = PageNum::new(next);
                next += 1;
                if forest.map_page(d, p).is_ok() {
                    live.push((d, p));
                }
            } else {
                let idx = rng.index(live.len());
                let (owner, page) = live.swap_remove(idx);
                forest.unmap_page(owner, page).unwrap();
            }
            if step % 1000 == 999 {
                assert!(
                    forest.verify_isolation(),
                    "{variant:?} leaked at step {step}"
                );
            }
        }
        // Domain teardown recycles TreeLings without breaking isolation.
        forest.destroy_domain(DomainId::new_unchecked(0));
        live.retain(|(d, _)| d.index() != 0);
        assert!(forest.verify_isolation());
        for (d, p) in &live {
            assert_eq!(
                forest.verification_path(*p).map(|path| path.is_empty()),
                Some(false),
                "{variant:?}: page of {d} lost its path"
            );
        }
    }
}

#[test]
fn overflow_reencryption_preserves_verifiability() {
    let mut m = mem();
    let page = PageNum::new(3);
    for off in 0..4 {
        m.write_block(page.block(off), &[off as u8; 64]).unwrap();
    }
    // Hammer one block through several minor-counter overflows.
    for i in 0..300u32 {
        m.write_block(page.block(0), &[(i % 251) as u8; 64])
            .unwrap();
    }
    assert!(m.page_reencryptions() >= 2);
    for off in 1..4 {
        assert_eq!(m.read_block(page.block(off)).unwrap(), [off as u8; 64]);
    }
}
