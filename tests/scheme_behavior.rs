//! Cross-crate behavioural tests of the timing schemes under the real
//! multicore simulator (small smoke-scale runs).

use ivleague_repro::ivl_simulator::{run_mix, RunConfig, SchemeKind};
use ivleague_repro::ivl_workloads::mixes::{mix_by_name, MIXES};

#[test]
fn every_mix_runs_under_every_main_scheme() {
    let run = RunConfig {
        warmup_accesses: 1_000,
        measure_accesses: 4_000,
        seed: 5,
    };
    for mix in MIXES.iter() {
        for scheme in SchemeKind::MAIN {
            let r = run_mix(mix, scheme, &run);
            assert!(r.weighted_ipc() > 0.0, "{}/{scheme:?}", mix.name);
            assert!(r.stats.data_reads > 0, "{}/{scheme:?}", mix.name);
            assert!(
                !r.failed,
                "{}/{scheme:?} reported allocation failures",
                mix.name
            );
        }
    }
}

#[test]
fn secure_schemes_generate_metadata_traffic_insecure_does_not() {
    let run = RunConfig::smoke_test();
    let mix = mix_by_name("S-2").unwrap();
    let insecure = run_mix(mix, SchemeKind::Insecure, &run);
    assert_eq!(insecure.stats.meta_reads, 0);
    for scheme in SchemeKind::MAIN {
        let r = run_mix(mix, scheme, &run);
        assert!(r.stats.meta_reads > 0, "{scheme:?}");
        assert!(
            r.weighted_ipc() <= insecure.weighted_ipc() * 1.05,
            "{scheme:?}: protection cannot beat no protection ({} vs {})",
            r.weighted_ipc(),
            insecure.weighted_ipc()
        );
    }
}

#[test]
fn ivleague_schemes_track_nfl_and_lmm_baseline_does_not() {
    let run = RunConfig::smoke_test();
    let mix = mix_by_name("M-2").unwrap();
    let base = run_mix(mix, SchemeKind::Baseline, &run);
    assert_eq!(base.stats.lmm_cache.total(), 0);
    assert_eq!(base.stats.nflb.total(), 0);
    for scheme in [SchemeKind::IvBasic, SchemeKind::IvInvert, SchemeKind::IvPro] {
        let r = run_mix(mix, scheme, &run);
        assert!(r.stats.lmm_cache.total() > 0, "{scheme:?}");
        assert!(r.stats.nflb.total() > 0, "{scheme:?}");
        assert!(
            r.stats.nflb.hit_rate() > 0.5,
            "{scheme:?} NFLB hit rate {:.2}",
            r.stats.nflb.hit_rate()
        );
        assert!(r.utilization.unwrap_or(0.0) > 0.9, "{scheme:?}");
    }
}

#[test]
fn path_lengths_land_in_plausible_ranges() {
    let run = RunConfig::smoke_test();
    let mix = mix_by_name("L-2").unwrap();
    for scheme in SchemeKind::MAIN {
        let r = run_mix(mix, scheme, &run);
        assert!(
            r.avg_path_length >= 0.0 && r.avg_path_length <= 6.0,
            "{scheme:?} path {}",
            r.avg_path_length
        );
        assert!(r.stats.verifications > 0, "{scheme:?}");
    }
}

#[test]
fn runs_are_deterministic() {
    let run = RunConfig::smoke_test();
    let mix = mix_by_name("S-5").unwrap();
    for scheme in [SchemeKind::Baseline, SchemeKind::IvInvert] {
        let a = run_mix(mix, scheme, &run);
        let b = run_mix(mix, scheme, &run);
        assert_eq!(
            a.stats.total_mem_accesses(),
            b.stats.total_mem_accesses(),
            "{scheme:?}"
        );
        assert!((a.weighted_ipc() - b.weighted_ipc()).abs() < 1e-12);
    }
}
