//! Property-based tests (ivl-testkit) on the core invariants:
//!
//! * the NFL never double-allocates a slot and keeps its head invariant;
//! * the forest keeps page→slot mapping a bijection under arbitrary
//!   allocate/free/migrate sequences, for every variant;
//! * the functional secure memory returns exactly what was written under
//!   arbitrary operation sequences, and detects arbitrary single-bit
//!   ciphertext corruption.

use ivl_testkit::prelude::*;

use ivleague_repro::ivl_secure_mem::functional::{IntegrityError, SecureMemory};
use ivleague_repro::ivl_sim_core::addr::{BlockAddr, PageNum};
use ivleague_repro::ivl_sim_core::config::IvVariant;
use ivleague_repro::ivl_sim_core::domain::DomainId;
use ivleague_repro::ivleague::forest::{Forest, ForestConfig};
use ivleague_repro::ivleague::nfl::{FreeOutcome, Nfl};

#[derive(Debug, Clone)]
enum NflOp {
    Alloc,
    FreeIdx(usize),
}

fn nfl_ops() -> impl Strategy<Value = Vec<NflOp>> {
    vec(
        prop_oneof![
            3 => Just(NflOp::Alloc),
            2 => any::<usize>().prop_map(NflOp::FreeIdx),
        ],
        1..400,
    )
}

props! {
    #![cases(64)]

    #[test]
    fn nfl_never_double_allocates(ops in nfl_ops()) {
        let mut nfl = Nfl::new((0..24).collect(), 8, 4);
        let mut live: Vec<(u64, u8)> = Vec::new();
        for op in ops {
            match op {
                NflOp::Alloc => {
                    if let Some(a) = nfl.alloc() {
                        prop_assert!(
                            !live.contains(&(a.tag, a.slot)),
                            "double allocation of ({}, {})", a.tag, a.slot
                        );
                        live.push((a.tag, a.slot));
                    }
                }
                NflOp::FreeIdx(i) => {
                    if !live.is_empty() {
                        let (tag, slot) = live.remove(i % live.len());
                        // Fallback means the slot is untracked — it must
                        // never reappear, which the double-alloc check above
                        // verifies implicitly.
                        let _ = matches!(nfl.free(tag, slot), FreeOutcome::Fallback(_));
                    }
                }
            }
            prop_assert!(nfl.invariant_holds());
        }
    }

    #[test]
    fn forest_mapping_stays_bijective(
        seed in 0u64..1000,
        steps in 50usize..400,
        variant_idx in 0usize..3,
    ) {
        let variant = IvVariant::ALL[variant_idx];
        let mut forest = Forest::new(ForestConfig::small_for_tests(variant));
        let mut rng = ivleague_repro::ivl_sim_core::rng::Xoshiro256::seed_from(seed);
        let domains = [DomainId::new_unchecked(0), DomainId::new_unchecked(1)];
        let mut live: Vec<(DomainId, PageNum)> = Vec::new();
        let mut next = 0u64;
        for _ in 0..steps {
            let d = domains[rng.index(2)];
            match rng.index(10) {
                0..=5 => {
                    let p = PageNum::new(next);
                    next += 1;
                    if forest.map_page(d, p).is_ok() {
                        live.push((d, p));
                    }
                }
                6..=8 => {
                    if !live.is_empty() {
                        let idx = rng.index(live.len());
                        let (owner, page) = live.swap_remove(idx);
                        prop_assert!(forest.unmap_page(owner, page).is_ok());
                    }
                }
                _ => {
                    if variant == IvVariant::Pro && !live.is_empty() {
                        let (owner, page) = live[rng.index(live.len())];
                        if forest.is_hot_mapped(page) {
                            forest.demote_page(owner, page);
                        } else {
                            forest.promote_page(owner, page);
                        }
                    }
                }
            }
        }
        // Bijection: every live page mapped, all slots distinct.
        let mut seen = std::collections::HashSet::new();
        for (_, p) in &live {
            let slot = forest.slot_of(*p);
            prop_assert!(slot.is_some(), "{p} lost its mapping");
            prop_assert!(seen.insert(slot.unwrap()), "slot double-mapped");
        }
        prop_assert!(forest.verify_isolation());
    }

    #[test]
    fn secure_memory_round_trips_random_writes(
        writes in vec((0u64..512, any::<u8>()), 1..60)
    ) {
        let mut mem = SecureMemory::new(8, [1u8; 16], [2u8; 16], [3u8; 16]);
        let mut shadow = std::collections::HashMap::new();
        for (blk, byte) in writes {
            let addr = BlockAddr::new(blk);
            let data = [byte; 64];
            mem.write_block(addr, &data).unwrap();
            shadow.insert(addr, data);
        }
        for (addr, data) in shadow {
            prop_assert_eq!(mem.read_block(addr).unwrap(), data);
        }
    }

    #[test]
    fn any_single_bit_corruption_is_detected(
        byte_idx in 0usize..64,
        bit in 0u8..8,
    ) {
        let mut mem = SecureMemory::new(8, [4u8; 16], [5u8; 16], [6u8; 16]);
        let addr = BlockAddr::new(17);
        mem.write_block(addr, &[0x3Cu8; 64]).unwrap();
        mem.corrupt_data(addr, byte_idx, 1 << bit);
        prop_assert_eq!(mem.read_block(addr), Err(IntegrityError::MacMismatch));
    }

    #[test]
    fn replay_of_any_block_is_detected(blk in 0u64..256) {
        let mut mem = SecureMemory::new(8, [7u8; 16], [8u8; 16], [9u8; 16]);
        let addr = BlockAddr::new(blk % 512);
        mem.write_block(addr, &[1u8; 64]).unwrap();
        let snap = mem.snapshot_block(addr);
        mem.write_block(addr, &[2u8; 64]).unwrap();
        mem.replay_block(&snap);
        prop_assert!(matches!(mem.read_block(addr), Err(IntegrityError::Tree(_))));
    }
}
