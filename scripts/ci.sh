#!/usr/bin/env bash
# CI entry point. Everything here must pass offline: the workspace has a
# zero-third-party-dependency policy (DESIGN.md §5), so no step may touch
# the network or a registry cache.
#
# Usage:
#   scripts/ci.sh            # run every check in both profiles
#   scripts/ci.sh debug      # build/test the debug profile only
#   scripts/ci.sh release    # build/test the release profile only
#   scripts/ci.sh fuzz       # leak-search: corpus replay + budgeted fuzz
#
# Steps:
#   1. dependency purity    - Cargo.lock and `cargo tree` contain only
#                             workspace members (no `source =` lines, no
#                             paths outside the repo)
#   2. formatting           - cargo fmt --check
#   3. lints                - cargo clippy --all-targets -D warnings
#   4. build + test         - --locked --offline, per profile
#   5. leak corpus replay   - every profile: `leakfuzz replay` re-runs the
#                             checked-in counterexample corpus; the Baseline
#                             must keep flagging and every protected scheme
#                             must stay clean (drift detector both ways).
#                             A second pass replays under IVL_PAR_SYSTEM=1,
#                             adding the serial-vs-ParSystem drift gate
#   6. par bit-identity     - release only: the ParSystem determinism test
#                             (serial == parallel figure data over the full
#                             mix x scheme matrix) at IVL_WORKERS 1, 2, 4, 8
#   7. bench smoke + gate   - one quick ivl-bench micro run, diffed against
#                             BENCH_pr10.json by bench_compare; fails on a
#                             median regression beyond the threshold
#                             (IVL_BENCH_GATE_THRESHOLD, default 1.5 = 2.5x)
#   8. observability smoke  - obs_run writes + self-validates a trace
#                             (JSONL) and stats registry (JSON) for a quick
#                             mix and a short attack, once per engine
#                             (serial, then IVL_PAR_SYSTEM=1); afterwards
#                             the serial and ParSystem stats files must
#                             agree on dram.idle_skipped_cycles (idle-window
#                             skipping is deterministic figure state)
#   9. figures wall-clock   - all_figures --quick (release only) must finish
#                             within IVL_FIGURES_BUDGET_SECS (default 240);
#                             catches campaign-layer slowdowns the per-bench
#                             medians cannot see. A second, ParSystem-engine
#                             run shares the same budget
#
# The fuzz profile replaces steps 2-4 and 6-8 with a budgeted leak-search
# run (IVL_FUZZ_BUDGET_SECS, default 60): `leakfuzz fuzz` exits 2 — failing
# this script — if any protected scheme shows a distinguishable timing
# signal. Findings land in target/leakfuzz/ as corpus entries plus trace
# dumps for upload.
#
# Every run ends with a one-line PASS summary listing the steps executed.

set -euo pipefail

cd "$(dirname "$0")/.."
PROFILE_FILTER="${1:-all}"
case "$PROFILE_FILTER" in
all | debug | release | fuzz) ;;
*)
    echo "unknown profile '$PROFILE_FILTER' (expected all|debug|release|fuzz)" >&2
    exit 2
    ;;
esac

STEPS_RUN=()
step() {
    STEPS_RUN+=("$*")
    printf '\n=== %s ===\n' "$*"
}

step "dependency purity"
if grep -q '^source = ' Cargo.lock; then
    echo "FAIL: Cargo.lock references a registry source:" >&2
    grep -n '^source = ' Cargo.lock >&2
    exit 1
fi
# Every node in the full dependency graph (normal, build, and dev edges)
# must live inside this repository.
BAD_DEPS=$(cargo tree --workspace --locked --offline \
    --edges normal,build,dev --prefix none --format '{p}' \
    | sort -u | grep -v "($(pwd)" || true)
if [ -n "$BAD_DEPS" ]; then
    echo "FAIL: dependency graph reaches outside the workspace:" >&2
    echo "$BAD_DEPS" >&2
    exit 1
fi
echo "OK: dependency graph is workspace-only"

step "cargo fmt --check"
cargo fmt --all --check

step "cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets --locked --offline -- -D warnings

run_profile() {
    local name="$1"
    shift
    step "build ($name)"
    cargo build --workspace --all-targets --locked --offline "$@"
    step "test ($name)"
    cargo test -q --workspace --locked --offline "$@"
}

case "$PROFILE_FILTER" in
all)
    run_profile debug
    run_profile release --release
    ;;
debug)
    run_profile debug
    ;;
release)
    run_profile release --release
    ;;
fuzz)
    step "build (release: leakfuzz)"
    cargo build --release -p ivl-leakfuzz --locked --offline
    ;;
esac

# The leak corpus is a cross-profile invariant: replay it in every mode.
# Debug reuses the debug build; everything else the release build.
LEAKFUZZ_PROFILE_ARGS=(--release)
if [ "$PROFILE_FILTER" = "debug" ]; then
    LEAKFUZZ_PROFILE_ARGS=()
fi
step "leak corpus replay"
cargo run -q "${LEAKFUZZ_PROFILE_ARGS[@]}" -p ivl-leakfuzz --bin leakfuzz \
    --locked --offline -- replay

step "leak corpus replay (ParSystem engine)"
# Same corpus, plus the serial-vs-ParSystem drift gate inside `replay`:
# a threading bug must not be able to reclassify a leak.
IVL_PAR_SYSTEM=1 IVL_PAR_WORKERS=2 \
    cargo run -q "${LEAKFUZZ_PROFILE_ARGS[@]}" -p ivl-leakfuzz --bin leakfuzz \
    --locked --offline -- replay

if [ "$PROFILE_FILTER" = "fuzz" ]; then
    FUZZ_BUDGET="${IVL_FUZZ_BUDGET_SECS:-60}"
    step "leak-search fuzz (budget ${FUZZ_BUDGET}s)"
    # Exits 2 (failing the script) if any protected scheme flags.
    cargo run -q --release -p ivl-leakfuzz --bin leakfuzz --locked --offline -- \
        fuzz --budget-secs "$FUZZ_BUDGET" --out "$(pwd)/target/leakfuzz"
fi

if [ "$PROFILE_FILTER" != "fuzz" ]; then

if [ "$PROFILE_FILTER" != "debug" ]; then
    step "par bit-identity matrix (IVL_WORKERS 1 2 4 8)"
    # The determinism test sweeps 1/2/4 on its own; the explicit matrix
    # re-pins each worker count separately (including 8, above the core
    # count of most runners) so a scheduling-dependent divergence cannot
    # hide behind a lucky in-process sweep.
    for IVL_PAR_MATRIX_W in 1 2 4 8; do
        IVL_WORKERS="$IVL_PAR_MATRIX_W" cargo test -q --release -p ivl-bench \
            --test determinism --locked --offline \
            par_system_is_bit_identical_to_serial
    done
fi

step "bench smoke (IVL_BENCH_QUICK=1)"
# Absolute path: the bench binary's working directory is the bench package,
# not the workspace root, so a relative IVL_BENCH_JSON would land elsewhere.
BENCH_JSON="$(pwd)/target/bench_quick.json"
IVL_BENCH_QUICK=1 IVL_BENCH_JSON="$BENCH_JSON" \
    cargo bench -p ivl-bench --locked --offline

step "bench regression gate (vs BENCH_pr10.json)"
# The snapshot holds full-mode medians while this leg runs quick mode, and
# quick-mode medians on a shared runner straight after a long build are
# systematically slower (short warm-up, hot machine) on top of being noisy
# — observed skew reaches ~2x on the fastest benches. The generous default
# threshold absorbs that; the gate catches order-of-magnitude mistakes,
# not percent-level drift.
cargo run -q -p ivl-bench --bin bench_compare --locked --offline -- \
    BENCH_pr10.json "$BENCH_JSON" \
    --threshold "${IVL_BENCH_GATE_THRESHOLD:-1.5}"

step "observability smoke (obs_run --quick)"
# The binary validates its own artifacts (JSONL parses, event families
# present, monotonic cycles, stats reconcile) and exits nonzero otherwise.
# Cap the ring so the uploaded JSONL stays a few MB (drop-oldest keeps the
# most recent window, which is what a forensics reader wants anyway).
IVL_TRACE="$(pwd)/target/obs_trace.jsonl" \
    IVL_STATS_JSON="$(pwd)/target/obs_stats.json" \
    IVL_TRACE_CAP=50000 \
    cargo run -q -p ivl-bench --bin obs_run --locked --offline -- S-1 IvPro --quick

step "observability smoke (obs_run --quick, ParSystem engine)"
# Distinct sink paths: both artifact pairs survive for upload, and the
# par-mode run additionally validates the par.* counters it exports.
IVL_PAR_SYSTEM=1 IVL_PAR_WORKERS=2 \
    IVL_TRACE="$(pwd)/target/obs_trace_par.jsonl" \
    IVL_STATS_JSON="$(pwd)/target/obs_stats_par.json" \
    IVL_TRACE_CAP=50000 \
    cargo run -q -p ivl-bench --bin obs_run --locked --offline -- S-1 IvPro --quick

step "idle-skip cross-engine check"
# dram.idle_skipped_cycles is deterministic figure state: the slabs stay
# authoritative for timing, so the serial and ParSystem engines must skip
# the exact same number of idle DRAM cycles. obs_run already asserts the
# counter is nonzero in each engine; this compares the two exports.
SKIP_SERIAL=$(grep -o '"dram\.idle_skipped_cycles"[^,}]*' target/obs_stats.json)
SKIP_PAR=$(grep -o '"dram\.idle_skipped_cycles"[^,}]*' target/obs_stats_par.json)
echo "serial: ${SKIP_SERIAL:-missing}  par: ${SKIP_PAR:-missing}"
if [ -z "$SKIP_SERIAL" ] || [ "$SKIP_SERIAL" != "$SKIP_PAR" ]; then
    echo "FAIL: idle-skip accounting diverged between engines" >&2
    exit 1
fi

step "timeline smoke (timeline_report --quick)"
# Serial + ParSystem at 1/2/4 workers with the windowed timeline live:
# the binary reconciles window sums against registry deltas, pins the
# serial-comparable series bit-identical across engines, gates the
# commit-thread folded stack at >= 95% named coverage, and round-trips
# the JSONL it writes (uploaded as an artifact alongside the trace).
# The report's stdout carries the per-worker `par.commitphase.*` folded
# stacks; keep it as an artifact next to the timeline JSONL so commit-
# thread regressions can be flame-diffed across PRs.
IVL_TIMELINE="$(pwd)/target/obs_timeline.jsonl" \
    cargo run -q -p ivl-bench --bin timeline_report --locked --offline -- S-1 IvPro --quick \
    | tee target/obs_commit_stacks.txt

if [ "$PROFILE_FILTER" != "debug" ]; then
    step "figures wall-clock smoke (all_figures --quick)"
    # Runs the full figure campaign in quick mode against a wall-clock
    # budget. The budget leaves generous headroom over the ~51 s a single
    # quiet core needs after the event-calendar/dense-table work (it was
    # 900 s before that landed) and stays env-overridable because CI cores
    # vary; it exists to catch campaign-layer slowdowns — a serialized
    # sweep, a lost parallel runner — that the micro-bench medians cannot
    # see. Debug-only runs skip it: the budget is calibrated for the
    # release profile.
    FIGURES_BUDGET="${IVL_FIGURES_BUDGET_SECS:-240}"
    FIGURES_START=$(date +%s)
    cargo run -q --release -p ivl-bench --bin all_figures --locked --offline -- --quick
    FIGURES_ELAPSED=$(($(date +%s) - FIGURES_START))
    echo "all_figures --quick took ${FIGURES_ELAPSED}s (budget ${FIGURES_BUDGET}s)"
    if [ "$FIGURES_ELAPSED" -gt "$FIGURES_BUDGET" ]; then
        echo "FAIL: figure campaign exceeded its wall-clock budget" >&2
        exit 1
    fi

    step "figures wall-clock smoke (ParSystem engine)"
    # The whole campaign again with every mix stepped by the ParSystem
    # engine — bit-identity says the *figures* cannot change, so this leg
    # only guards wall-clock (a deadlock or livelock in the ring protocol
    # would blow the budget, not the diff).
    FIGURES_START=$(date +%s)
    IVL_PAR_SYSTEM=1 IVL_PAR_WORKERS=2 \
        cargo run -q --release -p ivl-bench --bin all_figures --locked --offline -- --quick
    FIGURES_ELAPSED=$(($(date +%s) - FIGURES_START))
    echo "all_figures --quick (par) took ${FIGURES_ELAPSED}s (budget ${FIGURES_BUDGET}s)"
    if [ "$FIGURES_ELAPSED" -gt "$FIGURES_BUDGET" ]; then
        echo "FAIL: ParSystem figure campaign exceeded its wall-clock budget" >&2
        exit 1
    fi
fi

fi # PROFILE_FILTER != fuzz

SUMMARY=$(printf '%s; ' "${STEPS_RUN[@]}")
printf '\nPASS (%s): %s\n' "$PROFILE_FILTER" "${SUMMARY%; }"
