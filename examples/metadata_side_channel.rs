//! The attack the paper defends against: MetaLeak-style Evict+Reload on
//! shared integrity-tree metadata, extracting an RSA private exponent from
//! a square-and-multiply victim — and its collapse under IvLeague.
//!
//! Run with `cargo run --release --example metadata_side_channel`.

use ivleague_repro::ivl_attack::{run_attack, AttackConfig, TargetScheme};

fn main() {
    let cfg = AttackConfig {
        bits: 512,
        noise: 0.17,
        seed: 42,
    };

    println!(
        "Victim: square-and-multiply RSA, {}-bit secret exponent",
        cfg.bits
    );
    println!("Attacker: evicts the shared level-2 tree node, times its own reload\n");

    let leak = run_attack(TargetScheme::GlobalTree, &cfg);
    println!("-- global integrity tree (classical secure processor) --");
    println!("   calibrated latency threshold: {} cycles", leak.threshold);
    println!("   first bits (secret / P2a reload latency / guess):");
    for s in leak.samples.iter().take(12) {
        let marker = if s.guess == s.truth { ' ' } else { '!' };
        println!(
            "     bit {:>3}: {}  {:>4} cycles  -> guess {} {marker}",
            s.bit, s.truth as u8, s.p2_latency, s.guess as u8
        );
    }
    println!(
        "   recovery accuracy: {:.1}%  (paper reports 91.6%)\n",
        leak.accuracy * 100.0
    );

    let safe = run_attack(TargetScheme::IvLeague, &cfg);
    println!("-- IvLeague (isolated TreeLings, roots pinned on-chip) --");
    println!(
        "   recovery accuracy: {:.1}%  (coin-flipping: the attacker's pages share\n   no tree node with the victim, so the timing carries no signal)",
        safe.accuracy * 100.0
    );

    assert!(leak.accuracy > 0.85, "the classical design must leak");
    assert!(safe.accuracy < 0.65, "IvLeague must not leak");
}
