//! A cloud-style scenario: tenants (IV domains) arrive with wildly skewed
//! memory footprints, grow, shrink and depart; IvLeague assigns and
//! recycles TreeLings on demand while a statically partitioned tree would
//! have failed.
//!
//! Run with `cargo run --release --example multi_tenant_cloud`.

use ivleague_repro::ivl_analysis::scalability::{paper_ivleague, success_rate, PartitionScheme};
use ivleague_repro::ivl_sim_core::addr::PageNum;
use ivleague_repro::ivl_sim_core::config::{IvLeagueConfig, IvVariant};
use ivleague_repro::ivl_sim_core::domain::DomainId;
use ivleague_repro::ivl_sim_core::rng::Xoshiro256;
use ivleague_repro::ivleague::forest::{Forest, ForestConfig};

fn main() {
    // A forest with the paper's geometry but a small TreeLing budget, so
    // the dynamics are visible at example scale.
    let ivcfg = IvLeagueConfig {
        treeling_count: 64,
        ..IvLeagueConfig::default()
    };
    let mut forest = Forest::new(ForestConfig::from_ivleague(&ivcfg, 8, IvVariant::Invert));
    let mut rng = Xoshiro256::seed_from(7);

    println!("== dynamic tenants on 64 TreeLings ==");
    // Three waves of tenants with skewed footprints (pages).
    let mut next_page = 0u64;
    let mut tenants: Vec<(DomainId, Vec<PageNum>)> = Vec::new();
    for wave in 0..3 {
        for t in 0..4u16 {
            let d = DomainId::new_unchecked(wave * 4 + t + 1);
            // Skewed footprints: one elephant, three mice per wave.
            let pages = if t == 0 {
                2000
            } else {
                40 + rng.index(80) as u64
            };
            let mut owned = Vec::new();
            for _ in 0..pages {
                let p = PageNum::new(next_page);
                next_page += 1;
                if forest.map_page(d, p).is_ok() {
                    owned.push(p);
                }
            }
            tenants.push((d, owned));
        }
        println!(
            "  wave {}: {} live domains, {} TreeLings assigned so far, starvation events: {}",
            wave + 1,
            tenants.len(),
            forest.stats().treelings_assigned,
            forest.starvation_events()
        );
        // The elephant of the previous wave departs; its TreeLings recycle.
        if wave > 0 {
            let (gone, _) = tenants.remove(0);
            forest.destroy_domain(gone);
            println!("    tenant {gone} departed — TreeLings recycled");
        }
    }
    assert!(forest.verify_isolation());
    println!(
        "  isolation verified across {} live domains; mean TreeLing utilization {:.2}%",
        tenants.len(),
        forest.stats().mean_utilization() * 100.0
    );

    println!("\n== why not static partitioning? (Monte-Carlo, Figure 22 setting) ==");
    let mem = 64u64 << 30;
    for (domains, util) in [(16usize, 0.4), (64, 0.6), (128, 0.8)] {
        let s = success_rate(PartitionScheme::Static, mem, domains, util, 300, 1);
        let i = success_rate(paper_ivleague(), mem, domains, util, 300, 2);
        println!(
            "  {domains:>3} domains @ {:>2.0}% utilization: static {:>5.1}%  vs  IvLeague {:>5.1}%",
            util * 100.0,
            s * 100.0,
            i * 100.0
        );
    }
}
