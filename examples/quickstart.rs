//! Quickstart: tamper-evident secure memory plus IvLeague's isolated
//! per-domain integrity trees.
//!
//! Run with `cargo run --release --example quickstart`.

use ivleague_repro::ivl_secure_mem::functional::{IntegrityError, SecureMemory};
use ivleague_repro::ivl_sim_core::addr::{BlockAddr, PageNum};
use ivleague_repro::ivl_sim_core::config::IvVariant;
use ivleague_repro::ivl_sim_core::domain::DomainId;
use ivleague_repro::ivleague::forest::{Forest, ForestConfig};

fn main() {
    println!("== 1. A functionally-correct secure memory ==");
    // Three processor keys: encryption, MAC, integrity tree.
    let mut mem = SecureMemory::new(1024, [1u8; 16], [2u8; 16], [3u8; 16]);
    let secret = BlockAddr::new(100);
    mem.write_block(
        secret,
        b"attack at dawn!.attack at dawn!.attack at dawn!.attack at dawn!.",
    )
    .expect("in range");
    let read = mem.read_block(secret).expect("verified read");
    println!(
        "  verified read-back : {:?}...",
        std::str::from_utf8(&read[..14]).unwrap()
    );

    // Physical attacks against off-chip memory are detected:
    mem.corrupt_data(secret, 3, 0xFF);
    println!("  spoofing  -> {:?}", mem.read_block(secret).unwrap_err());
    mem.corrupt_data(secret, 3, 0xFF); // undo
    let snapshot = mem.snapshot_block(secret);
    mem.write_block(secret, &[0u8; 64]).expect("overwrite");
    mem.replay_block(&snapshot); // restore stale data + MAC + counter
    let err = mem.read_block(secret).unwrap_err();
    assert!(matches!(err, IntegrityError::Tree(_)));
    println!("  replay    -> {err:?} (the on-chip tree root catches it)");

    println!("\n== 2. IvLeague: isolated dynamic integrity trees ==");
    let mut forest = Forest::new(ForestConfig::small_for_tests(IvVariant::Pro));
    let tenant_a = DomainId::new_unchecked(1);
    let tenant_b = DomainId::new_unchecked(2);
    for i in 0..24 {
        forest
            .map_page(tenant_a, PageNum::new(i))
            .expect("capacity");
        forest
            .map_page(tenant_b, PageNum::new(1000 + i))
            .expect("capacity");
    }
    println!(
        "  tenant A holds {} TreeLings, tenant B holds {}",
        forest.treelings_of(tenant_a).len(),
        forest.treelings_of(tenant_b).len()
    );
    println!(
        "  page 0 of A verifies through {} in-TreeLing nodes (root pinned on-chip)",
        forest.verification_path(PageNum::new(0)).unwrap().len()
    );
    assert!(forest.verify_isolation());
    println!("  cross-domain isolation check: no shared tree node — OK");

    // Hotpage optimization (IvLeague-Pro): migrate a page near the root.
    let hot = PageNum::new(23);
    let before = forest.verification_path(hot).unwrap().len();
    forest.promote_page(tenant_a, hot).expect("hot capacity");
    let after = forest.verification_path(hot).unwrap().len();
    println!("  hotpage promotion: path {before} -> {after} nodes");

    // Domains scale down as well: destroying a tenant recycles TreeLings.
    forest.destroy_domain(tenant_b);
    println!("  tenant B destroyed; its TreeLings returned to the free FIFO");
    println!("\nAll quickstart checks passed.");
}
