//! IvLeague-Pro's hotpage pipeline end to end: the access-frequency
//! tracker spots frequently accessed pages, the forest migrates them into
//! the reserved hot region near the TreeLing root, and their verification
//! paths shrink; when they cool off they migrate back.
//!
//! Run with `cargo run --release --example hotpage_migration`.

use ivleague_repro::ivl_sim_core::addr::PageNum;
use ivleague_repro::ivl_sim_core::config::IvVariant;
use ivleague_repro::ivl_sim_core::domain::DomainId;
use ivleague_repro::ivl_sim_core::rng::Xoshiro256;
use ivleague_repro::ivl_workloads::zipf::Zipf;
use ivleague_repro::ivleague::forest::{Forest, ForestConfig};
use ivleague_repro::ivleague::tracker::{HotEvent, HotpageTracker};

fn main() {
    let d = DomainId::new_unchecked(1);
    let mut forest = Forest::new(ForestConfig::small_for_tests(IvVariant::Pro));
    // 128 resident pages; a Zipf-skewed access stream (rank 0 hottest).
    let pages: Vec<PageNum> = (0..128)
        .map(|i| {
            let p = PageNum::new(i);
            forest.map_page(d, p).expect("capacity");
            p
        })
        .collect();

    let mut tracker = HotpageTracker::new(16, 8, 8, 100_000);
    let zipf = Zipf::new(pages.len(), 1.1);
    let mut rng = Xoshiro256::seed_from(3);

    let mut promotions = 0;
    let mut demotions = 0;
    for _ in 0..20_000 {
        let page = pages[zipf.sample(&mut rng)];
        for event in tracker.record(page) {
            match event {
                HotEvent::Promote(p) => {
                    if forest.promote_page(d, p).is_some() {
                        promotions += 1;
                    }
                }
                HotEvent::Demote(p) => {
                    if forest.demote_page(d, p).is_some() {
                        demotions += 1;
                    }
                }
            }
        }
    }

    println!("tracker drove {promotions} promotions and {demotions} demotions\n");
    println!("rank  hot?  verification path (nodes to the pinned root)");
    for rank in [0usize, 1, 2, 3, 8, 32, 127] {
        let p = pages[rank];
        println!(
            "{rank:>4}  {}  {}",
            if forest.is_hot_mapped(p) {
                "yes "
            } else {
                " no "
            },
            forest.verification_path(p).map(|v| v.len()).unwrap_or(0)
        );
    }

    let hot_paths: Vec<usize> = (0..4)
        .filter(|r| forest.is_hot_mapped(pages[*r]))
        .map(|r| forest.verification_path(pages[r]).unwrap().len())
        .collect();
    let cold_path = forest.verification_path(pages[127]).unwrap().len();
    if let Some(&h) = hot_paths.first() {
        assert!(h <= cold_path, "hot pages must not have longer paths");
        println!("\nhot page path {h} <= cold page path {cold_path} — Pro working as intended");
    }
    assert!(forest.verify_isolation());
}
