//! TreeLing provisioning under skewed memory distributions (Figure 21).
//!
//! The paper models the TreeLings needed to cover the worst case as
//! `#τ = (D − 1) + (M − (D − 1)·4KB) / S` (§VI-D2) and empirically sweeps
//! the *skewness* `S = M_max / M_total` of per-domain footprints: one
//! domain holds `S · M_total`, the rest is spread evenly over the remaining
//! `D − 1` domains. Each domain with any memory needs at least one
//! TreeLing, so past a certain TreeLing size the requirement flattens at
//! the domain-count floor.

/// The paper's worst-case provisioning formula `#τ = (D−1) + (M−(D−1)·4KB)/S`.
///
/// # Examples
///
/// ```
/// use ivl_analysis::starvation::worst_case_treelings;
/// let t = worst_case_treelings(4096, 32 << 30, 64 << 20);
/// assert!(t > 4096);
/// ```
pub fn worst_case_treelings(domains: u64, memory_bytes: u64, treeling_bytes: u64) -> u64 {
    let page = 4096u64;
    let rest = memory_bytes.saturating_sub((domains - 1) * page);
    (domains - 1) + rest.div_ceil(treeling_bytes)
}

/// TreeLings required for a skewed distribution: one domain holds
/// `skew · memory`, the rest is spread evenly across the remaining
/// domains (zero-footprint domains need no TreeLing).
///
/// # Panics
///
/// Panics unless `0 < skew <= 1` and `domains >= 1`.
pub fn treelings_required(domains: u64, memory_bytes: u64, treeling_bytes: u64, skew: f64) -> u64 {
    assert!(domains >= 1);
    assert!(skew > 0.0 && skew <= 1.0, "skew in (0, 1]");
    let big = (memory_bytes as f64 * skew) as u64;
    let mut total = big.div_ceil(treeling_bytes).max(1);
    if domains > 1 && skew < 1.0 {
        let small_total = memory_bytes - big;
        let per_small = small_total / (domains - 1);
        let per_small_tl = if per_small == 0 {
            0
        } else {
            per_small.div_ceil(treeling_bytes).max(1)
        };
        total += per_small_tl * (domains - 1);
    }
    total
}

/// One row of the Figure 21 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig21Point {
    /// TreeLing size in bytes.
    pub treeling_bytes: u64,
    /// Skewness factor.
    pub skew: f64,
    /// TreeLings required.
    pub required: u64,
    /// The fully-utilized floor `memory / treeling_size` (the red dashed
    /// line in the figure).
    pub floor: u64,
}

/// Sweeps TreeLing sizes × skewness for one memory size (Figure 21a/21b).
pub fn fig21_sweep(memory_bytes: u64, domains: u64) -> Vec<Fig21Point> {
    let sizes_mib: [u64; 6] = [2, 8, 32, 128, 512, 2048];
    let skews = [1.0, 0.5, 0.1];
    let mut out = Vec::new();
    for &mib in &sizes_mib {
        let tl = mib * 1024 * 1024;
        for &skew in &skews {
            out.push(Fig21Point {
                treeling_bytes: tl,
                skew,
                required: treelings_required(domains, memory_bytes, tl, skew),
                floor: memory_bytes.div_ceil(tl),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;
    const MIB: u64 = 1 << 20;

    #[test]
    fn requirement_decreases_with_treeling_size() {
        let small = treelings_required(4096, 8 * GIB, 2 * MIB, 0.5);
        let large = treelings_required(4096, 8 * GIB, 128 * MIB, 0.5);
        assert!(small > large, "{small} vs {large}");
    }

    #[test]
    fn flattens_at_domain_floor() {
        // With huge TreeLings every non-empty domain still needs one.
        let r = treelings_required(4096, 8 * GIB, 2048 * MIB, 0.1);
        assert!(r >= 4096, "domain floor: {r}");
        assert!(r <= 4097 + 2, "{r}");
    }

    #[test]
    fn higher_skew_needs_fewer_treelings_at_large_sizes() {
        // At large TreeLing sizes the per-small-domain minimum dominates;
        // skew 1.0 concentrates memory in one domain → fewest TreeLings.
        let s10 = treelings_required(4096, 32 * GIB, 512 * MIB, 1.0);
        let s01 = treelings_required(4096, 32 * GIB, 512 * MIB, 0.1);
        assert!(s10 < s01, "{s10} vs {s01}");
    }

    #[test]
    fn full_skew_single_domain() {
        let r = treelings_required(4096, 8 * GIB, 64 * MIB, 1.0);
        assert_eq!(r, 128);
    }

    #[test]
    fn worst_case_formula_matches_paper_shape() {
        // S and #τ are inversely related at fixed D and M.
        let a = worst_case_treelings(4096, 32 * GIB, 8 * MIB);
        let b = worst_case_treelings(4096, 32 * GIB, 64 * MIB);
        assert!(a > b);
        assert!(b >= 4095);
    }

    #[test]
    fn sweep_has_18_points_per_memory_size() {
        let pts = fig21_sweep(8 * GIB, 4096);
        assert_eq!(pts.len(), 18);
        for p in &pts {
            assert!(p.required >= 1);
            assert!(p.floor >= 1);
        }
    }
}
