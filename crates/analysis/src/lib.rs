//! Analytic models of the paper's scalability and cost studies.
//!
//! * [`starvation`] — TreeLing provisioning under skewed per-domain memory
//!   footprints (§VI-D2, Figure 21);
//! * [`scalability`] — Monte-Carlo success-rate comparison of static
//!   integrity-tree partitioning vs IvLeague (§X-C, Figure 22);
//! * [`hardware`] — on-chip storage/area accounting (§X-D, Table III).

pub mod hardware;
pub mod scalability;
pub mod starvation;
