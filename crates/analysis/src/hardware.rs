//! On-chip hardware cost accounting (Table III, §X-D).
//!
//! Storage sizes are derived from the architecture configuration; areas use
//! per-KiB scaling constants fitted to the paper's CACTI 7 (45 nm) numbers
//! (plain SRAM arrays vs CAM-style structures vs the tracker's
//! counter+comparator array).

use ivl_sim_core::config::SystemConfig;

/// Area per KiB for plain SRAM arrays (45 nm), from 204 KiB → 0.33 mm².
pub const SRAM_MM2_PER_KIB: f64 = 0.33 / 204.0;
/// Area per KiB for small CAM structures, from 528 B → 0.0071 mm².
pub const CAM_MM2_PER_KIB: f64 = 0.0071 / (528.0 / 1024.0);
/// Area per KiB for the tracker (counters + comparators), 848 B → 0.018 mm².
pub const TRACKER_MM2_PER_KIB: f64 = 0.018 / (848.0 / 1024.0);

/// One Table III row.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Component name.
    pub component: &'static str,
    /// On-chip storage in bytes.
    pub storage_bytes: u64,
    /// Estimated area in mm² (45 nm).
    pub area_mm2: f64,
}

/// Table III plus off-chip overheads.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareCost {
    /// On-chip rows.
    pub rows: Vec<CostRow>,
    /// In-memory NFL metadata bytes (64-bit entry per TreeLing node).
    pub offchip_nfl_bytes: u64,
    /// NFL metadata as a fraction of system memory.
    pub offchip_nfl_fraction: f64,
    /// Integrity-tree metadata as a fraction of system memory.
    pub tree_metadata_fraction: f64,
}

impl HardwareCost {
    /// Total on-chip area.
    pub fn total_area_mm2(&self) -> f64 {
        self.rows.iter().map(|r| r.area_mm2).sum()
    }
}

/// Computes the hardware cost of the configured IvLeague design.
pub fn hardware_cost(cfg: &SystemConfig) -> HardwareCost {
    let cores = cfg.core.cores as u64;
    let iv = &cfg.ivleague;

    // NFL buffer: per-core NFLB entries (64 B block + 2 B tag/valid) plus a
    // 4-bit head register; paper: 528 B total logic+buffer.
    let nflb_bytes = cores * iv.nflb_entries_per_domain as u64 * 66 + cores;

    // LMM cache: entries × (8 B leaf ID + ~17 B tag/valid/LRU) ≈ 204 KiB at
    // the default 8 Ki entries.
    let lmm_bytes = iv.lmm_cache_entries as u64 * 26;

    // Hotpage tracker: per-core entries × (page tag 48 b + counter + flags).
    let tracker_entry_bits = 48 + iv.tracker_counter_bits as u64 + 2;
    let tracker_bytes = cores * (iv.tracker_entries as u64 * tracker_entry_bits).div_ceil(8);

    let rows = vec![
        CostRow {
            component: "NFL Logic and Buffer",
            storage_bytes: nflb_bytes,
            area_mm2: nflb_bytes as f64 / 1024.0 * CAM_MM2_PER_KIB,
        },
        CostRow {
            component: "LMM Cache",
            storage_bytes: lmm_bytes,
            area_mm2: lmm_bytes as f64 / 1024.0 * SRAM_MM2_PER_KIB,
        },
        CostRow {
            component: "Hotpage Predictor (IvLeague-Pro)",
            storage_bytes: tracker_bytes,
            area_mm2: tracker_bytes as f64 / 1024.0 * TRACKER_MM2_PER_KIB,
        },
    ];

    // Off-chip: 64-bit NFL entry per TreeLing node.
    let geometry = ivleague::geometry::TreeLingGeometry::new(
        cfg.secure.tree_arity as u32,
        iv.treeling_levels as u32,
    );
    let nodes_total = iv.treeling_count as u64 * geometry.nodes_per_treeling() as u64;
    let offchip_nfl_bytes = nodes_total * 8;
    let tree_bytes = nodes_total * 64;

    HardwareCost {
        rows,
        offchip_nfl_bytes,
        offchip_nfl_fraction: offchip_nfl_bytes as f64 / cfg.dram.capacity_bytes as f64,
        tree_metadata_fraction: tree_bytes as f64 / cfg.dram.capacity_bytes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_in_paper_ballpark() {
        let cost = hardware_cost(&SystemConfig::default());
        // Paper: 0.3551 mm² total; accept the same order of magnitude.
        let total = cost.total_area_mm2();
        assert!((0.2..0.6).contains(&total), "total area {total}");
        // LMM cache ≈ 204 KiB.
        let lmm = &cost.rows[1];
        assert!((180 * 1024..230 * 1024).contains(&(lmm.storage_bytes as usize)));
    }

    #[test]
    fn offchip_overheads_are_small() {
        let cost = hardware_cost(&SystemConfig::default());
        // Paper: 16 MB NFL ≈ 0.05%, tree ≈ 0.7%. Our 5-level default
        // overprovisions TreeLing coverage 16× (the breadth-first policy
        // trades off-chip metadata for shorter paths), so the ceilings here
        // are proportionally wider while still "a few percent".
        assert!(
            cost.offchip_nfl_fraction < 0.01,
            "{}",
            cost.offchip_nfl_fraction
        );
        assert!(
            cost.tree_metadata_fraction < 0.05,
            "{}",
            cost.tree_metadata_fraction
        );
    }

    #[test]
    fn rows_have_nonzero_storage() {
        let cost = hardware_cost(&SystemConfig::default());
        assert_eq!(cost.rows.len(), 3);
        for r in &cost.rows {
            assert!(r.storage_bytes > 0, "{}", r.component);
            assert!(r.area_mm2 > 0.0, "{}", r.component);
        }
    }
}
