//! Monte-Carlo success-rate comparison: static partitioning vs IvLeague
//! (Figure 22).
//!
//! For a configuration (total memory `T`, `n` active domains, target
//! utilization `u`) we draw random per-domain footprints with
//! `Σ Mᵢ = u·T` (exponential weights, normalized — a high-variance,
//! cloud-like distribution) and ask whether the scheme can host all
//! domains without swapping:
//!
//! * **static partitioning**: `n` equal partitions of `T/n`; success iff
//!   every `Mᵢ ≤ T/n`;
//! * **IvLeague**: 4096 TreeLings of 64 MiB (the paper's configuration);
//!   success iff `Σ ceil(Mᵢ / 64 MiB) ≤ 4096`.

use ivl_sim_core::rng::Xoshiro256;

/// Scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Equal static partitions, one per domain.
    Static,
    /// IvLeague with `treelings` TreeLings of `treeling_bytes` each.
    IvLeague {
        /// Provisioned TreeLings.
        treelings: u64,
        /// Coverage per TreeLing in bytes.
        treeling_bytes: u64,
    },
}

/// The paper's IvLeague configuration for this experiment.
pub fn paper_ivleague() -> PartitionScheme {
    PartitionScheme::IvLeague {
        treelings: 4096,
        treeling_bytes: 64 << 20,
    }
}

/// Draws one random footprint vector with `sum = target_sum` (exponential
/// weights → high variance across domains).
fn random_footprints(rng: &mut Xoshiro256, domains: usize, target_sum: f64) -> Vec<f64> {
    let mut weights: Vec<f64> = (0..domains).map(|_| -(1.0 - rng.next_f64()).ln()).collect();
    let total: f64 = weights.iter().sum();
    for w in &mut weights {
        *w = *w / total * target_sum;
    }
    weights
}

/// Estimates the success rate of `scheme` over `trials` random draws.
///
/// # Panics
///
/// Panics if `domains == 0`, `trials == 0`, or `utilization` outside
/// `(0, 1]`.
pub fn success_rate(
    scheme: PartitionScheme,
    memory_bytes: u64,
    domains: usize,
    utilization: f64,
    trials: u32,
    seed: u64,
) -> f64 {
    assert!(domains > 0 && trials > 0);
    assert!(utilization > 0.0 && utilization <= 1.0);
    let mut rng = Xoshiro256::seed_from(seed);
    let target = memory_bytes as f64 * utilization;
    let mut successes = 0u32;
    for _ in 0..trials {
        let footprints = random_footprints(&mut rng, domains, target);
        let ok = match scheme {
            PartitionScheme::Static => {
                let partition = memory_bytes as f64 / domains as f64;
                footprints.iter().all(|m| *m <= partition)
            }
            PartitionScheme::IvLeague {
                treelings,
                treeling_bytes,
            } => {
                let needed: u64 = footprints
                    .iter()
                    .map(|m| (m / treeling_bytes as f64).ceil() as u64)
                    .sum();
                needed <= treelings
            }
        };
        if ok {
            successes += 1;
        }
    }
    successes as f64 / trials as f64
}

/// One point of the Figure 22 surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig22Point {
    /// Total memory in GiB.
    pub memory_gib: u64,
    /// Active domains.
    pub domains: usize,
    /// Target utilization.
    pub utilization: f64,
    /// Success rate of static partitioning.
    pub static_rate: f64,
    /// Success rate of IvLeague.
    pub ivleague_rate: f64,
}

/// Sweeps the Figure 22 surfaces (memory 8–256 GiB × domains 8–128 ×
/// utilization 20–80%).
pub fn fig22_sweep(trials: u32, seed: u64) -> Vec<Fig22Point> {
    let memories = [8u64, 16, 32, 64, 128, 256];
    let domains = [8usize, 16, 32, 64, 128];
    let utils = [0.2, 0.4, 0.6, 0.8];
    let mut out = Vec::new();
    for &u in &utils {
        for &m in &memories {
            for &n in &domains {
                let bytes = m << 30;
                out.push(Fig22Point {
                    memory_gib: m,
                    domains: n,
                    utilization: u,
                    static_rate: success_rate(
                        PartitionScheme::Static,
                        bytes,
                        n,
                        u,
                        trials,
                        seed ^ (m * 131 + n as u64),
                    ),
                    ivleague_rate: success_rate(
                        paper_ivleague(),
                        bytes,
                        n,
                        u,
                        trials,
                        seed ^ (m * 733 + n as u64),
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const GIB: u64 = 1 << 30;

    #[test]
    fn static_collapses_at_high_utilization_many_domains() {
        let rate = success_rate(PartitionScheme::Static, 64 * GIB, 64, 0.8, 300, 1);
        assert!(rate < 0.1, "static rate {rate}");
    }

    #[test]
    fn static_is_fine_at_low_utilization() {
        let rate = success_rate(PartitionScheme::Static, 64 * GIB, 8, 0.2, 300, 2);
        assert!(rate > 0.5, "static rate {rate}");
    }

    #[test]
    fn ivleague_stays_high_everywhere() {
        for (m, n, u) in [(8u64, 8usize, 0.8), (64, 64, 0.8), (256, 128, 0.8)] {
            let rate = success_rate(paper_ivleague(), m * GIB, n, u, 200, 3);
            // 4096 × 64 MiB = 256 GiB coverage; per-domain ceil waste is at
            // most one TreeLing per domain.
            assert!(rate > 0.95, "ivleague rate {rate} at {m}GiB/{n}/{u}");
        }
    }

    #[test]
    fn footprints_sum_to_target() {
        let mut rng = Xoshiro256::seed_from(4);
        let f = random_footprints(&mut rng, 32, 1000.0);
        let sum: f64 = f.iter().sum();
        assert!((sum - 1000.0).abs() < 1e-6);
        assert!(f.iter().all(|m| *m >= 0.0));
    }

    #[test]
    fn sweep_dimensions() {
        let pts = fig22_sweep(10, 5);
        assert_eq!(pts.len(), 4 * 6 * 5);
    }
}
