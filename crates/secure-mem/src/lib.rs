//! Secure-memory substrate: counter-mode encryption, MACs, and Bonsai Merkle
//! Tree integrity verification (paper Section II-B).
//!
//! The crate provides two cooperating layers:
//!
//! * a **functional layer** ([`functional::SecureMemory`]) that stores real
//!   ciphertext, real split counters, real MACs and a real hash tree, and
//!   therefore detects spoofing, splicing and replay attacks exactly like a
//!   secure processor would — this is what the examples, the attack models
//!   and the tamper-detection tests use;
//! * a **timing layer** ([`subsystem`], [`baseline`]) that models the
//!   metadata caches and the leaf-to-root verification walk to answer "how
//!   many cycles and how many extra memory accesses does this data access
//!   cost?" — this is what the multicore simulator plugs into.
//!
//! Both layers share the static metadata [`layout`] (where counters, MACs
//! and tree nodes live in physical memory) and the split-counter model in
//! [`counters`].
//!
//! The [`baseline::GlobalBmtSubsystem`] implements the paper's Baseline: a
//! globally shared 8-ary Bonsai Merkle Tree with counter/tree metadata
//! caches. The IvLeague schemes live in the `ivleague` crate and implement
//! the same [`subsystem::IntegritySubsystem`] trait.
//!
//! # Examples
//!
//! ```
//! use ivl_secure_mem::functional::SecureMemory;
//! use ivl_sim_core::addr::BlockAddr;
//!
//! let mut mem = SecureMemory::new(1024, [1u8; 16], [2u8; 16], [3u8; 16]);
//! let block = BlockAddr::new(5);
//! mem.write_block(block, &[0x5Au8; 64]).unwrap();
//! assert_eq!(mem.read_block(block).unwrap(), [0x5Au8; 64]);
//! ```

pub mod baseline;
pub mod counter_tree;
pub mod counters;
pub mod functional;
pub mod layout;
pub mod subsystem;
pub mod tree;
