//! An SGX-style *tree of counters* — the alternative integrity-tree design
//! the paper's background discusses (§II-B, references 65/74/75).
//!
//! Where a Bonsai Merkle Tree stores hashes of child nodes, a counter tree
//! stores a **version counter per child** plus an embedded MAC over the
//! node's counters keyed by the *parent* counter: verifying a node checks
//! its embedded MAC using the matching counter in the parent, level by
//! level up to an on-chip root counter. A write increments the counter at
//! every level (the paper's Intel SGX description uses 56-bit monolithic
//! counters, eight per 64 B node).
//!
//! The reproduction includes this design for background fidelity and for
//! ablation comparisons against the Bonsai Merkle Tree: both detect replay
//! through an on-chip root, but the counter tree's *every-level write
//! increment* makes writes touch the full path, while the BMT write stops
//! at the first cached node.

use std::collections::HashMap;

use ivl_crypto::siphash::{SipHasher24, SipKey};

/// Arity of the counter tree (eight 56-bit counters per 64 B node).
pub const CT_ARITY: usize = 8;

/// Position of a node: level 0 is the version-counter level covering data
/// blocks; higher levels cover child nodes; the root counter is on-chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtNode {
    /// Level, 0-based from the version counters.
    pub level: u32,
    /// Node index within the level.
    pub index: u64,
}

/// One counter-tree node: eight counters plus an embedded MAC.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CtNodeState {
    counters: [u64; CT_ARITY],
    embedded_mac: u64,
}

impl Default for CtNodeState {
    fn default() -> Self {
        CtNodeState {
            counters: [0; CT_ARITY],
            embedded_mac: 0,
        }
    }
}

/// Verification failure of the counter tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtMismatch {
    /// Node whose embedded MAC failed to verify.
    pub node: CtNode,
}

impl std::fmt::Display for CtMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "counter-tree MAC mismatch at level {} index {}",
            self.node.level, self.node.index
        )
    }
}

impl std::error::Error for CtMismatch {}

/// A functional SGX-style counter tree over `blocks` protected data blocks.
///
/// # Examples
///
/// ```
/// use ivl_secure_mem::counter_tree::CounterTree;
///
/// let mut t = CounterTree::new(4096, [7u8; 16]);
/// let v1 = t.bump(42);
/// let v2 = t.bump(42);
/// assert_eq!(v2, v1 + 1);
/// assert_eq!(t.verify(42).unwrap(), v2);
/// ```
#[derive(Debug, Clone)]
pub struct CounterTree {
    key: SipKey,
    blocks: u64,
    levels: u32,
    nodes: HashMap<CtNode, CtNodeState>,
    /// On-chip root counter (version of the single top node).
    root_counter: u64,
}

impl CounterTree {
    /// Creates a tree protecting `blocks` data blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0`.
    pub fn new(blocks: u64, key: [u8; 16]) -> Self {
        assert!(blocks > 0, "need at least one protected block");
        let mut levels = 1;
        let mut nodes = blocks.div_ceil(CT_ARITY as u64);
        while nodes > 1 {
            levels += 1;
            nodes = nodes.div_ceil(CT_ARITY as u64);
        }
        CounterTree {
            key: SipKey::from_bytes(key),
            blocks,
            levels,
            nodes: HashMap::new(),
            root_counter: 0,
        }
    }

    /// Number of levels below the on-chip root counter.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// The node containing block/child `idx` at `level`.
    fn node_of(level: u32, idx: u64) -> (CtNode, usize) {
        (
            CtNode {
                level,
                index: idx / CT_ARITY as u64,
            },
            (idx % CT_ARITY as u64) as usize,
        )
    }

    /// Embedded MAC of a node's counters, keyed by its position and the
    /// parent counter that versions it.
    fn node_mac(&self, node: CtNode, counters: &[u64; CT_ARITY], parent_counter: u64) -> u64 {
        let mut h = SipHasher24::new(self.key);
        h.write_u64(node.level as u64);
        h.write_u64(node.index);
        h.write_u64(parent_counter);
        for &c in counters {
            h.write_u64(c);
        }
        h.finish()
    }

    fn parent_counter(&self, node: CtNode) -> u64 {
        if node.level + 1 == self.levels {
            self.root_counter
        } else {
            let (parent, slot) = Self::node_of(node.level + 1, node.index);
            self.nodes
                .get(&parent)
                .map(|n| n.counters[slot])
                .unwrap_or(0)
        }
    }

    /// Increments the version of `block`, updating (and re-MACing) every
    /// node on the path — the counter tree's hallmark write behaviour.
    /// Returns the block's new version counter.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn bump(&mut self, block: u64) -> u64 {
        assert!(block < self.blocks, "block out of range");
        // Increment the counter at every level, bottom-up.
        let mut idx = block;
        let mut version = 0;
        for level in 0..self.levels {
            let (node, slot) = Self::node_of(level, idx);
            let state = self.nodes.entry(node).or_default();
            state.counters[slot] += 1;
            if level == 0 {
                version = state.counters[slot];
            }
            idx = node.index;
        }
        self.root_counter += 1;
        // Re-seal the path MACs top-down so each node is keyed by its
        // parent's fresh counter.
        let mut idx = block;
        for level in 0..self.levels {
            let (node, _) = Self::node_of(level, idx);
            let counters = self.nodes[&node].counters;
            let parent = self.parent_counter(node);
            let mac = self.node_mac(node, &counters, parent);
            self.nodes
                .get_mut(&node)
                .expect("just touched")
                .embedded_mac = mac;
            idx = node.index;
        }
        version
    }

    /// Verifies the path of `block` against the on-chip root counter and
    /// returns the block's current version.
    ///
    /// # Errors
    ///
    /// [`CtMismatch`] at the first node whose embedded MAC disagrees.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn verify(&self, block: u64) -> Result<u64, CtMismatch> {
        assert!(block < self.blocks, "block out of range");
        let mut idx = block;
        let mut version = 0;
        for level in 0..self.levels {
            let (node, slot) = Self::node_of(level, idx);
            let default = CtNodeState::default();
            let state = self.nodes.get(&node).unwrap_or(&default);
            // Never-written nodes with all-zero counters and zero MAC are
            // trivially fresh only if the parent counter is also zero.
            let parent = self.parent_counter(node);
            if !(state.counters == [0; CT_ARITY] && state.embedded_mac == 0 && parent == 0) {
                let expected = self.node_mac(node, &state.counters, parent);
                if expected != state.embedded_mac {
                    return Err(CtMismatch { node });
                }
            }
            if level == 0 {
                version = state.counters[slot];
            }
            idx = node.index;
        }
        Ok(version)
    }

    /// Tampers with an in-memory counter (attack modeling): sets the
    /// counter of `block` back to `value` without re-sealing the path.
    pub fn rollback_counter(&mut self, block: u64, value: u64) {
        let (node, slot) = Self::node_of(0, block);
        self.nodes.entry(node).or_default().counters[slot] = value;
    }

    /// Tampers with a node's embedded MAC.
    pub fn corrupt_mac(&mut self, node: CtNode, xor: u64) {
        self.nodes.entry(node).or_default().embedded_mac ^= xor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> CounterTree {
        CounterTree::new(4096, [9u8; 16])
    }

    #[test]
    fn levels_match_geometry() {
        assert_eq!(CounterTree::new(8, [0u8; 16]).levels(), 1);
        assert_eq!(CounterTree::new(64, [0u8; 16]).levels(), 2);
        assert_eq!(CounterTree::new(4096, [0u8; 16]).levels(), 4);
        assert_eq!(CounterTree::new(4097, [0u8; 16]).levels(), 5);
    }

    #[test]
    fn bump_and_verify_round_trip() {
        let mut t = tree();
        assert_eq!(t.verify(7).unwrap(), 0);
        assert_eq!(t.bump(7), 1);
        assert_eq!(t.bump(7), 2);
        assert_eq!(t.verify(7).unwrap(), 2);
        // Unrelated blocks still verify.
        assert_eq!(t.verify(4000).unwrap(), 0);
    }

    #[test]
    fn counter_rollback_detected() {
        let mut t = tree();
        t.bump(100);
        t.bump(100);
        t.rollback_counter(100, 1); // replay the old version
        let err = t.verify(100).unwrap_err();
        assert_eq!(err.node.level, 0);
    }

    #[test]
    fn mac_corruption_detected_at_every_level() {
        let mut t = tree();
        t.bump(0);
        for level in 0..t.levels() {
            let mut tampered = t.clone();
            tampered.corrupt_mac(CtNode { level, index: 0 }, 0x1);
            assert!(
                tampered.verify(0).is_err(),
                "corruption at level {level} undetected"
            );
        }
    }

    #[test]
    fn sibling_updates_keep_paths_valid() {
        let mut t = tree();
        t.bump(0);
        t.bump(1); // same leaf node
        t.bump(9); // same level-1 parent, different leaf
        t.bump(4095); // opposite end of the tree
        for b in [0, 1, 9, 4095] {
            assert!(t.verify(b).is_ok(), "block {b}");
        }
    }

    #[test]
    fn writes_version_the_whole_path() {
        // The root counter advances on every write — the structural reason
        // counter-tree writes touch all levels.
        let mut t = tree();
        t.bump(0);
        t.bump(4095);
        assert_eq!(t.root_counter, 2);
    }

    #[test]
    fn display_is_informative() {
        let e = CtMismatch {
            node: CtNode { level: 2, index: 5 },
        };
        assert!(format!("{e}").contains("level 2"));
    }
}
