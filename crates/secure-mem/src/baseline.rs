//! The paper's Baseline scheme: a globally shared 8-ary Bonsai Merkle Tree
//! with counter and tree metadata caches (Rogers et al., reference 67; Table I).
//!
//! On a data read that misses the counter cache, the verification walk
//! fetches tree-node blocks leaf → root until the first node that hits the
//! tree cache (the processor is trusted, so cached nodes are verified). On
//! a write, the counter is bumped and the walk *updates* nodes up to the
//! first cached level (write-back metadata caching). The root always stays
//! on-chip.

use ivl_cache::set_assoc::SetAssocCache;
use ivl_cache::CacheModel;
use ivl_dram::DramModel;
use ivl_sim_core::addr::{BlockAddr, PageNum};
use ivl_sim_core::config::SecureMemConfig;
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::obs::trace::{CacheKind, EventKind};
use ivl_sim_core::obs::Obs;
use ivl_sim_core::Cycle;

use crate::layout::MetadataLayout;
use crate::subsystem::{IntegritySubsystem, IvStats};

/// Timing model of the global-BMT secure-memory baseline.
///
/// # Examples
///
/// ```
/// use ivl_secure_mem::baseline::GlobalBmtSubsystem;
/// use ivl_secure_mem::subsystem::IntegritySubsystem;
/// use ivl_dram::DramModel;
/// use ivl_sim_core::{addr::BlockAddr, config::SystemConfig, domain::DomainId};
///
/// let cfg = SystemConfig::default();
/// let mut dram = DramModel::new(&cfg.dram);
/// let mut scheme = GlobalBmtSubsystem::new(&cfg.secure, 1 << 20);
/// let done = scheme.data_access(0, &mut dram, BlockAddr::new(0), DomainId::new_unchecked(0), false);
/// assert!(done > 0);
/// ```
#[derive(Debug)]
pub struct GlobalBmtSubsystem {
    layout: MetadataLayout,
    cfg: SecureMemConfig,
    ctr_cache: SetAssocCache,
    tree_cache: SetAssocCache,
    mac_cache: SetAssocCache,
    stats: IvStats,
    obs: Obs,
}

impl GlobalBmtSubsystem {
    /// Builds the baseline protecting `data_pages` pages.
    pub fn new(cfg: &SecureMemConfig, data_pages: u64) -> Self {
        let layout = MetadataLayout::new(data_pages, cfg.tree_arity);
        let mut tree_cache = SetAssocCache::with_geometry(
            cfg.tree_cache.capacity_bytes,
            cfg.tree_cache.ways,
            cfg.tree_cache.line_bytes,
        );
        // Classical secure processors keep the top tree levels resident
        // (they are tiny and extremely hot); pin every level whose
        // cumulative node count stays within a 512-block budget, mirroring
        // the ~32 KiB IvLeague reserves for its upper structure. The walk
        // then terminates at this pinned frontier.
        let mut pinned_top_level = layout.levels();
        let mut budget = 512u64;
        while pinned_top_level > 1 {
            let below = layout.level_size(pinned_top_level - 1);
            if below > budget {
                break;
            }
            budget -= below;
            pinned_top_level -= 1;
        }
        for level in pinned_top_level..=layout.levels() {
            for index in 0..layout.level_size(level) {
                tree_cache.lock(
                    layout
                        .node_block(crate::layout::NodeId { level, index })
                        .index(),
                );
            }
        }
        GlobalBmtSubsystem {
            layout,
            cfg: *cfg,
            ctr_cache: SetAssocCache::with_geometry(
                cfg.counter_cache.capacity_bytes,
                cfg.counter_cache.ways,
                cfg.counter_cache.line_bytes,
            ),
            tree_cache,
            // The MAC store has no dedicated cache in Table I; a small
            // buffer models MAC locality identically across all schemes.
            mac_cache: SetAssocCache::with_geometry(32 * 1024, 8, 64),
            stats: IvStats::default(),
            obs: Obs::disabled(),
        }
    }

    /// Emits a metadata-cache access event when tracing is on.
    fn trace_cache(
        &self,
        now: Cycle,
        domain: DomainId,
        cache: CacheKind,
        hit: bool,
        evicted: bool,
    ) {
        if self.obs.tracer.enabled() {
            self.obs.tracer.emit(
                now,
                "scheme",
                Some(domain),
                None,
                EventKind::CacheAccess {
                    cache,
                    hit,
                    evicted,
                },
            );
        }
    }

    /// The metadata layout (e.g. for tests / the attack model).
    pub fn layout(&self) -> &MetadataLayout {
        &self.layout
    }

    /// Mutable access to the tree metadata cache (the attack model performs
    /// targeted evictions on it).
    pub fn tree_cache_mut(&mut self) -> &mut SetAssocCache {
        &mut self.tree_cache
    }

    /// Whether a given tree node block currently resides in the tree cache.
    pub fn tree_node_cached(&self, node_block: BlockAddr) -> bool {
        self.tree_cache.probe(node_block.index())
    }

    /// Models a successful attacker eviction campaign against one tree-node
    /// block (MetaLeak performs this with conflict evictions; the model
    /// applies the end effect directly).
    pub fn evict_tree_block(&mut self, node_block: BlockAddr) {
        self.tree_cache.invalidate(node_block.index());
    }

    /// Models an eviction of a page's counter block from the counter cache.
    pub fn evict_counter_block(&mut self, page: PageNum) {
        let b = self.layout.counter_block(page);
        self.ctr_cache.invalidate(b.index());
    }

    /// Handles a dirty eviction from a metadata cache: one DRAM write,
    /// off the critical path.
    fn meta_writeback(&mut self, now: Cycle, dram: &mut DramModel, key: u64) {
        dram.access(now, BlockAddr::new(key), true);
        self.stats.meta_writes += 1;
    }

    /// Read-side verification walk; returns added critical-path latency.
    fn verify_read(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        page: PageNum,
        domain: DomainId,
    ) -> Cycle {
        let mut t = now;

        // Counter fetch.
        let ctr_block = self.layout.counter_block(page);
        let ctr = self.ctr_cache.access(ctr_block.index(), false);
        self.stats.counter_cache.record(ctr.hit);
        self.trace_cache(
            t,
            domain,
            CacheKind::Counter,
            ctr.hit,
            ctr.evicted.is_some(),
        );
        if let Some(e) = ctr.evicted.filter(|e| e.dirty) {
            self.meta_writeback(t, dram, e.key);
        }
        if ctr.hit {
            // Counter verified earlier; no tree walk needed.
            return t + self.cfg.counter_cache.hit_latency;
        }
        t = dram.access(t, ctr_block, false);
        self.stats.meta_reads += 1;
        self.stats.verifications += 1;

        // Tree walk leaf → root until a cached node.
        let mut path_len = 0u64;
        let mut node = self.layout.leaf_covering(page.index());
        loop {
            if node.level >= self.layout.levels() {
                break; // root is on-chip
            }
            let nb = self.layout.node_block(node);
            let out = self.tree_cache.access(nb.index(), false);
            self.stats.tree_cache.record(out.hit);
            if self.obs.tracer.enabled() {
                self.obs.tracer.emit(
                    t,
                    "scheme",
                    Some(domain),
                    None,
                    EventKind::TreeWalkLevel {
                        level: node.level.min(u8::MAX as u32) as u8,
                        hit: out.hit,
                    },
                );
            }
            if let Some(e) = out.evicted.filter(|e| e.dirty) {
                self.meta_writeback(t, dram, e.key);
            }
            if out.hit {
                t += self.cfg.tree_cache.hit_latency;
                break;
            }
            t = dram.access(t, nb, false);
            self.stats.meta_reads += 1;
            path_len += 1;
            self.stats.fetches_by_level[(node.level as usize - 1).min(7)] += 1;
            node = self.layout.parent(node).expect("below root");
        }
        self.stats.path_len_sum += path_len;
        // Hash verification is pipelined with the fetches; charge one
        // engine latency at the end.
        t + self.cfg.hash_latency
    }

    /// Write-side metadata update; returns added latency (small: updates are
    /// absorbed by the write-back metadata caches).
    fn update_write(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        page: PageNum,
        domain: DomainId,
    ) -> Cycle {
        let mut t = now;

        // Counter increment (read-modify-write in the counter cache).
        let ctr_block = self.layout.counter_block(page);
        let ctr = self.ctr_cache.access(ctr_block.index(), true);
        self.stats.counter_cache.record(ctr.hit);
        self.trace_cache(
            t,
            domain,
            CacheKind::Counter,
            ctr.hit,
            ctr.evicted.is_some(),
        );
        if let Some(e) = ctr.evicted.filter(|e| e.dirty) {
            self.meta_writeback(t, dram, e.key);
        }
        if !ctr.hit {
            t = dram.access(t, ctr_block, false);
            self.stats.meta_reads += 1;
        }

        // Tree update up to the first cached level.
        let mut node = self.layout.leaf_covering(page.index());
        loop {
            if node.level >= self.layout.levels() {
                break;
            }
            let nb = self.layout.node_block(node);
            let hit = self.tree_cache.probe(nb.index());
            let out = self.tree_cache.access(nb.index(), true);
            self.stats.tree_cache.record(hit);
            if self.obs.tracer.enabled() {
                self.obs.tracer.emit(
                    t,
                    "scheme",
                    Some(domain),
                    None,
                    EventKind::TreeWalkLevel {
                        level: node.level.min(u8::MAX as u32) as u8,
                        hit,
                    },
                );
            }
            if let Some(e) = out.evicted.filter(|e| e.dirty) {
                self.meta_writeback(t, dram, e.key);
            }
            if hit {
                break; // cached node absorbs the update
            }
            t = dram.access(t, nb, false);
            self.stats.meta_reads += 1;
            node = self.layout.parent(node).expect("below root");
        }
        t + self.cfg.hash_latency
    }
}

impl IntegritySubsystem for GlobalBmtSubsystem {
    fn data_access(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        block: BlockAddr,
        domain: DomainId,
        is_write: bool,
    ) -> Cycle {
        let page = block.page();

        // MAC access happens in parallel with the data access in both
        // directions; model it first so its DRAM traffic is counted, then
        // take the max of the parallel legs.
        let mac_block = self.layout.mac_block(block);
        let mac = self.mac_cache.access(mac_block.index(), is_write);
        self.stats.mac_cache.record(mac.hit);
        self.trace_cache(now, domain, CacheKind::Mac, mac.hit, mac.evicted.is_some());
        if let Some(e) = mac.evicted.filter(|e| e.dirty) {
            self.meta_writeback(now, dram, e.key);
        }
        let mac_done = if mac.hit {
            now + self.cfg.counter_cache.hit_latency
        } else {
            let t = dram.access(now, mac_block, false);
            self.stats.meta_reads += 1;
            t
        };

        if is_write {
            self.stats.data_writes += 1;
            dram.access(now, block, true);
            let meta_done = self.update_write(now, dram, page, domain);
            // Write-backs are buffered; the core is charged only the
            // metadata read-for-update portion.
            meta_done.max(mac_done).min(now + 200)
        } else {
            self.stats.data_reads += 1;
            let data_done = dram.access(now, block, false);
            let verify_done = self.verify_read(now, dram, page, domain);
            // Decryption pad generation (AES) starts once the counter is
            // available and overlaps the tail of the data fetch.
            let pad_done = verify_done + self.cfg.aes_latency;
            data_done.max(pad_done).max(mac_done)
        }
    }

    fn page_alloc(
        &mut self,
        now: Cycle,
        _dram: &mut DramModel,
        _page: PageNum,
        _domain: DomainId,
    ) -> Cycle {
        // Static mapping: counters and tree nodes pre-exist; nothing to do.
        now
    }

    fn page_dealloc(
        &mut self,
        now: Cycle,
        _dram: &mut DramModel,
        _page: PageNum,
        _domain: DomainId,
    ) -> Cycle {
        now
    }

    fn stats(&self) -> &IvStats {
        &self.stats
    }

    fn attach_obs(&mut self, obs: &Obs) {
        self.obs = obs.clone();
    }

    fn name(&self) -> &'static str {
        "Baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_sim_core::config::SystemConfig;

    fn setup() -> (GlobalBmtSubsystem, DramModel) {
        let cfg = SystemConfig::default();
        (
            GlobalBmtSubsystem::new(&cfg.secure, 1 << 20),
            DramModel::new(&cfg.dram),
        )
    }

    fn d0() -> DomainId {
        DomainId::new_unchecked(0)
    }

    #[test]
    fn cold_read_walks_the_tree() {
        let (mut s, mut dram) = setup();
        let done = s.data_access(0, &mut dram, BlockAddr::new(0), d0(), false);
        assert!(done > 0);
        assert_eq!(s.stats().verifications, 1);
        assert!(s.stats().path_len_sum >= 1, "cold walk reads nodes");
        // counter + MAC + nodes all missed.
        assert!(s.stats().meta_reads >= 3);
    }

    #[test]
    fn warm_read_hits_counter_cache() {
        let (mut s, mut dram) = setup();
        s.data_access(0, &mut dram, BlockAddr::new(0), d0(), false);
        let before = s.stats().verifications;
        s.data_access(10_000, &mut dram, BlockAddr::new(1), d0(), false);
        // Same page → same counter block → counter-cache hit, no new walk.
        assert_eq!(s.stats().verifications, before);
        assert_eq!(s.stats().counter_cache.hits(), 1);
    }

    #[test]
    fn second_walk_stops_at_shared_cached_node() {
        let (mut s, mut dram) = setup();
        // Page 0 and page 8 share the level-2 node (arity 8).
        s.data_access(0, &mut dram, PageNum::new(0).block(0), d0(), false);
        let first_path = s.stats().path_len_sum;
        s.data_access(50_000, &mut dram, PageNum::new(8).block(0), d0(), false);
        let second_path = s.stats().path_len_sum - first_path;
        assert!(
            second_path < first_path,
            "shared upper nodes were cached: {second_path} vs {first_path}"
        );
        assert_eq!(second_path, 1, "only the distinct leaf is fetched");
    }

    #[test]
    fn writes_do_not_stall_like_reads() {
        let (mut s, mut dram) = setup();
        let r = s.data_access(0, &mut dram, BlockAddr::new(0), d0(), false);
        let w_start = 1_000_000;
        let w = s.data_access(w_start, &mut dram, BlockAddr::new(64 * 100), d0(), true) - w_start;
        assert!(w <= r, "write acceptance {w} should not exceed read {r}");
        assert_eq!(s.stats().data_writes, 1);
    }

    #[test]
    fn warm_reads_are_much_faster() {
        let (mut s, mut dram) = setup();
        let cold = s.data_access(0, &mut dram, BlockAddr::new(0), d0(), false);
        let t0 = 1_000_000;
        let warm = s.data_access(t0, &mut dram, BlockAddr::new(0), d0(), false) - t0;
        assert!(warm < cold, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn alloc_dealloc_are_free() {
        let (mut s, mut dram) = setup();
        assert_eq!(s.page_alloc(5, &mut dram, PageNum::new(0), d0()), 5);
        assert_eq!(s.page_dealloc(9, &mut dram, PageNum::new(0), d0()), 9);
    }

    #[test]
    fn name_matches_paper() {
        let (s, _) = setup();
        assert_eq!(s.name(), "Baseline");
    }

    #[test]
    fn trace_reconciles_with_stats() {
        use ivl_sim_core::obs::trace::TraceFilter;
        use ivl_sim_core::obs::Tracer;

        let (mut s, mut dram) = setup();
        let mut obs = Obs::disabled();
        obs.tracer = Tracer::bounded(1 << 12, TraceFilter::all());
        s.attach_obs(&obs);

        s.data_access(0, &mut dram, BlockAddr::new(0), d0(), false);
        s.data_access(100_000, &mut dram, BlockAddr::new(0), d0(), false);

        let records = obs.tracer.sorted_records();
        let walk_levels = records
            .iter()
            .filter(|r| matches!(r.kind, EventKind::TreeWalkLevel { hit: false, .. }))
            .count() as u64;
        assert_eq!(
            walk_levels,
            s.stats().path_len_sum,
            "traced missed walk levels match the fetch accounting"
        );
        let ctr_lookups = records
            .iter()
            .filter(|r| {
                matches!(
                    r.kind,
                    EventKind::CacheAccess {
                        cache: CacheKind::Counter,
                        ..
                    }
                )
            })
            .count() as u64;
        assert_eq!(ctr_lookups, s.stats().counter_cache.total());
        assert!(records.iter().all(|r| r.domain == Some(d0())));
    }
}
