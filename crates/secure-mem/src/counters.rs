//! Split encryption counters (64-bit major + 7-bit minors, Table I).
//!
//! One 64 B counter block serves a 4 KiB page: a page-wide major counter
//! plus one 7-bit minor counter per 64 B data block. The logical counter of
//! a block is `major * 128 + minor`. When a minor overflows, the major is
//! incremented, all minors reset, and every block of the page must be
//! re-encrypted (a *page re-encryption* event, which the timing models
//! charge for).

use std::collections::HashMap;

use ivl_sim_core::addr::{BlockAddr, PageNum, BLOCKS_PER_PAGE};

/// Range of a 7-bit minor counter.
pub const MINOR_LIMIT: u64 = 128;

/// A split counter block covering one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterBlock {
    /// Page-wide major counter.
    pub major: u64,
    /// Per-block minor counters.
    pub minors: [u8; BLOCKS_PER_PAGE],
}

impl Default for CounterBlock {
    fn default() -> Self {
        CounterBlock {
            major: 0,
            minors: [0; BLOCKS_PER_PAGE],
        }
    }
}

impl CounterBlock {
    /// Logical counter of block `offset` within the page.
    pub fn logical(&self, offset: usize) -> u64 {
        self.major * MINOR_LIMIT + self.minors[offset] as u64
    }

    /// Serializes the counter block for hashing (the integrity tree hashes
    /// counter blocks, not raw counters).
    pub fn to_bytes(&self) -> [u8; 72] {
        let mut out = [0u8; 72];
        out[..8].copy_from_slice(&self.major.to_le_bytes());
        out[8..].copy_from_slice(&self.minors);
        out
    }
}

/// Outcome of a counter increment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementOutcome {
    /// New logical counter value for the written block.
    pub counter: u64,
    /// A minor counter overflowed: the whole page must be re-encrypted.
    pub page_reencryption: bool,
}

/// Functional store of counter blocks, sparse over pages.
///
/// # Examples
///
/// ```
/// use ivl_secure_mem::counters::CounterStore;
/// use ivl_sim_core::addr::BlockAddr;
///
/// let mut s = CounterStore::new();
/// let out = s.increment(BlockAddr::new(3));
/// assert_eq!(out.counter, 1);
/// assert_eq!(s.counter_of(BlockAddr::new(3)), 1);
/// assert_eq!(s.counter_of(BlockAddr::new(4)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CounterStore {
    blocks: HashMap<PageNum, CounterBlock>,
}

impl CounterStore {
    /// Creates an empty store (all counters logically zero).
    pub fn new() -> Self {
        CounterStore::default()
    }

    /// Current logical counter of a data block.
    pub fn counter_of(&self, block: BlockAddr) -> u64 {
        self.blocks
            .get(&block.page())
            .map(|cb| cb.logical(block.page_offset()))
            .unwrap_or(0)
    }

    /// The counter block of `page` (default zero block if untouched).
    pub fn block_of(&self, page: PageNum) -> CounterBlock {
        self.blocks.get(&page).cloned().unwrap_or_default()
    }

    /// Increments the counter for a block write; reports page
    /// re-encryption when a minor overflows.
    pub fn increment(&mut self, block: BlockAddr) -> IncrementOutcome {
        let cb = self.blocks.entry(block.page()).or_default();
        let off = block.page_offset();
        if cb.minors[off] as u64 + 1 < MINOR_LIMIT {
            cb.minors[off] += 1;
            IncrementOutcome {
                counter: cb.logical(off),
                page_reencryption: false,
            }
        } else {
            // Minor overflow: bump major, reset all minors. Every block of
            // the page now uses counter `major * 128`, so all must be
            // re-encrypted.
            cb.major += 1;
            cb.minors = [0; BLOCKS_PER_PAGE];
            IncrementOutcome {
                counter: cb.logical(off),
                page_reencryption: true,
            }
        }
    }

    /// Overwrites a page's counter block wholesale. Counters live off-chip,
    /// so a physical attacker can restore a stale counter block; the tamper
    /// API of the functional secure memory uses this to model replay.
    pub fn set_block(&mut self, page: PageNum, cb: CounterBlock) {
        self.blocks.insert(page, cb);
    }

    /// Drops a page's counters (page deallocation: the next allocation of
    /// this frame starts fresh — real hardware would scrub + bump the
    /// major, our functional model simply forgets the page together with
    /// its data).
    pub fn forget_page(&mut self, page: PageNum) {
        self.blocks.remove(&page);
    }

    /// Number of pages with live counters.
    pub fn live_pages(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_increment() {
        let mut s = CounterStore::new();
        let b = BlockAddr::new(64 * 7 + 5);
        assert_eq!(s.counter_of(b), 0);
        for i in 1..=5 {
            assert_eq!(s.increment(b).counter, i);
        }
    }

    #[test]
    fn blocks_in_a_page_have_independent_minors() {
        let mut s = CounterStore::new();
        let b0 = BlockAddr::new(0);
        let b1 = BlockAddr::new(1);
        s.increment(b0);
        s.increment(b0);
        s.increment(b1);
        assert_eq!(s.counter_of(b0), 2);
        assert_eq!(s.counter_of(b1), 1);
    }

    #[test]
    fn minor_overflow_triggers_page_reencryption() {
        let mut s = CounterStore::new();
        let b = BlockAddr::new(0);
        for _ in 0..(MINOR_LIMIT - 1) {
            assert!(!s.increment(b).page_reencryption);
        }
        let out = s.increment(b);
        assert!(out.page_reencryption);
        assert_eq!(out.counter, MINOR_LIMIT); // major=1, minor=0
                                              // Sibling minor was reset, but its logical counter moved forward.
        assert_eq!(s.counter_of(BlockAddr::new(1)), MINOR_LIMIT);
    }

    #[test]
    fn counters_never_repeat_across_overflow() {
        // The logical counter sequence for a single block must be strictly
        // increasing even across overflow (pad uniqueness).
        let mut s = CounterStore::new();
        let b = BlockAddr::new(5);
        let mut last = 0;
        for _ in 0..300 {
            let c = s.increment(b).counter;
            assert!(c > last, "counter regressed: {c} after {last}");
            last = c;
        }
    }

    #[test]
    fn forget_page_resets() {
        let mut s = CounterStore::new();
        let b = BlockAddr::new(0);
        s.increment(b);
        s.forget_page(b.page());
        assert_eq!(s.counter_of(b), 0);
        assert_eq!(s.live_pages(), 0);
    }

    #[test]
    fn serialization_captures_major_and_minors() {
        let mut cb = CounterBlock {
            major: 0x0102_0304,
            ..Default::default()
        };
        cb.minors[0] = 7;
        let bytes = cb.to_bytes();
        assert_eq!(bytes[0], 0x04);
        assert_eq!(bytes[8], 7);
    }
}
