//! Timing-model interface between the memory controller and an integrity
//! scheme.
//!
//! The multicore simulator funnels every LLC miss (and page allocation /
//! deallocation event) through an [`IntegritySubsystem`]. A subsystem owns
//! its metadata caches, knows where metadata lives in memory, issues the
//! metadata DRAM traffic, and answers with the completion time of the
//! access. The paper's four evaluated schemes all implement this trait:
//!
//! * `Baseline` — [`crate::baseline::GlobalBmtSubsystem`] (global 8-ary BMT);
//! * IvLeague-Basic / -Invert / -Pro — `ivleague::scheme::IvLeagueSubsystem`.
//!
//! A [`NoProtection`] scheme (raw DRAM, no metadata) is provided for
//! ablation.

use ivl_dram::DramModel;
use ivl_sim_core::addr::{BlockAddr, PageNum};
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::stats::HitMiss;
use ivl_sim_core::Cycle;

/// Statistics every integrity scheme exposes (superset across schemes;
/// fields a scheme does not use stay zero).
#[derive(Debug, Clone, Copy, Default)]
pub struct IvStats {
    /// Data-block DRAM reads.
    pub data_reads: u64,
    /// Data-block DRAM writes.
    pub data_writes: u64,
    /// Metadata DRAM reads (counters, MACs, tree nodes, NFL, LMM/page table).
    pub meta_reads: u64,
    /// Metadata DRAM writes.
    pub meta_writes: u64,
    /// Verifications performed (counter-cache misses on reads).
    pub verifications: u64,
    /// Total tree-node blocks fetched from memory across verifications
    /// (Fig 16's path length = `path_len_sum / verifications`).
    pub path_len_sum: u64,
    /// Counter metadata cache behaviour.
    pub counter_cache: HitMiss,
    /// Tree metadata cache behaviour.
    pub tree_cache: HitMiss,
    /// MAC cache behaviour.
    pub mac_cache: HitMiss,
    /// LMM cache behaviour (IvLeague only).
    pub lmm_cache: HitMiss,
    /// NFL buffer behaviour (IvLeague only).
    pub nflb: HitMiss,
    /// NFL-induced DRAM reads (IvLeague only).
    pub nfl_mem_reads: u64,
    /// NFL-induced DRAM writes (IvLeague only).
    pub nfl_mem_writes: u64,
    /// Hotpage migrations performed (IvLeague-Pro only).
    pub hot_migrations: u64,
    /// Pages demoted out of the hot region (IvLeague-Pro only).
    pub hot_demotions: u64,
    /// Page allocations that failed (TreeLing starvation / BV exhaustion).
    pub alloc_failures: u64,
    /// Read-walk DRAM fetches by tree level (index 0 = level 1/leaves).
    pub fetches_by_level: [u64; 8],
}

impl IvStats {
    /// Mean verification path length (tree-node memory reads per
    /// verification).
    pub fn avg_path_length(&self) -> f64 {
        if self.verifications == 0 {
            0.0
        } else {
            self.path_len_sum as f64 / self.verifications as f64
        }
    }

    /// Total DRAM accesses (data + metadata), the quantity of Fig 19.
    pub fn total_mem_accesses(&self) -> u64 {
        self.data_reads + self.data_writes + self.meta_reads + self.meta_writes
    }
}

/// An integrity-verification scheme plugged under the memory controller.
pub trait IntegritySubsystem {
    /// Handles a data access that missed the LLC. `now` is the issue cycle;
    /// the return value is the completion cycle of the *critical path* (for
    /// writes, the cycle at which the write is accepted — write-backs are
    /// not on the load-use critical path).
    fn data_access(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        block: BlockAddr,
        domain: DomainId,
        is_write: bool,
    ) -> Cycle;

    /// Handles an OS page allocation into `domain` (first touch).
    fn page_alloc(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        page: PageNum,
        domain: DomainId,
    ) -> Cycle;

    /// Handles an OS page deallocation.
    fn page_dealloc(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        page: PageNum,
        domain: DomainId,
    ) -> Cycle;

    /// Tears down a domain (frees its metadata resources).
    fn domain_destroyed(&mut self, domain: DomainId) {
        let _ = domain;
    }

    /// Scheme statistics so far.
    fn stats(&self) -> &IvStats;

    /// Clears accumulated statistics (end-of-warmup in the simulator).
    fn reset_stats(&mut self);

    /// Human-readable scheme name (matches the paper's figure legends).
    fn name(&self) -> &'static str;
}

/// A scheme with no memory protection at all: raw DRAM accesses.
///
/// Useful as an ablation lower bound; the paper's "Baseline" is the secure
/// global-tree scheme, not this.
#[derive(Debug, Default)]
pub struct NoProtection {
    stats: IvStats,
}

impl NoProtection {
    /// Creates the scheme.
    pub fn new() -> Self {
        NoProtection::default()
    }
}

impl IntegritySubsystem for NoProtection {
    fn data_access(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        block: BlockAddr,
        _domain: DomainId,
        is_write: bool,
    ) -> Cycle {
        if is_write {
            self.stats.data_writes += 1;
            dram.access(now, block, true);
            now + 1
        } else {
            self.stats.data_reads += 1;
            dram.access(now, block, false)
        }
    }

    fn page_alloc(
        &mut self,
        now: Cycle,
        _dram: &mut DramModel,
        _page: PageNum,
        _domain: DomainId,
    ) -> Cycle {
        now
    }

    fn page_dealloc(
        &mut self,
        now: Cycle,
        _dram: &mut DramModel,
        _page: PageNum,
        _domain: DomainId,
    ) -> Cycle {
        now
    }

    fn stats(&self) -> &IvStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = IvStats::default();
    }

    fn name(&self) -> &'static str {
        "NoProtection"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_sim_core::config::SystemConfig;

    #[test]
    fn avg_path_length_handles_zero() {
        let s = IvStats::default();
        assert_eq!(s.avg_path_length(), 0.0);
    }

    #[test]
    fn no_protection_charges_only_dram() {
        let cfg = SystemConfig::default();
        let mut dram = DramModel::new(&cfg.dram);
        let mut s = NoProtection::new();
        let d = DomainId::new_unchecked(0);
        let done = s.data_access(0, &mut dram, BlockAddr::new(0), d, false);
        assert!(done > 0);
        s.data_access(done, &mut dram, BlockAddr::new(0), d, true);
        assert_eq!(s.stats().data_reads, 1);
        assert_eq!(s.stats().data_writes, 1);
        assert_eq!(s.stats().meta_reads, 0);
        assert_eq!(s.stats().total_mem_accesses(), 2);
    }
}
