//! Timing-model interface between the memory controller and an integrity
//! scheme.
//!
//! The multicore simulator funnels every LLC miss (and page allocation /
//! deallocation event) through an [`IntegritySubsystem`]. A subsystem owns
//! its metadata caches, knows where metadata lives in memory, issues the
//! metadata DRAM traffic, and answers with the completion time of the
//! access. The paper's four evaluated schemes all implement this trait:
//!
//! * `Baseline` — [`crate::baseline::GlobalBmtSubsystem`] (global 8-ary BMT);
//! * IvLeague-Basic / -Invert / -Pro — `ivleague::scheme::IvLeagueSubsystem`.
//!
//! A [`NoProtection`] scheme (raw DRAM, no metadata) is provided for
//! ablation.

use ivl_dram::DramModel;
use ivl_sim_core::addr::{BlockAddr, PageNum};
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::obs::registry::StatsRegistry;
use ivl_sim_core::obs::Obs;
use ivl_sim_core::stats::HitMiss;
use ivl_sim_core::Cycle;

/// Statistics every integrity scheme exposes (superset across schemes;
/// fields a scheme does not use stay zero).
#[derive(Debug, Clone, Copy, Default)]
pub struct IvStats {
    /// Data-block DRAM reads.
    pub data_reads: u64,
    /// Data-block DRAM writes.
    pub data_writes: u64,
    /// Metadata DRAM reads (counters, MACs, tree nodes, NFL, LMM/page table).
    pub meta_reads: u64,
    /// Metadata DRAM writes.
    pub meta_writes: u64,
    /// Verifications performed (counter-cache misses on reads).
    pub verifications: u64,
    /// Total tree-node blocks fetched from memory across verifications
    /// (Fig 16's path length = `path_len_sum / verifications`).
    pub path_len_sum: u64,
    /// Counter metadata cache behaviour.
    pub counter_cache: HitMiss,
    /// Tree metadata cache behaviour.
    pub tree_cache: HitMiss,
    /// MAC cache behaviour.
    pub mac_cache: HitMiss,
    /// LMM cache behaviour (IvLeague only).
    pub lmm_cache: HitMiss,
    /// NFL buffer behaviour (IvLeague only).
    pub nflb: HitMiss,
    /// NFL-induced DRAM reads (IvLeague only).
    pub nfl_mem_reads: u64,
    /// NFL-induced DRAM writes (IvLeague only).
    pub nfl_mem_writes: u64,
    /// Pages claimed from the NFL free pool (IvLeague only).
    pub nfl_claims: u64,
    /// Pages recycled back into the NFL free pool (IvLeague only).
    pub nfl_recycles: u64,
    /// Hotpage migrations performed (IvLeague-Pro only).
    pub hot_migrations: u64,
    /// Pages demoted out of the hot region (IvLeague-Pro only).
    pub hot_demotions: u64,
    /// Page allocations that failed (TreeLing starvation / BV exhaustion).
    pub alloc_failures: u64,
    /// Read-walk DRAM fetches by tree level (index 0 = level 1/leaves).
    pub fetches_by_level: [u64; 8],
}

impl IvStats {
    /// Mean verification path length (tree-node memory reads per
    /// verification).
    pub fn avg_path_length(&self) -> f64 {
        if self.verifications == 0 {
            0.0
        } else {
            self.path_len_sum as f64 / self.verifications as f64
        }
    }

    /// Total DRAM accesses (data + metadata), the quantity of Fig 19.
    pub fn total_mem_accesses(&self) -> u64 {
        self.data_reads + self.data_writes + self.meta_reads + self.meta_writes
    }

    /// The statistics accumulated since an `earlier` snapshot (saturating
    /// fieldwise) — the single epoch mechanism the simulator uses to
    /// separate warmup from measurement instead of resetting each model.
    pub fn delta(&self, earlier: &IvStats) -> IvStats {
        let mut fetches_by_level = [0u64; 8];
        for (i, slot) in fetches_by_level.iter_mut().enumerate() {
            *slot = self.fetches_by_level[i].saturating_sub(earlier.fetches_by_level[i]);
        }
        IvStats {
            data_reads: self.data_reads.saturating_sub(earlier.data_reads),
            data_writes: self.data_writes.saturating_sub(earlier.data_writes),
            meta_reads: self.meta_reads.saturating_sub(earlier.meta_reads),
            meta_writes: self.meta_writes.saturating_sub(earlier.meta_writes),
            verifications: self.verifications.saturating_sub(earlier.verifications),
            path_len_sum: self.path_len_sum.saturating_sub(earlier.path_len_sum),
            counter_cache: self.counter_cache.since(earlier.counter_cache),
            tree_cache: self.tree_cache.since(earlier.tree_cache),
            mac_cache: self.mac_cache.since(earlier.mac_cache),
            lmm_cache: self.lmm_cache.since(earlier.lmm_cache),
            nflb: self.nflb.since(earlier.nflb),
            nfl_mem_reads: self.nfl_mem_reads.saturating_sub(earlier.nfl_mem_reads),
            nfl_mem_writes: self.nfl_mem_writes.saturating_sub(earlier.nfl_mem_writes),
            nfl_claims: self.nfl_claims.saturating_sub(earlier.nfl_claims),
            nfl_recycles: self.nfl_recycles.saturating_sub(earlier.nfl_recycles),
            hot_migrations: self.hot_migrations.saturating_sub(earlier.hot_migrations),
            hot_demotions: self.hot_demotions.saturating_sub(earlier.hot_demotions),
            alloc_failures: self.alloc_failures.saturating_sub(earlier.alloc_failures),
            fetches_by_level,
        }
    }

    /// Exports every field under `prefix` dotted paths (counters, cache
    /// ratios, and the per-level fetch distribution as a `walk_depth`
    /// histogram). Scheme-specific fields that stayed zero are skipped.
    pub fn export(&self, prefix: &str, reg: &mut StatsRegistry) {
        reg.set_counter(&format!("{prefix}.data_reads"), self.data_reads);
        reg.set_counter(&format!("{prefix}.data_writes"), self.data_writes);
        reg.set_counter(&format!("{prefix}.meta_reads"), self.meta_reads);
        reg.set_counter(&format!("{prefix}.meta_writes"), self.meta_writes);
        reg.set_counter(&format!("{prefix}.verifications"), self.verifications);
        reg.set_counter(&format!("{prefix}.path_len_sum"), self.path_len_sum);
        let ratios = [
            ("counter_cache", self.counter_cache),
            ("tree_cache", self.tree_cache),
            ("mac_cache", self.mac_cache),
            ("lmm_cache", self.lmm_cache),
            ("nflb", self.nflb),
        ];
        for (name, hm) in ratios {
            if hm.total() > 0 {
                reg.set_ratio(&format!("{prefix}.{name}"), hm);
            }
        }
        let optional = [
            ("nfl_mem_reads", self.nfl_mem_reads),
            ("nfl_mem_writes", self.nfl_mem_writes),
            ("nfl_claims", self.nfl_claims),
            ("nfl_recycles", self.nfl_recycles),
            ("hot_migrations", self.hot_migrations),
            ("hot_demotions", self.hot_demotions),
            ("alloc_failures", self.alloc_failures),
        ];
        for (name, v) in optional {
            if v > 0 {
                reg.set_counter(&format!("{prefix}.{name}"), v);
            }
        }
        if self.fetches_by_level.iter().any(|&v| v > 0) {
            reg.set_histogram(&format!("{prefix}.walk_depth"), &self.fetches_by_level);
        }
    }
}

/// An integrity-verification scheme plugged under the memory controller.
pub trait IntegritySubsystem {
    /// Handles a data access that missed the LLC. `now` is the issue cycle;
    /// the return value is the completion cycle of the *critical path* (for
    /// writes, the cycle at which the write is accepted — write-backs are
    /// not on the load-use critical path).
    fn data_access(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        block: BlockAddr,
        domain: DomainId,
        is_write: bool,
    ) -> Cycle;

    /// Handles an OS page allocation into `domain` (first touch).
    fn page_alloc(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        page: PageNum,
        domain: DomainId,
    ) -> Cycle;

    /// Handles an OS page deallocation.
    fn page_dealloc(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        page: PageNum,
        domain: DomainId,
    ) -> Cycle;

    /// Tears down a domain (frees its metadata resources).
    fn domain_destroyed(&mut self, domain: DomainId) {
        let _ = domain;
    }

    /// Scheme statistics so far. Values only ever grow; callers that need
    /// a measurement window take a snapshot and use [`IvStats::delta`]
    /// (the simulator's warmup epoch works this way — there is no reset).
    fn stats(&self) -> &IvStats;

    /// Attaches an observability handle. Schemes that trace clone it into
    /// their internals (and may cache its enabled flags); the default
    /// ignores it.
    fn attach_obs(&mut self, obs: &Obs) {
        let _ = obs;
    }

    /// Exports scheme statistics into `reg` under `prefix`. The default
    /// exports [`stats`](Self::stats) via [`IvStats::export`]; schemes
    /// with extra structure (forests, per-domain buffers) override and
    /// extend.
    fn export_stats(&self, prefix: &str, reg: &mut StatsRegistry) {
        self.stats().export(prefix, reg);
    }

    /// Human-readable scheme name (matches the paper's figure legends).
    fn name(&self) -> &'static str;
}

/// A scheme with no memory protection at all: raw DRAM accesses.
///
/// Useful as an ablation lower bound; the paper's "Baseline" is the secure
/// global-tree scheme, not this.
#[derive(Debug, Default)]
pub struct NoProtection {
    stats: IvStats,
}

impl NoProtection {
    /// Creates the scheme.
    pub fn new() -> Self {
        NoProtection::default()
    }
}

impl IntegritySubsystem for NoProtection {
    fn data_access(
        &mut self,
        now: Cycle,
        dram: &mut DramModel,
        block: BlockAddr,
        _domain: DomainId,
        is_write: bool,
    ) -> Cycle {
        if is_write {
            self.stats.data_writes += 1;
            dram.access(now, block, true);
            now + 1
        } else {
            self.stats.data_reads += 1;
            dram.access(now, block, false)
        }
    }

    fn page_alloc(
        &mut self,
        now: Cycle,
        _dram: &mut DramModel,
        _page: PageNum,
        _domain: DomainId,
    ) -> Cycle {
        now
    }

    fn page_dealloc(
        &mut self,
        now: Cycle,
        _dram: &mut DramModel,
        _page: PageNum,
        _domain: DomainId,
    ) -> Cycle {
        now
    }

    fn stats(&self) -> &IvStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "NoProtection"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_sim_core::config::SystemConfig;

    #[test]
    fn avg_path_length_handles_zero() {
        let s = IvStats::default();
        assert_eq!(s.avg_path_length(), 0.0);
    }

    #[test]
    fn delta_isolates_a_measurement_window() {
        let mut warm = IvStats {
            meta_reads: 10,
            ..IvStats::default()
        };
        warm.tree_cache.hit();
        warm.fetches_by_level[2] = 4;
        let mut end = warm;
        end.meta_reads = 25;
        end.tree_cache.hit();
        end.tree_cache.miss();
        end.fetches_by_level[2] = 9;
        let d = end.delta(&warm);
        assert_eq!(d.meta_reads, 15);
        assert_eq!((d.tree_cache.hits(), d.tree_cache.misses()), (1, 1));
        assert_eq!(d.fetches_by_level[2], 5);
        // Degenerate ordering saturates to zero.
        assert_eq!(warm.delta(&end).meta_reads, 0);
    }

    #[test]
    fn export_skips_unused_fields_and_reconciles() {
        let mut s = IvStats {
            meta_reads: 7,
            verifications: 3,
            ..IvStats::default()
        };
        s.tree_cache.hit();
        s.fetches_by_level[1] = 3;
        let mut reg = StatsRegistry::new();
        s.export("scheme", &mut reg);
        assert_eq!(reg.counter("scheme.meta_reads"), Some(7));
        assert_eq!(reg.ratio("scheme.tree_cache").map(|h| h.hits()), Some(1));
        assert!(reg.get("scheme.nflb").is_none(), "untouched ratio skipped");
        assert!(reg.get("scheme.hot_migrations").is_none());
        match reg.get("scheme.walk_depth") {
            Some(ivl_sim_core::obs::StatValue::Histogram(bins)) => assert_eq!(bins[1], 3),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn no_protection_charges_only_dram() {
        let cfg = SystemConfig::default();
        let mut dram = DramModel::new(&cfg.dram);
        let mut s = NoProtection::new();
        let d = DomainId::new_unchecked(0);
        let done = s.data_access(0, &mut dram, BlockAddr::new(0), d, false);
        assert!(done > 0);
        s.data_access(done, &mut dram, BlockAddr::new(0), d, true);
        assert_eq!(s.stats().data_reads, 1);
        assert_eq!(s.stats().data_writes, 1);
        assert_eq!(s.stats().meta_reads, 0);
        assert_eq!(s.stats().total_mem_accesses(), 2);
    }
}
