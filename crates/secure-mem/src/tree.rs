//! Functional Bonsai Merkle Tree over counter blocks.
//!
//! The tree stores real 64-bit keyed hashes (SipHash-2-4) in `arity`-slot
//! nodes laid out by [`MetadataLayout`]. A leaf slot holds the hash of one
//! counter block; an interior slot holds the hash of one child node; the
//! hash of the root node is pinned on-chip. Any modification of in-memory
//! metadata therefore breaks the chain to the on-chip root and is detected
//! on the next verification (paper Section II-B).

use std::collections::HashMap;

use ivl_crypto::siphash::{SipHasher24, SipKey};
use ivl_sim_core::addr::PageNum;

use crate::counters::CounterBlock;
use crate::layout::{MetadataLayout, NodeId};

/// Where a verification failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyError {
    /// The leaf slot does not match the counter block's hash.
    LeafMismatch {
        /// Offending page.
        page: PageNum,
    },
    /// An interior node's hash does not match its parent's slot.
    NodeMismatch {
        /// Node whose recomputed hash disagreed with the parent slot.
        node: NodeId,
    },
    /// The root node's hash does not match the on-chip root.
    RootMismatch,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::LeafMismatch { page } => {
                write!(f, "integrity tree leaf mismatch for {page}")
            }
            VerifyError::NodeMismatch { node } => write!(
                f,
                "integrity tree node mismatch at level {} index {}",
                node.level, node.index
            ),
            VerifyError::RootMismatch => write!(f, "integrity tree root mismatch"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// A functional hash tree with the on-chip root.
///
/// # Examples
///
/// ```
/// use ivl_secure_mem::{counters::CounterBlock, layout::MetadataLayout, tree::MerkleTree};
/// use ivl_sim_core::addr::PageNum;
///
/// let layout = MetadataLayout::new(64, 8);
/// let mut tree = MerkleTree::new(layout, [0u8; 16]);
/// let cb = CounterBlock::default();
/// tree.update_page(PageNum::new(3), &cb);
/// assert!(tree.verify_page(PageNum::new(3), &cb).is_ok());
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    layout: MetadataLayout,
    key: SipKey,
    /// Sparse node contents; absent nodes read as all-zero slot arrays.
    nodes: HashMap<NodeId, Box<[u64]>>,
    /// Shared all-zero slot array absent nodes borrow from, so reading a
    /// never-written node allocates nothing.
    zero_node: Box<[u64]>,
    /// On-chip copy of the root node's hash.
    root_hash: u64,
}

impl MerkleTree {
    /// Creates an empty tree for `layout` keyed with `key`.
    pub fn new(layout: MetadataLayout, key: [u8; 16]) -> Self {
        let key = SipKey::from_bytes(key);
        let zero_node = vec![0u64; layout.arity() as usize].into_boxed_slice();
        let mut tree = MerkleTree {
            layout,
            key,
            nodes: HashMap::new(),
            zero_node,
            root_hash: 0,
        };
        tree.root_hash = tree.node_hash(tree.layout.root());
        tree
    }

    /// The layout this tree was built over.
    pub fn layout(&self) -> &MetadataLayout {
        &self.layout
    }

    fn slots(&self, node: NodeId) -> &[u64] {
        match self.nodes.get(&node) {
            Some(slots) => slots,
            None => &self.zero_node,
        }
    }

    /// Keyed hash of a counter block, bound to its page.
    pub fn counter_hash(&self, page: PageNum, cb: &CounterBlock) -> u64 {
        let mut h = SipHasher24::new(self.key);
        h.write_u64(page.index());
        h.write_bytes(&cb.to_bytes());
        h.finish()
    }

    /// Keyed hash of a node's current content, bound to its position.
    pub fn node_hash(&self, node: NodeId) -> u64 {
        let mut h = SipHasher24::new(self.key);
        h.write_u64(node.level as u64);
        h.write_u64(node.index);
        for &s in self.slots(node) {
            h.write_u64(s);
        }
        h.finish()
    }

    fn set_slot(&mut self, node: NodeId, slot: usize, value: u64) {
        let arity = self.layout.arity() as usize;
        let slots = self
            .nodes
            .entry(node)
            .or_insert_with(|| vec![0; arity].into_boxed_slice());
        slots[slot] = value;
    }

    /// Records the new hash of `page`'s counter block and refreshes the
    /// path up to the on-chip root.
    pub fn update_page(&mut self, page: PageNum, cb: &CounterBlock) {
        let h = self.counter_hash(page, cb);
        let leaf = self.layout.leaf_covering(page.index());
        let slot = (page.index() % self.layout.arity()) as usize;
        self.set_slot(leaf, slot, h);

        let mut node = leaf;
        while let Some(parent) = self.layout.parent(node) {
            let nh = self.node_hash(node);
            let pslot = self.layout.slot_in_parent(node);
            self.set_slot(parent, pslot, nh);
            node = parent;
        }
        self.root_hash = self.node_hash(self.layout.root());
    }

    /// Verifies `page`'s counter block against the on-chip root.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch found while walking leaf → root.
    pub fn verify_page(&self, page: PageNum, cb: &CounterBlock) -> Result<(), VerifyError> {
        let h = self.counter_hash(page, cb);
        let leaf = self.layout.leaf_covering(page.index());
        let slot = (page.index() % self.layout.arity()) as usize;
        if self.slots(leaf)[slot] != h {
            return Err(VerifyError::LeafMismatch { page });
        }
        let mut node = leaf;
        while let Some(parent) = self.layout.parent(node) {
            let nh = self.node_hash(node);
            if self.slots(parent)[self.layout.slot_in_parent(node)] != nh {
                return Err(VerifyError::NodeMismatch { node });
            }
            node = parent;
        }
        if self.node_hash(self.layout.root()) != self.root_hash {
            return Err(VerifyError::RootMismatch);
        }
        Ok(())
    }

    /// Tampers with an in-memory node slot (attack modeling / tests).
    pub fn tamper_slot(&mut self, node: NodeId, slot: usize, xor: u64) {
        let arity = self.layout.arity() as usize;
        let slots = self
            .nodes
            .entry(node)
            .or_insert_with(|| vec![0; arity].into_boxed_slice());
        slots[slot] ^= xor;
    }

    /// Raw slot values of a node (borrowing view; absent nodes read as the
    /// shared all-zero array).
    pub fn node_slots(&self, node: NodeId) -> &[u64] {
        self.slots(node)
    }

    /// The on-chip root hash.
    pub fn root_hash(&self) -> u64 {
        self.root_hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> MerkleTree {
        MerkleTree::new(MetadataLayout::new(4096, 8), [7u8; 16])
    }

    fn cb(v: u8) -> CounterBlock {
        let mut c = CounterBlock::default();
        c.minors[0] = v;
        c
    }

    #[test]
    fn update_then_verify() {
        let mut t = tree();
        t.update_page(PageNum::new(10), &cb(1));
        assert!(t.verify_page(PageNum::new(10), &cb(1)).is_ok());
    }

    #[test]
    fn stale_counter_block_is_rejected() {
        let mut t = tree();
        t.update_page(PageNum::new(10), &cb(1));
        t.update_page(PageNum::new(10), &cb(2));
        assert_eq!(
            t.verify_page(PageNum::new(10), &cb(1)),
            Err(VerifyError::LeafMismatch {
                page: PageNum::new(10)
            })
        );
    }

    #[test]
    fn sibling_updates_do_not_break_verification() {
        let mut t = tree();
        t.update_page(PageNum::new(0), &cb(1));
        t.update_page(PageNum::new(1), &cb(2)); // same leaf node
        t.update_page(PageNum::new(100), &cb(3)); // different subtree
        assert!(t.verify_page(PageNum::new(0), &cb(1)).is_ok());
        assert!(t.verify_page(PageNum::new(1), &cb(2)).is_ok());
        assert!(t.verify_page(PageNum::new(100), &cb(3)).is_ok());
    }

    #[test]
    fn tampered_leaf_detected() {
        let mut t = tree();
        t.update_page(PageNum::new(5), &cb(1));
        let leaf = t.layout().leaf_covering(5);
        t.tamper_slot(leaf, 5, 0x1);
        assert!(matches!(
            t.verify_page(PageNum::new(5), &cb(1)),
            Err(VerifyError::LeafMismatch { .. })
        ));
    }

    #[test]
    fn tampered_interior_node_detected() {
        let mut t = tree();
        t.update_page(PageNum::new(5), &cb(1));
        let leaf = t.layout().leaf_covering(5);
        let l2 = t.layout().parent(leaf).unwrap();
        t.tamper_slot(l2, t.layout().slot_in_parent(leaf), 0xFF);
        assert!(matches!(
            t.verify_page(PageNum::new(5), &cb(1)),
            Err(VerifyError::NodeMismatch { .. })
        ));
    }

    #[test]
    fn root_hash_changes_with_updates() {
        let mut t = tree();
        let r0 = t.root_hash();
        t.update_page(PageNum::new(0), &cb(1));
        assert_ne!(t.root_hash(), r0);
    }

    #[test]
    fn keys_bind_tree_identity() {
        let layout = MetadataLayout::new(64, 8);
        let a = MerkleTree::new(layout.clone(), [1u8; 16]);
        let b = MerkleTree::new(layout, [2u8; 16]);
        assert_ne!(
            a.counter_hash(PageNum::new(0), &CounterBlock::default()),
            b.counter_hash(PageNum::new(0), &CounterBlock::default())
        );
    }

    #[test]
    fn verify_error_displays() {
        let e = VerifyError::RootMismatch;
        assert!(!format!("{e}").is_empty());
    }
}
