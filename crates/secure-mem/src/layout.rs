//! Static metadata layout of the global secure-memory design.
//!
//! Classical secure processors use a *fixed address mapping* (paper Figure 1)
//! from a data block to its counter block, MAC block, and the integrity-tree
//! node blocks on its verification path. This module computes that layout:
//!
//! ```text
//! block index space:
//! [0 .. data_blocks)                         data region
//! [ctr_base .. ctr_base + pages)             one counter block per 4 KiB page
//! [mac_base .. mac_base + data_blocks/8)     eight 8 B MACs per MAC block
//! [tree_base(l) .. )                         tree level l, bottom-up
//! ```
//!
//! Tree geometry: level 1 (leaf) nodes each cover `arity` counter blocks;
//! level `l+1` nodes each cover `arity` level-`l` nodes; the level with a
//! single node is the root, which stays on-chip.

use ivl_sim_core::addr::{BlockAddr, PageNum, BLOCKS_PER_PAGE};

/// A tree node position: `(level, index)` with level 1 = leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Tree level, 1-based from the leaves.
    pub level: u32,
    /// Node index within the level.
    pub index: u64,
}

/// Static metadata layout for a memory of `data_pages` pages protected by an
/// `arity`-ary Bonsai Merkle Tree.
///
/// # Examples
///
/// ```
/// use ivl_secure_mem::layout::MetadataLayout;
/// use ivl_sim_core::addr::PageNum;
///
/// let l = MetadataLayout::new(64, 8);
/// assert_eq!(l.levels(), 2); // 64 counter blocks → 8 leaves → 1 root
/// let ctr = l.counter_block(PageNum::new(3));
/// assert!(ctr.index() >= 64 * 64); // counters live above the data region
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetadataLayout {
    data_pages: u64,
    arity: u64,
    /// Node count per level, `level_sizes[0]` = level 1 (leaves).
    level_sizes: Vec<u64>,
    /// First block index of each tree level.
    level_bases: Vec<u64>,
    ctr_base: u64,
    mac_base: u64,
    total_blocks: u64,
}

impl MetadataLayout {
    /// Builds the layout for `data_pages` protected pages.
    ///
    /// # Panics
    ///
    /// Panics if `data_pages == 0` or `arity < 2`.
    pub fn new(data_pages: u64, arity: usize) -> Self {
        assert!(data_pages > 0, "need at least one page");
        assert!(arity >= 2, "tree arity must be at least 2");
        let arity = arity as u64;
        let data_blocks = data_pages * BLOCKS_PER_PAGE as u64;
        let ctr_base = data_blocks;
        let counter_blocks = data_pages; // one 64 B split-counter block per page
        let mac_base = ctr_base + counter_blocks;
        let mac_blocks = data_blocks.div_ceil(8); // eight 8 B MACs per block
        let mut level_sizes = Vec::new();
        let mut level_bases = Vec::new();
        let mut next_base = mac_base + mac_blocks;
        let mut nodes = counter_blocks.div_ceil(arity);
        loop {
            level_sizes.push(nodes);
            level_bases.push(next_base);
            next_base += nodes;
            if nodes == 1 {
                break;
            }
            nodes = nodes.div_ceil(arity);
        }
        MetadataLayout {
            data_pages,
            arity,
            level_sizes,
            level_bases,
            ctr_base,
            mac_base,
            total_blocks: next_base,
        }
    }

    /// Number of tree levels (root included).
    pub fn levels(&self) -> u32 {
        self.level_sizes.len() as u32
    }

    /// Tree arity.
    pub fn arity(&self) -> u64 {
        self.arity
    }

    /// Number of protected pages.
    pub fn data_pages(&self) -> u64 {
        self.data_pages
    }

    /// Number of nodes at `level` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `level` is out of range.
    pub fn level_size(&self, level: u32) -> u64 {
        self.level_sizes[(level - 1) as usize]
    }

    /// The counter block of `page`.
    pub fn counter_block(&self, page: PageNum) -> BlockAddr {
        debug_assert!(page.index() < self.data_pages);
        BlockAddr::new(self.ctr_base + page.index())
    }

    /// The MAC block holding the MAC of data block `block`.
    pub fn mac_block(&self, block: BlockAddr) -> BlockAddr {
        BlockAddr::new(self.mac_base + block.index() / 8)
    }

    /// The block address of tree node `node`.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range.
    pub fn node_block(&self, node: NodeId) -> BlockAddr {
        let l = (node.level - 1) as usize;
        assert!(node.index < self.level_sizes[l], "node out of range");
        BlockAddr::new(self.level_bases[l] + node.index)
    }

    /// The leaf (level-1) node covering counter block index `ctr_idx`
    /// (i.e. page `ctr_idx`).
    pub fn leaf_covering(&self, ctr_idx: u64) -> NodeId {
        NodeId {
            level: 1,
            index: ctr_idx / self.arity,
        }
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        if node.level >= self.levels() {
            None
        } else {
            Some(NodeId {
                level: node.level + 1,
                index: node.index / self.arity,
            })
        }
    }

    /// The slot within the parent node that holds `node`'s hash.
    pub fn slot_in_parent(&self, node: NodeId) -> usize {
        (node.index % self.arity) as usize
    }

    /// The verification path of page `page`: leaf to root, inclusive.
    pub fn path_to_root(&self, page: PageNum) -> Vec<NodeId> {
        let mut path = vec![self.leaf_covering(page.index())];
        while let Some(parent) = self.parent(*path.last().expect("nonempty")) {
            path.push(parent);
        }
        path
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        NodeId {
            level: self.levels(),
            index: 0,
        }
    }

    /// Total block-index footprint (data + all metadata).
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Fraction of total storage consumed by tree metadata.
    pub fn tree_overhead(&self) -> f64 {
        let tree_blocks: u64 = self.level_sizes.iter().sum();
        tree_blocks as f64 / (self.data_pages * BLOCKS_PER_PAGE as u64) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_counts_power_of_arity() {
        // 4096 pages, arity 8: 4096 ctr blocks → 512, 64, 8, 1 ⇒ 4 levels.
        let l = MetadataLayout::new(4096, 8);
        assert_eq!(l.levels(), 4);
        assert_eq!(l.level_size(1), 512);
        assert_eq!(l.level_size(4), 1);
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = MetadataLayout::new(128, 8);
        let data_top = 128 * BLOCKS_PER_PAGE as u64;
        let ctr = l.counter_block(PageNum::new(0)).index();
        assert!(ctr >= data_top);
        let mac = l.mac_block(BlockAddr::new(0)).index();
        assert!(mac > ctr);
        let leaf = l.node_block(NodeId { level: 1, index: 0 }).index();
        assert!(leaf > mac);
        let root = l.node_block(l.root()).index();
        assert!(root >= leaf);
        assert!(root < l.total_blocks());
    }

    #[test]
    fn path_walks_to_root() {
        let l = MetadataLayout::new(4096, 8);
        let path = l.path_to_root(PageNum::new(4095));
        assert_eq!(path.len(), 4);
        assert_eq!(path[0].level, 1);
        assert_eq!(path.last().unwrap(), &l.root());
        for pair in path.windows(2) {
            assert_eq!(l.parent(pair[0]), Some(pair[1]));
        }
    }

    #[test]
    fn siblings_share_parents() {
        let l = MetadataLayout::new(4096, 8);
        // Pages 0..64 share a leaf? No: leaf covers 8 counter blocks = 8 pages.
        let a = l.leaf_covering(0);
        let b = l.leaf_covering(7);
        let c = l.leaf_covering(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(l.parent(a), l.parent(c)); // 64 pages share a level-2 node
    }

    #[test]
    fn slot_in_parent_cycles_mod_arity() {
        let l = MetadataLayout::new(4096, 8);
        for i in 0..16 {
            let n = NodeId { level: 1, index: i };
            assert_eq!(l.slot_in_parent(n), (i % 8) as usize);
        }
    }

    #[test]
    fn non_power_of_arity_page_count() {
        let l = MetadataLayout::new(100, 8);
        // 100 ctr blocks → 13 leaves → 2 → 1.
        assert_eq!(l.levels(), 3);
        assert_eq!(l.level_size(1), 13);
        assert_eq!(l.level_size(2), 2);
        assert_eq!(l.level_size(3), 1);
    }

    #[test]
    fn tree_overhead_is_small() {
        let l = MetadataLayout::new(1 << 20, 8); // 4 GiB
        assert!(l.tree_overhead() < 0.01);
        assert!(l.tree_overhead() > 0.0);
    }

    #[test]
    fn thirty_two_gib_has_eight_levels() {
        // 8 Mi pages (32 GiB): 8M ctr blocks → 1M, 128K, 16K, 2K, 256, 32, 4, 1
        let l = MetadataLayout::new(8 * 1024 * 1024, 8);
        assert_eq!(l.levels(), 8);
    }
}
