//! Functional secure memory: real ciphertext, MACs and integrity tree.
//!
//! [`SecureMemory`] behaves like the off-chip memory of a secure processor:
//! every 64 B block write encrypts with a fresh counter, stores a MAC bound
//! to (address, counter, ciphertext) and refreshes the Bonsai Merkle Tree;
//! every read verifies the MAC and the tree path before decrypting. The
//! tamper API mutates the underlying stores the way a physical attacker
//! would (spoofing, splicing, replay), letting tests assert that each attack
//! class is detected.

use std::collections::HashMap;

use ivl_crypto::ctr::CtrEngine;
use ivl_crypto::mac::MacEngine;
use ivl_sim_core::addr::{BlockAddr, PageNum};

use crate::counters::{CounterStore, MINOR_LIMIT};
use crate::layout::MetadataLayout;
use crate::tree::{MerkleTree, VerifyError};

/// Why a secure-memory read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityError {
    /// The block was never written (no ciphertext to verify).
    NotPresent,
    /// MAC verification failed: data spoofing or splicing.
    MacMismatch,
    /// Integrity-tree verification failed: replay or metadata tampering.
    Tree(VerifyError),
    /// The address lies outside the protected region.
    OutOfRange,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::NotPresent => write!(f, "block was never written"),
            IntegrityError::MacMismatch => write!(f, "MAC verification failed"),
            IntegrityError::Tree(e) => write!(f, "integrity tree verification failed: {e}"),
            IntegrityError::OutOfRange => write!(f, "address outside protected memory"),
        }
    }
}

impl std::error::Error for IntegrityError {}

impl From<VerifyError> for IntegrityError {
    fn from(e: VerifyError) -> Self {
        IntegrityError::Tree(e)
    }
}

/// Snapshot of one block's off-chip state, for modeling replay attacks.
#[derive(Debug, Clone)]
pub struct BlockSnapshot {
    block: BlockAddr,
    ciphertext: Option<[u8; 64]>,
    mac: Option<u64>,
    counter_block: crate::counters::CounterBlock,
}

/// A functionally correct secure memory.
///
/// # Examples
///
/// ```
/// use ivl_secure_mem::functional::SecureMemory;
/// use ivl_sim_core::addr::BlockAddr;
///
/// let mut mem = SecureMemory::new(16, [1u8; 16], [2u8; 16], [3u8; 16]);
/// mem.write_block(BlockAddr::new(0), &[7u8; 64]).unwrap();
/// assert_eq!(mem.read_block(BlockAddr::new(0)).unwrap(), [7u8; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct SecureMemory {
    layout: MetadataLayout,
    enc: CtrEngine,
    mac: MacEngine,
    counters: CounterStore,
    tree: MerkleTree,
    /// Off-chip ciphertext per data block.
    data: HashMap<BlockAddr, [u8; 64]>,
    /// Off-chip MAC per data block.
    macs: HashMap<BlockAddr, u64>,
    /// Page re-encryptions caused by minor-counter overflow.
    page_reencryptions: u64,
}

impl SecureMemory {
    /// Creates a secure memory protecting `pages` pages with the three
    /// processor keys (encryption, MAC, tree).
    pub fn new(pages: u64, enc_key: [u8; 16], mac_key: [u8; 16], tree_key: [u8; 16]) -> Self {
        let layout = MetadataLayout::new(pages, 8);
        SecureMemory {
            tree: MerkleTree::new(layout.clone(), tree_key),
            layout,
            enc: CtrEngine::new(enc_key),
            mac: MacEngine::new(mac_key),
            counters: CounterStore::new(),
            data: HashMap::new(),
            macs: HashMap::new(),
            page_reencryptions: 0,
        }
    }

    /// The metadata layout in use.
    pub fn layout(&self) -> &MetadataLayout {
        &self.layout
    }

    /// Number of page re-encryptions triggered by counter overflow.
    pub fn page_reencryptions(&self) -> u64 {
        self.page_reencryptions
    }

    fn check_range(&self, block: BlockAddr) -> Result<(), IntegrityError> {
        if block.page().index() < self.layout.data_pages() {
            Ok(())
        } else {
            Err(IntegrityError::OutOfRange)
        }
    }

    /// Writes one 64 B block.
    ///
    /// # Errors
    ///
    /// Returns [`IntegrityError::OutOfRange`] for addresses outside the
    /// protected region, or a verification error if a minor-counter overflow
    /// forces a page re-encryption and an existing block of the page fails
    /// its own read-back verification.
    pub fn write_block(
        &mut self,
        block: BlockAddr,
        plaintext: &[u8; 64],
    ) -> Result<(), IntegrityError> {
        self.check_range(block)?;
        let page = block.page();

        // A minor overflow resets every minor on the page, so all existing
        // blocks must be decrypted under their old counters first.
        let will_overflow =
            self.counters.block_of(page).minors[block.page_offset()] as u64 + 1 >= MINOR_LIMIT;
        let mut reencrypt: Vec<(BlockAddr, [u8; 64])> = Vec::new();
        if will_overflow {
            for b in page.blocks() {
                if b != block && self.data.contains_key(&b) {
                    let pt = self.read_block(b)?;
                    reencrypt.push((b, pt));
                }
            }
        }

        let outcome = self.counters.increment(block);
        if outcome.page_reencryption {
            self.page_reencryptions += 1;
            for (b, pt) in reencrypt {
                let ctr = self.counters.counter_of(b);
                let mut ct = pt;
                self.enc.encrypt_block(b.index(), ctr, &mut ct);
                self.macs.insert(b, self.mac.data_mac(b.index(), ctr, &ct));
                self.data.insert(b, ct);
            }
        }

        let mut ct = *plaintext;
        self.enc
            .encrypt_block(block.index(), outcome.counter, &mut ct);
        self.macs.insert(
            block,
            self.mac.data_mac(block.index(), outcome.counter, &ct),
        );
        self.data.insert(block, ct);
        self.tree.update_page(page, &self.counters.block_of(page));
        Ok(())
    }

    /// Reads and verifies one 64 B block.
    ///
    /// # Errors
    ///
    /// * [`IntegrityError::NotPresent`] if the block was never written;
    /// * [`IntegrityError::MacMismatch`] on spoofing/splicing;
    /// * [`IntegrityError::Tree`] on replay or metadata tampering.
    pub fn read_block(&self, block: BlockAddr) -> Result<[u8; 64], IntegrityError> {
        self.check_range(block)?;
        let ct = self.data.get(&block).ok_or(IntegrityError::NotPresent)?;
        let tag = self.macs.get(&block).ok_or(IntegrityError::NotPresent)?;
        let page = block.page();
        let counter_block = self.counters.block_of(page);
        let counter = counter_block.logical(block.page_offset());

        if !self.mac.verify_data(block.index(), counter, ct, *tag) {
            return Err(IntegrityError::MacMismatch);
        }
        self.tree.verify_page(page, &counter_block)?;

        let mut pt = *ct;
        self.enc.decrypt_block(block.index(), counter, &mut pt);
        Ok(pt)
    }

    /// Deallocates a page: data, MACs and counters are forgotten and the
    /// tree records the scrubbed counter block.
    pub fn dealloc_page(&mut self, page: PageNum) {
        for b in page.blocks() {
            self.data.remove(&b);
            self.macs.remove(&b);
        }
        self.counters.forget_page(page);
        self.tree.update_page(page, &self.counters.block_of(page));
    }

    // ------------------------------------------------------------------
    // Tamper API (physical-attacker modeling)
    // ------------------------------------------------------------------

    /// Flips bits of the stored ciphertext (data spoofing).
    pub fn corrupt_data(&mut self, block: BlockAddr, byte: usize, xor: u8) {
        if let Some(ct) = self.data.get_mut(&block) {
            ct[byte % 64] ^= xor;
        }
    }

    /// Copies ciphertext + MAC from `src` to `dst` (splicing).
    pub fn splice(&mut self, src: BlockAddr, dst: BlockAddr) {
        if let (Some(ct), Some(tag)) = (self.data.get(&src).copied(), self.macs.get(&src).copied())
        {
            self.data.insert(dst, ct);
            self.macs.insert(dst, tag);
        }
    }

    /// Snapshots a block's off-chip state (ciphertext, MAC, counter block).
    pub fn snapshot_block(&self, block: BlockAddr) -> BlockSnapshot {
        BlockSnapshot {
            block,
            ciphertext: self.data.get(&block).copied(),
            mac: self.macs.get(&block).copied(),
            counter_block: self.counters.block_of(block.page()),
        }
    }

    /// Restores a previously snapshotted state — a *replay attack*. The
    /// attacker controls all off-chip state (data, MAC **and** the
    /// in-memory counter block), but not the on-chip tree root.
    pub fn replay_block(&mut self, snapshot: &BlockSnapshot) {
        let block = snapshot.block;
        match snapshot.ciphertext {
            Some(ct) => {
                self.data.insert(block, ct);
            }
            None => {
                self.data.remove(&block);
            }
        }
        match snapshot.mac {
            Some(tag) => {
                self.macs.insert(block, tag);
            }
            None => {
                self.macs.remove(&block);
            }
        }
        // Restore the off-chip counter block as well: counters live in
        // memory too. The integrity tree (leaf hash chained to the on-chip
        // root) is exactly what makes this detectable.
        self.counters
            .set_block(block.page(), snapshot.counter_block.clone());
    }

    /// Direct access to the tree for metadata-tampering tests.
    pub fn tree_mut(&mut self) -> &mut MerkleTree {
        &mut self.tree
    }

    /// Read-only access to the tree.
    pub fn tree(&self) -> &MerkleTree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> SecureMemory {
        SecureMemory::new(64, [1u8; 16], [2u8; 16], [3u8; 16])
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = mem();
        let b = BlockAddr::new(10);
        m.write_block(b, &[0x42u8; 64]).unwrap();
        assert_eq!(m.read_block(b).unwrap(), [0x42u8; 64]);
    }

    #[test]
    fn unwritten_block_not_present() {
        let m = mem();
        assert_eq!(
            m.read_block(BlockAddr::new(0)),
            Err(IntegrityError::NotPresent)
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = mem();
        let beyond = PageNum::new(64).block(0);
        assert_eq!(
            m.write_block(beyond, &[0u8; 64]),
            Err(IntegrityError::OutOfRange)
        );
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut m = mem();
        let b = BlockAddr::new(3);
        m.write_block(b, &[0x11u8; 64]).unwrap();
        assert_ne!(m.data[&b], [0x11u8; 64]);
    }

    #[test]
    fn spoofing_detected() {
        let mut m = mem();
        let b = BlockAddr::new(1);
        m.write_block(b, &[9u8; 64]).unwrap();
        m.corrupt_data(b, 5, 0x80);
        assert_eq!(m.read_block(b), Err(IntegrityError::MacMismatch));
    }

    #[test]
    fn splicing_detected() {
        let mut m = mem();
        let a = BlockAddr::new(1);
        let b = BlockAddr::new(2);
        m.write_block(a, &[1u8; 64]).unwrap();
        m.write_block(b, &[2u8; 64]).unwrap();
        m.splice(a, b);
        assert_eq!(m.read_block(b), Err(IntegrityError::MacMismatch));
    }

    #[test]
    fn replay_detected_by_tree() {
        let mut m = mem();
        let b = BlockAddr::new(1);
        m.write_block(b, &[1u8; 64]).unwrap();
        let snap = m.snapshot_block(b);
        m.write_block(b, &[2u8; 64]).unwrap();
        m.replay_block(&snap);
        // MAC over the stale triple is internally consistent, but the tree
        // leaf no longer matches the on-chip root chain.
        let err = m.read_block(b).unwrap_err();
        assert!(matches!(err, IntegrityError::Tree(_)), "got {err:?}");
    }

    #[test]
    fn tree_node_tamper_detected() {
        let mut m = mem();
        let b = BlockAddr::new(1);
        m.write_block(b, &[1u8; 64]).unwrap();
        let leaf = m.tree().layout().leaf_covering(b.page().index());
        m.tree_mut().tamper_slot(leaf, 0, 0xDEAD);
        assert!(matches!(m.read_block(b), Err(IntegrityError::Tree(_))));
    }

    #[test]
    fn overflow_reencrypts_page_and_preserves_content() {
        let mut m = mem();
        let page = PageNum::new(0);
        let a = page.block(0);
        let sibling = page.block(1);
        m.write_block(sibling, &[0x77u8; 64]).unwrap();
        for i in 0..(MINOR_LIMIT + 2) {
            m.write_block(a, &[i as u8; 64]).unwrap();
        }
        assert!(m.page_reencryptions() >= 1);
        assert_eq!(m.read_block(sibling).unwrap(), [0x77u8; 64]);
        assert_eq!(m.read_block(a).unwrap(), [(MINOR_LIMIT + 1) as u8; 64]);
    }

    #[test]
    fn dealloc_forgets_data() {
        let mut m = mem();
        let page = PageNum::new(2);
        m.write_block(page.block(0), &[5u8; 64]).unwrap();
        m.dealloc_page(page);
        assert_eq!(m.read_block(page.block(0)), Err(IntegrityError::NotPresent));
        // Fresh allocation works again.
        m.write_block(page.block(0), &[6u8; 64]).unwrap();
        assert_eq!(m.read_block(page.block(0)).unwrap(), [6u8; 64]);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            IntegrityError::NotPresent,
            IntegrityError::MacMismatch,
            IntegrityError::OutOfRange,
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }
}
