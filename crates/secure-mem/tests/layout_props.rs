//! Property tests on the static metadata layout: regions never overlap and
//! verification paths are structurally sound for arbitrary memory sizes.

use ivl_secure_mem::layout::MetadataLayout;
use ivl_sim_core::addr::{BlockAddr, PageNum, BLOCKS_PER_PAGE};
use ivl_testkit::prelude::*;

props! {
    #[test]
    fn metadata_regions_disjoint(pages in 1u64..200_000, arity in 2usize..17) {
        let l = MetadataLayout::new(pages, arity);
        let data_top = pages * BLOCKS_PER_PAGE as u64;
        // Counters above data, MACs above counters, tree above MACs.
        let ctr0 = l.counter_block(PageNum::new(0)).index();
        let ctr_top = l.counter_block(PageNum::new(pages - 1)).index();
        prop_assert!(ctr0 >= data_top);
        let mac0 = l.mac_block(BlockAddr::new(0)).index();
        let mac_top = l.mac_block(BlockAddr::new(data_top - 1)).index();
        prop_assert!(mac0 > ctr_top);
        let leaf = l.node_block(l.leaf_covering(0)).index();
        prop_assert!(leaf > mac_top);
        prop_assert!(l.node_block(l.root()).index() < l.total_blocks());
    }

    #[test]
    fn path_is_monotone_and_rooted(pages in 1u64..200_000, arity in 2usize..17, p in any::<u64>()) {
        let l = MetadataLayout::new(pages, arity);
        let page = PageNum::new(p % pages);
        let path = l.path_to_root(page);
        prop_assert_eq!(path.len() as u32, l.levels());
        for w in path.windows(2) {
            prop_assert_eq!(l.parent(w[0]), Some(w[1]));
            prop_assert!(w[1].level == w[0].level + 1);
        }
        prop_assert_eq!(*path.last().unwrap(), l.root());
    }

    #[test]
    fn pages_sharing_a_leaf_are_arity_adjacent(pages in 100u64..50_000, arity in 2usize..17) {
        let l = MetadataLayout::new(pages, arity);
        let a = l.leaf_covering(0);
        let b = l.leaf_covering(arity as u64 - 1);
        let c = l.leaf_covering(arity as u64);
        prop_assert_eq!(a, b);
        prop_assert!(a != c);
    }
}
