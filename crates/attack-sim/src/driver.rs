//! Programmable attacker/victim driver over any integrity scheme.
//!
//! The original MetaLeak reproduction hardcoded one Evict+Reload loop
//! against two schemes. This module factors the scheme-facing machinery
//! out into a reusable [`SchemeDriver`] so *any* access program — the
//! scripted RSA attack in [`crate::run_attack`] as well as the randomized
//! programs of the leak-search fuzzer (`crates/leakfuzz`) — can drive any
//! [`SchemeKind`] through the same primitives:
//!
//! * [`page_alloc`](SchemeDriver::page_alloc) / [`access_block`](SchemeDriver::access_block)
//!   — OS allocation and data traffic with explicit inter-op gaps;
//! * [`evict_page_meta`](SchemeDriver::evict_page_meta) — a successful
//!   conflict-eviction campaign against one page's metadata (counter block
//!   plus tree path: leaf and level-2 under the global tree, the full
//!   intra-TreeLing path under IvLeague);
//! * [`probe`](SchemeDriver::probe) — a timed attacker reload, optionally
//!   emitted as an [`EventKind::Probe`] trace observation;
//! * [`reset_dram`](SchemeDriver::reset_dram) — rebuilds the DRAM model
//!   from its configuration, discarding bank/row-buffer residue. Harnesses
//!   that isolate the *metadata* timing channel (the channel IvLeague
//!   closes) call this between the victim phase and the probe phase so
//!   shared row-buffer state — a real but orthogonal channel, out of the
//!   paper's threat model — cannot masquerade as a metadata leak.
//!
//! The driver owns the scheme instance, the DRAM model, and the cycle
//! cursor, so callers describe *what* the attacker and victim do, not how
//! the models are threaded.

use ivl_dram::DramModel;
use ivl_sim_core::addr::{BlockAddr, PageNum};
use ivl_sim_core::config::{DramConfig, SystemConfig};
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::obs::{EventKind, Obs};
use ivl_sim_core::Cycle;
use ivl_simulator::system::{SchemeInstance, SchemeKind};

/// Idle gap inserted after every timed probe (matches the scripted
/// attack's pacing: the attacker cannot re-probe back-to-back).
pub const PROBE_GAP: Cycle = 500;

/// A scheme instance plus the shared machinery an attacker/victim program
/// needs to drive it.
///
/// # Examples
///
/// ```
/// use ivl_attack::driver::SchemeDriver;
/// use ivl_sim_core::{addr::PageNum, config::SystemConfig, domain::DomainId};
/// use ivl_simulator::SchemeKind;
///
/// let cfg = SystemConfig::default();
/// let mut drv = SchemeDriver::new(SchemeKind::IvPro, &cfg);
/// let victim = DomainId::new_unchecked(1);
/// let page = PageNum::new(4096);
/// drv.page_alloc(page, victim, 100);
/// let done = drv.access_block(page.block(0), victim, true, 100);
/// assert!(done > 0);
/// ```
#[derive(Debug)]
pub struct SchemeDriver {
    kind: SchemeKind,
    scheme: SchemeInstance,
    dram: DramModel,
    dram_cfg: DramConfig,
    obs: Obs,
    /// Current cycle cursor; methods advance it past their completion
    /// time plus the caller-chosen gap.
    pub now: Cycle,
}

impl SchemeDriver {
    /// Builds the scheme and its DRAM model with observability disabled.
    pub fn new(kind: SchemeKind, cfg: &SystemConfig) -> Self {
        SchemeDriver::with_obs(kind, cfg, &Obs::disabled())
    }

    /// Builds the scheme and its DRAM model, attaching `obs` to both.
    pub fn with_obs(kind: SchemeKind, cfg: &SystemConfig, obs: &Obs) -> Self {
        let mut scheme = kind.build(cfg);
        scheme.as_subsystem().attach_obs(obs);
        let mut dram = DramModel::new(&cfg.dram);
        dram.set_obs(obs.clone());
        SchemeDriver {
            kind,
            scheme,
            dram,
            dram_cfg: cfg.dram,
            obs: obs.clone(),
            now: 0,
        }
    }

    /// The scheme this driver runs.
    pub fn kind(&self) -> SchemeKind {
        self.kind
    }

    /// Read access to the scheme instance (forensics, stats).
    pub fn scheme(&self) -> &SchemeInstance {
        &self.scheme
    }

    /// OS page allocation into `domain`; advances the cursor past the
    /// allocation plus `gap` cycles.
    pub fn page_alloc(&mut self, page: PageNum, domain: DomainId, gap: Cycle) {
        self.now = self
            .scheme
            .as_subsystem()
            .page_alloc(self.now, &mut self.dram, page, domain)
            + gap;
    }

    /// One data access (LLC miss) by `domain`; returns the completion
    /// cycle and advances the cursor to it plus `gap`.
    pub fn access_block(
        &mut self,
        block: BlockAddr,
        domain: DomainId,
        is_write: bool,
        gap: Cycle,
    ) -> Cycle {
        let done = self.scheme.as_subsystem().data_access(
            self.now,
            &mut self.dram,
            block,
            domain,
            is_write,
        );
        self.now = done + gap;
        done
    }

    /// Models a successful attacker eviction of `page`'s metadata from the
    /// shared caches: the counter block plus the tree path the page
    /// verifies through (leaf and the shared level-2 node under the global
    /// tree — paper Figure 2b ❶ — or the page's whole intra-TreeLing path
    /// under IvLeague). A no-op for `NoProtection`.
    pub fn evict_page_meta(&mut self, page: PageNum) {
        match &mut self.scheme {
            SchemeInstance::Baseline(s) => {
                s.evict_counter_block(page);
                let mut node = s.layout().leaf_covering(page.index());
                // Evict leaf and level-2 (the attacker-shareable node).
                for _ in 0..2 {
                    let nb = s.layout().node_block(node);
                    s.evict_tree_block(nb);
                    node = s.layout().parent(node).expect("below root");
                }
            }
            SchemeInstance::Iv(s) => {
                s.evict_counter_block(page);
                for nb in s.path_blocks(page) {
                    s.evict_tree_block(nb);
                }
            }
            SchemeInstance::None(_) => {}
        }
    }

    /// One timed attacker reload of `page`'s first block: returns the
    /// observed latency and advances the cursor by [`PROBE_GAP`]. When
    /// `emit` is set and tracing is live, the observation lands in the
    /// trace as an [`EventKind::Probe`] record tagged with `bit`.
    pub fn probe(&mut self, page: PageNum, attacker: DomainId, bit: u32, emit: bool) -> Cycle {
        let start = self.now;
        let done = self.scheme.as_subsystem().data_access(
            start,
            &mut self.dram,
            page.block(0),
            attacker,
            false,
        );
        self.now = done + PROBE_GAP;
        let latency = done - start;
        if emit && self.obs.tracer.enabled() {
            self.obs.tracer.emit(
                start,
                "attacker",
                Some(attacker),
                None,
                EventKind::Probe { bit, latency },
            );
        }
        latency
    }

    /// Rebuilds the DRAM model from its configuration: every bank forgets
    /// its open row and busy-until time. Scheme-side state (metadata
    /// caches, NFL, trackers) is untouched — exactly the separation a
    /// metadata-channel distinguisher needs.
    pub fn reset_dram(&mut self) {
        self.dram = DramModel::new(&self.dram_cfg);
        self.dram.set_obs(self.obs.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_runs_every_scheme() {
        let cfg = SystemConfig::default();
        let d = DomainId::new_unchecked(1);
        let page = PageNum::new(9_000);
        for kind in SchemeKind::ALL {
            let mut drv = SchemeDriver::new(kind, &cfg);
            drv.page_alloc(page, d, 100);
            let done = drv.access_block(page.block(0), d, true, 100);
            assert!(done > 0, "{kind:?}");
            drv.evict_page_meta(page);
            let lat = drv.probe(page, d, 0, false);
            assert!(lat > 0, "{kind:?}");
            assert!(drv.now > done, "{kind:?}");
        }
    }

    #[test]
    fn eviction_slows_the_next_probe() {
        let cfg = SystemConfig::default();
        let d = DomainId::new_unchecked(1);
        let page = PageNum::new(77);
        for kind in [SchemeKind::Baseline, SchemeKind::IvPro] {
            let mut drv = SchemeDriver::new(kind, &cfg);
            drv.page_alloc(page, d, 100);
            drv.access_block(page.block(0), d, true, 100);
            // Warm probe: metadata cached.
            let warm = drv.probe(page, d, 0, false);
            drv.evict_page_meta(page);
            drv.reset_dram();
            let cold = drv.probe(page, d, 0, false);
            assert!(
                cold > warm,
                "{kind:?}: cold {cold} should exceed warm {warm}"
            );
        }
    }

    /// Drives the Insecure scheme (pure DRAM, no metadata state) so probe
    /// latency reflects only DRAM bank/row residue.
    fn insecure_probe_after(cross_traffic: bool, reset: bool) -> Cycle {
        let cfg = SystemConfig::default();
        let d = DomainId::new_unchecked(1);
        let page = PageNum::new(123);
        let mut drv = SchemeDriver::new(SchemeKind::Insecure, &cfg);
        drv.page_alloc(page, d, 100);
        drv.access_block(page.block(0), d, true, 100);
        if cross_traffic {
            // A burst of far-away accesses — "victim" traffic the probe
            // should not be able to see once DRAM state is normalized.
            for i in 0..32u64 {
                let far = PageNum::new(700_000 + i * 1_024);
                drv.access_block(far.block(0), d, false, 10);
            }
        }
        if reset {
            drv.reset_dram();
        }
        drv.probe(page, d, 0, false)
    }

    #[test]
    fn reset_dram_erases_cross_traffic_residue() {
        let clean = insecure_probe_after(false, true);
        let with_residue_reset = insecure_probe_after(true, true);
        assert_eq!(
            clean, with_residue_reset,
            "normalized DRAM must hide cross-domain bank/row residue"
        );
    }
}
