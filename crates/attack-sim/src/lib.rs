//! The metadata side-channel attack of paper §IV (MetaLeak-style
//! Evict+Reload over shared integrity-tree nodes) — and its defeat by
//! IvLeague.
//!
//! The attacker targets the square-and-multiply RSA victim: per exponent
//! bit the victim always touches its `sqr` code page and touches the `mul`
//! page only for set bits. Under a **global** integrity tree, the attacker
//! picks own pages `P¹ₐ`/`P²ₐ` that share a level-2 tree node with the
//! victim's `sqr`/`mul` pages, evicts the shared node (plus the counter
//! blocks that would short-circuit the walk), lets the victim step one bit,
//! and times its own access: a short latency means the victim's
//! verification already re-fetched the shared node — the bit leaks.
//!
//! Under **IvLeague** the victim's verification path lies entirely inside
//! the victim's own TreeLings, so no attacker page can share a node and the
//! timing observation carries no signal: recovery accuracy collapses to
//! coin-flipping.
//!
//! # Examples
//!
//! ```
//! use ivl_attack::{run_attack, AttackConfig, TargetScheme};
//!
//! let cfg = AttackConfig { bits: 64, noise: 0.0, seed: 1 };
//! let leak = run_attack(TargetScheme::GlobalTree, &cfg);
//! assert!(leak.accuracy > 0.95);
//! let safe = run_attack(TargetScheme::IvLeague, &cfg);
//! assert!(safe.accuracy < 0.75);
//! ```

pub mod driver;

use ivl_sim_core::addr::PageNum;
use ivl_sim_core::config::SystemConfig;
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::obs::Obs;
use ivl_sim_core::rng::Xoshiro256;
use ivl_sim_core::Cycle;
use ivl_simulator::system::SchemeKind;
use ivl_workloads::rsa::SquareMultiplyVictim;

use crate::driver::SchemeDriver;

/// Which integrity scheme the attack runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetScheme {
    /// The shared global Bonsai Merkle Tree (vulnerable).
    GlobalTree,
    /// IvLeague (isolated TreeLings; any variant behaves identically for
    /// the attack — Basic is used).
    IvLeague,
}

impl TargetScheme {
    /// The simulator scheme this target maps to.
    pub fn scheme_kind(self) -> SchemeKind {
        match self {
            TargetScheme::GlobalTree => SchemeKind::Baseline,
            TargetScheme::IvLeague => SchemeKind::IvBasic,
        }
    }
}

/// Attack parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackConfig {
    /// Exponent bits to recover (the paper uses 2048).
    pub bits: usize,
    /// Probability that one observation round is spoiled by system noise
    /// (failed eviction / interfering prefetch).
    pub noise: f64,
    /// RNG seed (exponent + noise).
    pub seed: u64,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            bits: 2048,
            noise: 0.17,
            seed: 0xA77AC4,
        }
    }
}

/// One per-bit observation (the Figure 3 trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySample {
    /// Bit index.
    pub bit: usize,
    /// Attacker-observed latency reloading `P¹ₐ` (sqr probe), cycles.
    pub p1_latency: Cycle,
    /// Attacker-observed latency reloading `P²ₐ` (mul probe), cycles.
    pub p2_latency: Cycle,
    /// Ground-truth bit.
    pub truth: bool,
    /// The attacker's guess.
    pub guess: bool,
}

/// Attack outcome.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// Per-bit latency trace.
    pub samples: Vec<LatencySample>,
    /// Fraction of exponent bits recovered correctly.
    pub accuracy: f64,
    /// The latency threshold the attacker calibrated.
    pub threshold: Cycle,
}

/// Victim/attacker page placement: the attacker page shares the victim
/// page's level-2 tree node (same 64-page group) but not its leaf (different
/// 8-page group).
pub fn colocated_attacker_page(victim: PageNum) -> PageNum {
    let group = victim.index() / 64;
    let candidate = group * 64 + ((victim.index() % 64) + 8) % 64;
    PageNum::new(candidate)
}

/// The eviction step: flush the shared level-2 node, the leaves below it,
/// and the counter blocks of all involved pages (paper Figure 2b ❶).
fn evict(drv: &mut SchemeDriver, pages: &[PageNum]) {
    for &page in pages {
        drv.evict_page_meta(page);
    }
}

/// Runs the end-to-end attack.
pub fn run_attack(target: TargetScheme, cfg: &AttackConfig) -> AttackResult {
    run_attack_with_obs(target, cfg, &Obs::disabled())
}

/// Runs the end-to-end attack while emitting attacker [`EventKind::Probe`]
/// observations (and the target scheme's own events) through `obs`. The
/// forensics helper
/// [`probe_observations`](ivl_sim_core::obs::trace::probe_observations)
/// reconstructs exactly the attacker's timing view from the resulting
/// trace.
pub fn run_attack_with_obs(target: TargetScheme, cfg: &AttackConfig, obs: &Obs) -> AttackResult {
    let sys = SystemConfig::default();
    let mut rng = Xoshiro256::seed_from(cfg.seed);

    let victim_domain = DomainId::new_unchecked(1);
    let attacker_domain = DomainId::new_unchecked(2);

    // Victim pages sit in one level-2 sharing group region; attacker pages
    // are chosen to share the level-2 node (useful only under GlobalTree).
    let sqr_page = PageNum::new(1_000_000);
    let mul_page = PageNum::new(1_000_128); // a different level-2 group
    let p1a = colocated_attacker_page(sqr_page);
    let p2a = colocated_attacker_page(mul_page);

    let victim = SquareMultiplyVictim::random(cfg.bits, sqr_page, mul_page, cfg.seed ^ 0x5EC);

    let mut drv = SchemeDriver::with_obs(target.scheme_kind(), &sys, obs);

    // Touch all pages once so IvLeague maps them (the OS has allocated the
    // victim's enclave pages and the attacker's pages).
    for page in [sqr_page, mul_page, p1a, p2a] {
        let dom = if page == p1a || page == p2a {
            attacker_domain
        } else {
            victim_domain
        };
        drv.page_alloc(page, dom, 100);
        drv.access_block(page.block(0), dom, true, 100);
    }

    // Calibration: measure the attacker's reload latency with the shared
    // node evicted vs primed, to pick a threshold.
    let mut slow_sum = 0u64;
    let mut fast_sum = 0u64;
    const CAL_ROUNDS: u64 = 16;
    for _ in 0..CAL_ROUNDS {
        // Slow: nothing primed the shared node.
        evict(&mut drv, &[sqr_page, mul_page, p1a, p2a]);
        slow_sum += drv.probe(p1a, attacker_domain, 0, false);
        // Fast: the victim's sqr (always executed) primes it.
        evict(&mut drv, &[sqr_page, mul_page, p1a, p2a]);
        for b in victim.step(0).accesses.iter().take(4) {
            drv.access_block(*b, victim_domain, false, 50);
        }
        fast_sum += drv.probe(p1a, attacker_domain, 0, false);
    }
    let threshold = (slow_sum / CAL_ROUNDS + fast_sum / CAL_ROUNDS) / 2;

    // The attack proper: evict → victim step → reload both probes
    // (paper Figure 2b: ❶ eviction, victim access, ❷ reload).
    let mut samples = Vec::with_capacity(cfg.bits);
    let mut correct = 0usize;
    for step in victim.steps() {
        evict(&mut drv, &[sqr_page, mul_page, p1a, p2a]);
        for b in &step.accesses {
            drv.access_block(*b, victim_domain, false, 50);
        }
        let spoiled = rng.chance(cfg.noise);
        let bit = step.bit.min(u32::MAX as usize) as u32;
        let p1 = drv.probe(p1a, attacker_domain, bit, true);
        let p2 = drv.probe(p2a, attacker_domain, bit, true);
        let guess = if spoiled {
            rng.chance(0.5)
        } else {
            p2 < threshold
        };
        if guess == step.value {
            correct += 1;
        }
        samples.push(LatencySample {
            bit: step.bit,
            p1_latency: p1,
            p2_latency: p2,
            truth: step.value,
            guess,
        });
    }

    AttackResult {
        accuracy: correct as f64 / cfg.bits as f64,
        samples,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(bits: usize, noise: f64) -> AttackConfig {
        AttackConfig {
            bits,
            noise,
            seed: 99,
        }
    }

    #[test]
    fn global_tree_leaks_cleanly_without_noise() {
        let r = run_attack(TargetScheme::GlobalTree, &cfg(256, 0.0));
        assert!(r.accuracy > 0.97, "accuracy {}", r.accuracy);
    }

    #[test]
    fn global_tree_with_noise_matches_paper_regime() {
        let r = run_attack(TargetScheme::GlobalTree, &cfg(2048, 0.17));
        assert!(
            (0.85..=1.0).contains(&r.accuracy),
            "accuracy {}",
            r.accuracy
        );
    }

    #[test]
    fn ivleague_reduces_attack_to_chance() {
        let r = run_attack(TargetScheme::IvLeague, &cfg(512, 0.0));
        assert!(
            (0.3..=0.72).contains(&r.accuracy),
            "accuracy {} should be near 0.5",
            r.accuracy
        );
    }

    #[test]
    fn latency_trace_is_bimodal_under_global_tree() {
        let r = run_attack(TargetScheme::GlobalTree, &cfg(128, 0.0));
        let fast: Vec<_> = r.samples.iter().filter(|s| s.truth).collect();
        let slow: Vec<_> = r.samples.iter().filter(|s| !s.truth).collect();
        assert!(!fast.is_empty() && !slow.is_empty());
        let avg =
            |v: &[&LatencySample]| v.iter().map(|s| s.p2_latency).sum::<u64>() / v.len() as u64;
        assert!(
            avg(&fast) + 20 < avg(&slow),
            "fast {} vs slow {}",
            avg(&fast),
            avg(&slow)
        );
    }

    #[test]
    fn traced_attack_reconstructs_the_timing_view() {
        use ivl_sim_core::obs::trace::probe_observations;
        use ivl_sim_core::obs::{Profiler, TraceFilter, Tracer};

        let obs = Obs {
            tracer: Tracer::bounded(1 << 20, TraceFilter::default()),
            profiler: Profiler::disabled(),
            timeline: ivl_sim_core::obs::Timeline::disabled(),
        };
        let r = run_attack_with_obs(TargetScheme::GlobalTree, &cfg(64, 0.0), &obs);
        let records = obs.tracer.sorted_records();
        let probes = probe_observations(&records);

        // Two probes per recovered bit (sqr then mul), none from
        // calibration, and the latencies match the reported samples.
        assert_eq!(probes.len(), 2 * r.samples.len());
        for (s, pair) in r.samples.iter().zip(probes.chunks(2)) {
            assert_eq!(pair[0], (s.bit as u32, s.p1_latency));
            assert_eq!(pair[1], (s.bit as u32, s.p2_latency));
        }
        // The victim's metadata traffic is in the trace too — the access
        // pattern the attacker is actually measuring.
        assert!(
            records
                .iter()
                .any(|rec| rec.component == "scheme" && rec.domain.is_some()),
            "scheme-side metadata events missing"
        );
        // Untraced runs return identical results.
        let plain = run_attack(TargetScheme::GlobalTree, &cfg(64, 0.0));
        assert_eq!(plain.samples, r.samples);
    }

    #[test]
    fn attacker_page_shares_level2_not_leaf() {
        let v = PageNum::new(1_000_000);
        let a = colocated_attacker_page(v);
        assert_eq!(v.index() / 64, a.index() / 64, "same level-2 group");
        assert_ne!(v.index() / 8, a.index() / 8, "different leaf");
    }
}
