//! Campaign determinism: the work-stealing parallel runner must be
//! invisible in the results. Every (mix, scheme) simulation owns its
//! models and PRNG streams, so a serial sweep and a stolen-to-pieces
//! parallel sweep of the same matrix must produce **bit-identical**
//! `MixResult`s — any divergence means shared mutable state leaked into
//! the simulation (or a nondeterministic map iteration started steering
//! timing), which would also poison figure reproducibility.

use ivl_bench::run_matrix_on_with_workers;
use ivl_simulator::{RunConfig, SchemeKind};
use ivl_workloads::mixes::MIXES;

const MAIN_SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Baseline,
    SchemeKind::IvBasic,
    SchemeKind::IvInvert,
    SchemeKind::IvPro,
];

#[test]
fn parallel_campaign_is_bit_identical_to_serial() {
    let run = RunConfig::smoke_test();
    let serial = run_matrix_on_with_workers(&MIXES, &MAIN_SCHEMES, &run, 1);
    let parallel = run_matrix_on_with_workers(&MIXES, &MAIN_SCHEMES, &run, 4);
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(serial.len(), MIXES.len() * MAIN_SCHEMES.len());
    for (s, p) in serial.iter().zip(&parallel) {
        // `Debug` prints every stat field and every f64 with
        // shortest-round-trip precision, so equal strings ⇔ bit-equal
        // results (modulo NaN, which no field may be anyway).
        assert_eq!(
            format!("{s:?}"),
            format!("{p:?}"),
            "serial and parallel runs diverged for {}/{:?}",
            s.mix,
            s.scheme
        );
    }
}
