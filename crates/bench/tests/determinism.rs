//! Campaign determinism: the work-stealing parallel runner must be
//! invisible in the results. Every (mix, scheme) simulation owns its
//! models and PRNG streams, so a serial sweep and a stolen-to-pieces
//! parallel sweep of the same matrix must produce **bit-identical**
//! `MixResult`s — any divergence means shared mutable state leaked into
//! the simulation (or a nondeterministic map iteration started steering
//! timing), which would also poison figure reproducibility.

use ivl_bench::run_matrix_on_with_workers;
use ivl_simulator::{
    run_mix, run_mix_par, run_mix_with_scheduler, RunConfig, SchedulerKind, SchemeKind,
};
use ivl_workloads::mixes::MIXES;

const MAIN_SCHEMES: [SchemeKind; 4] = [
    SchemeKind::Baseline,
    SchemeKind::IvBasic,
    SchemeKind::IvInvert,
    SchemeKind::IvPro,
];

/// The event-calendar core scheduler must be invisible in the results:
/// popping core-ready events from a binary heap has to reproduce the
/// pre-refactor linear `min_by_key` scan's loose global ordering —
/// least-advanced core first, ties to the lowest core index —
/// **bit-for-bit**, across the full 16-mix × 4-scheme matrix. Any
/// divergence means the calendar reordered simultaneous cores (or dropped
/// or duplicated a requeue), which would silently change every figure.
#[test]
fn event_calendar_is_bit_identical_to_linear_scan() {
    let run = RunConfig::smoke_test();
    for mix in &MIXES {
        for scheme in MAIN_SCHEMES {
            let linear = run_mix_with_scheduler(mix, scheme, &run, SchedulerKind::LinearScan);
            let calendar = run_mix_with_scheduler(mix, scheme, &run, SchedulerKind::EventCalendar);
            // `Debug` prints every stat field and every f64 with
            // shortest-round-trip precision, so equal strings ⇔ bit-equal
            // results (modulo NaN, which no field may be anyway).
            assert_eq!(
                format!("{linear:?}"),
                format!("{calendar:?}"),
                "calendar and linear-scan orderings diverged for {}/{scheme:?}",
                mix.name
            );
        }
    }
}

/// The heterogeneous calendar must keep the scheduler oracle honest now
/// that it carries more than core-ready entries: a dense mixed stream of
/// core/bank/bus/writeback events — many sharing a cycle — has to pop in
/// exactly the order a linear scan over `(cycle, tie, insertion)` picks,
/// with the class tie-spaces pinning same-cycle order to cores → banks →
/// buses → writebacks. This is the ordering contract the event-driven
/// DRAM model's bank-free/bus-drain scheduling relies on.
#[test]
fn mixed_event_kinds_pop_in_linear_scan_order() {
    use ivl_simulator::calendar::{CalendarEvent, EventCalendar};

    let mut cal: EventCalendar<CalendarEvent> = EventCalendar::new();
    // Deterministic dense schedule: every cycle in 0..8 gets one event of
    // each class, inserted in a class-rotated order so insertion order
    // disagrees with the pinned class order.
    let mut oracle: Vec<(u64, u64, usize, CalendarEvent)> = Vec::new();
    let mut seq = 0usize;
    for i in 0..32u64 {
        let at = i % 8;
        let ev = match (i + at) % 4 {
            0 => CalendarEvent::DeferredWriteback((i % 4) as u32),
            1 => CalendarEvent::BusDrain((i % 4) as u32),
            2 => CalendarEvent::BankReady((i % 16) as u32),
            _ => CalendarEvent::CoreReady((i % 8) as usize),
        };
        cal.schedule(at, ev.tie(), ev);
        oracle.push((at, ev.tie(), seq, ev));
        seq += 1;
    }
    // Linear-scan oracle: repeatedly remove the minimum (cycle, tie, seq).
    while !oracle.is_empty() {
        let min = oracle
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, tie, s, _))| (at, tie, s))
            .map(|(i, _)| i)
            .expect("non-empty");
        let (at, _, _, ev) = oracle.remove(min);
        assert_eq!(cal.pop(), Some((at, ev)), "calendar diverged from scan");
    }
    assert_eq!(cal.pop(), None);
    // Same-cycle class order is pinned regardless of instance ids.
    for ev in [
        CalendarEvent::DeferredWriteback(0),
        CalendarEvent::BusDrain(3),
        CalendarEvent::BankReady(63),
        CalendarEvent::CoreReady(7),
    ] {
        cal.schedule(5, ev.tie(), ev);
    }
    assert_eq!(cal.pop(), Some((5, CalendarEvent::CoreReady(7))));
    assert_eq!(cal.pop(), Some((5, CalendarEvent::BankReady(63))));
    assert_eq!(cal.pop(), Some((5, CalendarEvent::BusDrain(3))));
    assert_eq!(cal.pop(), Some((5, CalendarEvent::DeferredWriteback(0))));
}

/// The `ParSystem` engine — real threads stepping one simulated system's
/// cores via decoupled front-ends — must also be invisible in the
/// results: serial and parallel figure data have to match **bit-for-bit**
/// over the full 16-mix × 4-scheme matrix at every worker count. The CI
/// matrix leg re-runs this test at `IVL_WORKERS ∈ {1, 2, 4, 8}`; without
/// the variable set it sweeps worker counts 1, 2 and 4 itself. Any
/// divergence means commit-order state leaked into a producer thread (or
/// a ring reordered a stream), which would silently change every figure
/// whenever `IVL_PAR_SYSTEM=1`.
#[test]
fn par_system_is_bit_identical_to_serial() {
    let run = RunConfig::smoke_test();
    let worker_counts: Vec<usize> = match std::env::var("IVL_WORKERS") {
        Ok(v) => vec![v.trim().parse().expect("IVL_WORKERS must be a number")],
        Err(_) => vec![1, 2, 4],
    };
    for mix in &MIXES {
        for scheme in MAIN_SCHEMES {
            let serial = format!("{:?}", run_mix(mix, scheme, &run));
            for &workers in &worker_counts {
                let par = format!("{:?}", run_mix_par(mix, scheme, &run, workers));
                assert_eq!(
                    serial, par,
                    "serial and ParSystem runs diverged for {}/{scheme:?} at {workers} workers",
                    mix.name
                );
            }
        }
    }
}

#[test]
fn parallel_campaign_is_bit_identical_to_serial() {
    let run = RunConfig::smoke_test();
    let serial = run_matrix_on_with_workers(&MIXES, &MAIN_SCHEMES, &run, 1);
    let parallel = run_matrix_on_with_workers(&MIXES, &MAIN_SCHEMES, &run, 4);
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(serial.len(), MIXES.len() * MAIN_SCHEMES.len());
    for (s, p) in serial.iter().zip(&parallel) {
        // `Debug` prints every stat field and every f64 with
        // shortest-round-trip precision, so equal strings ⇔ bit-equal
        // results (modulo NaN, which no field may be anyway).
        assert_eq!(
            format!("{s:?}"),
            format!("{p:?}"),
            "serial and parallel runs diverged for {}/{:?}",
            s.mix,
            s.scheme
        );
    }
}
