//! Formatters for the performance figures (15, 16, 18, 19) that share the
//! 16-mix × 4-scheme simulation matrix.

use ivl_sim_core::stats::gmean;
use ivl_simulator::{MixResult, SchemeKind};
use ivl_workloads::mixes::{MixClass, MIXES};
use ivl_workloads::profiles::BENCHMARKS;

use crate::find;

/// Mix names grouped by class, in Table II order.
pub fn mixes_of(class: MixClass) -> Vec<&'static str> {
    MIXES
        .iter()
        .filter(|m| m.class == class)
        .map(|m| m.name)
        .collect()
}

/// Figure 15: weighted IPC normalized to Baseline, per mix plus per-class
/// geometric means.
pub fn fig15(results: &[MixResult]) -> String {
    let mut out = String::new();
    out.push_str("Figure 15: Weighted IPC normalized to Baseline\n");
    out.push_str(&format!(
        "{:<8} {:>10} {:>16} {:>16} {:>14}\n",
        "mix", "Baseline", "IvLeague-Basic", "IvLeague-Invert", "IvLeague-Pro"
    ));
    for class in [MixClass::Small, MixClass::Medium, MixClass::Large] {
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for mix in mixes_of(class) {
            let base = find(results, mix, SchemeKind::Baseline).weighted_ipc();
            let mut row = format!("{mix:<8}");
            for (si, scheme) in SchemeKind::MAIN.iter().enumerate() {
                let v = find(results, mix, *scheme).weighted_ipc() / base;
                per_scheme[si].push(v);
                row.push_str(&format!(" {v:>15.3}"));
            }
            out.push_str(&row);
            out.push('\n');
        }
        let mut row = format!("gmean{:<3}", class.prefix());
        for vals in &per_scheme {
            row.push_str(&format!(" {:>15.3}", gmean(vals)));
        }
        out.push_str(&row);
        out.push_str("\n\n");
    }
    out
}

/// Figure 16: average integrity-verification path length. The simulator
/// measures path length per mix (the metadata caches are shared, so a
/// per-benchmark split is approximated by averaging over the mixes that
/// contain each benchmark).
pub fn fig16(results: &[MixResult]) -> String {
    let mut out = String::new();
    out.push_str("Figure 16: Average integrity-verification path length\n");
    out.push_str("-- per mix --\n");
    out.push_str(&format!(
        "{:<8} {:>10} {:>16} {:>16} {:>14}\n",
        "mix", "Baseline", "IvLeague-Basic", "IvLeague-Invert", "IvLeague-Pro"
    ));
    for mix in MIXES.iter() {
        let mut row = format!("{:<8}", mix.name);
        for scheme in SchemeKind::MAIN {
            row.push_str(&format!(
                " {:>15.3}",
                find(results, mix.name, scheme).avg_path_length
            ));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out.push_str("\n-- per benchmark (mean over containing mixes) --\n");
    out.push_str(&format!(
        "{:<8} {:>10} {:>16} {:>16} {:>14}\n",
        "bench", "Baseline", "IvLeague-Basic", "IvLeague-Invert", "IvLeague-Pro"
    ));
    for b in BENCHMARKS.iter() {
        let containing: Vec<&str> = MIXES
            .iter()
            .filter(|m| m.benchmarks.contains(&b.name))
            .map(|m| m.name)
            .collect();
        if containing.is_empty() {
            continue;
        }
        let mut row = format!("{:<8}", b.name);
        for scheme in SchemeKind::MAIN {
            let mean: f64 = containing
                .iter()
                .map(|m| find(results, m, scheme).avg_path_length)
                .sum::<f64>()
                / containing.len() as f64;
            row.push_str(&format!(" {mean:>15.3}"));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Figure 18: NFLB hit rate per mix for the three IvLeague schemes.
pub fn fig18(results: &[MixResult]) -> String {
    let schemes = [SchemeKind::IvBasic, SchemeKind::IvInvert, SchemeKind::IvPro];
    let mut out = String::new();
    out.push_str("Figure 18: NFL buffer (NFLB) hit rate\n");
    out.push_str(&format!(
        "{:<8} {:>16} {:>16} {:>14}\n",
        "mix", "IvLeague-Basic", "IvLeague-Invert", "IvLeague-Pro"
    ));
    for class in [MixClass::Small, MixClass::Medium, MixClass::Large] {
        let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for mix in mixes_of(class) {
            let mut row = format!("{mix:<8}");
            for (si, scheme) in schemes.iter().enumerate() {
                let v = find(results, mix, *scheme).stats.nflb.hit_rate();
                per_scheme[si].push(v);
                row.push_str(&format!(" {:>15.1}%", v * 100.0));
            }
            out.push_str(&row);
            out.push('\n');
        }
        let mut row = format!("gmean{:<3}", class.prefix());
        for vals in &per_scheme {
            row.push_str(&format!(" {:>15.1}%", gmean(vals) * 100.0));
        }
        out.push_str(&row);
        out.push_str("\n\n");
    }
    out
}

/// Figure 19: total memory accesses normalized to Baseline.
pub fn fig19(results: &[MixResult]) -> String {
    let schemes = [SchemeKind::IvBasic, SchemeKind::IvInvert, SchemeKind::IvPro];
    let mut out = String::new();
    out.push_str("Figure 19: Total memory accesses (normalized to Baseline)\n");
    out.push_str(&format!(
        "{:<8} {:>16} {:>16} {:>14}\n",
        "mix", "IvLeague-Basic", "IvLeague-Invert", "IvLeague-Pro"
    ));
    for mix in MIXES.iter() {
        let base = find(results, mix.name, SchemeKind::Baseline)
            .stats
            .total_mem_accesses() as f64;
        let mut row = format!("{:<8}", mix.name);
        for scheme in schemes {
            let v = find(results, mix.name, scheme).stats.total_mem_accesses() as f64 / base;
            row.push_str(&format!(" {:>14.1}%", v * 100.0));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}
