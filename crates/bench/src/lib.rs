//! Figure/table regeneration harness.
//!
//! One binary per table and figure of the paper's evaluation (see
//! DESIGN.md's experiment index); each prints the rows/series the paper
//! reports and writes the same text under `target/figures/`. The heavy
//! simulations (Figures 15/16/18/19 share the same 16 mixes × 4 schemes
//! runs) execute in parallel across (mix, scheme) jobs on the testkit's
//! scoped-thread runner.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use ivl_simulator::{run_mix, MixResult, RunConfig, SchemeKind};
use ivl_workloads::mixes::{Mix, MIXES};

/// Where figure text outputs land.
pub mod perf;

pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    std::fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Prints `content` to stdout and mirrors it into `target/figures/<name>`.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let path = figures_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create figure file");
    f.write_all(content.as_bytes()).expect("write figure file");
    eprintln!("[saved {}]", path.display());
}

/// Whether quick mode was requested (`IVL_QUICK=1` or `--quick`): shorter
/// runs for smoke-testing the harness.
pub fn quick_mode() -> bool {
    std::env::var("IVL_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick")
}

/// The run configuration honoring quick mode.
pub fn run_config() -> RunConfig {
    if quick_mode() {
        RunConfig {
            warmup_accesses: 5_000,
            measure_accesses: 30_000,
            seed: 2024,
        }
    } else {
        RunConfig::evaluation()
    }
}

/// Runs every mix under every scheme in `schemes`, in parallel across
/// (mix, scheme) pairs. Results are ordered (mix-major, scheme-minor).
pub fn run_matrix(schemes: &[SchemeKind], run: &RunConfig) -> Vec<MixResult> {
    run_matrix_on(&MIXES, schemes, run)
}

/// Runs a selected set of mixes under every scheme in `schemes`.
///
/// Emits a progress line to stderr as each (mix, scheme) point finishes.
/// Progress reporting rides on a shared atomic counter, so completion
/// order shows through on stderr while the returned results stay in job
/// order (the parallel runner's collector is order-preserving).
pub fn run_matrix_on(mixes: &[Mix], schemes: &[SchemeKind], run: &RunConfig) -> Vec<MixResult> {
    run_matrix_on_with_workers(mixes, schemes, run, ivl_testkit::par::available_workers())
}

/// [`run_matrix_on`] with an explicit worker count. `workers = 1` runs the
/// jobs serially on one pool thread in job order — the determinism tests
/// pin serial vs. work-stealing runs against each other this way.
pub fn run_matrix_on_with_workers(
    mixes: &[Mix],
    schemes: &[SchemeKind],
    run: &RunConfig,
    workers: usize,
) -> Vec<MixResult> {
    let jobs: Vec<(&Mix, SchemeKind)> = mixes
        .iter()
        .flat_map(|m| schemes.iter().map(move |s| (m, *s)))
        .collect();
    run_points(
        &jobs,
        workers,
        |(mix, scheme)| format!("{:<5} {:<14}", mix.name, scheme.label()),
        |(mix, scheme)| run_mix(mix, *scheme, run),
    )
}

/// Generic parallel point sweep: runs `f` over `points` on the testkit's
/// work-stealing runner, printing a `[n/total] <label> <elapsed> (eta …)`
/// progress line to stderr as each point completes — the ETA is the mean
/// per-point wall time extrapolated over the points still outstanding.
/// Results preserve input order.
///
/// The sweep binaries (figure matrices, sensitivity grids) funnel their
/// per-point simulation work through here so every campaign parallelizes
/// the same way.
pub fn run_points<P, T, L, F>(points: &[P], workers: usize, label: L, f: F) -> Vec<T>
where
    P: Sync,
    T: Send,
    L: Fn(&P) -> String + Sync,
    F: Fn(&P) -> T + Sync,
{
    let total = points.len();
    let done = AtomicUsize::new(0);
    let started = Instant::now();
    ivl_testkit::par::map_parallel(points, workers, |p| {
        let r = f(p);
        let n = done.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed = started.elapsed().as_secs_f64();
        let eta = elapsed / n as f64 * (total - n) as f64;
        eprintln!(
            "[{n:>3}/{total}] {} {:>6.1}s (eta {eta:>5.1}s)",
            label(p),
            elapsed
        );
        r
    })
}

/// Finds the result for (mix, scheme) in a `run_matrix` output.
pub fn find<'a>(results: &'a [MixResult], mix: &str, scheme: SchemeKind) -> &'a MixResult {
    results
        .iter()
        .find(|r| r.mix == mix && r.scheme == scheme)
        .unwrap_or_else(|| panic!("missing result for {mix}/{scheme:?}"))
}

/// Formats a ratio table row with fixed-width columns.
pub fn row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:<10}");
    for v in values {
        s.push_str(&format!(" {v:>8.3}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_runs_in_quick_shape() {
        let run = RunConfig::smoke_test();
        let mixes = [*ivl_workloads::mixes::mix_by_name("S-1").unwrap()];
        let results = run_matrix_on(&mixes, &[SchemeKind::Baseline, SchemeKind::IvPro], &run);
        assert_eq!(results.len(), 2);
        assert_eq!(
            find(&results, "S-1", SchemeKind::IvPro).scheme,
            SchemeKind::IvPro
        );
    }

    #[test]
    fn row_formats() {
        let s = row("S-1", &[1.0, 0.5]);
        assert!(s.contains("S-1") && s.contains("1.000") && s.contains("0.500"));
    }
}
