//! Figure 15: weighted IPC of the four schemes, normalized to Baseline.

use ivl_bench::{emit, perf::fig15, run_config, run_matrix};
use ivl_simulator::SchemeKind;

fn main() {
    let results = run_matrix(&SchemeKind::MAIN, &run_config());
    emit("fig15_weighted_ipc.txt", &fig15(&results));
}
