//! Bench-regression gate: diffs a fresh `IVL_BENCH_JSON` run against a
//! checked-in baseline and fails on regressions beyond a threshold.
//!
//! ```text
//! bench_compare <baseline.json> <fresh.json> [--threshold FRACTION]
//! ```
//!
//! For every benchmark present in both files the relative change of the
//! median is computed as `(fresh - baseline) / baseline`. A change above
//! `--threshold` (default 1.0, i.e. more than 2× slower) fails the gate.
//! The default is deliberately generous because CI runs the quick-mode
//! harness, whose medians on shared runners are noisy; the gate exists to
//! catch order-of-magnitude mistakes (an accidental debug-path, a lost
//! optimisation), not single-digit-percent drift. Improvements never fail.
//!
//! Exit codes: 0 = within threshold, 1 = regression, 2 = usage/parse error.

use std::process::ExitCode;

use ivl_testkit::bench::parse_results_json;

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    parse_results_json(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn run(baseline_path: &str, fresh_path: &str, threshold: f64) -> Result<bool, String> {
    let baseline = load(baseline_path)?;
    let fresh = load(fresh_path)?;
    if baseline.is_empty() {
        return Err(format!("{baseline_path} contains no benchmarks"));
    }

    let mut regressed = false;
    println!(
        "{:<44} {:>12} {:>12} {:>9}  verdict",
        "benchmark", "baseline ns", "fresh ns", "change"
    );
    for (name, base_median) in &baseline {
        let Some((_, fresh_median)) = fresh.iter().find(|(n, _)| n == name) else {
            println!(
                "{name:<44} {base_median:>12.1} {:>12} {:>9}  MISSING",
                "-", "-"
            );
            regressed = true;
            continue;
        };
        let change = (fresh_median - base_median) / base_median;
        let over = change > threshold;
        regressed |= over;
        println!(
            "{name:<44} {base_median:>12.1} {fresh_median:>12.1} {:>+8.1}%  {}",
            change * 100.0,
            if over { "REGRESSED" } else { "ok" }
        );
    }
    for (name, _) in &fresh {
        if !baseline.iter().any(|(n, _)| n == name) {
            println!("{name:<44} (new benchmark, not in baseline)");
        }
    }
    Ok(regressed)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold needs a numeric fraction (e.g. 1.0 = allow up to 2x)");
                    return ExitCode::from(2);
                };
                threshold = v;
            }
            other => paths.push(other.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_compare <baseline.json> <fresh.json> [--threshold FRACTION]");
        return ExitCode::from(2);
    }

    match run(&paths[0], &paths[1], threshold) {
        Ok(false) => {
            println!("bench gate: OK (threshold +{:.0}%)", threshold * 100.0);
            ExitCode::SUCCESS
        }
        Ok(true) => {
            eprintln!(
                "bench gate: FAILED — median regression beyond +{:.0}% (or baseline bench missing)",
                threshold * 100.0
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_compare: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::run;

    fn write_json(dir: &std::path::Path, name: &str, entries: &[(&str, f64)]) -> String {
        let mut body = String::from("{\n  \"benches\": [\n");
        for (i, (n, m)) in entries.iter().enumerate() {
            let comma = if i + 1 < entries.len() { "," } else { "" };
            body.push_str(&format!(
                "    {{\"name\": \"{n}\", \"median_ns\": {m}}}{comma}\n"
            ));
        }
        body.push_str("  ]\n}\n");
        let path = dir.join(name);
        std::fs::write(&path, body).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bench_compare_test_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn within_threshold_passes() {
        let dir = tmpdir("pass");
        let base = write_json(&dir, "base.json", &[("g/a", 100.0), ("g/b", 50.0)]);
        let fresh = write_json(&dir, "fresh.json", &[("g/a", 150.0), ("g/b", 10.0)]);
        assert!(!run(&base, &fresh, 1.0).unwrap());
    }

    #[test]
    fn regression_beyond_threshold_fails() {
        let dir = tmpdir("fail");
        let base = write_json(&dir, "base.json", &[("g/a", 100.0)]);
        let fresh = write_json(&dir, "fresh.json", &[("g/a", 250.0)]);
        assert!(run(&base, &fresh, 1.0).unwrap());
        assert!(!run(&base, &fresh, 2.0).unwrap());
    }

    #[test]
    fn missing_baseline_bench_fails() {
        let dir = tmpdir("missing");
        let base = write_json(&dir, "base.json", &[("g/a", 100.0), ("g/gone", 1.0)]);
        let fresh = write_json(&dir, "fresh.json", &[("g/a", 100.0)]);
        assert!(run(&base, &fresh, 1.0).unwrap());
    }

    #[test]
    fn unreadable_file_is_an_error() {
        assert!(run("/nonexistent/base.json", "/nonexistent/fresh.json", 1.0).is_err());
    }
}
