//! Figure 20: sensitivity to TreeLing size (20a) and integrity-tree
//! metadata cache size (20b). One representative mix per class; IPC
//! normalized to IvLeague-Basic at the default configuration, as in the
//! paper.

use ivl_bench::{emit, find, run_config, run_matrix_on};
use ivl_sim_core::config::SystemConfig;
use ivl_sim_core::stats::gmean;
use ivl_simulator::{run_mix_with_config, SchemeKind};
use ivl_workloads::mixes::mix_by_name;

const SCHEMES: [SchemeKind; 3] = [SchemeKind::IvBasic, SchemeKind::IvInvert, SchemeKind::IvPro];

fn main() {
    let run = run_config();
    let mixes = [
        *mix_by_name("S-1").unwrap(),
        *mix_by_name("M-1").unwrap(),
        *mix_by_name("L-1").unwrap(),
    ];

    // Reference: IvLeague-Basic at defaults.
    let reference = run_matrix_on(&mixes, &[SchemeKind::IvBasic], &run);
    let ref_ipc: Vec<f64> = mixes
        .iter()
        .map(|m| find(&reference, m.name, SchemeKind::IvBasic).weighted_ipc())
        .collect();

    let mut text = String::from(
        "Figure 20a: IPC vs TreeLing size (normalized to IvLeague-Basic at the default)\n",
    );
    // Intra-TreeLing level sweep; coverage = 8^levels pages. The paper's
    // 8/64/512 MB labels correspond to three/four/five intra-TreeLing
    // levels; our geometry note (DESIGN.md) maps levels 4/5/6.
    text.push_str(&format!(
        "{:<22} {:>16} {:>16} {:>14}\n",
        "TreeLing", "IvLeague-Basic", "IvLeague-Invert", "IvLeague-Pro"
    ));
    for (levels, label) in [
        (4usize, "16MiB(\"8MB\")"),
        (5, "128MiB(\"64MB\")"),
        (6, "1GiB(\"512MB\")"),
    ] {
        let mut cfg = SystemConfig::default();
        cfg.ivleague.treeling_levels = levels;
        cfg.ivleague.treeling_count = match levels {
            4 => 8192,
            5 => 4096,
            _ => 512,
        };
        let mut row = format!("{label:<22}");
        for scheme in SCHEMES {
            let mut vals = Vec::new();
            for (mi, m) in mixes.iter().enumerate() {
                let r = run_mix_with_config(m, scheme, &run, &cfg);
                vals.push(r.weighted_ipc() / ref_ipc[mi]);
            }
            row.push_str(&format!(" {:>15.3}", gmean(&vals)));
        }
        text.push_str(&row);
        text.push('\n');
    }

    text.push_str(
        "\nFigure 20b: IPC vs integrity-tree metadata cache size (normalized as above)\n",
    );
    text.push_str(&format!(
        "{:<22} {:>16} {:>16} {:>14}\n",
        "tree cache", "IvLeague-Basic", "IvLeague-Invert", "IvLeague-Pro"
    ));
    for kib in [64usize, 128, 256, 512, 1024] {
        let mut cfg = SystemConfig::default();
        cfg.secure.tree_cache.capacity_bytes = kib * 1024;
        let mut row = format!("{:<22}", format!("{kib}KiB"));
        for scheme in SCHEMES {
            let mut vals = Vec::new();
            for (mi, m) in mixes.iter().enumerate() {
                let r = run_mix_with_config(m, scheme, &run, &cfg);
                vals.push(r.weighted_ipc() / ref_ipc[mi]);
            }
            row.push_str(&format!(" {:>15.3}", gmean(&vals)));
        }
        text.push_str(&row);
        text.push('\n');
    }
    emit("fig20_sensitivity.txt", &text);
}
