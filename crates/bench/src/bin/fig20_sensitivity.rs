//! Figure 20: sensitivity to TreeLing size (20a) and integrity-tree
//! metadata cache size (20b). One representative mix per class; IPC
//! normalized to IvLeague-Basic at the default configuration, as in the
//! paper.

use ivl_bench::{emit, find, run_config, run_matrix_on, run_points};
use ivl_sim_core::config::SystemConfig;
use ivl_sim_core::stats::gmean;
use ivl_simulator::{run_mix_with_config, SchemeKind};
use ivl_workloads::mixes::{mix_by_name, Mix};

const SCHEMES: [SchemeKind; 3] = [SchemeKind::IvBasic, SchemeKind::IvInvert, SchemeKind::IvPro];

/// One grid point of a sensitivity sweep: (config label, scheme, mix).
struct Point {
    label: &'static str,
    cfg: SystemConfig,
    scheme: SchemeKind,
    mix: Mix,
    mix_idx: usize,
}

/// Runs all grid points in parallel and folds them back into per-(label,
/// scheme) geometric means over the mixes, preserving sweep order.
fn sweep_rows(
    points: &[Point],
    labels: &[&'static str],
    run: &ivl_simulator::RunConfig,
    ref_ipc: &[f64],
) -> String {
    let workers = ivl_testkit::par::available_workers();
    let ipcs = run_points(
        points,
        workers,
        |p| format!("{:<22} {:<14} {}", p.label, p.scheme.label(), p.mix.name),
        |p| run_mix_with_config(&p.mix, p.scheme, run, &p.cfg).weighted_ipc(),
    );
    let mut text = String::new();
    for label in labels {
        let mut row = format!("{label:<22}");
        for scheme in SCHEMES {
            let vals: Vec<f64> = points
                .iter()
                .zip(&ipcs)
                .filter(|(p, _)| p.label == *label && p.scheme == scheme)
                .map(|(p, ipc)| ipc / ref_ipc[p.mix_idx])
                .collect();
            row.push_str(&format!(" {:>15.3}", gmean(&vals)));
        }
        text.push_str(&row);
        text.push('\n');
    }
    text
}

fn main() {
    let run = run_config();
    let mixes = [
        *mix_by_name("S-1").unwrap(),
        *mix_by_name("M-1").unwrap(),
        *mix_by_name("L-1").unwrap(),
    ];

    // Reference: IvLeague-Basic at defaults.
    let reference = run_matrix_on(&mixes, &[SchemeKind::IvBasic], &run);
    let ref_ipc: Vec<f64> = mixes
        .iter()
        .map(|m| find(&reference, m.name, SchemeKind::IvBasic).weighted_ipc())
        .collect();

    let mut text = String::from(
        "Figure 20a: IPC vs TreeLing size (normalized to IvLeague-Basic at the default)\n",
    );
    // Intra-TreeLing level sweep; coverage = 8^levels pages. The paper's
    // 8/64/512 MB labels correspond to three/four/five intra-TreeLing
    // levels; our geometry note (DESIGN.md) maps levels 4/5/6.
    text.push_str(&format!(
        "{:<22} {:>16} {:>16} {:>14}\n",
        "TreeLing", "IvLeague-Basic", "IvLeague-Invert", "IvLeague-Pro"
    ));
    let size_labels = ["16MiB(\"8MB\")", "128MiB(\"64MB\")", "1GiB(\"512MB\")"];
    let mut size_points = Vec::new();
    for (levels, label) in [
        (4usize, size_labels[0]),
        (5, size_labels[1]),
        (6, size_labels[2]),
    ] {
        let mut cfg = SystemConfig::default();
        cfg.ivleague.treeling_levels = levels;
        cfg.ivleague.treeling_count = match levels {
            4 => 8192,
            5 => 4096,
            _ => 512,
        };
        for scheme in SCHEMES {
            for (mi, m) in mixes.iter().enumerate() {
                size_points.push(Point {
                    label,
                    cfg: cfg.clone(),
                    scheme,
                    mix: *m,
                    mix_idx: mi,
                });
            }
        }
    }
    text.push_str(&sweep_rows(&size_points, &size_labels, &run, &ref_ipc));

    text.push_str(
        "\nFigure 20b: IPC vs integrity-tree metadata cache size (normalized as above)\n",
    );
    text.push_str(&format!(
        "{:<22} {:>16} {:>16} {:>14}\n",
        "tree cache", "IvLeague-Basic", "IvLeague-Invert", "IvLeague-Pro"
    ));
    let cache_labels = ["64KiB", "128KiB", "256KiB", "512KiB", "1024KiB"];
    let mut cache_points = Vec::new();
    for (kib, label) in [64usize, 128, 256, 512, 1024].into_iter().zip(cache_labels) {
        let mut cfg = SystemConfig::default();
        cfg.secure.tree_cache.capacity_bytes = kib * 1024;
        for scheme in SCHEMES {
            for (mi, m) in mixes.iter().enumerate() {
                cache_points.push(Point {
                    label,
                    cfg: cfg.clone(),
                    scheme,
                    mix: *m,
                    mix_idx: mi,
                });
            }
        }
    }
    text.push_str(&sweep_rows(&cache_points, &cache_labels, &run, &ref_ipc));
    emit("fig20_sensitivity.txt", &text);
}
