//! Table III: on-chip hardware cost of the IvLeague components.

use ivl_analysis::hardware::hardware_cost;
use ivl_bench::emit;
use ivl_sim_core::config::SystemConfig;

fn main() {
    let cost = hardware_cost(&SystemConfig::default());
    let mut text = String::from("Table III: On-chip hardware cost (45 nm)\n");
    text.push_str(&format!(
        "{:<36} {:>12} {:>12}\n",
        "Component", "Storage", "Area"
    ));
    for r in &cost.rows {
        let storage = if r.storage_bytes >= 1024 {
            format!("{:.0} KiB", r.storage_bytes as f64 / 1024.0)
        } else {
            format!("{} B", r.storage_bytes)
        };
        text.push_str(&format!(
            "{:<36} {:>12} {:>9.4}mm2\n",
            r.component, storage, r.area_mm2
        ));
    }
    text.push_str(&format!(
        "Total on-chip area: {:.4} mm2\n\
         Off-chip NFL metadata: {:.1} MiB ({:.3}% of memory)\n\
         Integrity-tree metadata: {:.2}% of memory\n",
        cost.total_area_mm2(),
        cost.offchip_nfl_bytes as f64 / (1024.0 * 1024.0),
        cost.offchip_nfl_fraction * 100.0,
        cost.tree_metadata_fraction * 100.0,
    ));
    emit("table03_hardware.txt", &text);
}
