//! Table I: architecture configuration.

use ivl_bench::emit;
use ivl_sim_core::config::SystemConfig;

fn main() {
    let c = SystemConfig::default();
    let geometry = ivleague::geometry::TreeLingGeometry::new(
        c.secure.tree_arity as u32,
        c.ivleague.treeling_levels as u32,
    );
    let text = format!(
        "Table I: Architecture configuration\n\
         Processor            : {} OoO x86 cores\n\
         L1 / L2 cache        : private {} KiB {}-way / private {} KiB {}-way\n\
         L3 cache             : shared {} MiB {}-way, {}-cycle hit, randomized (MIRAGE-style)\n\
         Crypto engine        : {}-cycle AES, {}-cycle keyed hash\n\
         Main memory          : {} GiB, {} channels, {} ranks/channel, {} banks/rank\n\
         Enc. counter         : 64-bit major + 7-bit minor (split)\n\
         MAC                  : {} bytes per 64 B block\n\
         Integrity tree       : {}-ary Bonsai Merkle Tree\n\
         Metadata caches      : {} KiB counter + {} KiB tree, {}-way\n\
         IvLeague LMM cache   : {} entries, {}-way\n\
         IvLeague NFLB        : {} entries per domain\n\
         TreeLing             : {} levels, {} pages ({} MiB) coverage; {} TreeLings\n\
         Hotpage tracker      : {} entries, {}-bit counters, threshold {}\n",
        c.core.cores,
        c.core.l1.capacity_bytes / 1024,
        c.core.l1.ways,
        c.core.l2.capacity_bytes / 1024,
        c.core.l2.ways,
        c.llc.cache.capacity_bytes / (1024 * 1024),
        c.llc.cache.ways,
        c.llc.cache.hit_latency,
        c.secure.aes_latency,
        c.secure.hash_latency,
        c.dram.capacity_bytes >> 30,
        c.dram.channels,
        c.dram.ranks_per_channel,
        c.dram.banks_per_rank,
        c.secure.mac_bytes,
        c.secure.tree_arity,
        c.secure.counter_cache.capacity_bytes / 1024,
        c.secure.tree_cache.capacity_bytes / 1024,
        c.secure.tree_cache.ways,
        c.ivleague.lmm_cache_entries,
        c.ivleague.lmm_cache_ways,
        c.ivleague.nflb_entries_per_domain,
        c.ivleague.treeling_levels,
        geometry.leaf_capacity(),
        geometry.coverage_bytes() >> 20,
        c.ivleague.treeling_count,
        c.ivleague.tracker_entries,
        c.ivleague.tracker_counter_bits,
        c.ivleague.hot_threshold,
    );
    emit("table01_config.txt", &text);
}
