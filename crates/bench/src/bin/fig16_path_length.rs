//! Figure 16: average integrity-verification path length.

use ivl_bench::{emit, perf::fig16, run_config, run_matrix};
use ivl_simulator::SchemeKind;

fn main() {
    let results = run_matrix(&SchemeKind::MAIN, &run_config());
    emit("fig16_path_length.txt", &fig16(&results));
}
