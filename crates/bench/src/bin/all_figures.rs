//! Regenerates every table and figure of the paper's evaluation in one run,
//! sharing the heavy 16-mix × 4-scheme simulation matrix across Figures
//! 15/16/18/19. Outputs land under `target/figures/`.

use ivl_bench::{emit, perf, run_config, run_matrix};
use ivl_simulator::SchemeKind;

fn run_bin(name: &str) {
    // Cheap experiments run in-process through their own binaries' logic
    // would need code sharing; simplest robust route: spawn the sibling
    // binary, which cargo placed next to this one.
    let me = std::env::current_exe().expect("current exe");
    let sibling = me.parent().expect("bin dir").join(name);
    let status = std::process::Command::new(&sibling)
        .args(std::env::args().skip(1))
        .status()
        .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
    assert!(status.success(), "{name} failed");
}

fn main() {
    let t0 = std::time::Instant::now();
    for cheap in [
        "table01_config",
        "table02_workloads",
        "table03_hardware",
        "fig03_attack",
        "fig21_treelings_required",
        "fig22_scalability",
    ] {
        run_bin(cheap);
    }

    eprintln!("[running 16 mixes x 4 schemes]");
    let results = run_matrix(&SchemeKind::MAIN, &run_config());
    emit("fig15_weighted_ipc.txt", &perf::fig15(&results));
    emit("fig16_path_length.txt", &perf::fig16(&results));
    emit("fig18_nflb_hit_rate.txt", &perf::fig18(&results));
    emit("fig19_memory_accesses.txt", &perf::fig19(&results));

    for heavy in ["fig17_nfl", "fig20_sensitivity"] {
        run_bin(heavy);
    }
    eprintln!("[all figures regenerated in {:?}]", t0.elapsed());
}
