//! Figure 21: TreeLings required under skewed memory distributions.

use ivl_analysis::starvation::fig21_sweep;
use ivl_bench::emit;

fn main() {
    let mut text = String::from(
        "Figure 21: TreeLings required vs TreeLing size and skewness (D = 4096 domains)\n",
    );
    for (mem_gib, label) in [(8u64, "a"), (32, "b")] {
        text.push_str(&format!("\n(21{label}) system memory: {mem_gib} GiB\n"));
        text.push_str(&format!(
            "{:<12} {:>14} {:>14} {:>14} {:>12}\n",
            "TreeLing", "skew 1.0", "skew 0.5", "skew 0.1", "floor"
        ));
        let pts = fig21_sweep(mem_gib << 30, 4096);
        for chunk in pts.chunks(3) {
            let tl_mib = chunk[0].treeling_bytes >> 20;
            text.push_str(&format!(
                "{:<12} {:>14} {:>14} {:>14} {:>12}\n",
                format!("{tl_mib}MiB"),
                chunk[0].required,
                chunk[1].required,
                chunk[2].required,
                chunk[0].floor
            ));
        }
    }
    emit("fig21_treelings_required.txt", &text);
}
