//! Calibration probe: runs representative mixes under the four main
//! schemes and prints the normalized weighted IPC, path lengths, memory
//! accesses and buffer hit rates — the quantities the paper's Figures
//! 15/16/18/19 report — so the workload/timing parameters can be tuned.

use ivl_bench::{find, run_config, run_matrix_on};
use ivl_simulator::SchemeKind;
use ivl_workloads::mixes::mix_by_name;

fn main() {
    let names: Vec<String> = {
        let args: Vec<String> = std::env::args()
            .skip(1)
            .filter(|a| a != "--quick")
            .collect();
        if args.is_empty() {
            vec!["S-1".into(), "M-1".into(), "L-1".into()]
        } else {
            args
        }
    };
    let mixes: Vec<_> = names
        .iter()
        .map(|n| *mix_by_name(n).unwrap_or_else(|| panic!("unknown mix {n}")))
        .collect();
    let run = run_config();
    let t0 = std::time::Instant::now();
    let results = run_matrix_on(&mixes, &SchemeKind::MAIN, &run);
    eprintln!("[{} runs in {:?}]", results.len(), t0.elapsed());

    for mix in &mixes {
        let base = find(&results, mix.name, SchemeKind::Baseline);
        println!(
            "\n=== {} (baseline wIPC {:.4}) ===",
            mix.name,
            base.weighted_ipc()
        );
        println!(
            "{:<16} {:>8} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>9} {:>7} {:>6}",
            "scheme",
            "normIPC",
            "path",
            "memacc",
            "ctr_hit",
            "tree_hit",
            "lmm_hit",
            "nflb_hit",
            "verifs",
            "promo",
            "missrate",
            "rdlat",
            "fail"
        );
        for scheme in SchemeKind::MAIN {
            let r = find(&results, mix.name, scheme);
            println!(
                "{:<16} {:>8.4} {:>8.3} {:>8.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>8} {:>8} {:>9.3} {:>7.1} {:>6}",
                scheme.label(),
                r.weighted_ipc() / base.weighted_ipc(),
                r.avg_path_length,
                r.stats.total_mem_accesses() as f64 / base.stats.total_mem_accesses() as f64,
                r.stats.counter_cache.hit_rate(),
                r.stats.tree_cache.hit_rate(),
                r.stats.lmm_cache.hit_rate(),
                r.stats.nflb.hit_rate(),
                r.stats.verifications,
                r.stats.hot_migrations + r.stats.hot_demotions,
                r.llc_miss_reads as f64 / r.core_accesses.max(1) as f64,
                r.avg_read_latency(),
                r.failed,
            );
            let fl = r.stats.fetches_by_level;
            println!(
                "{:<16} fetches/level: {:?} data_r {} data_w {} meta_r {} meta_w {} nfl_r {} nfl_w {} verifw? tree_acc {}",
                "", fl, r.stats.data_reads, r.stats.data_writes, r.stats.meta_reads,
                r.stats.meta_writes, r.stats.nfl_mem_reads, r.stats.nfl_mem_writes,
                r.stats.tree_cache.total()
            );
        }
    }
}
