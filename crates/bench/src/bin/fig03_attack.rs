//! Figure 3 + Section IV: the metadata side-channel attack trace and
//! RSA-exponent recovery accuracy, on the global tree and under IvLeague.

use ivl_attack::{run_attack, AttackConfig, TargetScheme};
use ivl_bench::{emit, quick_mode};

fn main() {
    let bits = if quick_mode() { 256 } else { 2048 };
    let cfg = AttackConfig {
        bits,
        noise: 0.17,
        seed: 0xA77AC4,
    };
    let leak = run_attack(TargetScheme::GlobalTree, &cfg);
    let safe = run_attack(TargetScheme::IvLeague, &cfg);

    let mut text = String::from(
        "Figure 3: Attacker-observed reload latencies (first 26 exponent bits, global tree)\n",
    );
    text.push_str("bit  secret  P1a(sqr)lat  P2a(mul)lat  guess\n");
    for s in leak.samples.iter().take(26) {
        text.push_str(&format!(
            "{:>3}  {:>6}  {:>11} {:>12}  {:>5}\n",
            s.bit, s.truth as u8, s.p1_latency, s.p2_latency, s.guess as u8
        ));
    }
    text.push_str(&format!(
        "\ncalibrated threshold: {} cycles\n\
         {}-bit RSA exponent recovery accuracy:\n\
           global integrity tree (Baseline) : {:.1}%  (paper: 91.6%)\n\
           IvLeague (isolated TreeLings)    : {:.1}%  (chance level)\n",
        leak.threshold,
        bits,
        leak.accuracy * 100.0,
        safe.accuracy * 100.0,
    ));
    emit("fig03_attack.txt", &text);
}
