//! Table II: the 16 multi-programmed mixes.

use ivl_bench::emit;
use ivl_workloads::mixes::MIXES;

fn main() {
    let mut text = String::from("Table II: Multi-programmed workloads\n");
    for m in MIXES.iter() {
        text.push_str(&format!(
            "{:<5} [{:<6}] {:<32} total footprint {:>5} MiB (scaled /8)\n",
            m.name,
            format!("{:?}", m.class),
            m.benchmarks.join("-"),
            m.total_footprint_mib(),
        ));
    }
    emit("table02_workloads.txt", &text);
}
