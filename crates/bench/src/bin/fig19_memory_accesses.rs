//! Figure 19: additional memory accesses due to IvLeague operations.

use ivl_bench::{emit, perf::fig19, run_config, run_matrix};
use ivl_simulator::SchemeKind;

fn main() {
    let results = run_matrix(&SchemeKind::MAIN, &run_config());
    emit("fig19_memory_accesses.txt", &fig19(&results));
}
