//! Figure 18: NFLB hit rate for all workloads.

use ivl_bench::{emit, perf::fig18, run_config, run_matrix};
use ivl_simulator::SchemeKind;

fn main() {
    let results = run_matrix(&SchemeKind::MAIN, &run_config());
    emit("fig18_nflb_hit_rate.txt", &fig18(&results));
}
