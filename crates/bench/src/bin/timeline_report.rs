//! Timeline telemetry report and self-validating smoke gate.
//!
//! Runs one mix under one scheme with the windowed timeline recorder live
//! — serially, then on the ParSystem engine at 1/2/4 workers — and:
//!
//! * renders an ASCII sparkline table of every recorded series (with
//!   p50/p95/p99 for histogram series),
//! * prints the commit thread's phase attribution as folded-stack lines
//!   (`commit;<phase> <micros>`, ready for a flamegraph renderer),
//! * **reconciles** each window-summed series against the end-of-run
//!   registry deltas (the timeline clears at the warmup→measurement flip,
//!   so the sums must match exactly),
//! * checks the serial-comparable series (`dram.*`/`llc.*`/`scheme.*`)
//!   are bit-identical between the serial run and every worker count
//!   (`par.*` series carry real scheduling signal and are excluded),
//! * checks the folded stack attributes ≥ 95% of profiled commit-thread
//!   time to named phases, and
//! * round-trips the serial timeline through its JSONL encoding at the
//!   `IVL_TIMELINE` path (default `ivl_timeline.jsonl`).
//!
//! Exits nonzero if any check fails — CI uses it as the timeline smoke
//! test, the same self-validation pattern as `obs_run`.
//!
//! Usage: `timeline_report [MIX] [SCHEME] [--quick]`.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use ivl_sim_core::config::SystemConfig;
use ivl_sim_core::obs::timeline::{folded_line, sparkline, write_timeline_jsonl, Cell, HistCell};
use ivl_sim_core::obs::{ObsConfig, StatsRegistry, TimelineData};
use ivl_simulator::{run_mix_observed, run_mix_observed_par, ObservedRun, RunConfig, SchemeKind};
use ivl_workloads::mixes::mix_by_name;

/// ParSystem worker counts the bit-identity gate sweeps.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// Minimum fraction of profiled commit-thread time the folded stack must
/// attribute to named (non-`other`) phases.
const MIN_COVERAGE: f64 = 0.95;

fn env_path(var: &str, default: &str) -> PathBuf {
    match std::env::var(var) {
        Ok(v) if !v.trim().is_empty() && v != "1" && !v.eq_ignore_ascii_case("true") => {
            PathBuf::from(v.trim())
        }
        _ => PathBuf::from(default),
    }
}

/// Sums every `(series, registry expectation)` pair that must reconcile:
/// the timeline's per-window sums over the measurement window against the
/// registry's epoch deltas. `None` expectations mean the registry skipped
/// the counter (it stayed zero), so the series must be absent too.
fn reconcile(
    tag: &str,
    tl: &TimelineData,
    reg: &StatsRegistry,
    check: &mut impl FnMut(bool, String),
) {
    let hot = match (
        reg.counter("scheme.hot_migrations"),
        reg.counter("scheme.hot_demotions"),
    ) {
        (None, None) => None,
        (a, b) => Some(a.unwrap_or(0) + b.unwrap_or(0)),
    };
    let pairs: [(&str, Option<u64>); 10] = [
        ("dram.reads", reg.counter("dram.reads")),
        ("dram.writes", reg.counter("dram.writes")),
        (
            "dram.idle_skipped_cycles",
            reg.counter("dram.idle_skipped_cycles"),
        ),
        ("llc.misses", reg.ratio("llc.data").map(|hm| hm.misses())),
        ("llc.evictions", reg.counter("llc.evictions")),
        (
            "scheme.walk_legs",
            reg.counter("scheme.path_len_sum").filter(|&v| v > 0),
        ),
        (
            "scheme.nflb_misses",
            reg.ratio("scheme.nflb")
                .map(|hm| hm.misses())
                .filter(|&v| v > 0),
        ),
        ("scheme.nfl_claims", reg.counter("scheme.nfl_claims")),
        ("scheme.nfl_recycles", reg.counter("scheme.nfl_recycles")),
        ("scheme.hot_churn", hot),
    ];
    for (series, expect) in pairs {
        let got = tl.counter_sum(series);
        match expect {
            // A zero registry value may mean no emissions at all, in which
            // case the series legitimately never materialized.
            Some(v) => check(
                got.unwrap_or(0) == v,
                format!("{tag}: {series} window sum {got:?} != registry {v}"),
            ),
            None => check(
                got.is_none(),
                format!("{tag}: {series} recorded {got:?} but the registry has no counterpart"),
            ),
        }
    }
    // Gauge reconcile: the calendar-occupancy series' max over the
    // measurement window must equal the registry's exported peak (both
    // reset at the warmup→measurement flip).
    let tl_occ = tl
        .series
        .iter()
        .find(|(name, _)| *name == "cal.occupancy")
        .map(|(_, s)| {
            s.windows
                .iter()
                .map(|(_, c)| match c {
                    Cell::Gauge(g) => *g,
                    _ => 0.0,
                })
                .fold(0.0f64, f64::max)
        });
    match reg.gauge("cal.occupancy_peak") {
        Some(peak) => check(
            tl_occ == Some(peak),
            format!("{tag}: cal.occupancy max {tl_occ:?} != registry peak {peak}"),
        ),
        None => check(
            tl_occ.is_none(),
            format!("{tag}: cal.occupancy recorded but no registry peak exported"),
        ),
    }
    check(
        tl.dropped() == 0,
        format!(
            "{tag}: timeline dropped {} window(s) — raise IVL_TIMELINE_CAP",
            tl.dropped()
        ),
    );
}

/// The serial-comparable view of a timeline: everything outside the
/// engine-health `par.*` namespace.
fn comparable(tl: &TimelineData) -> BTreeMap<&str, &ivl_sim_core::obs::timeline::Series> {
    tl.series
        .iter()
        .filter(|(name, _)| !name.starts_with("par."))
        .map(|(name, s)| (name.as_str(), s))
        .collect()
}

/// One sparkline row per series: per-window magnitudes scaled to the
/// series max (counter value, gauge level, or histogram sample count).
fn render_table(tl: &TimelineData) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>10} {:>8}  profile (window = {} cycles)\n",
        "series", "total", "windows", tl.window
    ));
    for (name, s) in &tl.series {
        let values: Vec<f64> = s
            .windows
            .iter()
            .map(|(_, c)| match c {
                Cell::Counter(v) => *v as f64,
                Cell::Gauge(g) => *g,
                Cell::Hist(h) => h.count as f64,
            })
            .collect();
        let total = match s.windows.front().map(|(_, c)| c) {
            Some(Cell::Counter(_)) => format!("{}", s.counter_sum()),
            Some(Cell::Hist(_)) => format!("{}", s.hist_count()),
            _ => format!("{:.1}", values.iter().cloned().fold(0.0f64, f64::max)),
        };
        out.push_str(&format!(
            "{name:<26} {total:>10} {:>8}  {}\n",
            s.windows.len(),
            sparkline(&values)
        ));
        if let Some(Cell::Hist(_)) = s.windows.front().map(|(_, c)| c) {
            let mut merged = HistCell::empty();
            for (_, c) in &s.windows {
                if let Cell::Hist(h) = c {
                    merged.merge(h);
                }
            }
            out.push_str(&format!(
                "{:<26} {:>10} {:>8}  p50={} p95={} p99={} max={}\n",
                "",
                "",
                "",
                merged.percentile(0.50),
                merged.percentile(0.95),
                merged.percentile(0.99),
                merged.max
            ));
        }
    }
    out
}

/// Renders `par.commitphase.*` registry counters as folded-stack lines and
/// returns `(folded text, named coverage fraction)`.
fn folded_commit_stack(reg: &StatsRegistry) -> Option<(String, f64)> {
    let total = reg.counter("par.commitphase.total.micros")?;
    let phases = ["calendar", "generation", "l2_replay", "integrity", "other"];
    let mut out = String::new();
    let mut named = 0u64;
    for phase in phases {
        let us = reg
            .counter(&format!("par.commitphase.{phase}.micros"))
            .unwrap_or(0);
        if phase != "other" {
            named += us;
        }
        out.push_str(&folded_line(&["commit", phase], us));
        out.push('\n');
    }
    let coverage = if total == 0 {
        1.0
    } else {
        named as f64 / total as f64
    };
    Some((out, coverage))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--quick")
        .collect();
    let mix_name = args.first().map(String::as_str).unwrap_or("S-1");
    let scheme_name = args.get(1).map(String::as_str).unwrap_or("IvPro");
    let Some(mix) = mix_by_name(mix_name) else {
        eprintln!("unknown mix {mix_name:?}");
        return ExitCode::FAILURE;
    };
    let Some(scheme) = SchemeKind::from_label(scheme_name) else {
        eprintln!("unknown scheme {scheme_name:?}");
        return ExitCode::FAILURE;
    };

    let run = if ivl_bench::quick_mode() {
        RunConfig::smoke_test()
    } else {
        RunConfig {
            warmup_accesses: 2_000,
            measure_accesses: 60_000,
            seed: 2024,
        }
    };
    let sys = SystemConfig::default();
    let mut obs_cfg = ObsConfig::off();
    obs_cfg.timeline = true;
    if let Ok(w) = std::env::var("IVL_TIMELINE_WINDOW") {
        if let Ok(w) = w.trim().parse::<u64>() {
            obs_cfg.timeline_window = w.max(1);
        }
    }

    let mut errors: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: String| {
        if !ok {
            errors.push(what);
        }
    };

    eprintln!(
        "[timeline_report] {mix_name}/{} serial (window = {} cycles)",
        scheme.label(),
        obs_cfg.timeline_window
    );
    let serial = run_mix_observed(mix, scheme, &run, &sys, &obs_cfg);
    reconcile("serial", &serial.timeline, &serial.registry, &mut check);
    check(
        !serial.timeline.is_empty(),
        "serial run recorded no timeline series".to_string(),
    );

    let mut par_runs: Vec<(usize, ObservedRun)> = Vec::new();
    for workers in WORKER_COUNTS {
        eprintln!(
            "[timeline_report] {mix_name}/{} par workers={workers}",
            scheme.label()
        );
        let par = run_mix_observed_par(mix, scheme, &run, &sys, &obs_cfg, workers);
        reconcile(
            &format!("par w={workers}"),
            &par.timeline,
            &par.registry,
            &mut check,
        );
        check(
            comparable(&par.timeline) == comparable(&serial.timeline),
            format!("par w={workers}: serial-comparable series drifted from the serial timeline"),
        );
        par_runs.push((workers, par));
    }

    // JSONL round-trip of the serial timeline at the IVL_TIMELINE path.
    let tl_path = env_path("IVL_TIMELINE", "ivl_timeline.jsonl");
    match write_timeline_jsonl(&serial.timeline, &tl_path) {
        Err(e) => check(false, format!("cannot write {}: {e}", tl_path.display())),
        Ok(()) => {
            let raw = std::fs::read_to_string(&tl_path).expect("read timeline back");
            match TimelineData::parse_jsonl(&raw) {
                Err(e) => check(false, format!("timeline JSONL unparseable: {e}")),
                Ok(parsed) => check(
                    parsed == serial.timeline,
                    "timeline JSONL round-trip drifted".to_string(),
                ),
            }
            eprintln!("[timeline_report] wrote {}", tl_path.display());
        }
    }

    println!(
        "# {mix_name}/{} — serial measurement window",
        scheme.label()
    );
    print!("{}", render_table(&serial.timeline));

    // Folded commit-thread phase stacks, one per worker count; the
    // coverage gate runs on every ParSystem run.
    for (workers, par) in &par_runs {
        match folded_commit_stack(&par.registry) {
            None => check(
                false,
                format!("par w={workers}: par.commitphase.* counters missing"),
            ),
            Some((folded, coverage)) => {
                println!("# commit-thread folded stack (workers = {workers})");
                print!("{folded}");
                println!("# named-phase coverage: {:.1}%", coverage * 100.0);
                check(
                    coverage >= MIN_COVERAGE,
                    format!(
                        "par w={workers}: folded stack attributes only {:.1}% of commit time",
                        coverage * 100.0
                    ),
                );
            }
        }
    }

    if errors.is_empty() {
        eprintln!("[timeline_report] validation OK");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("[timeline_report] FAIL: {e}");
        }
        ExitCode::FAILURE
    }
}
