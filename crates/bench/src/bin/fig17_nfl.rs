//! Figure 17: effectiveness of the NFL — performance against the naive
//! BV-v1/BV-v2 allocators (17a) and TreeLing utilization / untracked
//! slots under the NFL (17b).

use ivl_bench::{emit, find, run_config, run_matrix};
use ivl_sim_core::stats::gmean;
use ivl_simulator::SchemeKind;
use ivl_workloads::mixes::{MixClass, MIXES};

fn main() {
    let run = run_config();
    let schemes = [
        SchemeKind::Baseline,
        SchemeKind::IvPro,
        SchemeKind::BvV1,
        SchemeKind::BvV2,
    ];
    let results = run_matrix(&schemes, &run);

    let mut text = String::from(
        "Figure 17a: Weighted IPC (normalized to Baseline) with NFL vs naive bit vectors\n",
    );
    text.push_str(&format!(
        "{:<8} {:>12} {:>10} {:>10}\n",
        "class", "NFL (Pro)", "BV-v1", "BV-v2"
    ));
    for class in [MixClass::Small, MixClass::Medium, MixClass::Large] {
        let mixes: Vec<&str> = MIXES
            .iter()
            .filter(|m| m.class == class)
            .map(|m| m.name)
            .collect();
        let mut cols: Vec<String> = Vec::new();
        for scheme in [SchemeKind::IvPro, SchemeKind::BvV1, SchemeKind::BvV2] {
            let mut vals = Vec::new();
            let mut failed = false;
            let mut leaking = false;
            for mix in &mixes {
                let r = find(&results, mix, scheme);
                let base = find(&results, mix, SchemeKind::Baseline).weighted_ipc();
                vals.push(r.weighted_ipc() / base);
                failed |= r.failed;
                // BV-v1 leaks cross-TreeLing frees; at the paper's 1B-
                // instruction horizon (~100x our measured window) a nonzero
                // leak rate exhausts the TreeLing supply.
                leaking |=
                    scheme == SchemeKind::BvV1 && r.bv_leaked_slots.map(|l| l > 0).unwrap_or(false);
            }
            let g = gmean(&vals);
            cols.push(if failed {
                format!("{g:.3} x")
            } else if leaking {
                format!("{g:.3} x*")
            } else {
                format!("{g:.3}")
            });
        }
        text.push_str(&format!(
            "avg{:<5} {:>12} {:>10} {:>10}\n",
            class.prefix(),
            cols[0],
            cols[1],
            cols[2]
        ));
    }
    text.push_str(
        "(x = allocation failures observed; x* = BV-v1 leak rate projects TreeLing\n exhaustion at the paper's 1B-instruction horizon)\n\n",
    );

    text.push_str("Figure 17b: TreeLing utilization and untracked slots under the NFL\n");
    text.push_str(&format!(
        "{:<8} {:>14} {:>16}\n",
        "class", "utilization", "untracked slots"
    ));
    for class in [MixClass::Small, MixClass::Medium, MixClass::Large] {
        let mixes: Vec<&str> = MIXES
            .iter()
            .filter(|m| m.class == class)
            .map(|m| m.name)
            .collect();
        let mut utils = Vec::new();
        let mut untracked = 0u64;
        for mix in &mixes {
            let r = find(&results, mix, SchemeKind::IvPro);
            if let Some(u) = r.utilization {
                utils.push(u);
            }
            untracked += r.untracked_slots.unwrap_or(0);
        }
        let mean = if utils.is_empty() {
            1.0
        } else {
            utils.iter().sum::<f64>() / utils.len() as f64
        };
        text.push_str(&format!(
            "avg{:<5} {:>13.3}% {:>16}\n",
            class.prefix(),
            mean * 100.0,
            untracked
        ));
    }
    emit("fig17_nfl.txt", &text);
}
