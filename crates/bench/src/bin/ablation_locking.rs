//! Ablation: what does pinning the upper structure (TreeLing roots'
//! ancestors) on-chip buy?
//!
//! DESIGN.md calls for ablation benches on the design choices; this one
//! removes IvLeague's root locking (§VI-B / §VIII) and measures the cost.
//! Locking is what guarantees that *no in-memory metadata block is shared
//! between domains*: without it the upper-structure blocks — each covering
//! eight TreeLings that may belong to different domains — become ordinary
//! evictable cache lines whose hit/miss timing one domain can modulate and
//! another observe, re-opening the MetaLeak channel the design exists to
//! close. The run below quantifies the performance side: locked walks
//! terminate on-chip, unlocked walks occasionally pay an extra memory
//! fetch.

use ivl_bench::emit;
use ivl_dram::DramModel;
use ivl_secure_mem::subsystem::IntegritySubsystem;
use ivl_sim_core::addr::PageNum;
use ivl_sim_core::config::{IvVariant, SystemConfig};
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::rng::Xoshiro256;
use ivl_workloads::zipf::Zipf;
use ivleague::scheme::{AllocatorKind, IvLeagueSubsystem};

struct Outcome {
    avg_read_latency: f64,
    avg_path: f64,
    meta_reads: u64,
}

fn drive(lock_upper: bool) -> Outcome {
    let cfg = SystemConfig::default();
    let mut dram = DramModel::new(&cfg.dram);
    let mut scheme =
        IvLeagueSubsystem::with_options(&cfg, IvVariant::Basic, AllocatorKind::Nfl, lock_upper);
    let mut rng = Xoshiro256::seed_from(11);
    let domains: Vec<DomainId> = (1..=4).map(DomainId::new_unchecked).collect();
    let pages_per_domain = 40_000u64;
    let mut now = 0u64;
    for (di, d) in domains.iter().enumerate() {
        for i in 0..pages_per_domain {
            now =
                scheme.page_alloc(now, &mut dram, PageNum::new(di as u64 * 2_000_000 + i), *d) + 10;
        }
    }
    let zipf = Zipf::new(pages_per_domain as usize, 0.8);
    let mut lat_sum = 0u64;
    let mut reads = 0u64;
    const N: u64 = 400_000;
    for i in 0..N {
        let di = rng.index(4);
        let page = PageNum::new(di as u64 * 2_000_000 + zipf.sample(&mut rng) as u64);
        let block = page.block(rng.index(64));
        let is_write = i % 4 == 0;
        let done = scheme.data_access(now, &mut dram, block, domains[di], is_write);
        if !is_write {
            lat_sum += done - now;
            reads += 1;
        }
        now = done + 20;
    }
    let s = scheme.stats();
    Outcome {
        avg_read_latency: lat_sum as f64 / reads as f64,
        avg_path: s.avg_path_length(),
        meta_reads: s.meta_reads,
    }
}

fn main() {
    let locked = drive(true);
    let unlocked = drive(false);
    let text = format!(
        "Ablation: pinning the upper structure on-chip (IvLeague-Basic, 4 domains)\n\
         {:<28} {:>12} {:>12}\n\
         {:<28} {:>12.1} {:>12.1}\n\
         {:<28} {:>12.3} {:>12.3}\n\
         {:<28} {:>12} {:>12}\n\n\
         Reading: unlocking frees the ~585 reserved lines for ordinary nodes,\n\
         so it is typically slightly *faster* — locking costs a few percent of\n\
         read latency. That cost is the price of the isolation guarantee:\n\
         with locking, every verification terminates at an on-chip block and\n\
         no in-memory metadata block is ever shared between domains (§VIII\n\
         ➊–➌). Without it, each upper-structure block covers eight TreeLings\n\
         — potentially of different domains — and its cache residency becomes\n\
         cross-domain observable state: the MetaLeak channel returns at the\n\
         level above TreeLing roots.\n",
        "metric",
        "locked",
        "unlocked",
        "avg read latency (cycles)",
        locked.avg_read_latency,
        unlocked.avg_read_latency,
        "avg verification path",
        locked.avg_path,
        unlocked.avg_path,
        "metadata reads",
        locked.meta_reads,
        unlocked.meta_reads,
    );
    emit("ablation_locking.txt", &text);
    assert!(locked.avg_path > 0.0 && unlocked.avg_path > 0.0);
    // Locking trades a little latency for isolation; the delta must stay
    // small (a few percent), otherwise the reservation is mis-sized.
    assert!(
        locked.avg_read_latency < unlocked.avg_read_latency * 1.15,
        "locking overhead out of range"
    );
}
