//! One-shot observability run: simulate a mix, run a short attack, and
//! write the combined trace (JSONL) plus the stats registry (JSON) to the
//! exact paths `IVL_TRACE` / `IVL_STATS_JSON` name (defaults:
//! `ivl_trace.jsonl` / `ivl_stats.json`).
//!
//! The binary then *validates its own artifacts* — the JSONL parses back,
//! the required event families are present with monotonic cycle stamps,
//! and the stats JSON reconciles with the in-memory accessors — and exits
//! nonzero if anything is off. CI uses it as the observability smoke test.
//!
//! Usage: `obs_run [MIX] [SCHEME] [--quick]`, e.g. `obs_run S-1 IvPro`.

use std::path::PathBuf;
use std::process::ExitCode;

use ivl_attack::{run_attack_with_obs, AttackConfig, TargetScheme};
use ivl_sim_core::config::SystemConfig;
use ivl_sim_core::obs::trace::{parse_jsonl, probe_observations};
use ivl_sim_core::obs::{
    write_stats_json, write_trace_jsonl, Obs, ObsConfig, StatsRegistry, TimelineData, TraceFilter,
    Tracer, DEFAULT_TRACE_CAP,
};
use ivl_simulator::{run_mix_observed, run_mix_observed_par, EngineKind, RunConfig, SchemeKind};
use ivl_workloads::mixes::mix_by_name;
use ivleague::sharded::{DomainAlloc, ShardedForest};

fn env_path(var: &str, default: &str) -> PathBuf {
    match std::env::var(var) {
        Ok(v) if !v.trim().is_empty() && v != "1" && !v.eq_ignore_ascii_case("true") => {
            PathBuf::from(v.trim())
        }
        _ => PathBuf::from(default),
    }
}

/// Threads and alloc/free pairs per thread of the embedded sharded-forest
/// storm; `forest.claims`/`forest.releases` must both land on exactly
/// `STORM_THREADS * STORM_PAIRS`.
const STORM_THREADS: usize = 4;
const STORM_PAIRS: u64 = 5_000;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| a != "--quick")
        .collect();
    let mix_name = args.first().map(String::as_str).unwrap_or("S-1");
    let scheme_name = args.get(1).map(String::as_str).unwrap_or("IvPro");
    let Some(mix) = mix_by_name(mix_name) else {
        eprintln!("unknown mix {mix_name:?}");
        return ExitCode::FAILURE;
    };
    let Some(scheme) = SchemeKind::from_label(scheme_name) else {
        eprintln!("unknown scheme {scheme_name:?}");
        return ExitCode::FAILURE;
    };

    // Long enough to leave warmup on the small mixes unless quick mode.
    let run = if ivl_bench::quick_mode() {
        RunConfig::smoke_test()
    } else {
        RunConfig {
            warmup_accesses: 2_000,
            measure_accesses: 60_000,
            seed: 2024,
        }
    };

    let mut obs_cfg = ObsConfig::off();
    obs_cfg.trace = true;
    obs_cfg.trace_cap = std::env::var("IVL_TRACE_CAP")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map_or(DEFAULT_TRACE_CAP, |c| c.max(1));
    obs_cfg.profile = true;
    if let Ok(f) = std::env::var("IVL_TRACE_FILTER") {
        obs_cfg.trace_filter = TraceFilter::parse(&f);
    }

    let engine = EngineKind::from_env();
    eprintln!(
        "[obs_run] simulating {mix_name} under {} ({engine:?} engine)",
        scheme.label()
    );
    let sys = SystemConfig::default();
    let observed = match engine {
        EngineKind::Serial => run_mix_observed(mix, scheme, &run, &sys, &obs_cfg),
        EngineKind::Par { workers } => {
            run_mix_observed_par(mix, scheme, &run, &sys, &obs_cfg, workers)
        }
    };

    // A short attack against the global tree, traced separately; its
    // cycles are offset past the mix run's so the merged stream keeps one
    // monotonic timeline.
    eprintln!("[obs_run] running attack probe trace");
    let attack_obs = Obs {
        tracer: Tracer::bounded(obs_cfg.trace_cap, obs_cfg.trace_filter.clone()),
        profiler: ivl_sim_core::obs::Profiler::disabled(),
        timeline: ivl_sim_core::obs::Timeline::disabled(),
    };
    let attack = run_attack_with_obs(
        TargetScheme::GlobalTree,
        &AttackConfig {
            bits: 64,
            noise: 0.0,
            seed: 7,
        },
        &attack_obs,
    );
    let mut events = observed.events;
    let offset = events.last().map(|r| r.cycle + 1).unwrap_or(0);
    let seq_offset = events.len() as u64;
    for mut r in attack_obs.tracer.sorted_records() {
        r.cycle += offset;
        r.seq += seq_offset;
        events.push(r);
    }

    let mut registry = observed.registry;
    registry.set_gauge("attack.accuracy", attack.accuracy);
    registry.set_counter("attack.probes", 2 * attack.samples.len() as u64);

    // Exercise the sharded forest allocator under real threads and export
    // its contention counters into the same registry (`forest.*`). The
    // op counts are fixed, so claims/releases reconcile exactly below no
    // matter how the threads interleave. Each thread additionally records
    // its own `forest.w<t>.claims` / `forest.w<t>.cas_retries` timeline
    // series keyed on its op index (threads have no simulated clock), and
    // the per-thread snapshots merge deterministically after the join —
    // the same worker-series merge the ParSystem engine uses.
    eprintln!("[obs_run] running sharded-forest storm ({STORM_THREADS} threads)");
    let forest = ShardedForest::new(16, 64);
    let storm_tl = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(STORM_THREADS);
        for t in 0..STORM_THREADS {
            let forest = &forest;
            handles.push(s.spawn(move || {
                let mut alloc = DomainAlloc::new(
                    forest,
                    ivl_sim_core::domain::DomainId::new_unchecked(t as u16 + 1),
                );
                let mut tl = TimelineData::new(256, 1 << 12);
                let claims_series = format!("forest.w{t}.claims");
                let retries_series = format!("forest.w{t}.cas_retries");
                let mut last_retries = 0u64;
                let mut held = Vec::new();
                for i in 0..STORM_PAIRS {
                    let h = alloc.alloc().expect("storm forest sized for all domains");
                    tl.count(&claims_series, i, 1);
                    let r = alloc.cas_retries();
                    if r > last_retries {
                        tl.count(&retries_series, i, r - last_retries);
                        last_retries = r;
                    }
                    held.push(h);
                    if held.len() == 32 || i + 1 == STORM_PAIRS {
                        for h in held.drain(..) {
                            assert!(alloc.free(h), "live handle rejected");
                        }
                    }
                }
                tl
            }));
        }
        let mut merged = TimelineData::new(256, 1 << 12);
        for h in handles {
            merged.merge(&h.join().expect("storm thread panicked"));
        }
        merged
    });
    let forest_balanced = forest.fully_free();
    forest.export_stats("forest", &mut registry);

    let trace_path = env_path("IVL_TRACE", "ivl_trace.jsonl");
    let stats_path = env_path("IVL_STATS_JSON", "ivl_stats.json");
    if let Err(e) = write_trace_jsonl(&events, &trace_path) {
        eprintln!("cannot write {}: {e}", trace_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = write_stats_json(&registry, &stats_path) {
        eprintln!("cannot write {}: {e}", stats_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[obs_run] wrote {} ({} events) and {} ({} stats)",
        trace_path.display(),
        events.len(),
        stats_path.display(),
        registry.len()
    );

    // ---- Self-validation -------------------------------------------------
    let mut errors: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: &str| {
        if !ok {
            errors.push(what.to_string());
        }
    };

    let raw = std::fs::read_to_string(&trace_path).expect("read trace back");
    match parse_jsonl(&raw) {
        Err((line, msg)) => check(
            false,
            &format!("trace JSONL unparseable at line {line}: {msg}"),
        ),
        Ok(parsed) => {
            check(
                parsed.len() == events.len(),
                "trace round-trip lost records",
            );
            check(
                parsed.windows(2).all(|w| w[0].cycle <= w[1].cycle),
                "trace cycles not monotonic",
            );
            let mut required = vec!["dram", "cache", "probe"];
            if scheme != SchemeKind::Insecure && scheme != SchemeKind::Baseline {
                required.extend(["tree_walk", "nflb"]);
            }
            for tag in required {
                check(
                    parsed.iter().any(|r| r.kind.tag() == tag),
                    &format!("missing {tag} events"),
                );
            }
            check(
                probe_observations(&parsed).len() == 2 * attack.samples.len(),
                "probe forensics do not match the attack samples",
            );
        }
    }

    let stats_raw = std::fs::read_to_string(&stats_path).expect("read stats back");
    match StatsRegistry::parse_json(&stats_raw) {
        Err(e) => check(false, &format!("stats JSON unparseable: {e}")),
        Ok(parsed) => {
            check(
                parsed.counter("scheme.data_reads") == Some(observed.result.stats.data_reads),
                "scheme.data_reads does not reconcile with the model accessor",
            );
            check(
                parsed.counter("run.core_accesses") == Some(observed.result.core_accesses),
                "run.core_accesses does not reconcile",
            );
            check(
                parsed.gauge("attack.accuracy") == Some(attack.accuracy),
                "attack.accuracy did not round-trip",
            );
            // Idle-window skipping must actually engage on the default
            // mix: cores sleep between misses, so touched banks always
            // free up ahead of the next request. The counter is part of
            // the deterministic figure state (serial == ParSystem), which
            // the CI obs leg cross-checks across engines.
            check(
                parsed
                    .counter("dram.idle_skipped_cycles")
                    .is_some_and(|v| v > 0),
                "dram.idle_skipped_cycles is zero — idle-window skipping never engaged",
            );
            let expected_pairs = STORM_THREADS as u64 * STORM_PAIRS;
            check(
                parsed.counter("forest.claims") == Some(expected_pairs),
                "forest.claims does not reconcile with the storm's op count",
            );
            check(
                parsed.counter("forest.releases") == Some(expected_pairs),
                "forest.releases does not reconcile with the storm's op count",
            );
            check(forest_balanced, "forest storm left claims behind");
            if let EngineKind::Par { workers } = engine {
                // The engine clamps to the mix's generator count, so only
                // the upper bound is checkable from here.
                check(
                    parsed
                        .counter("par.workers")
                        .is_some_and(|w| w >= 1 && w <= workers.max(1) as u64),
                    "par.workers does not reconcile with the engine config",
                );
                check(
                    parsed.counter("par.epoch_waits").is_some(),
                    "par.epoch_waits missing from a ParSystem run",
                );
                check(
                    parsed.counter("par.backpressure_waits").is_some(),
                    "par.backpressure_waits missing from a ParSystem run",
                );
            }
        }
    }

    // The merged storm timeline must reconcile with the forest totals:
    // each thread's claims series sums to its fixed op count, and the
    // claim-side CAS-loss series can only undercount the forest counter
    // (which also folds in free-list CAS traffic).
    let mut storm_retries = 0u64;
    for t in 0..STORM_THREADS {
        check(
            storm_tl.counter_sum(&format!("forest.w{t}.claims")) == Some(STORM_PAIRS),
            &format!("forest.w{t}.claims series does not sum to the storm's op count"),
        );
        storm_retries += storm_tl
            .counter_sum(&format!("forest.w{t}.cas_retries"))
            .unwrap_or(0);
    }
    check(
        registry
            .counter("forest.cas_retries")
            .is_some_and(|total| storm_retries <= total),
        "per-thread cas_retries series exceed the forest total",
    );

    if errors.is_empty() {
        eprintln!("[obs_run] validation OK");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("[obs_run] FAIL: {e}");
        }
        ExitCode::FAILURE
    }
}
