//! Figure 22: success-rate comparison of static partitioning vs IvLeague.

use ivl_analysis::scalability::fig22_sweep;
use ivl_bench::{emit, quick_mode};

fn main() {
    let trials = if quick_mode() { 50 } else { 500 };
    let pts = fig22_sweep(trials, 2024);
    let mut text = String::from(
        "Figure 22: Success rate without memory swapping (static partitioning vs IvLeague)\n",
    );
    let mut last_util = -1.0;
    for p in &pts {
        if (p.utilization - last_util).abs() > 1e-9 {
            last_util = p.utilization;
            text.push_str(&format!(
                "\n-- utilization {:.0}% --\n{:<10} {:>8} {:>12} {:>12}\n",
                p.utilization * 100.0,
                "memory",
                "domains",
                "static",
                "IvLeague"
            ));
        }
        text.push_str(&format!(
            "{:<10} {:>8} {:>11.1}% {:>11.1}%\n",
            format!("{}GiB", p.memory_gib),
            p.domains,
            p.static_rate * 100.0,
            p.ivleague_rate * 100.0
        ));
    }
    emit("fig22_scalability.txt", &text);
}
