//! Criterion micro-benchmarks for the hot mechanisms of the reproduction.
//!
//! One group per subsystem that sits on the simulated critical path:
//! cryptographic primitives, cache models, the DRAM timing model, the NFL
//! state machine, forest page mapping, the integrity-scheme data-access
//! paths, and the workload generator. `cargo bench --workspace` runs them
//! all; each completes in seconds so the full suite stays fast.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ivl_cache::set_assoc::SetAssocCache;
use ivl_cache::CacheModel;
use ivl_crypto::aes::Aes128;
use ivl_crypto::ctr::CtrEngine;
use ivl_crypto::siphash::{siphash24, SipKey};
use ivl_dram::DramModel;
use ivl_secure_mem::baseline::GlobalBmtSubsystem;
use ivl_secure_mem::functional::SecureMemory;
use ivl_secure_mem::subsystem::IntegritySubsystem;
use ivl_sim_core::addr::{BlockAddr, PageNum};
use ivl_sim_core::config::{IvVariant, SystemConfig};
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::rng::Xoshiro256;
use ivl_workloads::profiles::by_name;
use ivl_workloads::trace::TraceGenerator;
use ivleague::forest::{Forest, ForestConfig};
use ivleague::nfl::Nfl;
use ivleague::scheme::{AllocatorKind, IvLeagueSubsystem};

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    let aes = Aes128::new([7u8; 16]);
    g.bench_function("aes128_encrypt_block", |b| {
        b.iter(|| aes.encrypt_block(black_box([0x5Au8; 16])))
    });
    let key = SipKey::from_bytes([3u8; 16]);
    let msg = [0u8; 72];
    g.bench_function("siphash24_72B", |b| b.iter(|| siphash24(key, black_box(&msg))));
    let ctr = CtrEngine::new([9u8; 16]);
    g.bench_function("ctr_encrypt_64B_block", |b| {
        b.iter(|| {
            let mut block = [0xA5u8; 64];
            ctr.encrypt_block(black_box(0x1000), black_box(42), &mut block);
            block
        })
    });
    g.finish();
}

fn bench_functional_secure_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("functional_secure_memory");
    let mut mem = SecureMemory::new(1024, [1u8; 16], [2u8; 16], [3u8; 16]);
    mem.write_block(BlockAddr::new(0), &[7u8; 64]).unwrap();
    g.bench_function("verified_read_64B", |b| {
        b.iter(|| mem.read_block(black_box(BlockAddr::new(0))).unwrap())
    });
    let mut i = 0u64;
    g.bench_function("verified_write_64B", |b| {
        b.iter(|| {
            i += 1;
            mem.write_block(BlockAddr::new(i % 1024), &[i as u8; 64])
                .unwrap()
        })
    });
    g.finish();
}

fn bench_caches_and_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_dram");
    let mut cache = SetAssocCache::with_geometry(256 * 1024, 8, 64);
    let mut rng = Xoshiro256::seed_from(1);
    g.bench_function("set_assoc_access", |b| {
        b.iter(|| cache.access(black_box(rng.next_below(1 << 20)), false))
    });
    let cfg = SystemConfig::default();
    let mut dram = DramModel::new(&cfg.dram);
    let mut now = 0u64;
    g.bench_function("dram_access", |b| {
        b.iter(|| {
            now += 10;
            dram.access(now, BlockAddr::new(rng.next_below(1 << 24)), false)
        })
    });
    g.finish();
}

fn bench_nfl_and_forest(c: &mut Criterion) {
    let mut g = c.benchmark_group("ivleague_mechanisms");
    g.bench_function("nfl_alloc_free_pair", |b| {
        let mut nfl = Nfl::new((0..512).collect(), 8, 8);
        b.iter(|| {
            let a = nfl.alloc().expect("capacity");
            nfl.free(a.tag, a.slot)
        })
    });
    for variant in IvVariant::ALL {
        let mut forest = Forest::new(ForestConfig::small_for_tests(variant));
        let d = DomainId::new_unchecked(0);
        let mut page = 0u64;
        g.bench_function(format!("forest_map_unmap_{variant:?}"), |b| {
            b.iter(|| {
                page += 1;
                let p = PageNum::new(page);
                forest.map_page(d, p).expect("capacity");
                forest.unmap_page(d, p).expect("mapped")
            })
        });
    }
    g.finish();
}

fn bench_scheme_access_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheme_data_access");
    let cfg = SystemConfig::default();
    let d = DomainId::new_unchecked(1);

    let mut dram = DramModel::new(&cfg.dram);
    let mut baseline = GlobalBmtSubsystem::new(&cfg.secure, cfg.total_pages());
    let mut now = 0u64;
    let mut rng = Xoshiro256::seed_from(2);
    g.bench_function("baseline_read", |b| {
        b.iter(|| {
            now += 100;
            let blk = PageNum::new(rng.next_below(1 << 16)).block(0);
            baseline.data_access(now, &mut dram, blk, d, false)
        })
    });

    let mut dram2 = DramModel::new(&cfg.dram);
    let mut iv = IvLeagueSubsystem::new(&cfg, IvVariant::Pro, AllocatorKind::Nfl);
    let mut now2 = 0u64;
    g.bench_function("ivleague_pro_read", |b| {
        b.iter(|| {
            now2 += 100;
            let blk = PageNum::new(rng.next_below(1 << 16)).block(0);
            iv.data_access(now2, &mut dram2, blk, d, false)
        })
    });
    g.finish();
}

fn bench_workload_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    let profile = by_name("gcc").expect("profile");
    let mut gen = TraceGenerator::new(profile, DomainId::new_unchecked(0), 0, 3);
    g.bench_function("trace_next_event", |b| b.iter(|| gen.next_event()));
    g.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_functional_secure_memory,
    bench_caches_and_dram,
    bench_nfl_and_forest,
    bench_scheme_access_paths,
    bench_workload_generator
);
criterion_main!(benches);
