//! Micro-benchmarks for the hot mechanisms of the reproduction, on the
//! in-tree `ivl-testkit` harness (no criterion; DESIGN.md §5).
//!
//! One group per subsystem that sits on the simulated critical path:
//! cryptographic primitives, cache models, the DRAM timing model, the NFL
//! state machine, forest page mapping, the integrity-scheme data-access
//! paths, and the workload generator. Run with `cargo bench -p ivl-bench`;
//! `IVL_BENCH_QUICK=1` shortens samples for smoke runs, and
//! `IVL_BENCH_JSON=<path>` mirrors the results into a JSON file (the
//! checked-in `BENCH_baseline.json` seeds the perf trajectory).

use ivl_cache::set_assoc::SetAssocCache;
use ivl_cache::CacheModel;
use ivl_crypto::aes::Aes128;
use ivl_crypto::ctr::CtrEngine;
use ivl_crypto::siphash::{siphash24, SipKey};
use ivl_dram::DramModel;
use ivl_secure_mem::baseline::GlobalBmtSubsystem;
use ivl_secure_mem::functional::SecureMemory;
use ivl_secure_mem::subsystem::IntegritySubsystem;
use ivl_sim_core::addr::{BlockAddr, PageNum};
use ivl_sim_core::config::{IvVariant, SystemConfig};
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::rng::Xoshiro256;
use ivl_testkit::bench::{black_box, Harness};
use ivl_workloads::profiles::by_name;
use ivl_workloads::trace::TraceGenerator;
use ivleague::forest::{Forest, ForestConfig};
use ivleague::nfl::Nfl;
use ivleague::scheme::{AllocatorKind, IvLeagueSubsystem};

fn bench_crypto(h: &mut Harness) {
    h.group("crypto");
    let aes = Aes128::new([7u8; 16]);
    h.bench("aes128_encrypt_block", || {
        aes.encrypt_block(black_box([0x5Au8; 16]))
    });
    let key = SipKey::from_bytes([3u8; 16]);
    let msg = [0u8; 72];
    h.bench("siphash24_72B", || siphash24(key, black_box(&msg)));
    let ctr = CtrEngine::new([9u8; 16]);
    h.bench("ctr_encrypt_64B_block", || {
        let mut block = [0xA5u8; 64];
        ctr.encrypt_block(black_box(0x1000), black_box(42), &mut block);
        block
    });
}

fn bench_functional_secure_memory(h: &mut Harness) {
    h.group("functional_secure_memory");
    let mut mem = SecureMemory::new(1024, [1u8; 16], [2u8; 16], [3u8; 16]);
    mem.write_block(BlockAddr::new(0), &[7u8; 64]).unwrap();
    h.bench("verified_read_64B", || {
        mem.read_block(black_box(BlockAddr::new(0))).unwrap()
    });
    let mut mem = SecureMemory::new(1024, [1u8; 16], [2u8; 16], [3u8; 16]);
    let mut i = 0u64;
    h.bench("verified_write_64B", || {
        i += 1;
        mem.write_block(BlockAddr::new(i % 1024), &[i as u8; 64])
            .unwrap()
    });
}

fn bench_caches_and_dram(h: &mut Harness) {
    h.group("cache_dram");
    let mut cache = SetAssocCache::with_geometry(256 * 1024, 8, 64);
    let mut rng = Xoshiro256::seed_from(1);
    h.bench("set_assoc_access", || {
        cache.access(black_box(rng.next_below(1 << 20)), false)
    });
    // Worst case for the cache: a cyclic sweep over twice the cache's
    // block capacity, so once warm every access misses and evicts.
    let mut cache = SetAssocCache::with_geometry(256 * 1024, 8, 64);
    let cache_blocks = 2 * (256 * 1024 / 64) as u64;
    let mut i = 0u64;
    for _ in 0..cache_blocks {
        i += 1;
        cache.access(i % cache_blocks, false);
    }
    h.bench("llc_miss_evict", || {
        i += 1;
        cache.access(black_box(i % cache_blocks), false)
    });

    let cfg = SystemConfig::default();
    let mut dram = DramModel::new(&cfg.dram);
    let mut rng = Xoshiro256::seed_from(1);
    let mut now = 0u64;
    h.bench("dram_access", || {
        now += 10;
        dram.access(now, BlockAddr::new(rng.next_below(1 << 24)), false)
    });

    // Worst case for the DRAM model: ping-pong between two rows of the
    // same bank (same channel/bank bits, row bit toggling), so every
    // access after the first is a precharge+activate conflict.
    let mut dram = DramModel::new(&cfg.dram);
    let blocks_per_row = (cfg.dram.row_bytes / 64) as u64;
    let banks_per_channel = (cfg.dram.ranks_per_channel * cfg.dram.banks_per_rank) as u64;
    let row_stride = cfg.dram.channels as u64 * blocks_per_row * banks_per_channel;
    let mut now = 0u64;
    h.bench("dram_row_conflict", || {
        now += 10;
        dram.access(now, BlockAddr::new((now / 10 % 2) * row_stride), false)
    });

    // Long idle windows between touches of a small bank set: every access
    // drains an expired bank-ready event and accounts the skipped window —
    // the event-calendar path the lazy slab model never exercised.
    let mut dram = DramModel::new(&cfg.dram);
    let mut rng = Xoshiro256::seed_from(9);
    let mut now = 0u64;
    h.bench("dram_idle_skip", || {
        now += 50_000;
        dram.access(now, BlockAddr::new(rng.next_below(64)), false)
    });

    // The batched sibling-leg issue the integrity walk uses: one decode +
    // observability gate for a typical 4-leg batch (write-back, MAC read,
    // data read, counter read) instead of four.
    let mut dram = DramModel::new(&cfg.dram);
    let mut rng = Xoshiro256::seed_from(11);
    let mut now = 0u64;
    let mut dones: Vec<u64> = Vec::new();
    h.bench("walk_leg_batch", || {
        now += 200;
        let legs = [
            (BlockAddr::new(rng.next_below(1 << 24)), true),
            (BlockAddr::new(rng.next_below(1 << 24)), false),
            (BlockAddr::new(rng.next_below(1 << 24)), false),
            (BlockAddr::new(rng.next_below(1 << 24)), false),
        ];
        dram.access_many(now, &legs, &mut dones);
        dones.last().copied()
    });
}

fn bench_scheduler(h: &mut Harness) {
    h.group("scheduler");
    use ivl_simulator::calendar::EventCalendar;
    // Steady-state pop + reschedule over a calendar sized like a large
    // multi-domain system (cores plus deferred model events in flight).
    let mut cal: EventCalendar<u32> = EventCalendar::with_capacity(256);
    let mut rng = Xoshiro256::seed_from(3);
    for i in 0..256u32 {
        cal.schedule(rng.next_below(1_000), i as u64, i);
    }
    let mut now = 0u64;
    h.bench("scheduler_pop", || {
        let (at, id) = cal.pop().expect("calendar stays populated");
        now = now.max(at);
        cal.schedule(now + 1 + rng.next_below(200), id as u64, id);
        id
    });

    // Heterogeneous churn: core/bank/bus/writeback events cycling through
    // one typed heap, the workload the event-driven DRAM model adds on top
    // of plain core scheduling.
    use ivl_simulator::calendar::CalendarEvent;
    let mut cal: EventCalendar<CalendarEvent> = EventCalendar::with_capacity(256);
    let mut rng = Xoshiro256::seed_from(5);
    for i in 0..64u32 {
        let ev = match i % 4 {
            0 => CalendarEvent::CoreReady(i as usize),
            1 => CalendarEvent::BankReady(i),
            2 => CalendarEvent::BusDrain(i % 4),
            _ => CalendarEvent::DeferredWriteback(i % 4),
        };
        cal.schedule(rng.next_below(1_000), ev.tie(), ev);
    }
    let mut now = 0u64;
    h.bench("calendar_mixed_events", || {
        let (at, ev) = cal.pop().expect("calendar stays populated");
        now = now.max(at);
        let next = match ev {
            CalendarEvent::CoreReady(c) => CalendarEvent::BankReady(c as u32),
            CalendarEvent::BankReady(b) => CalendarEvent::BusDrain(b % 4),
            CalendarEvent::BusDrain(c) => CalendarEvent::DeferredWriteback(c),
            CalendarEvent::DeferredWriteback(c) => CalendarEvent::CoreReady(c as usize),
        };
        cal.schedule(now + 1 + rng.next_below(200), next.tie(), next);
        now
    });
}

fn bench_nfl_and_forest(h: &mut Harness) {
    h.group("ivleague_mechanisms");
    let mut nfl = Nfl::new((0..512).collect(), 8, 8);
    h.bench("nfl_alloc_free_pair", || {
        let a = nfl.alloc().expect("capacity");
        nfl.free(a.tag, a.slot)
    });
    for variant in IvVariant::ALL {
        let mut forest = Forest::new(ForestConfig::small_for_tests(variant));
        let d = DomainId::new_unchecked(0);
        let mut page = 0u64;
        h.bench(&format!("forest_map_unmap_{variant:?}"), || {
            page += 1;
            let p = PageNum::new(page);
            forest.map_page(d, p).expect("capacity");
            forest.unmap_page(d, p).expect("mapped")
        });
    }
}

fn bench_scheme_access_paths(h: &mut Harness) {
    h.group("scheme_data_access");
    let cfg = SystemConfig::default();
    let d = DomainId::new_unchecked(1);
    // Steady-state fixtures: the first touches of a fresh subsystem map
    // pages and allocate TreeLings — one-time work that poisons the
    // harness's doubling calibration (a multi-ms first batch clamps the
    // batch size to 1 iter/sample). Pre-warm past the working set so the
    // timed closure measures the per-access fast path.
    const WARM_ACCESSES: u64 = 200_000;

    let mut dram = DramModel::new(&cfg.dram);
    let mut baseline = GlobalBmtSubsystem::new(&cfg.secure, cfg.total_pages());
    let mut now = 0u64;
    let mut rng = Xoshiro256::seed_from(2);
    let mut access = move |baseline: &mut GlobalBmtSubsystem, dram: &mut DramModel| {
        now += 100;
        let blk = PageNum::new(rng.next_below(1 << 16)).block(0);
        baseline.data_access(now, dram, blk, d, false)
    };
    for _ in 0..WARM_ACCESSES {
        access(&mut baseline, &mut dram);
    }
    h.bench("baseline_read", || access(&mut baseline, &mut dram));

    let mut dram2 = DramModel::new(&cfg.dram);
    let mut iv = IvLeagueSubsystem::new(&cfg, IvVariant::Pro, AllocatorKind::Nfl);
    let mut now2 = 0u64;
    let mut rng = Xoshiro256::seed_from(2);
    let mut access = move |iv: &mut IvLeagueSubsystem, dram: &mut DramModel| {
        now2 += 100;
        let blk = PageNum::new(rng.next_below(1 << 16)).block(0);
        iv.data_access(now2, dram, blk, d, false)
    };
    for _ in 0..WARM_ACCESSES {
        access(&mut iv, &mut dram2);
    }
    h.bench("ivleague_pro_read", || access(&mut iv, &mut dram2));

    let mut dram3 = DramModel::new(&cfg.dram);
    let mut ivw = IvLeagueSubsystem::new(&cfg, IvVariant::Pro, AllocatorKind::Nfl);
    let mut now3 = 0u64;
    let mut rng = Xoshiro256::seed_from(2);
    let mut access = move |ivw: &mut IvLeagueSubsystem, dram: &mut DramModel| {
        now3 += 100;
        let blk = PageNum::new(rng.next_below(1 << 16)).block(0);
        ivw.data_access(now3, dram, blk, d, true)
    };
    for _ in 0..WARM_ACCESSES {
        access(&mut ivw, &mut dram3);
    }
    h.bench("ivleague_pro_write", || access(&mut ivw, &mut dram3));
}

fn bench_workload_generator(h: &mut Harness) {
    h.group("workloads");
    let profile = by_name("gcc").expect("profile");
    let mut gen = TraceGenerator::new(profile, DomainId::new_unchecked(0), 0, 3);
    h.bench("trace_next_event", || gen.next_event());
}

fn bench_concurrency(h: &mut Harness) {
    use ivleague::sharded::{DomainAlloc, ShardedForest};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Barrier};

    h.group("concurrency");
    // Serial baseline: the single-threaded NFL allocator's alloc/free
    // pair — the slot-allocation path the sharded forest parallelizes.
    let mut nfl = Nfl::new((0..512).collect(), 8, 8);
    let serial_ns = h
        .bench("serial_nfl_alloc_pair", || {
            let a = nfl.alloc().expect("capacity");
            nfl.free(a.tag, a.slot)
        })
        .median_ns;

    // The same pair on the sharded forest, uncontended: the price of the
    // atomics when nobody is racing.
    let forest = ShardedForest::new(24, 64);
    let mut alloc = DomainAlloc::new(&forest, DomainId::new_unchecked(1));
    let pair_1t_ns = h
        .bench("sharded_alloc_pair_1t", || {
            let s = alloc.alloc().expect("capacity");
            alloc.free(s)
        })
        .median_ns;
    drop(alloc);

    // The storm: 8 persistent threads, each slamming alloc/free pairs
    // between two barrier crossings per timed closure call. The timed
    // quantity is one full round — THREADS × PAIRS_PER_ROUND pairs of
    // aggregate work — so per-pair cost is the median divided by that.
    const STORM_THREADS: usize = 8;
    const PAIRS_PER_ROUND: u64 = 1024;
    let forest = Arc::new(ShardedForest::new(64, 64));
    let round = Arc::new(Barrier::new(STORM_THREADS + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for t in 0..STORM_THREADS {
        let forest = Arc::clone(&forest);
        let round = Arc::clone(&round);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut alloc = DomainAlloc::new(&forest, DomainId::new_unchecked(t as u16 + 1));
            loop {
                round.wait();
                if stop.load(Ordering::Acquire) {
                    break;
                }
                for _ in 0..PAIRS_PER_ROUND {
                    let s = alloc.alloc().expect("storm forest sized for all domains");
                    alloc.free(s);
                }
                round.wait();
            }
            alloc.destroy();
        }));
    }
    let storm_round_ns = h
        .bench("sharded_alloc_storm_8t", || {
            round.wait(); // release the round
            round.wait(); // all threads done
        })
        .median_ns;
    stop.store(true, Ordering::Release);
    round.wait();
    for w in workers {
        w.join().expect("storm worker");
    }
    assert!(forest.fully_free(), "storm left claims behind");

    let storm_pair_ns = storm_round_ns / (STORM_THREADS as f64 * PAIRS_PER_ROUND as f64);
    if serial_ns > 0.0 && storm_pair_ns > 0.0 {
        // The aggregate ratio is bounded above by the host's parallelism:
        // on a single-CPU box the best possible is ~1.0x (which then
        // demonstrates zero contention overhead, not zero scaling).
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        println!(
            "    concurrency: {STORM_THREADS}-thread aggregate throughput \
             {:.1}x the serial NFL pair, {:.1}x the uncontended sharded pair \
             ({cpus} CPU(s) available)",
            serial_ns / storm_pair_ns,
            pair_1t_ns / storm_pair_ns
        );
    }
}

fn bench_par_system(h: &mut Harness) {
    use ivl_simulator::{run_mix, run_mix_par, RunConfig, SchemeKind};
    use ivl_workloads::mixes::mix_by_name;

    h.group("par_system");
    // A deliberately tiny run: the point is tracking engine overhead
    // trends, not figure-scale wall clock.
    let mix = mix_by_name("S-1").expect("mix");
    let run = RunConfig {
        warmup_accesses: 500,
        measure_accesses: 2_000,
        seed: 7,
    };
    let serial_ns = h
        .bench("serial_system_step", || {
            run_mix(mix, SchemeKind::IvPro, &run)
        })
        .median_ns;
    let par_ns = h
        .bench("par_system_step", || {
            run_mix_par(mix, SchemeKind::IvPro, &run, 2)
        })
        .median_ns;
    if par_ns > 0.0 {
        println!(
            "    par_system: serial/par wall-clock ratio {:.2}x on the tiny step",
            serial_ns / par_ns
        );
    }
}

fn main() {
    let mut h = Harness::from_env("micro");
    bench_crypto(&mut h);
    bench_functional_secure_memory(&mut h);
    bench_caches_and_dram(&mut h);
    bench_scheduler(&mut h);
    bench_nfl_and_forest(&mut h);
    bench_scheme_access_paths(&mut h);
    bench_workload_generator(&mut h);
    bench_concurrency(&mut h);
    bench_par_system(&mut h);
    h.finish();
}
