//! SipHash-2-4 keyed 64-bit hash (Aumasson & Bernstein).
//!
//! Used for integrity-tree node hashes and as the compression core of the
//! MAC engine. Validated against the reference-implementation test vectors.

/// A SipHash-2-4 key (two 64-bit halves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipKey {
    /// First key half (little-endian bytes 0..8 of the 128-bit key).
    pub k0: u64,
    /// Second key half.
    pub k1: u64,
}

impl SipKey {
    /// Builds a key from 16 bytes (little-endian halves).
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        SipKey {
            k0: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            k1: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        }
    }
}

#[inline]
fn sip_round(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Computes SipHash-2-4 of `data` under `key`.
///
/// # Examples
///
/// ```
/// use ivl_crypto::siphash::{siphash24, SipKey};
/// let key = SipKey::from_bytes([0u8; 16]);
/// assert_ne!(siphash24(key, b"a"), siphash24(key, b"b"));
/// ```
pub fn siphash24(key: SipKey, data: &[u8]) -> u64 {
    let mut v = [
        key.k0 ^ 0x736f_6d65_7073_6575,
        key.k1 ^ 0x646f_7261_6e64_6f6d,
        key.k0 ^ 0x6c79_6765_6e65_7261,
        key.k1 ^ 0x7465_6462_7974_6573,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sip_round(&mut v);
        sip_round(&mut v);
        v[0] ^= m;
    }

    let rem = chunks.remainder();
    let mut last = (data.len() as u64) << 56;
    for (i, &b) in rem.iter().enumerate() {
        last |= (b as u64) << (8 * i);
    }
    v[3] ^= last;
    sip_round(&mut v);
    sip_round(&mut v);
    v[0] ^= last;

    v[2] ^= 0xff;
    for _ in 0..4 {
        sip_round(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// Convenience: hashes a sequence of 64-bit words (little-endian) — the
/// common case for tree nodes, whose content is eight 64-bit hash slots.
pub fn siphash24_words(key: SipKey, words: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    siphash24(key, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the SipHash reference implementation
    /// (key = 00 01 .. 0f, message byte `i` = `i`).
    const VECTORS: [u64; 9] = [
        0x726f_db47_dd0e_0e31,
        0x74f8_39c5_93dc_67fd,
        0x0d6c_8009_d9a9_4f5a,
        0x8567_6696_d7fb_7e2d,
        0xcf27_94e0_2771_87b7,
        0x1876_5564_cd99_a68d,
        0xcbc9_466e_58fe_e3ce,
        0xab02_00f5_8b01_d137,
        0x93f5_f579_9a93_2462,
    ];

    fn reference_key() -> SipKey {
        let mut k = [0u8; 16];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        SipKey::from_bytes(k)
    }

    #[test]
    fn reference_vectors() {
        let key = reference_key();
        let msg: Vec<u8> = (0..9).map(|i| i as u8).collect();
        for (len, expected) in VECTORS.iter().enumerate() {
            assert_eq!(
                siphash24(key, &msg[..len]),
                *expected,
                "vector length {len}"
            );
        }
    }

    #[test]
    fn key_separation() {
        let a = SipKey { k0: 1, k1: 2 };
        let b = SipKey { k0: 1, k1: 3 };
        assert_ne!(siphash24(a, b"hello"), siphash24(b, b"hello"));
    }

    #[test]
    fn words_helper_matches_bytes() {
        let key = reference_key();
        let words = [0x0706_0504_0302_0100u64, 0x0f0e_0d0c_0b0a_0908u64];
        let bytes: Vec<u8> = (0u8..16).collect();
        assert_eq!(siphash24_words(key, &words), siphash24(key, &bytes));
    }

    #[test]
    fn length_is_part_of_the_hash() {
        let key = reference_key();
        assert_ne!(siphash24(key, b"\0"), siphash24(key, b"\0\0"));
    }
}
