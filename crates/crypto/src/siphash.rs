//! SipHash-2-4 keyed 64-bit hash (Aumasson & Bernstein).
//!
//! Used for integrity-tree node hashes and as the compression core of the
//! MAC engine. Validated against the full 64-vector reference-implementation
//! test set.
//!
//! [`SipHasher24`] is the streaming entry point: callers feed words and byte
//! slices straight from their own fields into an on-stack state, so tree and
//! MAC hashing never materialises a message buffer on the heap. The one-shot
//! [`siphash24`] and [`siphash24_words`] helpers are thin wrappers over it.

/// A SipHash-2-4 key (two 64-bit halves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SipKey {
    /// First key half (little-endian bytes 0..8 of the 128-bit key).
    pub k0: u64,
    /// Second key half.
    pub k1: u64,
}

impl SipKey {
    /// Builds a key from 16 bytes (little-endian halves).
    pub fn from_bytes(bytes: [u8; 16]) -> Self {
        SipKey {
            k0: u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes")),
            k1: u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
        }
    }
}

#[inline]
fn sip_round(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Streaming SipHash-2-4 over an on-stack state — no message buffer.
///
/// Bytes fed through any mix of [`SipHasher24::write_bytes`] and
/// [`SipHasher24::write_u64`] (which contributes the word's little-endian
/// bytes) hash identically to a single [`siphash24`] call over their
/// concatenation.
///
/// # Examples
///
/// ```
/// use ivl_crypto::siphash::{siphash24, SipHasher24, SipKey};
/// let key = SipKey::from_bytes([7u8; 16]);
/// let mut h = SipHasher24::new(key);
/// h.write_u64(0xdead_beef);
/// h.write_bytes(b"tail");
/// let mut msg = 0xdead_beefu64.to_le_bytes().to_vec();
/// msg.extend_from_slice(b"tail");
/// assert_eq!(h.finish(), siphash24(key, &msg));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SipHasher24 {
    v: [u64; 4],
    /// Pending bytes, packed little-endian into the low `8 * buf_len` bits.
    buf: u64,
    buf_len: usize,
    /// Total bytes written (mod 256 enters the final block).
    len: u64,
}

impl SipHasher24 {
    /// Starts a hash under `key`.
    #[inline]
    pub fn new(key: SipKey) -> Self {
        SipHasher24 {
            v: [
                key.k0 ^ 0x736f_6d65_7073_6575,
                key.k1 ^ 0x646f_7261_6e64_6f6d,
                key.k0 ^ 0x6c79_6765_6e65_7261,
                key.k1 ^ 0x7465_6462_7974_6573,
            ],
            buf: 0,
            buf_len: 0,
            len: 0,
        }
    }

    #[inline]
    fn compress(&mut self, m: u64) {
        self.v[3] ^= m;
        sip_round(&mut self.v);
        sip_round(&mut self.v);
        self.v[0] ^= m;
    }

    /// Appends one 64-bit word (its eight little-endian bytes).
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        self.len = self.len.wrapping_add(8);
        if self.buf_len == 0 {
            self.compress(w);
        } else {
            let shift = 8 * self.buf_len;
            let m = self.buf | (w << shift);
            self.compress(m);
            self.buf = w >> (64 - shift);
        }
    }

    /// Appends a byte slice.
    #[inline]
    pub fn write_bytes(&mut self, mut bytes: &[u8]) {
        self.len = self.len.wrapping_add(bytes.len() as u64);
        // Top up a partially filled word first.
        while self.buf_len != 0 && !bytes.is_empty() {
            self.buf |= (bytes[0] as u64) << (8 * self.buf_len);
            self.buf_len += 1;
            bytes = &bytes[1..];
            if self.buf_len == 8 {
                let m = self.buf;
                self.compress(m);
                self.buf = 0;
                self.buf_len = 0;
            }
        }
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.compress(m);
        }
        for &b in chunks.remainder() {
            self.buf |= (b as u64) << (8 * self.buf_len);
            self.buf_len += 1;
        }
    }

    /// Finalises and returns the 64-bit hash.
    #[inline]
    pub fn finish(mut self) -> u64 {
        let last = ((self.len & 0xff) << 56) | self.buf;
        self.compress(last);
        self.v[2] ^= 0xff;
        for _ in 0..4 {
            sip_round(&mut self.v);
        }
        self.v[0] ^ self.v[1] ^ self.v[2] ^ self.v[3]
    }
}

/// Computes SipHash-2-4 of `data` under `key`.
///
/// # Examples
///
/// ```
/// use ivl_crypto::siphash::{siphash24, SipKey};
/// let key = SipKey::from_bytes([0u8; 16]);
/// assert_ne!(siphash24(key, b"a"), siphash24(key, b"b"));
/// ```
pub fn siphash24(key: SipKey, data: &[u8]) -> u64 {
    let mut h = SipHasher24::new(key);
    h.write_bytes(data);
    h.finish()
}

/// Convenience: hashes a sequence of 64-bit words (little-endian) — the
/// common case for tree nodes, whose content is eight 64-bit hash slots.
/// Equivalent to [`siphash24`] over the words' concatenated bytes, without
/// materialising them.
pub fn siphash24_words(key: SipKey, words: &[u64]) -> u64 {
    let mut h = SipHasher24::new(key);
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 64 official vectors from the SipHash reference implementation
    /// (`vectors.h`): key = 00 01 .. 0f, message = first `len` bytes of
    /// 00 01 02 .., row `len` is the hash output as 8 little-endian bytes.
    const VECTORS: [[u8; 8]; 64] = [
        [0x31, 0x0e, 0x0e, 0xdd, 0x47, 0xdb, 0x6f, 0x72],
        [0xfd, 0x67, 0xdc, 0x93, 0xc5, 0x39, 0xf8, 0x74],
        [0x5a, 0x4f, 0xa9, 0xd9, 0x09, 0x80, 0x6c, 0x0d],
        [0x2d, 0x7e, 0xfb, 0xd7, 0x96, 0x66, 0x67, 0x85],
        [0xb7, 0x87, 0x71, 0x27, 0xe0, 0x94, 0x27, 0xcf],
        [0x8d, 0xa6, 0x99, 0xcd, 0x64, 0x55, 0x76, 0x18],
        [0xce, 0xe3, 0xfe, 0x58, 0x6e, 0x46, 0xc9, 0xcb],
        [0x37, 0xd1, 0x01, 0x8b, 0xf5, 0x00, 0x02, 0xab],
        [0x62, 0x24, 0x93, 0x9a, 0x79, 0xf5, 0xf5, 0x93],
        [0xb0, 0xe4, 0xa9, 0x0b, 0xdf, 0x82, 0x00, 0x9e],
        [0xf3, 0xb9, 0xdd, 0x94, 0xc5, 0xbb, 0x5d, 0x7a],
        [0xa7, 0xad, 0x6b, 0x22, 0x46, 0x2f, 0xb3, 0xf4],
        [0xfb, 0xe5, 0x0e, 0x86, 0xbc, 0x8f, 0x1e, 0x75],
        [0x90, 0x3d, 0x84, 0xc0, 0x27, 0x56, 0xea, 0x14],
        [0xee, 0xf2, 0x7a, 0x8e, 0x90, 0xca, 0x23, 0xf7],
        [0xe5, 0x45, 0xbe, 0x49, 0x61, 0xca, 0x29, 0xa1],
        [0xdb, 0x9b, 0xc2, 0x57, 0x7f, 0xcc, 0x2a, 0x3f],
        [0x94, 0x47, 0xbe, 0x2c, 0xf5, 0xe9, 0x9a, 0x69],
        [0x9c, 0xd3, 0x8d, 0x96, 0xf0, 0xb3, 0xc1, 0x4b],
        [0xbd, 0x61, 0x79, 0xa7, 0x1d, 0xc9, 0x6d, 0xbb],
        [0x98, 0xee, 0xa2, 0x1a, 0xf2, 0x5c, 0xd6, 0xbe],
        [0xc7, 0x67, 0x3b, 0x2e, 0xb0, 0xcb, 0xf2, 0xd0],
        [0x88, 0x3e, 0xa3, 0xe3, 0x95, 0x67, 0x53, 0x93],
        [0xc8, 0xce, 0x5c, 0xcd, 0x8c, 0x03, 0x0c, 0xa8],
        [0x94, 0xaf, 0x49, 0xf6, 0xc6, 0x50, 0xad, 0xb8],
        [0xea, 0xb8, 0x85, 0x8a, 0xde, 0x92, 0xe1, 0xbc],
        [0xf3, 0x15, 0xbb, 0x5b, 0xb8, 0x35, 0xd8, 0x17],
        [0xad, 0xcf, 0x6b, 0x07, 0x63, 0x61, 0x2e, 0x2f],
        [0xa5, 0xc9, 0x1d, 0xa7, 0xac, 0xaa, 0x4d, 0xde],
        [0x71, 0x65, 0x95, 0x87, 0x66, 0x50, 0xa2, 0xa6],
        [0x28, 0xef, 0x49, 0x5c, 0x53, 0xa3, 0x87, 0xad],
        [0x42, 0xc3, 0x41, 0xd8, 0xfa, 0x92, 0xd8, 0x32],
        [0xce, 0x7c, 0xf2, 0x72, 0x2f, 0x51, 0x27, 0x71],
        [0xe3, 0x78, 0x59, 0xf9, 0x46, 0x23, 0xf3, 0xa7],
        [0x38, 0x12, 0x05, 0xbb, 0x1a, 0xb0, 0xe0, 0x12],
        [0xae, 0x97, 0xa1, 0x0f, 0xd4, 0x34, 0xe0, 0x15],
        [0xb4, 0xa3, 0x15, 0x08, 0xbe, 0xff, 0x4d, 0x31],
        [0x81, 0x39, 0x62, 0x29, 0xf0, 0x90, 0x79, 0x02],
        [0x4d, 0x0c, 0xf4, 0x9e, 0xe5, 0xd4, 0xdc, 0xca],
        [0x5c, 0x73, 0x33, 0x6a, 0x76, 0xd8, 0xbf, 0x9a],
        [0xd0, 0xa7, 0x04, 0x53, 0x6b, 0xa9, 0x3e, 0x0e],
        [0x92, 0x59, 0x58, 0xfc, 0xd6, 0x42, 0x0c, 0xad],
        [0xa9, 0x15, 0xc2, 0x9b, 0xc8, 0x06, 0x73, 0x18],
        [0x95, 0x2b, 0x79, 0xf3, 0xbc, 0x0a, 0xa6, 0xd4],
        [0xf2, 0x1d, 0xf2, 0xe4, 0x1d, 0x45, 0x35, 0xf9],
        [0x87, 0x57, 0x75, 0x19, 0x04, 0x8f, 0x53, 0xa9],
        [0x10, 0xa5, 0x6c, 0xf5, 0xdf, 0xcd, 0x9a, 0xdb],
        [0xeb, 0x75, 0x09, 0x5c, 0xcd, 0x98, 0x6c, 0xd0],
        [0x51, 0xa9, 0xcb, 0x9e, 0xcb, 0xa3, 0x12, 0xe6],
        [0x96, 0xaf, 0xad, 0xfc, 0x2c, 0xe6, 0x66, 0xc7],
        [0x72, 0xfe, 0x52, 0x97, 0x5a, 0x43, 0x64, 0xee],
        [0x5a, 0x16, 0x45, 0xb2, 0x76, 0xd5, 0x92, 0xa1],
        [0xb2, 0x74, 0xcb, 0x8e, 0xbf, 0x87, 0x87, 0x0a],
        [0x6f, 0x9b, 0xb4, 0x20, 0x3d, 0xe7, 0xb3, 0x81],
        [0xea, 0xec, 0xb2, 0xa3, 0x0b, 0x22, 0xa8, 0x7f],
        [0x99, 0x24, 0xa4, 0x3c, 0xc1, 0x31, 0x57, 0x24],
        [0xbd, 0x83, 0x8d, 0x3a, 0xaf, 0xbf, 0x8d, 0xb7],
        [0x0b, 0x1a, 0x2a, 0x32, 0x65, 0xd5, 0x1a, 0xea],
        [0x13, 0x50, 0x79, 0xa3, 0x23, 0x1c, 0xe6, 0x60],
        [0x93, 0x2b, 0x28, 0x46, 0xe4, 0xd7, 0x06, 0x66],
        [0xe1, 0x91, 0x5f, 0x5c, 0xb1, 0xec, 0xa4, 0x6c],
        [0xf3, 0x25, 0x96, 0x5c, 0xa1, 0x6d, 0x62, 0x9f],
        [0x57, 0x5f, 0xf2, 0x8e, 0x60, 0x38, 0x1b, 0xe5],
        [0x72, 0x45, 0x06, 0xeb, 0x4c, 0x32, 0x8a, 0x95],
    ];

    fn reference_key() -> SipKey {
        let mut k = [0u8; 16];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        SipKey::from_bytes(k)
    }

    #[test]
    fn official_reference_vectors() {
        let key = reference_key();
        let msg: Vec<u8> = (0..64).map(|i| i as u8).collect();
        for (len, expected) in VECTORS.iter().enumerate() {
            assert_eq!(
                siphash24(key, &msg[..len]),
                u64::from_le_bytes(*expected),
                "vector length {len}"
            );
        }
    }

    #[test]
    fn streaming_matches_one_shot_across_splits() {
        let key = reference_key();
        let msg: Vec<u8> = (0..64).map(|i| i as u8).collect();
        for len in 0..=64usize {
            let expected = siphash24(key, &msg[..len]);
            for split in 0..=len {
                let mut h = SipHasher24::new(key);
                h.write_bytes(&msg[..split]);
                h.write_bytes(&msg[split..len]);
                assert_eq!(h.finish(), expected, "len {len} split {split}");
            }
        }
    }

    #[test]
    fn write_u64_matches_le_bytes() {
        let key = reference_key();
        // Mixed word/byte writes, including words landing on unaligned
        // buffer positions.
        let mut h = SipHasher24::new(key);
        h.write_bytes(&[0xab, 0xcd, 0xef]);
        h.write_u64(0x0123_4567_89ab_cdef);
        h.write_u64(0xfeed_face_cafe_f00d);
        h.write_bytes(&[0x42]);
        let mut msg = vec![0xab, 0xcd, 0xef];
        msg.extend_from_slice(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        msg.extend_from_slice(&0xfeed_face_cafe_f00du64.to_le_bytes());
        msg.push(0x42);
        assert_eq!(h.finish(), siphash24(key, &msg));
    }

    #[test]
    fn key_separation() {
        let a = SipKey { k0: 1, k1: 2 };
        let b = SipKey { k0: 1, k1: 3 };
        assert_ne!(siphash24(a, b"hello"), siphash24(b, b"hello"));
    }

    #[test]
    fn words_helper_matches_bytes() {
        let key = reference_key();
        let words = [0x0706_0504_0302_0100u64, 0x0f0e_0d0c_0b0a_0908u64];
        let bytes: Vec<u8> = (0u8..16).collect();
        assert_eq!(siphash24_words(key, &words), siphash24(key, &bytes));
    }

    #[test]
    fn length_is_part_of_the_hash() {
        let key = reference_key();
        assert_ne!(siphash24(key, b"\0"), siphash24(key, b"\0\0"));
    }
}
