//! Cryptographic primitives for the secure-memory substrate.
//!
//! Secure processors in the IvLeague paper rely on three cryptographic
//! mechanisms (Section II-B): counter-mode encryption with per-block split
//! counters, keyed-hash message authentication codes, and an integrity tree
//! of keyed hashes. This crate implements the primitives from scratch so the
//! reproduction has no external cryptographic dependencies:
//!
//! * [`aes`] — AES-128 block encryption (FIPS-197), used to generate the
//!   one-time pads of counter-mode encryption;
//! * [`siphash`] — SipHash-2-4 keyed 64-bit hash, used for tree-node hashes
//!   and data MACs;
//! * [`ctr`] — counter-mode encryption of 64 B memory blocks;
//! * [`mac`] — per-block MACs over (address, counter, data).
//!
//! These are *simulation-grade* implementations: functionally correct and
//! test-vector-validated, but not constant-time. The reproduction uses them
//! to get real tamper-detection semantics, not production key protection.
//!
//! # Examples
//!
//! ```
//! use ivl_crypto::{ctr::CtrEngine, mac::MacEngine};
//!
//! let enc = CtrEngine::new([7u8; 16]);
//! let mut block = [0xABu8; 64];
//! let original = block;
//! enc.encrypt_block(0x1000, 42, &mut block);
//! assert_ne!(block, original);
//! enc.decrypt_block(0x1000, 42, &mut block);
//! assert_eq!(block, original);
//!
//! let mac = MacEngine::new([9u8; 16]);
//! let tag = mac.data_mac(0x1000, 42, &block);
//! assert!(mac.verify_data(0x1000, 42, &block, tag));
//! ```

pub mod aes;
pub mod ctr;
pub mod mac;
pub mod siphash;

/// A 64-bit keyed hash value (tree-node hash slots are 64-bit in the paper's
/// 8-ary 64 B nodes).
pub type Hash64 = u64;
