//! Message authentication codes over (address, counter, data).
//!
//! The paper keeps an 8-byte MAC per 64 B data block, computed over the
//! block's contents, its physical address, and its encryption counter
//! (Section II-B). Binding the address defeats splicing; binding the counter
//! makes a verified counter prove data freshness under a Bonsai Merkle Tree.

use crate::siphash::{SipHasher24, SipKey};

/// MAC engine keyed with the processor's authentication key.
///
/// # Examples
///
/// ```
/// use ivl_crypto::mac::MacEngine;
/// let mac = MacEngine::new([2u8; 16]);
/// let data = [1u8; 64];
/// let tag = mac.data_mac(0x40, 7, &data);
/// assert!(mac.verify_data(0x40, 7, &data, tag));
/// assert!(!mac.verify_data(0x80, 7, &data, tag)); // splicing detected
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacEngine {
    key: SipKey,
}

impl MacEngine {
    /// Creates an engine from a 128-bit key.
    pub fn new(key: [u8; 16]) -> Self {
        MacEngine {
            key: SipKey::from_bytes(key),
        }
    }

    /// Computes the 64-bit MAC of a data block. The message is
    /// `addr ‖ counter ‖ data` streamed straight into the hasher state —
    /// no intermediate message buffer.
    pub fn data_mac(&self, block_addr: u64, counter: u64, data: &[u8; 64]) -> u64 {
        let mut h = SipHasher24::new(self.key);
        h.write_u64(block_addr);
        h.write_u64(counter);
        h.write_bytes(data);
        h.finish()
    }

    /// Verifies a data block against its stored MAC.
    pub fn verify_data(&self, block_addr: u64, counter: u64, data: &[u8; 64], tag: u64) -> bool {
        self.data_mac(block_addr, counter, data) == tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_data_tamper() {
        let m = MacEngine::new([5u8; 16]);
        let mut data = [0xAAu8; 64];
        let tag = m.data_mac(64, 3, &data);
        data[17] ^= 1;
        assert!(!m.verify_data(64, 3, &data, tag));
    }

    #[test]
    fn detects_counter_replay() {
        let m = MacEngine::new([5u8; 16]);
        let data = [0xAAu8; 64];
        let tag_old = m.data_mac(64, 3, &data);
        // Same data re-encrypted under a newer counter gets a different tag,
        // so replaying the old (data, tag) pair fails once the counter moved.
        assert!(!m.verify_data(64, 4, &data, tag_old));
    }

    #[test]
    fn keys_separate_tags() {
        let a = MacEngine::new([1u8; 16]);
        let b = MacEngine::new([2u8; 16]);
        let data = [3u8; 64];
        assert_ne!(a.data_mac(0, 0, &data), b.data_mac(0, 0, &data));
    }
}
