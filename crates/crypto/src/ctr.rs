//! Counter-mode encryption of 64 B memory blocks (paper Section II-B).
//!
//! A 64 B data block is split into four 16 B chunks. Chunk `i` is XORed with
//! `AES_K(seed_i)` where the seed is derived from the block's physical
//! address, its (monotonically increasing) write counter, and the chunk
//! index. Counter uniqueness guarantees pad uniqueness; the decrypt path is
//! identical to the encrypt path.
//!
//! The hot path derives all four pads in one [`Aes128::encrypt_blocks4`]
//! call, so the four AES invocations share their rounds and table lookups
//! instead of running back to back.

use crate::aes::Aes128;

/// Bytes per memory block.
pub const BLOCK_BYTES: usize = 64;
/// AES chunks per memory block.
pub const CHUNKS_PER_BLOCK: usize = BLOCK_BYTES / 16;

/// Counter-mode encryption engine for 64 B blocks.
///
/// # Examples
///
/// ```
/// use ivl_crypto::ctr::CtrEngine;
/// let engine = CtrEngine::new([1u8; 16]);
/// let mut block = [5u8; 64];
/// engine.encrypt_block(0x40, 1, &mut block);
/// engine.decrypt_block(0x40, 1, &mut block);
/// assert_eq!(block, [5u8; 64]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrEngine {
    aes: Aes128,
}

/// Builds the AES input for one 16 B chunk: address ‖ counter[0..7] ‖ chunk.
#[inline]
fn seed(block_addr: u64, counter: u64, chunk: usize) -> [u8; 16] {
    let mut seed = [0u8; 16];
    seed[0..8].copy_from_slice(&block_addr.to_le_bytes());
    seed[8..15].copy_from_slice(&counter.to_le_bytes()[..7]);
    seed[15] = chunk as u8;
    seed
}

impl CtrEngine {
    /// Creates an engine with the processor's memory-encryption key.
    pub fn new(key: [u8; 16]) -> Self {
        CtrEngine {
            aes: Aes128::new(key),
        }
    }

    /// Derives the one-time pad for one 16 B chunk. The hot path uses
    /// [`CtrEngine::pad_block`] instead; this is the chunk-at-a-time
    /// reference the batched pad is differentially tested against.
    pub fn pad(&self, block_addr: u64, counter: u64, chunk: usize) -> [u8; 16] {
        self.aes.encrypt_block(seed(block_addr, counter, chunk))
    }

    /// Derives the full 64 B pad in one batched four-block AES call.
    #[inline]
    pub fn pad_block(&self, block_addr: u64, counter: u64) -> [u8; BLOCK_BYTES] {
        let seeds = [
            seed(block_addr, counter, 0),
            seed(block_addr, counter, 1),
            seed(block_addr, counter, 2),
            seed(block_addr, counter, 3),
        ];
        let pads = self.aes.encrypt_blocks4(seeds);
        let mut out = [0u8; BLOCK_BYTES];
        for (chunk, pad) in pads.iter().enumerate() {
            out[chunk * 16..(chunk + 1) * 16].copy_from_slice(pad);
        }
        out
    }

    /// Encrypts `block` in place using the block's address and write counter.
    #[inline]
    pub fn encrypt_block(&self, block_addr: u64, counter: u64, block: &mut [u8; BLOCK_BYTES]) {
        let pad = self.pad_block(block_addr, counter);
        for (b, p) in block.iter_mut().zip(pad.iter()) {
            *b ^= p;
        }
    }

    /// Decrypts `block` in place. Counter-mode decryption equals encryption.
    #[inline]
    pub fn decrypt_block(&self, block_addr: u64, counter: u64, block: &mut [u8; BLOCK_BYTES]) {
        self.encrypt_block(block_addr, counter, block);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let e = CtrEngine::new([0x11u8; 16]);
        let mut b = [0u8; 64];
        for (i, byte) in b.iter_mut().enumerate() {
            *byte = i as u8;
        }
        let orig = b;
        e.encrypt_block(0x1234, 9, &mut b);
        assert_ne!(b, orig);
        e.decrypt_block(0x1234, 9, &mut b);
        assert_eq!(b, orig);
    }

    #[test]
    fn batched_pad_matches_per_chunk_pads() {
        let e = CtrEngine::new([0x55u8; 16]);
        let pad = e.pad_block(0xdead_beef, 42);
        for chunk in 0..CHUNKS_PER_BLOCK {
            assert_eq!(
                pad[chunk * 16..(chunk + 1) * 16],
                e.pad(0xdead_beef, 42, chunk),
                "chunk {chunk}"
            );
        }
    }

    #[test]
    fn counter_changes_ciphertext() {
        let e = CtrEngine::new([0x22u8; 16]);
        let mut b1 = [7u8; 64];
        let mut b2 = [7u8; 64];
        e.encrypt_block(0x40, 1, &mut b1);
        e.encrypt_block(0x40, 2, &mut b2);
        assert_ne!(b1, b2, "pad must change with the counter");
    }

    #[test]
    fn address_changes_ciphertext() {
        let e = CtrEngine::new([0x22u8; 16]);
        let mut b1 = [7u8; 64];
        let mut b2 = [7u8; 64];
        e.encrypt_block(0x40, 1, &mut b1);
        e.encrypt_block(0x80, 1, &mut b2);
        assert_ne!(b1, b2, "pad must change with the address (splicing)");
    }

    #[test]
    fn chunks_use_distinct_pads() {
        let e = CtrEngine::new([0x33u8; 16]);
        let mut b = [0u8; 64];
        e.encrypt_block(0, 0, &mut b);
        // Encrypting an all-zero block exposes the pads directly; all four
        // 16 B pads must differ.
        for i in 0..CHUNKS_PER_BLOCK {
            for j in (i + 1)..CHUNKS_PER_BLOCK {
                assert_ne!(b[i * 16..(i + 1) * 16], b[j * 16..(j + 1) * 16]);
            }
        }
    }

    #[test]
    fn wrong_counter_fails_to_decrypt() {
        let e = CtrEngine::new([0x44u8; 16]);
        let mut b = [9u8; 64];
        e.encrypt_block(0x100, 5, &mut b);
        e.decrypt_block(0x100, 6, &mut b);
        assert_ne!(b, [9u8; 64]);
    }
}
