//! Property tests on the cryptographic primitives.

use ivl_crypto::ctr::CtrEngine;
use ivl_crypto::mac::MacEngine;
use ivl_crypto::siphash::{siphash24, SipKey};
use ivl_testkit::prelude::*;

props! {
    #[test]
    fn ctr_round_trips_any_block(
        key in any::<[u8; 16]>(),
        addr in any::<u64>(),
        counter in any::<u64>(),
        data in any::<[u8; 32]>(),
    ) {
        let e = CtrEngine::new(key);
        let mut block = [0u8; 64];
        block[..32].copy_from_slice(&data);
        block[32..].copy_from_slice(&data);
        let original = block;
        e.encrypt_block(addr, counter, &mut block);
        e.decrypt_block(addr, counter, &mut block);
        prop_assert_eq!(block, original);
    }

    #[test]
    fn ctr_never_fixes_points_to_plaintext(
        addr in any::<u64>(),
        counter in any::<u64>(),
    ) {
        // With a fixed nonzero key, ciphertext must differ from plaintext
        // (a 64-byte all-zero pad would break counter-mode secrecy).
        let e = CtrEngine::new([0xA5u8; 16]);
        let mut block = [0x11u8; 64];
        e.encrypt_block(addr, counter, &mut block);
        prop_assert_ne!(block, [0x11u8; 64]);
    }

    #[test]
    fn mac_binds_every_input(
        addr in any::<u64>(),
        counter in any::<u64>(),
        flip_byte in 0usize..64,
    ) {
        let m = MacEngine::new([3u8; 16]);
        let data = [0x77u8; 64];
        let tag = m.data_mac(addr, counter, &data);
        // Different address, counter, or data ⇒ different tag.
        prop_assert_ne!(tag, m.data_mac(addr.wrapping_add(1), counter, &data));
        prop_assert_ne!(tag, m.data_mac(addr, counter.wrapping_add(1), &data));
        let mut tampered = data;
        tampered[flip_byte] ^= 1;
        prop_assert_ne!(tag, m.data_mac(addr, counter, &tampered));
    }

    #[test]
    fn siphash_distinct_on_suffix_extension(data in vec(any::<u8>(), 0..64)) {
        let key = SipKey::from_bytes([1u8; 16]);
        let mut extended = data.clone();
        extended.push(0);
        prop_assert_ne!(siphash24(key, &data), siphash24(key, &extended));
    }
}
