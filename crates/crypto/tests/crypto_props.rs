//! Property tests on the cryptographic primitives.

use ivl_crypto::aes::{self, Aes128};
use ivl_crypto::ctr::{CtrEngine, CHUNKS_PER_BLOCK};
use ivl_crypto::mac::MacEngine;
use ivl_crypto::siphash::{siphash24, SipHasher24, SipKey};
use ivl_testkit::prelude::*;

props! {
    #[test]
    fn table_aes_equals_scalar_aes(
        key in any::<[u8; 16]>(),
        block in any::<[u8; 16]>(),
    ) {
        let fast = Aes128::new(key);
        let slow = aes::scalar::Aes128::new(key);
        let expected = slow.encrypt_block(block);
        prop_assert_eq!(fast.encrypt_block_tables(block), expected);
        // The dispatching entry point agrees too; on AES-NI hosts this
        // pins the hardware tier to the scalar reference.
        prop_assert_eq!(fast.encrypt_block(block), expected);
    }

    #[test]
    fn batched_aes_equals_four_single_blocks(
        key in any::<[u8; 16]>(),
        bytes in any::<[u8; 64]>(),
    ) {
        let aes = Aes128::new(key);
        let mut blocks = [[0u8; 16]; 4];
        for (lane, block) in blocks.iter_mut().enumerate() {
            block.copy_from_slice(&bytes[lane * 16..(lane + 1) * 16]);
        }
        let batched = aes.encrypt_blocks4(blocks);
        for lane in 0..4 {
            prop_assert_eq!(batched[lane], aes.encrypt_block(blocks[lane]));
        }
    }

    #[test]
    fn batched_ctr_pad_equals_four_pad_calls(
        key in any::<[u8; 16]>(),
        addr in any::<u64>(),
        counter in any::<u64>(),
    ) {
        let e = CtrEngine::new(key);
        let pad = e.pad_block(addr, counter);
        for chunk in 0..CHUNKS_PER_BLOCK {
            prop_assert_eq!(
                &pad[chunk * 16..(chunk + 1) * 16],
                &e.pad(addr, counter, chunk)[..]
            );
        }
    }

    #[test]
    fn streaming_hasher_equals_one_shot(
        data in vec(any::<u8>(), 0..96),
        split in any::<usize>(),
    ) {
        let key = SipKey::from_bytes([9u8; 16]);
        let cut = split % (data.len() + 1);
        let mut h = SipHasher24::new(key);
        h.write_bytes(&data[..cut]);
        h.write_bytes(&data[cut..]);
        prop_assert_eq!(h.finish(), siphash24(key, &data));
    }

    #[test]
    fn ctr_round_trips_any_block(
        key in any::<[u8; 16]>(),
        addr in any::<u64>(),
        counter in any::<u64>(),
        data in any::<[u8; 32]>(),
    ) {
        let e = CtrEngine::new(key);
        let mut block = [0u8; 64];
        block[..32].copy_from_slice(&data);
        block[32..].copy_from_slice(&data);
        let original = block;
        e.encrypt_block(addr, counter, &mut block);
        e.decrypt_block(addr, counter, &mut block);
        prop_assert_eq!(block, original);
    }

    #[test]
    fn ctr_never_fixes_points_to_plaintext(
        addr in any::<u64>(),
        counter in any::<u64>(),
    ) {
        // With a fixed nonzero key, ciphertext must differ from plaintext
        // (a 64-byte all-zero pad would break counter-mode secrecy).
        let e = CtrEngine::new([0xA5u8; 16]);
        let mut block = [0x11u8; 64];
        e.encrypt_block(addr, counter, &mut block);
        prop_assert_ne!(block, [0x11u8; 64]);
    }

    #[test]
    fn mac_binds_every_input(
        addr in any::<u64>(),
        counter in any::<u64>(),
        flip_byte in 0usize..64,
    ) {
        let m = MacEngine::new([3u8; 16]);
        let data = [0x77u8; 64];
        let tag = m.data_mac(addr, counter, &data);
        // Different address, counter, or data ⇒ different tag.
        prop_assert_ne!(tag, m.data_mac(addr.wrapping_add(1), counter, &data));
        prop_assert_ne!(tag, m.data_mac(addr, counter.wrapping_add(1), &data));
        let mut tampered = data;
        tampered[flip_byte] ^= 1;
        prop_assert_ne!(tag, m.data_mac(addr, counter, &tampered));
    }

    #[test]
    fn siphash_distinct_on_suffix_extension(data in vec(any::<u8>(), 0..64)) {
        let key = SipKey::from_bytes([1u8; 16]);
        let mut extended = data.clone();
        extended.push(0);
        prop_assert_ne!(siphash24(key, &data), siphash24(key, &extended));
    }
}
