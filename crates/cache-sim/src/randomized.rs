//! MIRAGE-style randomized skewed cache.
//!
//! The paper's baseline hardens the shared LLC and the metadata caches with
//! MIRAGE, a randomized fully-associative-eviction design. This model keeps
//! MIRAGE's two security-relevant properties while staying cheap to
//! simulate:
//!
//! 1. **Keyed randomized indexing** — the set index of a key is derived from
//!    a keyed mix, not from address bits, in each of two skews;
//! 2. **Random global eviction** — victims are chosen (pseudo-)randomly, so
//!    eviction sets are not predictable from addresses.
//!
//! The timing behavior (hit/miss rates under a working set) is what the
//! performance evaluation needs; the security property matters for the
//! attack models, which treat a randomized cache as un-primable.

use ivl_sim_core::rng::{splitmix64, Xoshiro256};

use crate::{AccessOutcome, CacheModel, CacheTally, Evicted};

#[derive(Debug, Clone, Copy)]
struct Line {
    key: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

const EMPTY: Line = Line {
    key: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// A two-skew randomized cache with keyed indexing and random eviction.
///
/// # Examples
///
/// ```
/// use ivl_cache::{CacheModel, randomized::RandomizedCache};
/// let mut c = RandomizedCache::new(64, 8, 0xDEAD);
/// assert!(!c.access(42, false).hit);
/// assert!(c.access(42, false).hit);
/// ```
#[derive(Debug, Clone)]
pub struct RandomizedCache {
    /// Sets per skew.
    sets_per_skew: usize,
    /// Ways per skew (total associativity is `2 * ways_per_skew`).
    ways_per_skew: usize,
    /// `lines[skew]` holds `sets_per_skew * ways_per_skew` lines.
    lines: [Vec<Line>; 2],
    index_keys: [u64; 2],
    rng: Xoshiro256,
    clock: u64,
    tally: CacheTally,
}

impl RandomizedCache {
    /// Creates a randomized cache with `sets` total sets and `ways` total
    /// associativity, split across two skews.
    ///
    /// # Panics
    ///
    /// Panics unless `sets` is an even power of two and `ways` is even.
    pub fn new(sets: usize, ways: usize, seed: u64) -> Self {
        assert!(
            sets >= 2 && sets.is_power_of_two(),
            "sets must be a power of two >= 2"
        );
        assert!(
            ways >= 2 && ways.is_multiple_of(2),
            "ways must be even and >= 2"
        );
        // Each skew keeps every set but half the ways, so total capacity is
        // exactly `sets * ways` lines.
        let sets_per_skew = sets;
        let ways_per_skew = ways / 2;
        let (k0, s1) = splitmix64(seed);
        let (k1, _) = splitmix64(s1);
        RandomizedCache {
            sets_per_skew,
            ways_per_skew,
            lines: [
                vec![EMPTY; sets_per_skew * ways_per_skew],
                vec![EMPTY; sets_per_skew * ways_per_skew],
            ],
            index_keys: [k0, k1],
            rng: Xoshiro256::seed_from(seed ^ 0xC0FF_EE00),
            clock: 0,
            tally: CacheTally::default(),
        }
    }

    /// Lifetime access tallies (hits, misses, evictions).
    pub fn tally(&self) -> CacheTally {
        self.tally
    }

    /// Creates a cache from a capacity/associativity/line-size geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent.
    pub fn with_geometry(capacity_bytes: usize, ways: usize, line_bytes: usize, seed: u64) -> Self {
        let lines = capacity_bytes / line_bytes;
        assert!(lines.is_multiple_of(ways), "capacity must divide into ways");
        Self::new(lines / ways, ways, seed)
    }

    fn skew_set(&self, skew: usize, key: u64) -> usize {
        let (mixed, _) = splitmix64(key ^ self.index_keys[skew]);
        (mixed as usize) & (self.sets_per_skew - 1)
    }

    fn set_range(&self, skew: usize, key: u64) -> std::ops::Range<usize> {
        let set = self.skew_set(skew, key);
        set * self.ways_per_skew..(set + 1) * self.ways_per_skew
    }
}

impl RandomizedCache {
    fn access_inner(&mut self, key: u64, is_write: bool) -> AccessOutcome {
        self.clock += 1;
        let clock = self.clock;

        // Hit check in both skews.
        for skew in 0..2 {
            let range = self.set_range(skew, key);
            if let Some(line) = self.lines[skew][range]
                .iter_mut()
                .find(|l| l.valid && l.key == key)
            {
                line.lru = clock;
                line.dirty |= is_write;
                return AccessOutcome {
                    hit: true,
                    evicted: None,
                    bypassed: false,
                };
            }
        }

        // Miss: fill into the skew whose candidate set has an invalid way
        // (load-aware skew selection, as in power-of-two-choices); otherwise
        // pick a random skew and a random victim within the set — the random
        // global-eviction approximation.
        let mut chosen: Option<(usize, usize)> = None; // (skew, line index)
        for skew in 0..2 {
            let range = self.set_range(skew, key);
            if let Some(off) = self.lines[skew][range.clone()]
                .iter()
                .position(|l| !l.valid)
            {
                chosen = Some((skew, range.start + off));
                break;
            }
        }
        let (skew, idx, evicted) = match chosen {
            Some((skew, idx)) => (skew, idx, None),
            None => {
                let skew = (self.rng.next_u64() & 1) as usize;
                let range = self.set_range(skew, key);
                let off = self.rng.index(self.ways_per_skew);
                let idx = range.start + off;
                let old = self.lines[skew][idx];
                (
                    skew,
                    idx,
                    Some(Evicted {
                        key: old.key,
                        dirty: old.dirty,
                    }),
                )
            }
        };
        self.lines[skew][idx] = Line {
            key,
            valid: true,
            dirty: is_write,
            lru: clock,
        };
        AccessOutcome {
            hit: false,
            evicted,
            bypassed: false,
        }
    }
}

impl CacheModel for RandomizedCache {
    fn access(&mut self, key: u64, is_write: bool) -> AccessOutcome {
        let outcome = self.access_inner(key, is_write);
        self.tally.record(&outcome);
        outcome
    }

    fn probe(&self, key: u64) -> bool {
        (0..2).any(|skew| {
            let range = self.set_range(skew, key);
            self.lines[skew][range]
                .iter()
                .any(|l| l.valid && l.key == key)
        })
    }

    fn invalidate(&mut self, key: u64) -> Option<bool> {
        for skew in 0..2 {
            let range = self.set_range(skew, key);
            for line in self.lines[skew][range].iter_mut() {
                if line.valid && line.key == key {
                    let dirty = line.dirty;
                    *line = EMPTY;
                    return Some(dirty);
                }
            }
        }
        None
    }

    fn occupancy(&self) -> usize {
        self.lines
            .iter()
            .map(|skew| skew.iter().filter(|l| l.valid).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_hit() {
        let mut c = RandomizedCache::new(16, 4, 1);
        assert!(!c.access(99, false).hit);
        assert!(c.access(99, false).hit);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = RandomizedCache::new(16, 4, 2);
        for k in 0..1000u64 {
            c.access(k, false);
        }
        assert!(c.occupancy() <= 16 * 4);
        assert!(c.occupancy() > 16 * 4 / 2, "cache should fill up");
    }

    #[test]
    fn different_seeds_different_mappings() {
        let a = RandomizedCache::new(64, 4, 10);
        let b = RandomizedCache::new(64, 4, 11);
        // At least one of a handful of keys should map differently in skew 0.
        let differs = (0..32u64).any(|k| a.skew_set(0, k) != b.skew_set(0, k));
        assert!(differs);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = RandomizedCache::new(8, 2, 3);
        c.access(7, true);
        assert_eq!(c.invalidate(7), Some(true));
        assert!(!c.probe(7));
    }

    #[test]
    fn dirty_writeback_reported_under_pressure() {
        let mut c = RandomizedCache::new(2, 2, 4);
        let mut saw_dirty_victim = false;
        for k in 0..64u64 {
            let out = c.access(k, true);
            if out.evicted.map(|e| e.dirty).unwrap_or(false) {
                saw_dirty_victim = true;
            }
        }
        assert!(saw_dirty_victim);
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = RandomizedCache::new(8, 2, 9);
        assert!(!c.probe(5));
        assert!(!c.access(5, false).hit, "probe must not have filled");
    }

    #[test]
    fn write_marks_dirty_for_later_eviction_reporting() {
        let mut c = RandomizedCache::new(2, 2, 10);
        c.access(1, false);
        c.access(1, true); // upgrade to dirty
        assert_eq!(c.invalidate(1), Some(true));
    }

    #[test]
    fn occupancy_counts_valid_lines_only() {
        let mut c = RandomizedCache::new(8, 2, 11);
        assert_eq!(c.occupancy(), 0);
        c.access(1, false);
        c.access(2, false);
        c.invalidate(1);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn tally_matches_observed_outcomes() {
        let mut c = RandomizedCache::new(8, 2, 7);
        let mut hits = 0u64;
        let mut evictions = 0u64;
        for k in 0..40u64 {
            let out = c.access(k % 10, false);
            hits += out.hit as u64;
            evictions += out.evicted.is_some() as u64;
        }
        let t = c.tally();
        assert_eq!(t.hits, hits);
        assert_eq!(t.misses, 40 - hits);
        assert_eq!(t.evictions, evictions);
    }

    #[test]
    fn working_set_within_capacity_mostly_hits() {
        let mut c = RandomizedCache::new(64, 8, 5);
        let ws: Vec<u64> = (0..128).collect(); // 128 blocks in a 512-line cache
        for &k in &ws {
            c.access(k, false);
        }
        let hits = ws.iter().filter(|&&k| c.access(k, false).hit).count();
        assert!(hits as f64 >= 0.95 * ws.len() as f64, "hits {hits}");
    }
}
