//! Set-associative cache with LRU replacement and line locking.
//!
//! Line locking models IvLeague's way-partition reservation that pins all
//! TreeLing roots in the IV metadata cache (paper Sections VI-B and X-D):
//! locked lines always hit and are never chosen as victims. If every way of
//! a set is locked, fills for other keys bypass the cache.
//!
//! # Layout
//!
//! The cache stores per-set metadata in packed, structure-of-arrays form
//! instead of an array of line structs (DESIGN.md §6): a dense tag array
//! (the `ways` tags of a set share one cache line for `ways ≤ 8`), per-set
//! `valid`/`dirty`/`locked` bitmasks (one bit per way), and the recency
//! order as a move-to-front list of way indices packed four bits per slot
//! into a single `u64` (slot 0 = most recently used). A hit touches one
//! `u64` instead of restamping a 32-byte line struct, and victim selection
//! walks the list from the LRU end instead of a `min_by_key` scan — while
//! producing exactly the victim order of the classical recency-stamp
//! implementation (pinned by a differential test below).
//!
//! The packed recency list caps associativity at 16 ways; every
//! configuration in the workspace uses 16 or fewer.

use crate::{AccessOutcome, CacheModel, CacheTally, Evicted};

/// Maximum associativity the packed recency list supports (4-bit way ids).
pub const MAX_WAYS: usize = 16;

/// A set-associative LRU cache over `u64` keys.
///
/// # Examples
///
/// ```
/// use ivl_cache::{CacheModel, set_assoc::SetAssocCache};
/// let mut c = SetAssocCache::new(2, 2);
/// c.access(0, true); // fill dirty
/// c.access(2, false);
/// c.access(4, false); // evicts key 0 (same set, LRU) → dirty victim
/// assert!(!c.probe(0));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    set_mask: usize,
    /// All-ways-present bitmask (`ways` low bits set).
    way_mask: u16,
    /// `tags[set * ways + way]`; only meaningful where the valid bit is set.
    tags: Box<[u64]>,
    /// Per-set valid bitmask (bit `w` = way `w` holds a line).
    valid: Box<[u16]>,
    /// Per-set dirty bitmask.
    dirty: Box<[u16]>,
    /// Per-set locked bitmask (subset of `valid`).
    locked: Box<[u16]>,
    /// Per-set recency list: nibble `s` holds the way id at recency slot
    /// `s`; slot 0 is the MRU end, slot `ways - 1` the LRU end. Always a
    /// permutation of `0..ways` (invalid ways ride along in the list but
    /// are never selected through it).
    lru: Box<[u64]>,
    tally: CacheTally,
}

/// The identity permutation `0,1,…,15` packed four bits per slot.
const LRU_IDENTITY: u64 = 0xFEDC_BA98_7654_3210;

impl SetAssocCache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two, either parameter is zero, or
    /// `ways` exceeds [`MAX_WAYS`].
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be positive");
        assert!(ways <= MAX_WAYS, "at most {MAX_WAYS} ways supported");
        SetAssocCache {
            sets,
            ways,
            set_mask: sets - 1,
            way_mask: if ways == 16 {
                u16::MAX
            } else {
                (1u16 << ways) - 1
            },
            tags: vec![0; sets * ways].into_boxed_slice(),
            valid: vec![0; sets].into_boxed_slice(),
            dirty: vec![0; sets].into_boxed_slice(),
            locked: vec![0; sets].into_boxed_slice(),
            lru: vec![LRU_IDENTITY; sets].into_boxed_slice(),
            tally: CacheTally::default(),
        }
    }

    /// Lifetime access tallies (hits, misses, evictions, bypasses).
    pub fn tally(&self) -> CacheTally {
        self.tally
    }

    /// Creates a cache from a capacity/associativity/line-size geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`new`](Self::new)).
    pub fn with_geometry(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        let lines = capacity_bytes / line_bytes;
        assert!(lines.is_multiple_of(ways), "capacity must divide into ways");
        Self::new(lines / ways, ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.ways
    }

    #[inline]
    fn set_index(&self, key: u64) -> usize {
        (key as usize) & self.set_mask
    }

    /// Way holding `key` in `set`, if resident. Compares every way
    /// unconditionally into a match mask — no early-exit branch per way —
    /// then masks with the valid bits; valid tags are unique per set, so
    /// the lowest set bit (if any) is the way in scan order.
    #[inline]
    fn find(&self, set: usize, key: u64) -> Option<usize> {
        let base = set * self.ways;
        let mut hits = 0u16;
        for w in 0..self.ways {
            hits |= u16::from(self.tags[base + w] == key) << w;
        }
        let m = hits & self.valid[set];
        if m != 0 {
            Some(m.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Moves `way` to the MRU end of the set's recency list.
    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        let l = self.lru[set];
        // Locate the slot holding `way` with a SWAR zero-nibble find: the
        // list is a permutation, so XOR-ing `way` into every nibble zeroes
        // exactly one, and the borrow trick lights bit 3 of that nibble.
        let x = l ^ (way as u64 * 0x1111_1111_1111_1111);
        let z = x.wrapping_sub(0x1111_1111_1111_1111) & !x & 0x8888_8888_8888_8888;
        let s = (z.trailing_zeros() >> 2) as usize;
        // Slots below keep their order one step older; slots above stay.
        let low = l & ((1u64 << (4 * s)) - 1);
        let above = if 4 * s + 4 >= 64 {
            0
        } else {
            l & !((1u64 << (4 * s + 4)) - 1)
        };
        self.lru[set] = above | (low << 4) | way as u64;
    }

    /// Least-recently-used way of `set` among the ways in `mask`, walking
    /// the packed list from its LRU end.
    #[inline]
    fn lru_way(&self, set: usize, mask: u16) -> Option<usize> {
        if mask == 0 {
            return None;
        }
        let l = self.lru[set];
        for slot in (0..self.ways).rev() {
            let w = ((l >> (4 * slot)) & 0xF) as usize;
            if mask & (1 << w) != 0 {
                return Some(w);
            }
        }
        None
    }

    /// Inserts `key` and pins it: it will never be evicted (and `access` to
    /// it always hits). Returns `false` if every way of the set is already
    /// locked by other keys, in which case nothing changes.
    pub fn lock(&mut self, key: u64) -> bool {
        let set = self.set_index(key);
        // Already resident: pin in place.
        if let Some(w) = self.find(set, key) {
            self.locked[set] |= 1 << w;
            self.touch(set, w);
            return true;
        }
        // Prefer an invalid way, then an unlocked victim (LRU).
        let invalid = !self.valid[set] & self.way_mask;
        let slot = if invalid != 0 {
            Some(invalid.trailing_zeros() as usize)
        } else {
            self.lru_way(set, self.valid[set] & !self.locked[set])
        };
        match slot {
            Some(w) => {
                let bit = 1u16 << w;
                self.tags[set * self.ways + w] = key;
                self.valid[set] |= bit;
                self.dirty[set] &= !bit;
                self.locked[set] |= bit;
                self.touch(set, w);
                true
            }
            None => false,
        }
    }

    /// Unpins a locked line (leaves it resident).
    pub fn unlock(&mut self, key: u64) {
        let set = self.set_index(key);
        if let Some(w) = self.find(set, key) {
            self.locked[set] &= !(1 << w);
        }
    }

    /// Number of locked lines.
    pub fn locked_count(&self) -> usize {
        self.valid
            .iter()
            .zip(self.locked.iter())
            .map(|(v, l)| (v & l).count_ones() as usize)
            .sum()
    }

    /// Evicts the least-recently-used unlocked line of the set containing
    /// `key` (used by attack models that perform targeted metadata
    /// eviction). Returns the victim if one existed.
    pub fn evict_lru_in_set_of(&mut self, key: u64) -> Option<Evicted> {
        let set = self.set_index(key);
        let w = self.lru_way(set, self.valid[set] & !self.locked[set])?;
        let bit = 1u16 << w;
        let victim = Evicted {
            key: self.tags[set * self.ways + w],
            dirty: self.dirty[set] & bit != 0,
        };
        self.valid[set] &= !bit;
        self.dirty[set] &= !bit;
        self.locked[set] &= !bit;
        Some(victim)
    }
}

impl SetAssocCache {
    fn access_inner(&mut self, key: u64, is_write: bool) -> AccessOutcome {
        let set = self.set_index(key);

        if let Some(w) = self.find(set, key) {
            self.dirty[set] |= (is_write as u16) << w;
            self.touch(set, w);
            return AccessOutcome {
                hit: true,
                evicted: None,
                bypassed: false,
            };
        }

        // Miss: fill. Prefer an invalid way; otherwise evict LRU unlocked.
        let invalid = !self.valid[set] & self.way_mask;
        if invalid != 0 {
            let w = invalid.trailing_zeros() as usize;
            let bit = 1u16 << w;
            self.tags[set * self.ways + w] = key;
            self.valid[set] |= bit;
            self.dirty[set] = (self.dirty[set] & !bit) | ((is_write as u16) << w);
            self.touch(set, w);
            return AccessOutcome {
                hit: false,
                evicted: None,
                bypassed: false,
            };
        }
        match self.lru_way(set, self.valid[set] & !self.locked[set]) {
            Some(w) => {
                let bit = 1u16 << w;
                let old = Evicted {
                    key: self.tags[set * self.ways + w],
                    dirty: self.dirty[set] & bit != 0,
                };
                self.tags[set * self.ways + w] = key;
                self.dirty[set] = (self.dirty[set] & !bit) | ((is_write as u16) << w);
                self.touch(set, w);
                AccessOutcome {
                    hit: false,
                    evicted: Some(old),
                    bypassed: false,
                }
            }
            None => AccessOutcome {
                hit: false,
                evicted: None,
                bypassed: true,
            },
        }
    }
}

impl CacheModel for SetAssocCache {
    fn access(&mut self, key: u64, is_write: bool) -> AccessOutcome {
        let outcome = self.access_inner(key, is_write);
        self.tally.record(&outcome);
        outcome
    }

    fn probe(&self, key: u64) -> bool {
        self.find(self.set_index(key), key).is_some()
    }

    fn invalidate(&mut self, key: u64) -> Option<bool> {
        let set = self.set_index(key);
        let w = self.find(set, key)?;
        let bit = 1u16 << w;
        let was_dirty = self.dirty[set] & bit != 0;
        self.valid[set] &= !bit;
        self.dirty[set] &= !bit;
        self.locked[set] &= !bit;
        Some(was_dirty)
    }

    fn occupancy(&self) -> usize {
        self.valid.iter().map(|v| v.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(!c.access(5, false).hit);
        assert!(c.access(5, false).hit);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(1, false);
        c.access(2, false);
        c.access(1, false); // 2 is now LRU
        let out = c.access(3, false);
        assert_eq!(out.evicted.map(|e| e.key), Some(2));
        assert!(c.probe(1) && c.probe(3) && !c.probe(2));
    }

    #[test]
    fn dirty_victims_reported() {
        let mut c = SetAssocCache::new(1, 1);
        c.access(1, true);
        let out = c.access(2, false);
        assert_eq!(
            out.evicted,
            Some(Evicted {
                key: 1,
                dirty: true
            })
        );
    }

    #[test]
    fn locked_lines_survive_pressure() {
        let mut c = SetAssocCache::new(1, 2);
        assert!(c.lock(100));
        for k in 0..50u64 {
            c.access(k, false);
        }
        assert!(c.probe(100));
        assert!(c.access(100, false).hit);
    }

    #[test]
    fn fully_locked_set_bypasses() {
        let mut c = SetAssocCache::new(1, 2);
        assert!(c.lock(1));
        assert!(c.lock(2));
        assert!(!c.lock(3), "no unlocked way left");
        let out = c.access(7, false);
        assert!(out.bypassed);
        assert!(!c.probe(7));
    }

    #[test]
    fn unlock_restores_evictability() {
        let mut c = SetAssocCache::new(1, 1);
        c.lock(1);
        assert!(c.access(2, false).bypassed);
        c.unlock(1);
        let out = c.access(2, false);
        assert_eq!(out.evicted.map(|e| e.key), Some(1));
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(4, true);
        assert_eq!(c.invalidate(4), Some(true));
        assert_eq!(c.invalidate(4), None);
    }

    #[test]
    fn targeted_set_eviction() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(0, false);
        c.access(2, false);
        let e = c.evict_lru_in_set_of(0).unwrap();
        assert_eq!(e.key, 0);
        assert!(!c.probe(0) && c.probe(2));
    }

    #[test]
    fn geometry_constructor() {
        let c = SetAssocCache::with_geometry(256 * 1024, 8, 64);
        assert_eq!(c.sets(), 512);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    fn tally_tracks_outcomes() {
        let mut c = SetAssocCache::new(1, 1);
        c.access(1, true); // miss, fill
        c.access(1, false); // hit
        c.access(2, false); // miss, dirty eviction
        c.lock(2);
        c.access(3, false); // bypass (set fully locked)
        let t = c.tally();
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 3);
        assert_eq!(t.evictions, 1);
        assert_eq!(t.dirty_evictions, 1);
        assert_eq!(t.bypasses, 1);
        assert_eq!(t.total(), 4);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(1, false);
        c.access(2, false);
        assert!(c.probe(1)); // must not refresh key 1
        let out = c.access(3, false);
        assert_eq!(out.evicted.map(|e| e.key), Some(1));
    }

    #[test]
    fn sixteen_ways_supported_seventeen_rejected() {
        let mut c = SetAssocCache::new(1, 16);
        for k in 0..16u64 {
            c.access(k, false);
        }
        assert_eq!(c.occupancy(), 16);
        let out = c.access(16, false);
        assert_eq!(out.evicted.map(|e| e.key), Some(0));
        assert!(std::panic::catch_unwind(|| SetAssocCache::new(1, 17)).is_err());
    }

    /// The pre-packing implementation (array of line structs with monotonic
    /// recency stamps), kept verbatim as the behavioral oracle for the
    /// differential test below.
    mod reference {
        use crate::{AccessOutcome, Evicted};

        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        struct Line {
            key: u64,
            valid: bool,
            dirty: bool,
            locked: bool,
            lru: u64,
        }

        const EMPTY: Line = Line {
            key: 0,
            valid: false,
            dirty: false,
            locked: false,
            lru: 0,
        };

        pub struct RefCache {
            sets: usize,
            ways: usize,
            lines: Vec<Line>,
            clock: u64,
        }

        impl RefCache {
            pub fn new(sets: usize, ways: usize) -> Self {
                RefCache {
                    sets,
                    ways,
                    lines: vec![EMPTY; sets * ways],
                    clock: 0,
                }
            }

            fn set_index(&self, key: u64) -> usize {
                (key as usize) & (self.sets - 1)
            }

            fn set_lines(&mut self, set: usize) -> &mut [Line] {
                &mut self.lines[set * self.ways..(set + 1) * self.ways]
            }

            pub fn lock(&mut self, key: u64) -> bool {
                let set = self.set_index(key);
                self.clock += 1;
                let clock = self.clock;
                let ways = self.set_lines(set);
                if let Some(line) = ways.iter_mut().find(|l| l.valid && l.key == key) {
                    line.locked = true;
                    line.lru = clock;
                    return true;
                }
                let slot = match ways.iter().position(|l| !l.valid) {
                    Some(i) => Some(i),
                    None => ways
                        .iter()
                        .enumerate()
                        .filter(|(_, l)| !l.locked)
                        .min_by_key(|(_, l)| l.lru)
                        .map(|(i, _)| i),
                };
                match slot {
                    Some(i) => {
                        ways[i] = Line {
                            key,
                            valid: true,
                            dirty: false,
                            locked: true,
                            lru: clock,
                        };
                        true
                    }
                    None => false,
                }
            }

            pub fn unlock(&mut self, key: u64) {
                let set = self.set_index(key);
                if let Some(line) = self
                    .set_lines(set)
                    .iter_mut()
                    .find(|l| l.valid && l.key == key)
                {
                    line.locked = false;
                }
            }

            pub fn locked_count(&self) -> usize {
                self.lines.iter().filter(|l| l.valid && l.locked).count()
            }

            pub fn evict_lru_in_set_of(&mut self, key: u64) -> Option<Evicted> {
                let set = self.set_index(key);
                let ways = self.set_lines(set);
                let victim = ways
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.valid && !l.locked)
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(i, _)| i)?;
                let line = ways[victim];
                ways[victim] = EMPTY;
                Some(Evicted {
                    key: line.key,
                    dirty: line.dirty,
                })
            }

            pub fn access(&mut self, key: u64, is_write: bool) -> AccessOutcome {
                let set = self.set_index(key);
                self.clock += 1;
                let clock = self.clock;
                let ways = self.set_lines(set);

                if let Some(line) = ways.iter_mut().find(|l| l.valid && l.key == key) {
                    line.lru = clock;
                    line.dirty |= is_write;
                    return AccessOutcome {
                        hit: true,
                        evicted: None,
                        bypassed: false,
                    };
                }

                if let Some(i) = ways.iter().position(|l| !l.valid) {
                    ways[i] = Line {
                        key,
                        valid: true,
                        dirty: is_write,
                        locked: false,
                        lru: clock,
                    };
                    return AccessOutcome {
                        hit: false,
                        evicted: None,
                        bypassed: false,
                    };
                }
                let victim = ways
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| !l.locked)
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(i, _)| i);
                match victim {
                    Some(i) => {
                        let old = ways[i];
                        ways[i] = Line {
                            key,
                            valid: true,
                            dirty: is_write,
                            locked: false,
                            lru: clock,
                        };
                        AccessOutcome {
                            hit: false,
                            evicted: Some(Evicted {
                                key: old.key,
                                dirty: old.dirty,
                            }),
                            bypassed: false,
                        }
                    }
                    None => AccessOutcome {
                        hit: false,
                        evicted: None,
                        bypassed: true,
                    },
                }
            }

            pub fn probe(&self, key: u64) -> bool {
                let set = self.set_index(key);
                self.lines[set * self.ways..(set + 1) * self.ways]
                    .iter()
                    .any(|l| l.valid && l.key == key)
            }

            pub fn invalidate(&mut self, key: u64) -> Option<bool> {
                let set = self.set_index(key);
                let ways = self.set_lines(set);
                for line in ways.iter_mut() {
                    if line.valid && line.key == key {
                        let dirty = line.dirty;
                        *line = EMPTY;
                        return Some(dirty);
                    }
                }
                None
            }

            pub fn occupancy(&self) -> usize {
                self.lines.iter().filter(|l| l.valid).count()
            }
        }
    }

    /// Packed implementation vs. the old struct-of-lines implementation
    /// under a randomized op mix (accesses, locks, unlocks, invalidations,
    /// targeted evictions) across several geometries — every outcome and
    /// every observable aggregate must agree, including locked-way cases.
    #[test]
    fn differential_against_reference_implementation() {
        // Deterministic splitmix64 stream; no external RNG dependency.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for (sets, ways) in [(1, 1), (1, 2), (2, 3), (4, 8), (2, 16)] {
            let mut packed = SetAssocCache::new(sets, ways);
            let mut reference = reference::RefCache::new(sets, ways);
            // Small key space so sets fill, evict, and collide constantly.
            let key_space = (sets * ways * 3) as u64;
            for step in 0..20_000 {
                let key = next() % key_space;
                match next() % 10 {
                    0 => {
                        assert_eq!(packed.lock(key), reference.lock(key), "lock @{step}");
                    }
                    1 => {
                        packed.unlock(key);
                        reference.unlock(key);
                    }
                    2 => {
                        assert_eq!(
                            packed.invalidate(key),
                            reference.invalidate(key),
                            "invalidate @{step}"
                        );
                    }
                    3 => {
                        assert_eq!(
                            packed.evict_lru_in_set_of(key),
                            reference.evict_lru_in_set_of(key),
                            "evict_lru @{step}"
                        );
                    }
                    _ => {
                        let is_write = next() % 2 == 0;
                        assert_eq!(
                            packed.access(key, is_write),
                            reference.access(key, is_write),
                            "access @{step} (sets={sets} ways={ways})"
                        );
                    }
                }
                assert_eq!(packed.probe(key), reference.probe(key), "probe @{step}");
                assert_eq!(packed.occupancy(), reference.occupancy(), "occ @{step}");
                assert_eq!(
                    packed.locked_count(),
                    reference.locked_count(),
                    "locked @{step}"
                );
            }
        }
    }
}
