//! Set-associative cache with LRU replacement and line locking.
//!
//! Line locking models IvLeague's way-partition reservation that pins all
//! TreeLing roots in the IV metadata cache (paper Sections VI-B and X-D):
//! locked lines always hit and are never chosen as victims. If every way of
//! a set is locked, fills for other keys bypass the cache.

use crate::{AccessOutcome, CacheModel, CacheTally, Evicted};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    key: u64,
    valid: bool,
    dirty: bool,
    locked: bool,
    /// Monotonic recency stamp; larger = more recently used.
    lru: u64,
}

const EMPTY: Line = Line {
    key: 0,
    valid: false,
    dirty: false,
    locked: false,
    lru: 0,
};

/// A set-associative LRU cache over `u64` keys.
///
/// # Examples
///
/// ```
/// use ivl_cache::{CacheModel, set_assoc::SetAssocCache};
/// let mut c = SetAssocCache::new(2, 2);
/// c.access(0, true); // fill dirty
/// c.access(2, false);
/// c.access(4, false); // evicts key 0 (same set, LRU) → dirty victim
/// assert!(!c.probe(0));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    lines: Vec<Line>,
    clock: u64,
    tally: CacheTally,
}

impl SetAssocCache {
    /// Creates a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either parameter is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be positive");
        SetAssocCache {
            sets,
            ways,
            lines: vec![EMPTY; sets * ways],
            clock: 0,
            tally: CacheTally::default(),
        }
    }

    /// Lifetime access tallies (hits, misses, evictions, bypasses).
    pub fn tally(&self) -> CacheTally {
        self.tally
    }

    /// Creates a cache from a capacity/associativity/line-size geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`new`](Self::new)).
    pub fn with_geometry(capacity_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        let lines = capacity_bytes / line_bytes;
        assert!(lines.is_multiple_of(ways), "capacity must divide into ways");
        Self::new(lines / ways, ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways.
    pub fn ways(&self) -> usize {
        self.ways
    }

    fn set_index(&self, key: u64) -> usize {
        (key as usize) & (self.sets - 1)
    }

    fn set_lines(&mut self, set: usize) -> &mut [Line] {
        &mut self.lines[set * self.ways..(set + 1) * self.ways]
    }

    /// Inserts `key` and pins it: it will never be evicted (and `access` to
    /// it always hits). Returns `false` if every way of the set is already
    /// locked by other keys, in which case nothing changes.
    pub fn lock(&mut self, key: u64) -> bool {
        let set = self.set_index(key);
        self.clock += 1;
        let clock = self.clock;
        let ways = self.set_lines(set);
        // Already resident: pin in place.
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.key == key) {
            line.locked = true;
            line.lru = clock;
            return true;
        }
        // Prefer an invalid way, then an unlocked victim (LRU).
        let slot = match ways.iter().position(|l| !l.valid) {
            Some(i) => Some(i),
            None => ways
                .iter()
                .enumerate()
                .filter(|(_, l)| !l.locked)
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i),
        };
        match slot {
            Some(i) => {
                ways[i] = Line {
                    key,
                    valid: true,
                    dirty: false,
                    locked: true,
                    lru: clock,
                };
                true
            }
            None => false,
        }
    }

    /// Unpins a locked line (leaves it resident).
    pub fn unlock(&mut self, key: u64) {
        let set = self.set_index(key);
        if let Some(line) = self
            .set_lines(set)
            .iter_mut()
            .find(|l| l.valid && l.key == key)
        {
            line.locked = false;
        }
    }

    /// Number of locked lines.
    pub fn locked_count(&self) -> usize {
        self.lines.iter().filter(|l| l.valid && l.locked).count()
    }

    /// Evicts the least-recently-used unlocked line of the set containing
    /// `key` (used by attack models that perform targeted metadata
    /// eviction). Returns the victim if one existed.
    pub fn evict_lru_in_set_of(&mut self, key: u64) -> Option<Evicted> {
        let set = self.set_index(key);
        let ways = self.set_lines(set);
        let victim = ways
            .iter()
            .enumerate()
            .filter(|(_, l)| l.valid && !l.locked)
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i)?;
        let line = ways[victim];
        ways[victim] = EMPTY;
        Some(Evicted {
            key: line.key,
            dirty: line.dirty,
        })
    }
}

impl SetAssocCache {
    fn access_inner(&mut self, key: u64, is_write: bool) -> AccessOutcome {
        let set = self.set_index(key);
        self.clock += 1;
        let clock = self.clock;
        let ways = self.set_lines(set);

        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.key == key) {
            line.lru = clock;
            line.dirty |= is_write;
            return AccessOutcome {
                hit: true,
                evicted: None,
                bypassed: false,
            };
        }

        // Miss: fill. Prefer an invalid way; otherwise evict LRU unlocked.
        if let Some(i) = ways.iter().position(|l| !l.valid) {
            ways[i] = Line {
                key,
                valid: true,
                dirty: is_write,
                locked: false,
                lru: clock,
            };
            return AccessOutcome {
                hit: false,
                evicted: None,
                bypassed: false,
            };
        }
        let victim = ways
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.locked)
            .min_by_key(|(_, l)| l.lru)
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                let old = ways[i];
                ways[i] = Line {
                    key,
                    valid: true,
                    dirty: is_write,
                    locked: false,
                    lru: clock,
                };
                AccessOutcome {
                    hit: false,
                    evicted: Some(Evicted {
                        key: old.key,
                        dirty: old.dirty,
                    }),
                    bypassed: false,
                }
            }
            None => AccessOutcome {
                hit: false,
                evicted: None,
                bypassed: true,
            },
        }
    }
}

impl CacheModel for SetAssocCache {
    fn access(&mut self, key: u64, is_write: bool) -> AccessOutcome {
        let outcome = self.access_inner(key, is_write);
        self.tally.record(&outcome);
        outcome
    }

    fn probe(&self, key: u64) -> bool {
        let set = self.set_index(key);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.key == key)
    }

    fn invalidate(&mut self, key: u64) -> Option<bool> {
        let set = self.set_index(key);
        let ways = self.set_lines(set);
        for line in ways.iter_mut() {
            if line.valid && line.key == key {
                let dirty = line.dirty;
                *line = EMPTY;
                return Some(dirty);
            }
        }
        None
    }

    fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = SetAssocCache::new(4, 2);
        assert!(!c.access(5, false).hit);
        assert!(c.access(5, false).hit);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(1, false);
        c.access(2, false);
        c.access(1, false); // 2 is now LRU
        let out = c.access(3, false);
        assert_eq!(out.evicted.map(|e| e.key), Some(2));
        assert!(c.probe(1) && c.probe(3) && !c.probe(2));
    }

    #[test]
    fn dirty_victims_reported() {
        let mut c = SetAssocCache::new(1, 1);
        c.access(1, true);
        let out = c.access(2, false);
        assert_eq!(
            out.evicted,
            Some(Evicted {
                key: 1,
                dirty: true
            })
        );
    }

    #[test]
    fn locked_lines_survive_pressure() {
        let mut c = SetAssocCache::new(1, 2);
        assert!(c.lock(100));
        for k in 0..50u64 {
            c.access(k, false);
        }
        assert!(c.probe(100));
        assert!(c.access(100, false).hit);
    }

    #[test]
    fn fully_locked_set_bypasses() {
        let mut c = SetAssocCache::new(1, 2);
        assert!(c.lock(1));
        assert!(c.lock(2));
        assert!(!c.lock(3), "no unlocked way left");
        let out = c.access(7, false);
        assert!(out.bypassed);
        assert!(!c.probe(7));
    }

    #[test]
    fn unlock_restores_evictability() {
        let mut c = SetAssocCache::new(1, 1);
        c.lock(1);
        assert!(c.access(2, false).bypassed);
        c.unlock(1);
        let out = c.access(2, false);
        assert_eq!(out.evicted.map(|e| e.key), Some(1));
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(4, true);
        assert_eq!(c.invalidate(4), Some(true));
        assert_eq!(c.invalidate(4), None);
    }

    #[test]
    fn targeted_set_eviction() {
        let mut c = SetAssocCache::new(2, 2);
        c.access(0, false);
        c.access(2, false);
        let e = c.evict_lru_in_set_of(0).unwrap();
        assert_eq!(e.key, 0);
        assert!(!c.probe(0) && c.probe(2));
    }

    #[test]
    fn geometry_constructor() {
        let c = SetAssocCache::with_geometry(256 * 1024, 8, 64);
        assert_eq!(c.sets(), 512);
        assert_eq!(c.ways(), 8);
    }

    #[test]
    fn tally_tracks_outcomes() {
        let mut c = SetAssocCache::new(1, 1);
        c.access(1, true); // miss, fill
        c.access(1, false); // hit
        c.access(2, false); // miss, dirty eviction
        c.lock(2);
        c.access(3, false); // bypass (set fully locked)
        let t = c.tally();
        assert_eq!(t.hits, 1);
        assert_eq!(t.misses, 3);
        assert_eq!(t.evictions, 1);
        assert_eq!(t.dirty_evictions, 1);
        assert_eq!(t.bypasses, 1);
        assert_eq!(t.total(), 4);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = SetAssocCache::new(1, 2);
        c.access(1, false);
        c.access(2, false);
        assert!(c.probe(1)); // must not refresh key 1
        let out = c.access(3, false);
        assert_eq!(out.evicted.map(|e| e.key), Some(1));
    }
}
