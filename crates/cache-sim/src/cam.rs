//! Small fully-associative content-addressable buffers.
//!
//! IvLeague keeps a per-domain on-chip **NFL buffer (NFLB)** caching the most
//! recently used in-memory NFL blocks (paper Section VI-C1, Table I: two
//! entries per domain). [`CamBuffer`] models such structures: a handful of
//! entries, full associativity, LRU replacement, and an attached payload.

use std::collections::VecDeque;

/// A tiny fully-associative LRU buffer mapping `u64` tags to payloads.
///
/// The front of the internal queue is the most recently used entry.
///
/// # Examples
///
/// ```
/// use ivl_cache::cam::CamBuffer;
/// let mut b: CamBuffer<&str> = CamBuffer::new(2);
/// b.insert(1, "one");
/// b.insert(2, "two");
/// b.insert(3, "three"); // evicts tag 1 (LRU)
/// assert!(b.get(1).is_none());
/// assert_eq!(*b.get(3).unwrap(), "three");
/// ```
#[derive(Debug, Clone)]
pub struct CamBuffer<T> {
    capacity: usize,
    entries: VecDeque<(u64, T)>,
}

impl<T> CamBuffer<T> {
    /// Creates a buffer holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "CAM buffer needs at least one entry");
        CamBuffer {
            capacity,
            entries: VecDeque::with_capacity(capacity),
        }
    }

    /// Looks up `tag`, refreshing its recency on a hit.
    pub fn get(&mut self, tag: u64) -> Option<&mut T> {
        let pos = self.entries.iter().position(|(t, _)| *t == tag)?;
        // Move to front (MRU).
        let entry = self.entries.remove(pos).expect("position just found");
        self.entries.push_front(entry);
        self.entries.front_mut().map(|(_, v)| v)
    }

    /// Checks residency without updating recency.
    pub fn contains(&self, tag: u64) -> bool {
        self.entries.iter().any(|(t, _)| *t == tag)
    }

    /// Inserts (or replaces) `tag`, returning the evicted LRU entry if the
    /// buffer was full.
    pub fn insert(&mut self, tag: u64, value: T) -> Option<(u64, T)> {
        if let Some(pos) = self.entries.iter().position(|(t, _)| *t == tag) {
            self.entries.remove(pos);
        }
        self.entries.push_front((tag, value));
        if self.entries.len() > self.capacity {
            self.entries.pop_back()
        } else {
            None
        }
    }

    /// Removes `tag`, returning its payload.
    pub fn remove(&mut self, tag: u64) -> Option<T> {
        let pos = self.entries.iter().position(|(t, _)| *t == tag)?;
        self.entries.remove(pos).map(|(_, v)| v)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over `(tag, payload)` pairs in MRU→LRU order.
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &T)> {
        self.entries.iter().map(|(t, v)| (t, v))
    }

    /// Clears all entries.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction() {
        let mut b = CamBuffer::new(2);
        b.insert(1, 'a');
        b.insert(2, 'b');
        b.get(1); // refresh 1; 2 becomes LRU
        let evicted = b.insert(3, 'c');
        assert_eq!(evicted, Some((2, 'b')));
        assert!(b.contains(1) && b.contains(3));
    }

    #[test]
    fn reinsert_replaces_without_evicting() {
        let mut b = CamBuffer::new(2);
        b.insert(1, 10);
        b.insert(2, 20);
        assert_eq!(b.insert(1, 11), None);
        assert_eq!(*b.get(1).unwrap(), 11);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn remove_and_len() {
        let mut b = CamBuffer::new(3);
        b.insert(5, ());
        assert_eq!(b.len(), 1);
        assert_eq!(b.remove(5), Some(()));
        assert!(b.is_empty());
        assert_eq!(b.remove(5), None);
    }

    #[test]
    fn get_mutates_payload() {
        let mut b = CamBuffer::new(1);
        b.insert(7, vec![1]);
        b.get(7).unwrap().push(2);
        assert_eq!(b.get(7).unwrap().as_slice(), &[1, 2]);
    }

    #[test]
    fn clear_empties_buffer() {
        let mut b = CamBuffer::new(2);
        b.insert(1, ());
        b.insert(2, ());
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 2);
        assert!(!b.contains(1));
    }

    #[test]
    fn contains_does_not_refresh_recency() {
        let mut b = CamBuffer::new(2);
        b.insert(1, ());
        b.insert(2, ());
        assert!(b.contains(1)); // must NOT refresh
        let evicted = b.insert(3, ());
        assert_eq!(evicted.map(|(t, _)| t), Some(1));
    }

    #[test]
    fn iter_is_mru_first() {
        let mut b = CamBuffer::new(3);
        b.insert(1, ());
        b.insert(2, ());
        b.get(1);
        let order: Vec<u64> = b.iter().map(|(t, _)| *t).collect();
        assert_eq!(order, vec![1, 2]);
    }
}
