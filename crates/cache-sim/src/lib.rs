//! Cache models for the IvLeague reproduction.
//!
//! Three structures cover every on-chip buffer in the paper:
//!
//! * [`set_assoc::SetAssocCache`] — classical set-associative cache with LRU
//!   replacement, dirty bits, and per-line **locking** (used to pin TreeLing
//!   roots into the IV metadata cache, Section VI-B);
//! * [`randomized::RandomizedCache`] — a MIRAGE-style randomized skewed
//!   cache used by the baseline's side-channel-hardened LLC and metadata
//!   caches (Section IX);
//! * [`cam::CamBuffer`] — a small fully-associative LRU buffer used for the
//!   on-chip NFL buffer (NFLB) and similar CAM structures.
//!
//! All models speak `u64` keys (block addresses or metadata identifiers) and
//! implement the common [`CacheModel`] trait so the memory-controller models
//! can switch between classical and randomized organizations.
//!
//! # Examples
//!
//! ```
//! use ivl_cache::{CacheModel, set_assoc::SetAssocCache};
//!
//! let mut c = SetAssocCache::new(4, 2); // 4 sets, 2 ways
//! assert!(!c.access(0x10, false).hit);
//! assert!(c.access(0x10, false).hit);
//! ```

pub mod cam;
pub mod randomized;
pub mod set_assoc;

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Key of the victim line.
    pub key: u64,
    /// Whether the victim was dirty (requires a write-back).
    pub dirty: bool,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Victim evicted to make room for the fill (misses only).
    pub evicted: Option<Evicted>,
    /// The access bypassed the cache (no fill happened — e.g. every way of
    /// the target set is locked).
    pub bypassed: bool,
}

/// Internal access tallies kept by every cache organization, so the
/// observability layer can export per-cache statistics without each
/// wrapper shadow-counting outcomes.
///
/// All fields accumulate saturating (matching the `ivl-sim-core` stats
/// policy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTally {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (including bypasses).
    pub misses: u64,
    /// Fills that evicted a victim.
    pub evictions: u64,
    /// Evicted victims that were dirty (require a write-back).
    pub dirty_evictions: u64,
    /// Misses that could not fill (fully locked set).
    pub bypasses: u64,
}

impl CacheTally {
    /// Folds one access outcome into the tally.
    pub fn record(&mut self, outcome: &AccessOutcome) {
        if outcome.hit {
            self.hits = self.hits.saturating_add(1);
        } else {
            self.misses = self.misses.saturating_add(1);
        }
        if let Some(e) = outcome.evicted {
            self.evictions = self.evictions.saturating_add(1);
            if e.dirty {
                self.dirty_evictions = self.dirty_evictions.saturating_add(1);
            }
        }
        if outcome.bypassed {
            self.bypasses = self.bypasses.saturating_add(1);
        }
    }

    /// Total accesses recorded.
    pub const fn total(&self) -> u64 {
        self.hits.saturating_add(self.misses)
    }

    /// Tallies accumulated since an earlier snapshot (saturating
    /// fieldwise).
    pub const fn since(&self, earlier: &CacheTally) -> CacheTally {
        CacheTally {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            dirty_evictions: self.dirty_evictions.saturating_sub(earlier.dirty_evictions),
            bypasses: self.bypasses.saturating_sub(earlier.bypasses),
        }
    }
}

/// Emits one access outcome into per-window timeline series: a miss bumps
/// the `misses` counter, an eviction the `evictions` counter, both in
/// `cycle`'s window. Callers pass static series names (`"llc.misses"`, …)
/// so the hot path stays allocation-free; gate on
/// [`Timeline::enabled`](ivl_sim_core::obs::Timeline::enabled) (or a cached
/// bool) before calling.
pub fn timeline_outcome(
    tl: &ivl_sim_core::obs::Timeline,
    cycle: u64,
    outcome: &AccessOutcome,
    misses: &str,
    evictions: &str,
) {
    if !outcome.hit {
        tl.count(misses, cycle, 1);
    }
    if outcome.evicted.is_some() {
        tl.count(evictions, cycle, 1);
    }
}

/// Common interface of all cache organizations in this crate.
pub trait CacheModel {
    /// Performs an access: on a hit, updates recency (and dirtiness for a
    /// write); on a miss, fills the line, possibly evicting a victim.
    fn access(&mut self, key: u64, is_write: bool) -> AccessOutcome;

    /// Checks residency without updating any replacement state.
    fn probe(&self, key: u64) -> bool;

    /// Removes a line if present, returning whether it was dirty.
    fn invalidate(&mut self, key: u64) -> Option<bool>;

    /// Number of currently valid lines.
    fn occupancy(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_sim_core::obs::Timeline;

    #[test]
    fn timeline_outcome_counts_misses_and_evictions() {
        let tl = Timeline::bounded(10, 8);
        let hit = AccessOutcome {
            hit: true,
            evicted: None,
            bypassed: false,
        };
        let miss = AccessOutcome {
            hit: false,
            evicted: Some(Evicted {
                key: 1,
                dirty: true,
            }),
            bypassed: false,
        };
        timeline_outcome(&tl, 5, &hit, "c.misses", "c.evictions");
        timeline_outcome(&tl, 15, &miss, "c.misses", "c.evictions");
        let snap = tl.snapshot();
        assert_eq!(snap.counter_sum("c.misses"), Some(1));
        assert_eq!(snap.counter_sum("c.evictions"), Some(1));
    }
}
