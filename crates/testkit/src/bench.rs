//! Micro-benchmark harness (in-tree `criterion` stand-in).
//!
//! Each benchmark is calibrated (doubling batch sizes until a batch is
//! long enough to time reliably), warmed up, then timed over a fixed
//! number of samples. The harness reports per-iteration median, p95 and
//! throughput lines, and can mirror results into a JSON file for
//! `BENCH_*.json` perf-trajectory tracking.
//!
//! Environment knobs:
//!
//! * `IVL_BENCH_QUICK=1` — short samples for smoke runs (CI uses this);
//! * `IVL_BENCH_JSON=<path>` — write results as JSON to `<path>`.
//!
//! The clock is pluggable ([`Clock`]): real runs use [`WallClock`]
//! (`std::time::Instant`), while the harness's own tests inject the
//! deterministic [`FakeClock`] so timing statistics are reproducible
//! under a fixed seed.

pub use std::hint::black_box;

use std::fmt::Write as _;
use std::time::Instant;

use crate::rng::TestRng;

/// Monotonic nanosecond clock.
pub trait Clock {
    /// Nanoseconds since an arbitrary fixed origin; never decreases.
    fn now_ns(&mut self) -> u64;
}

/// Real wall clock backed by [`Instant`].
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a clock with its origin at construction time.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&mut self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Deterministic monotonic clock: advances by a seeded pseudo-random
/// positive step on every reading. Lets tests assert the harness's
/// statistics pipeline bit-for-bit.
#[derive(Debug)]
pub struct FakeClock {
    rng: TestRng,
    now: u64,
}

impl FakeClock {
    /// Creates a fake clock whose step sequence derives from `seed`.
    pub fn seed_from(seed: u64) -> Self {
        FakeClock {
            rng: TestRng::seed_from(seed),
            now: 0,
        }
    }
}

impl Clock for FakeClock {
    fn now_ns(&mut self) -> u64 {
        self.now += 1 + self.rng.below(1_000_000);
        self.now
    }
}

/// Harness tuning knobs.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Target duration of one timed sample, nanoseconds.
    pub target_sample_ns: u64,
    /// Timed samples per benchmark.
    pub samples: usize,
    /// Warmup batches (of `iters_per_sample` iterations) before sampling.
    pub warmup_batches: usize,
    /// Optional JSON output path.
    pub json_path: Option<std::path::PathBuf>,
}

impl BenchConfig {
    /// Full-fidelity defaults: 5 ms samples × 30.
    pub fn full() -> Self {
        BenchConfig {
            target_sample_ns: 5_000_000,
            samples: 30,
            warmup_batches: 3,
            json_path: None,
        }
    }

    /// Smoke-run defaults: 500 µs samples × 10.
    pub fn quick() -> Self {
        BenchConfig {
            target_sample_ns: 500_000,
            samples: 10,
            warmup_batches: 1,
            json_path: None,
        }
    }

    /// Reads `IVL_BENCH_QUICK` / `IVL_BENCH_JSON` from the environment.
    pub fn from_env() -> Self {
        let quick = std::env::var("IVL_BENCH_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false);
        let mut cfg = if quick {
            BenchConfig::quick()
        } else {
            BenchConfig::full()
        };
        cfg.json_path = std::env::var_os("IVL_BENCH_JSON").map(Into::into);
        cfg
    }
}

/// Statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Group the benchmark belongs to (criterion's `benchmark_group`).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Iterations per timed sample (from calibration).
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: usize,
    /// Mean ns/iter over samples.
    pub mean_ns: f64,
    /// Median ns/iter over samples.
    pub median_ns: f64,
    /// 95th-percentile ns/iter over samples.
    pub p95_ns: f64,
    /// Fastest sample, ns/iter.
    pub min_ns: f64,
    /// Slowest sample, ns/iter.
    pub max_ns: f64,
}

impl BenchStats {
    /// `group/name` as printed and serialized.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.group, self.name)
    }

    /// Median-based throughput, iterations per second.
    pub fn throughput_per_sec(&self) -> f64 {
        if self.median_ns > 0.0 {
            1e9 / self.median_ns
        } else {
            0.0
        }
    }
}

/// `q`-quantile (0..=1) of an ascending-sorted slice, by nearest-rank.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank]
}

/// The benchmark harness: groups, runs and reports benchmarks.
pub struct Harness {
    config: BenchConfig,
    clock: Box<dyn Clock>,
    suite: String,
    group: String,
    results: Vec<BenchStats>,
}

impl Harness {
    /// Harness with an explicit clock (tests inject [`FakeClock`]).
    pub fn with_clock(suite: &str, config: BenchConfig, clock: Box<dyn Clock>) -> Self {
        Harness {
            config,
            clock,
            suite: suite.to_string(),
            group: String::new(),
            results: Vec::new(),
        }
    }

    /// Wall-clock harness configured from the environment.
    pub fn from_env(suite: &str) -> Self {
        Harness::with_clock(suite, BenchConfig::from_env(), Box::new(WallClock::new()))
    }

    /// Starts a named benchmark group.
    pub fn group(&mut self, name: &str) {
        self.group = name.to_string();
        println!("-- {name} --");
    }

    /// Runs one benchmark: calibrate, warm up, time `samples` batches.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchStats {
        // Calibrate: double the batch size until one batch spans at least
        // 1/10 of the sample target, then scale to the target.
        let mut batch = 1u64;
        let iters_per_sample = loop {
            let t0 = self.clock.now_ns();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = (self.clock.now_ns() - t0).max(1);
            if dt * 10 >= self.config.target_sample_ns || batch >= 1 << 24 {
                break (batch * self.config.target_sample_ns / dt).clamp(1, 1 << 28);
            }
            batch *= 2;
        };

        for _ in 0..self.config.warmup_batches {
            for _ in 0..iters_per_sample {
                black_box(f());
            }
        }

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.config.samples);
        for _ in 0..self.config.samples {
            let t0 = self.clock.now_ns();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let dt = self.clock.now_ns() - t0;
            samples_ns.push(dt as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));

        let stats = BenchStats {
            group: self.group.clone(),
            name: name.to_string(),
            iters_per_sample,
            samples: samples_ns.len(),
            mean_ns: samples_ns.iter().sum::<f64>() / samples_ns.len() as f64,
            median_ns: percentile(&samples_ns, 0.50),
            p95_ns: percentile(&samples_ns, 0.95),
            min_ns: samples_ns[0],
            max_ns: *samples_ns.last().expect("non-empty samples"),
        };
        println!(
            "{:<44} median {:>12.1} ns/iter   p95 {:>12.1} ns/iter   thrpt {:>12.0} /s   ({} samples x {} iters)",
            stats.full_name(),
            stats.median_ns,
            stats.p95_ns,
            stats.throughput_per_sec(),
            stats.samples,
            stats.iters_per_sample,
        );
        self.results.push(stats);
        self.results.last().expect("just pushed")
    }

    /// Finishes the suite: prints a footer, writes JSON if configured,
    /// and returns all collected statistics.
    pub fn finish(self) -> Vec<BenchStats> {
        println!(
            "suite `{}`: {} benchmark(s) complete",
            self.suite,
            self.results.len()
        );
        if let Some(path) = &self.config.json_path {
            let json = results_to_json(&self.suite, &self.results);
            std::fs::write(path, json)
                .unwrap_or_else(|e| panic!("write bench JSON to {}: {e}", path.display()));
            eprintln!("[saved {}]", path.display());
        }
        self.results
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.0".to_string()
    }
}

/// Serializes bench results as a stable, diff-friendly JSON document.
pub fn results_to_json(suite: &str, results: &[BenchStats]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"suite\": \"{}\",", json_escape(suite));
    let _ = writeln!(out, "  \"unit\": \"ns_per_iter\",");
    let _ = writeln!(out, "  \"benches\": [");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"median_ns\": {}, \"p95_ns\": {}, \"mean_ns\": {}, \
             \"min_ns\": {}, \"max_ns\": {}, \"throughput_per_sec\": {}, \"samples\": {}, \
             \"iters_per_sample\": {}}}{}",
            json_escape(&r.full_name()),
            json_f64(r.median_ns),
            json_f64(r.p95_ns),
            json_f64(r.mean_ns),
            json_f64(r.min_ns),
            json_f64(r.max_ns),
            json_f64(r.throughput_per_sec()),
            r.samples,
            r.iters_per_sample,
            comma,
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Parses a `BENCH_*.json` document produced by [`results_to_json`] back
/// into `(full_name, median_ns)` pairs — enough for regression comparison
/// without a general JSON parser.
///
/// # Errors
///
/// Returns a description of the first malformed entry encountered.
pub fn parse_results_json(json: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"name\":") {
        rest = &rest[pos + "\"name\":".len()..];
        let open = rest
            .find('"')
            .ok_or_else(|| "missing opening quote after \"name\":".to_string())?;
        rest = &rest[open + 1..];
        let mut name = String::new();
        let mut chars = rest.char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => name.push('\n'),
                    Some((_, e)) => name.push(e),
                    None => return Err(format!("unterminated escape in name `{name}`")),
                },
                c => name.push(c),
            }
        }
        let consumed = consumed.ok_or_else(|| format!("unterminated name `{name}`"))?;
        rest = &rest[consumed..];

        let mpos = rest
            .find("\"median_ns\":")
            .ok_or_else(|| format!("bench `{name}` has no median_ns field"))?;
        let after = rest[mpos + "\"median_ns\":".len()..].trim_start();
        let end = after
            .find([',', '}'])
            .ok_or_else(|| format!("unterminated median_ns for `{name}`"))?;
        let median: f64 = after[..end]
            .trim()
            .parse()
            .map_err(|e| format!("bad median_ns for `{name}`: {e}"))?;
        out.push((name, median));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let mut c = WallClock::new();
        let mut prev = c.now_ns();
        for _ in 0..10_000 {
            let now = c.now_ns();
            assert!(now >= prev, "wall clock went backwards");
            prev = now;
        }
    }

    #[test]
    fn fake_clock_is_monotonic_and_deterministic() {
        let mut a = FakeClock::seed_from(99);
        let mut b = FakeClock::seed_from(99);
        let mut prev = 0;
        for _ in 0..10_000 {
            let (ta, tb) = (a.now_ns(), b.now_ns());
            assert_eq!(ta, tb, "same seed must give the same timeline");
            assert!(ta > prev, "fake clock must strictly advance");
            prev = ta;
        }
    }

    fn run_fixture(seed: u64) -> Vec<BenchStats> {
        let cfg = BenchConfig {
            target_sample_ns: 100_000,
            samples: 12,
            warmup_batches: 1,
            json_path: None,
        };
        let mut h = Harness::with_clock("fixture", cfg, Box::new(FakeClock::seed_from(seed)));
        h.group("g");
        let mut x = 0u64;
        h.bench("work", || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        h.finish()
    }

    #[test]
    fn harness_is_deterministic_under_fixed_seed() {
        let a = run_fixture(7);
        let b = run_fixture(7);
        assert_eq!(a, b, "same clock seed must reproduce identical stats");
        assert_eq!(a.len(), 1);
        assert!(a[0].median_ns > 0.0);
        assert!(a[0].p95_ns >= a[0].median_ns);
        assert!(a[0].min_ns <= a[0].median_ns && a[0].median_ns <= a[0].max_ns);
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 0.5), 6.0);
        assert_eq!(percentile(&s, 0.95), 10.0);
        assert_eq!(percentile(&s, 1.0), 10.0);
    }

    #[test]
    fn json_output_is_well_formed() {
        let stats = run_fixture(3);
        let json = results_to_json("fixture", &stats);
        assert!(json.contains("\"suite\": \"fixture\""));
        assert!(json.contains("\"name\": \"g/work\""));
        assert!(json.contains("\"median_ns\": "));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn parse_round_trips_serialized_results() {
        let stats = run_fixture(5);
        let json = results_to_json("fixture", &stats);
        let parsed = parse_results_json(&json).unwrap();
        assert_eq!(parsed.len(), stats.len());
        assert_eq!(parsed[0].0, stats[0].full_name());
        assert!((parsed[0].1 - stats[0].median_ns).abs() < 0.001);
    }

    #[test]
    fn parse_handles_escaped_names() {
        let json = r#"{"benches": [{"name": "g\\h/\"x\"", "median_ns": 12.5}]}"#;
        let parsed = parse_results_json(json).unwrap();
        assert_eq!(parsed, vec![("g\\h/\"x\"".to_string(), 12.5)]);
    }

    #[test]
    fn parse_rejects_missing_median() {
        let json = r#"{"benches": [{"name": "a/b", "p95_ns": 1.0}]}"#;
        assert!(parse_results_json(json).is_err());
    }

    #[test]
    fn parse_of_empty_document_is_empty() {
        assert_eq!(parse_results_json("{}").unwrap(), vec![]);
    }

    #[test]
    fn quick_config_is_cheaper_than_full() {
        let q = BenchConfig::quick();
        let f = BenchConfig::full();
        assert!(q.target_sample_ns < f.target_sample_ns);
        assert!(q.samples < f.samples);
    }
}
