//! Scoped-thread parallel runner (in-tree `crossbeam` + `parking_lot`
//! stand-in).
//!
//! [`map_parallel`] fans a job list out over a worker pool built on
//! `std::thread::scope` and collects results through a mutex-guarded,
//! slot-indexed collector, so the output order always matches the input
//! order regardless of completion order. A panicking job propagates out
//! of the scope exactly like the crossbeam version did.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use by default: one per available core.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Applies `f` to every job on up to `workers` scoped threads and returns
/// the results **in input order**.
///
/// Jobs are pulled from a shared atomic cursor, so long jobs don't stall
/// the queue behind them; each result lands in its own slot of the
/// mutex-guarded collector.
pub fn map_parallel<I, T, F>(jobs: &[I], workers: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs.len());
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let out = f(&jobs[i]);
                results.lock().expect("collector poisoned")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("collector poisoned")
        .into_iter()
        .map(|r| r.expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let jobs: Vec<u64> = (0..257).collect();
        let out = map_parallel(&jobs, 8, |&j| {
            // Stagger completion so late jobs often finish before early
            // ones; ordering must still hold.
            std::thread::sleep(std::time::Duration::from_micros((257 - j) % 7 * 50));
            j * 3
        });
        assert_eq!(out, jobs.iter().map(|j| j * 3).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_job_lists() {
        let none: Vec<u32> = Vec::new();
        assert!(map_parallel(&none, 4, |&j| j).is_empty());
        assert_eq!(map_parallel(&[41u32], 16, |&j| j + 1), vec![42]);
    }

    #[test]
    fn worker_count_larger_than_jobs_is_fine() {
        let out = map_parallel(&[1u32, 2, 3], 64, |&j| j);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn panicking_job_propagates() {
        let caught = std::panic::catch_unwind(|| {
            map_parallel(&[0u32, 1], 2, |&j| {
                assert!(j != 1, "boom");
                j
            })
        });
        assert!(caught.is_err());
    }
}
