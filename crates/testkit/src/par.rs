//! Work-stealing scoped-thread parallel runner (in-tree `crossbeam` +
//! `parking_lot` stand-in).
//!
//! [`map_parallel`] fans a job list out over a worker pool built on
//! `std::thread::scope`. The job list is split into one contiguous deque
//! per worker; a worker pops from the **front** of its own deque and, once
//! drained, steals from the **back** of the fullest victim's deque. Both
//! ends of a deque live in a single packed `AtomicU64`, so claiming a job
//! is one CAS and an imbalanced job mix (one slow (mix, scheme) point next
//! to many fast ones) no longer serializes on the worker that happened to
//! own the slow chunk.
//!
//! Each claimed index is owned by exactly one worker, so results land in
//! lock-free pre-allocated slots (single writer per slot, joined before
//! reads). Output order always matches input order regardless of
//! completion order, and a panicking job propagates out of the scope
//! exactly like the crossbeam version did.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of workers to use by default: `IVL_WORKERS` when set, else one
/// per available core.
pub fn available_workers() -> usize {
    if let Ok(v) = std::env::var("IVL_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// One worker's job range `[front, back)`, packed as `front << 32 | back`
/// so popping either end is a single compare-exchange.
struct Range(AtomicU64);

impl Range {
    fn new(front: usize, back: usize) -> Self {
        Range(AtomicU64::new(Self::pack(front as u32, back as u32)))
    }

    fn pack(front: u32, back: u32) -> u64 {
        (front as u64) << 32 | back as u64
    }

    fn unpack(v: u64) -> (u32, u32) {
        ((v >> 32) as u32, v as u32)
    }

    /// Jobs left in the range.
    fn len(&self) -> u32 {
        let (f, b) = Self::unpack(self.0.load(Ordering::Acquire));
        b.saturating_sub(f)
    }

    /// Claims the front job (the owner's end).
    fn pop_front(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (f, b) = Self::unpack(cur);
            if f >= b {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                Self::pack(f + 1, b),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(f as usize),
                Err(now) => cur = now,
            }
        }
    }

    /// Claims the back job (a thief's end).
    fn pop_back(&self) -> Option<usize> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (f, b) = Self::unpack(cur);
            if f >= b {
                return None;
            }
            match self.0.compare_exchange_weak(
                cur,
                Self::pack(f, b - 1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((b - 1) as usize),
                Err(now) => cur = now,
            }
        }
    }
}

/// Pre-allocated per-job result slots. Safety contract: job index `i` is
/// claimed by exactly one worker (a successful `pop_front`/`pop_back` CAS
/// transfers ownership), so at most one thread ever writes `slots[i]`, and
/// reads happen only after `thread::scope` joins every worker.
struct ResultSlots<T> {
    slots: Vec<UnsafeCell<Option<T>>>,
}

unsafe impl<T: Send> Sync for ResultSlots<T> {}

/// Applies `f` to every job on up to `workers` scoped threads and returns
/// the results **in input order**.
///
/// Jobs are pre-split into per-worker deques; idle workers steal from the
/// back of the fullest remaining deque, so long jobs neither stall the
/// queue behind them nor leave siblings idle.
pub fn map_parallel<I, T, F>(jobs: &[I], workers: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs.len());
    let results = ResultSlots {
        slots: (0..jobs.len()).map(|_| UnsafeCell::new(None)).collect(),
    };
    // Contiguous initial split; the remainder spreads over the first deques.
    let chunk = jobs.len() / workers;
    let extra = jobs.len() % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0usize;
    for w in 0..workers {
        let len = chunk + usize::from(w < extra);
        ranges.push(Range::new(start, start + len));
        start += len;
    }
    debug_assert_eq!(start, jobs.len());

    // Borrow the whole wrapper (not the inner Vec) so the closure's capture
    // carries `ResultSlots`'s `Sync` impl across threads.
    let slots = &results;
    let run_job = |i: usize| {
        let out = f(&jobs[i]);
        // SAFETY: index `i` was claimed by exactly one CAS; no other thread
        // touches this slot until the scope joins.
        unsafe { *slots.slots[i].get() = Some(out) };
    };

    std::thread::scope(|scope| {
        for me in 0..workers {
            let ranges = &ranges;
            let run_job = &run_job;
            scope.spawn(move || {
                // Own deque first…
                while let Some(i) = ranges[me].pop_front() {
                    run_job(i);
                }
                // …then steal from the back of the fullest victim until
                // every deque is empty. Jobs are never re-enqueued, so an
                // empty sweep means global completion.
                loop {
                    let victim = ranges
                        .iter()
                        .enumerate()
                        .filter(|(w, _)| *w != me)
                        .max_by_key(|(_, r)| r.len())
                        .filter(|(_, r)| r.len() > 0)
                        .map(|(w, _)| w);
                    let Some(v) = victim else { break };
                    if let Some(i) = ranges[v].pop_back() {
                        run_job(i);
                    }
                    // A failed steal (raced to empty) just re-scans.
                }
            });
        }
    });

    results
        .slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order() {
        let jobs: Vec<u64> = (0..257).collect();
        let out = map_parallel(&jobs, 8, |&j| {
            // Stagger completion so late jobs often finish before early
            // ones; ordering must still hold.
            std::thread::sleep(std::time::Duration::from_micros((257 - j) % 7 * 50));
            j * 3
        });
        assert_eq!(out, jobs.iter().map(|j| j * 3).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_job_lists() {
        let none: Vec<u32> = Vec::new();
        assert!(map_parallel(&none, 4, |&j| j).is_empty());
        assert_eq!(map_parallel(&[41u32], 16, |&j| j + 1), vec![42]);
    }

    #[test]
    fn worker_count_larger_than_jobs_is_fine() {
        let out = map_parallel(&[1u32, 2, 3], 64, |&j| j);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn panicking_job_propagates() {
        let caught = std::panic::catch_unwind(|| {
            map_parallel(&[0u32, 1], 2, |&j| {
                assert!(j != 1, "boom");
                j
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn every_job_runs_exactly_once_under_stealing() {
        // One pathologically slow job at the head of worker 0's deque: the
        // rest of its chunk must be stolen, and nothing may run twice.
        let jobs: Vec<usize> = (0..64).collect();
        let runs: Vec<AtomicUsize> = (0..jobs.len()).map(|_| AtomicUsize::new(0)).collect();
        let out = map_parallel(&jobs, 4, |&j| {
            runs[j].fetch_add(1, Ordering::Relaxed);
            if j == 0 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            j
        });
        assert_eq!(out, jobs);
        for (j, r) in runs.iter().enumerate() {
            assert_eq!(
                r.load(Ordering::Relaxed),
                1,
                "job {j} ran a wrong number of times"
            );
        }
    }

    #[test]
    fn range_pop_semantics() {
        let r = Range::new(3, 6);
        assert_eq!(r.len(), 3);
        assert_eq!(r.pop_front(), Some(3));
        assert_eq!(r.pop_back(), Some(5));
        assert_eq!(r.pop_back(), Some(4));
        assert_eq!(r.pop_back(), None);
        assert_eq!(r.pop_front(), None);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let jobs: Vec<u64> = (0..41).collect();
        let serial = map_parallel(&jobs, 1, |&j| j * j + 1);
        for workers in [2, 3, 8] {
            assert_eq!(serial, map_parallel(&jobs, workers, |&j| j * j + 1));
        }
    }
}
