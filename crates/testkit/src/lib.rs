//! Hermetic in-tree test and benchmark toolkit.
//!
//! The reproduction must build and test **offline with zero external
//! crates** (DESIGN.md §5). This crate provides minimal, deterministic
//! replacements for the third-party dependencies the workspace used to
//! declare:
//!
//! * [`prop`] — a property-testing engine (generator combinators, a
//!   xoshiro-seeded deterministic case runner, greedy input shrinking) with
//!   a [`props!`]/[`prop_assert!`] macro surface close to `proptest`;
//! * [`bench`] — a micro-benchmark harness (warmup + timed samples,
//!   median/p95/throughput, optional JSON output) replacing `criterion`;
//! * [`par`] — a scoped-thread parallel runner with a mutex-guarded,
//!   order-preserving result collector replacing `crossbeam` +
//!   `parking_lot`;
//! * [`spsc`] — a bounded single-producer/single-consumer ring (the
//!   parallel system engine's event stream transport);
//! * [`kv`] — a tiny key=value/TOML-subset serializer replacing `serde`
//!   for `ivl-sim-core::config`;
//! * [`rng`] — the xoshiro256** generator backing all of the above.
//!
//! Everything here is plain `std`; the crate has an empty `[dependencies]`
//! table by design, and CI asserts the whole workspace dependency graph
//! stays that way.

pub mod bench;
pub mod kv;
pub mod par;
pub mod prop;
pub mod rng;
pub mod spsc;

/// Everything a property-test file needs, in one import.
pub mod prelude {
    pub use crate::prop::{any, vec, Config, Just, Strategy, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, props};
}
