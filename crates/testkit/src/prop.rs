//! Minimal deterministic property-testing engine.
//!
//! An in-tree stand-in for the subset of `proptest` the workspace uses:
//!
//! * **Strategies** — integer ranges (`0u64..512`), [`any`] for integers /
//!   bools / byte arrays, [`vec`] collections, tuples of strategies,
//!   [`Just`], [`Strategy::prop_map`], and weighted unions via
//!   [`prop_oneof!`](crate::prop_oneof).
//! * **Runner** — [`run_property`] draws a fixed number of cases from a
//!   xoshiro256** stream seeded from the property name (so every run of
//!   every test is deterministic; override with `IVL_PROP_SEED` /
//!   `IVL_PROP_CASES`).
//! * **Shrinking** — on failure the runner greedily walks
//!   [`Strategy::shrink`] candidates, keeping the first candidate that
//!   still fails, until a fixpoint or step cap, then reports the minimal
//!   counterexample.
//!
//! Test files use the [`props!`](crate::props) macro, which mirrors
//! `proptest! { #[test] fn name(arg in strategy, ..) { .. } }` closely
//! enough that porting is a handful of local edits (`use
//! ivl_testkit::prelude::*`, `props!`, `vec(..)` instead of
//! `prop::collection::vec(..)`, `#![cases(N)]` instead of
//! `#![proptest_config(..)]`).
//!
//! Known, accepted limitation: values produced by `prop_map` do not shrink
//! (the combinator has no inverse to recover the pre-image), so shrinking
//! of a mapped value stops at the enclosing combinator (e.g. a `vec` still
//! shrinks by dropping elements).

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

use crate::rng::TestRng;

/// Failure raised by the `prop_assert!` family inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Rendered assertion message.
    pub message: String,
    /// Source file of the failed assertion.
    pub file: &'static str,
    /// Source line of the failed assertion.
    pub line: u32,
}

impl TestCaseError {
    /// Builds an error; called by the assertion macros.
    pub fn new(message: String, file: &'static str, line: u32) -> Self {
        TestCaseError {
            message,
            file,
            line,
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

/// Result type a property body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Cap on candidate evaluations during shrinking.
    pub max_shrink_steps: u32,
    /// Base seed; each property XORs in a hash of its own name.
    pub seed: u64,
}

impl Config {
    /// Default configuration with an explicit case count
    /// (`proptest`'s `ProptestConfig::with_cases` analogue).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("IVL_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let seed = std::env::var("IVL_PROP_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x1_7EA6_0E5A_11CE);
        Config {
            cases,
            max_shrink_steps: 4096,
            seed,
        }
    }
}

/// A generator of test-case values with optional shrinking.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: Clone + fmt::Debug;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, most aggressive first.
    /// An empty vector means the value is minimal (or unshrinkable).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Whether `value` lies in this strategy's domain (used to filter
    /// cross-arm shrink candidates in unions; `true` when unknown).
    fn contains(&self, _value: &Self::Value) -> bool {
        true
    }

    /// Maps generated values through `f` (`proptest`'s `prop_map`).
    /// Mapped values do not shrink — see the module docs.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies with one value
    /// type can share a container (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Types with a canonical "whole domain" strategy, used by [`any`].
pub trait Arbitrary: Clone + fmt::Debug + 'static {
    /// Draws a uniformly distributed value of the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Candidate simplifications (towards zero / all-zero / `false`).
    fn shrink_value(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_uint_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink_value(&self) -> Vec<$t> {
                shrink_towards(*self, 0)
            }
        }
    )+};
}

impl_uint_arbitrary!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink_value(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }

    fn shrink_value(&self) -> Vec<Self> {
        if self.iter().all(|&b| b == 0) {
            return Vec::new();
        }
        let mut out = vec![[0u8; N]];
        for i in 0..N {
            if self[i] != 0 {
                let mut zeroed = *self;
                zeroed[i] = 0;
                out.push(zeroed);
                let mut halved = *self;
                halved[i] /= 2;
                out.push(halved);
            }
        }
        out.retain(|c| c != self);
        out
    }
}

/// Shrink candidates for an unsigned value towards `lo`:
/// the floor itself, the midpoint, and the predecessor.
fn shrink_towards<T>(value: T, lo: T) -> Vec<T>
where
    T: Copy
        + PartialOrd
        + core::ops::Add<Output = T>
        + core::ops::Sub<Output = T>
        + core::ops::Div<Output = T>
        + From<u8>,
{
    if value <= lo {
        return Vec::new();
    }
    let one = T::from(1u8);
    let two = T::from(2u8);
    let mut out = vec![lo, lo + (value - lo) / two, value - one];
    out.dedup();
    out.retain(|c| *c < value);
    out
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let (v, lo) = (*value, self.start);
                if v <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo, lo + (v - lo) / 2, v - 1];
                out.dedup();
                out.retain(|c| *c < v);
                out
            }

            fn contains(&self, value: &$t) -> bool {
                self.start <= *value && *value < self.end
            }
        }
    )+};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy over a type's full [`Arbitrary`] domain (`proptest`'s
/// `any::<T>()`).
pub struct Any<T>(PhantomData<T>);

/// Builds the canonical whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

/// Strategy that always yields one value (`proptest`'s `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Vector strategy: element strategy plus a length range
/// (`proptest`'s `prop::collection::vec`).
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Builds a vector strategy with lengths drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let n = value.len();
        let min = self.len.start;
        let mut out = Vec::new();
        // Length shrinks first (most aggressive): minimal prefix, half
        // prefix, then dropping single elements.
        if n > min {
            out.push(value[..min].to_vec());
            if n / 2 > min {
                out.push(value[..n / 2].to_vec());
            }
            for i in 0..n {
                let mut shorter = value.clone();
                shorter.remove(i);
                out.push(shorter);
            }
        }
        // Element-wise shrinks keep the shape and simplify one slot.
        for i in 0..n {
            for cand in self.element.shrink(&value[i]) {
                let mut simpler = value.clone();
                simpler[i] = cand;
                out.push(simpler);
            }
        }
        out
    }

    fn contains(&self, value: &Vec<S::Value>) -> bool {
        self.len.contains(&value.len()) && value.iter().all(|v| self.element.contains(v))
    }
}

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
    fn erased_shrink(&self, value: &T) -> Vec<T>;
    fn erased_contains(&self, value: &T) -> bool;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }

    fn erased_shrink(&self, value: &S::Value) -> Vec<S::Value> {
        self.shrink(value)
    }

    fn erased_contains(&self, value: &S::Value) -> bool {
        self.contains(value)
    }
}

/// Type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

impl<T: Clone + fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.erased_generate(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        self.0.erased_shrink(value)
    }

    fn contains(&self, value: &T) -> bool {
        self.0.erased_contains(value)
    }
}

/// Weighted union of strategies over one value type
/// (built by [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: Clone + fmt::Debug> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or any weight is zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(arms.iter().all(|(w, _)| *w > 0), "zero-weight arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        Union { arms, total_weight }
    }
}

impl<T: Clone + fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut r = rng.below(self.total_weight);
        for (weight, strategy) in &self.arms {
            if r < *weight as u64 {
                return strategy.generate(rng);
            }
            r -= *weight as u64;
        }
        unreachable!("weight selection out of bounds")
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        // The producing arm is unknown, so ask every arm and keep only
        // candidates inside that arm's own domain.
        self.arms
            .iter()
            .flat_map(|(_, s)| {
                s.shrink(value)
                    .into_iter()
                    .filter(|c| s.contains(c))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn contains(&self, value: &T) -> bool {
        self.arms.iter().any(|(_, s)| s.contains(value))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident => $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }

            fn contains(&self, value: &Self::Value) -> bool {
                true $(&& self.$idx.contains(&value.$idx))+
            }
        }
    };
}

impl_tuple_strategy!(S0 => 0);
impl_tuple_strategy!(S0 => 0, S1 => 1);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6);
impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7);

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `test` against `config.cases` generated values; on failure,
/// shrinks greedily and panics with the minimal counterexample.
///
/// Determinism: the RNG stream depends only on `config.seed` and the
/// property name, so failures reproduce exactly across runs and machines.
pub fn run_property<S, F>(name: &str, config: &Config, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(&S::Value) -> TestCaseResult,
{
    let seed = config.seed ^ fnv1a(name);
    let mut rng = TestRng::seed_from(seed);
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        if let Err(first_err) = test(&value) {
            let (minimal, steps) = shrink_failure(strategy, value, &test, config.max_shrink_steps);
            let err = test(&minimal).err().unwrap_or(first_err);
            panic!(
                "property `{name}` failed after {case} passing case(s) \
                 ({steps} shrink step(s); seed {seed:#x})\n\
                 minimal counterexample: {minimal:?}\n{err}"
            );
        }
    }
}

/// Greedy shrink loop: take the first candidate that still fails, repeat
/// until no candidate fails or the step budget is exhausted. Returns the
/// minimal failing value and the number of candidates evaluated.
fn shrink_failure<S, F>(
    strategy: &S,
    initial: S::Value,
    test: &F,
    max_steps: u32,
) -> (S::Value, u32)
where
    S: Strategy,
    F: Fn(&S::Value) -> TestCaseResult,
{
    shrink_to_minimal(strategy, initial, |v| test(v).is_err(), max_steps)
}

/// The property runner's greedy shrink engine, exposed for harnesses that
/// minimize interesting inputs outside a `props!` body (the leak-search
/// fuzzer shrinks counterexample programs this way).
///
/// `still_interesting` must return `true` for `initial`; the engine walks
/// [`Strategy::shrink`] candidates, keeping the first candidate that is
/// still interesting, until a fixpoint or `max_steps` candidate
/// evaluations. Returns the minimal interesting value and the number of
/// candidates evaluated. Fully deterministic: no RNG is involved.
///
/// # Examples
///
/// ```
/// use ivl_testkit::prop::{shrink_to_minimal, Strategy};
///
/// let strategy = 0u64..100_000;
/// let (minimal, steps) = shrink_to_minimal(&strategy, 54_321, |v| *v >= 10, 4096);
/// assert_eq!(minimal, 10);
/// assert!(steps > 0);
/// ```
pub fn shrink_to_minimal<S, P>(
    strategy: &S,
    initial: S::Value,
    still_interesting: P,
    max_steps: u32,
) -> (S::Value, u32)
where
    S: Strategy,
    P: Fn(&S::Value) -> bool,
{
    let mut current = initial;
    let mut steps = 0u32;
    'fixpoint: while steps < max_steps {
        for candidate in strategy.shrink(&current) {
            steps += 1;
            if still_interesting(&candidate) {
                current = candidate;
                continue 'fixpoint;
            }
            if steps >= max_steps {
                break 'fixpoint;
            }
        }
        break;
    }
    (current, steps)
}

/// Declares deterministic property tests (`proptest!` analogue).
///
/// ```
/// use ivl_testkit::prelude::*;
///
/// props! {
///     #![cases(32)]
///     fn addition_commutes(a in 0u64..1000, b in any::<u64>()) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// addition_commutes();
/// ```
///
/// In test files each `fn` carries its usual `#[test]` attribute, which
/// the macro passes through.
#[macro_export]
macro_rules! props {
    (#![cases($cases:expr)] $($rest:tt)*) => {
        $crate::props!(@funcs ($crate::prop::Config::with_cases($cases)) $($rest)*);
    };
    (@funcs ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __strategy = ($($strategy,)+);
                $crate::prop::run_property(
                    stringify!($name),
                    &$config,
                    &__strategy,
                    |__case| {
                        #[allow(unused_mut)]
                        let ($(mut $arg,)+) = ::core::clone::Clone::clone(__case);
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::props!(@funcs ($crate::prop::Config::default()) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`: fails the
/// current case (triggering shrinking) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::prop::TestCaseError::new(
                format!($($fmt)+),
                file!(),
                line!(),
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Weighted (or unweighted) union of strategies
/// (`proptest`'s `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::prop::Union::new(vec![
            $(($weight as u32, $crate::prop::Strategy::boxed($strategy)),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop::Union::new(vec![
            $((1u32, $crate::prop::Strategy::boxed($strategy)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = (0u64..1000, any::<u32>(), vec(0u8..10, 1..8));
        let mut a = TestRng::seed_from(9);
        let mut b = TestRng::seed_from(9);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let strat = 10u64..20;
        let mut rng = TestRng::seed_from(3);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn shrinking_converges_to_minimal_counterexample() {
        // Property "x < 10" over 0..100_000: the minimal failing input
        // is exactly 10, and greedy shrinking must find it.
        let strat = 0u64..100_000;
        let test = |v: &u64| -> TestCaseResult {
            crate::prop_assert!(*v < 10);
            Ok(())
        };
        let mut rng = TestRng::seed_from(1);
        let failing = loop {
            let v = strat.generate(&mut rng);
            if test(&v).is_err() {
                break v;
            }
        };
        let (minimal, steps) = shrink_failure(&strat, failing, &test, 4096);
        assert_eq!(minimal, 10);
        assert!(steps > 0);
    }

    #[test]
    fn vec_shrinking_drops_irrelevant_elements() {
        // Property "no element is >= 50": minimal counterexample is a
        // single-element vector holding exactly 50.
        let strat = vec(0u32..1000, 1..40);
        let test = |v: &Vec<u32>| -> TestCaseResult {
            crate::prop_assert!(v.iter().all(|&x| x < 50));
            Ok(())
        };
        let mut rng = TestRng::seed_from(7);
        let failing = loop {
            let v = strat.generate(&mut rng);
            if test(&v).is_err() {
                break v;
            }
        };
        let (minimal, _) = shrink_failure(&strat, failing, &test, 8192);
        assert_eq!(minimal, vec![50]);
    }

    #[test]
    fn tuple_shrinking_minimizes_each_component() {
        let strat = (0u64..1000, 0u64..1000);
        let test = |v: &(u64, u64)| -> TestCaseResult {
            crate::prop_assert!(v.0 + v.1 < 20);
            Ok(())
        };
        let mut rng = TestRng::seed_from(11);
        let failing = loop {
            let v = strat.generate(&mut rng);
            if test(&v).is_err() {
                break v;
            }
        };
        let (minimal, _) = shrink_failure(&strat, failing, &test, 8192);
        assert_eq!(minimal.0 + minimal.1, 20);
    }

    #[test]
    fn shrink_to_minimal_respects_step_budget() {
        let strat = 0u64..1_000_000;
        let (minimal, steps) = shrink_to_minimal(&strat, 999_999, |v| *v >= 10, 3);
        assert_eq!(steps, 3);
        assert!(minimal >= 10, "budgeted shrink must stay interesting");
        let (full, _) = shrink_to_minimal(&strat, 999_999, |v| *v >= 10, 1 << 16);
        assert_eq!(full, 10);
    }

    #[test]
    fn union_generates_all_arms() {
        let strat = crate::prop_oneof![
            3 => Just(1u32),
            2 => (100u32..200).prop_map(|v| v),
        ];
        let mut rng = TestRng::seed_from(5);
        let mut saw_just = false;
        let mut saw_range = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                1 => saw_just = true,
                v if (100..200).contains(&v) => saw_range = true,
                v => panic!("value {v} outside both arms"),
            }
        }
        assert!(saw_just && saw_range);
    }

    #[test]
    fn union_shrink_stays_in_domain() {
        let strat = crate::prop_oneof![5u32..10, 50u32..60];
        for cand in strat.shrink(&55) {
            assert!(strat.contains(&cand), "candidate {cand} escaped the union");
        }
    }

    #[test]
    fn byte_array_shrinks_towards_zero() {
        let v = [3u8, 0, 200];
        let cands = v.shrink_value();
        assert!(cands.contains(&[0u8; 3]));
        assert!(!cands.contains(&v));
    }

    #[test]
    #[should_panic(expected = "minimal counterexample: (10,)")]
    fn runner_reports_minimal_counterexample() {
        run_property(
            "runner_reports_minimal_counterexample",
            &Config::with_cases(200),
            &(0u64..100_000,),
            |(v,)| {
                crate::prop_assert!(*v < 10);
                Ok(())
            },
        );
    }

    props! {
        #![cases(32)]
        #[test]
        fn props_macro_end_to_end(a in 0u64..100, b in any::<u16>(), bytes in any::<[u8; 4]>()) {
            prop_assert!(a < 100);
            prop_assert_eq!(bytes.len(), 4);
            prop_assert_ne!(a as u64 + 1 + b as u64, 0u64);
        }
    }
}
