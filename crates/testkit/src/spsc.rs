//! Bounded single-producer/single-consumer ring (Lamport queue).
//!
//! The parallel system engine streams pre-computed front-end events from
//! producer threads to the deterministic commit thread. Each (generator →
//! commit) edge has exactly one producer and one consumer, so the classic
//! Lamport ring suffices: a power-of-two slot array plus two monotonically
//! increasing positions, each written by exactly one side and read by the
//! other with acquire/release ordering. No CAS, no locks, no allocation
//! after construction.
//!
//! [`Spsc::split`] hands out a [`Producer`] and a [`Consumer`]; each handle
//! is `Send` but deliberately neither `Clone` nor `Sync`, so the
//! single-producer/single-consumer contract is enforced by ownership
//! rather than by convention. Both sides cache the opposing position
//! locally and only re-read the shared atomic when the cached value says
//! the ring looks full/empty — the common case costs one uncontended
//! atomic store.
//!
//! ```
//! let (mut tx, mut rx) = ivl_testkit::spsc::Spsc::with_capacity(4).split();
//! assert!(tx.try_push(1u32).is_ok());
//! assert!(tx.try_push(2u32).is_ok());
//! assert_eq!(rx.try_pop(), Some(1));
//! assert_eq!(rx.try_pop(), Some(2));
//! assert_eq!(rx.try_pop(), None);
//! ```

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Cache-line padding so the producer and consumer positions never share a
/// line (false sharing would serialize the two sides).
#[repr(align(64))]
struct Pad<T>(T);

struct Inner<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read; written only by the consumer.
    head: Pad<AtomicUsize>,
    /// Next slot the producer will write; written only by the producer.
    tail: Pad<AtomicUsize>,
}

// SAFETY: the ring is shared between exactly one producer and one consumer
// thread; slot ownership is handed over through the release/acquire pair on
// `tail` (producer → consumer) and `head` (consumer → producer).
unsafe impl<T: Send> Sync for Inner<T> {}
unsafe impl<T: Send> Send for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both handles are gone: drop whatever is still in flight.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for pos in head..tail {
            let slot = self.slots[pos & self.mask].get();
            // SAFETY: positions in [head, tail) hold initialized values.
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// A bounded SPSC ring; split it to use it.
pub struct Spsc<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Spsc<T> {
    /// Creates a ring holding at least `capacity` items (rounded up to a
    /// power of two, minimum 2).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "SPSC ring needs room for at least one item");
        let cap = capacity.next_power_of_two().max(2);
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Spsc {
            inner: Arc::new(Inner {
                slots,
                mask: cap - 1,
                head: Pad(AtomicUsize::new(0)),
                tail: Pad(AtomicUsize::new(0)),
            }),
        }
    }

    /// Splits the ring into its two endpoint handles.
    pub fn split(self) -> (Producer<T>, Consumer<T>) {
        let p = Producer {
            inner: Arc::clone(&self.inner),
            head_cache: 0,
        };
        let c = Consumer {
            inner: self.inner,
            tail_cache: 0,
        };
        (p, c)
    }
}

/// The write end; owned by exactly one thread.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Last observed consumer position (refreshed only when full-looking).
    head_cache: usize,
}

impl<T> Producer<T> {
    /// Pushes `value`, or returns it when the ring is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` if no slot is free.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let tail = self.inner.tail.0.load(Ordering::Relaxed);
        let cap = self.inner.mask + 1;
        if tail.wrapping_sub(self.head_cache) >= cap {
            self.head_cache = self.inner.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(self.head_cache) >= cap {
                return Err(value);
            }
        }
        let slot = self.inner.slots[tail & self.inner.mask].get();
        // SAFETY: the slot is past the consumer's head, so it is empty and
        // only this producer touches it until the tail store publishes it.
        unsafe { (*slot).write(value) };
        self.inner
            .tail
            .0
            .store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Items currently in the ring (as observed by this side).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.0.load(Ordering::Relaxed);
        let head = self.inner.head.0.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// Whether the ring looks empty from this side.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

/// The read end; owned by exactly one thread.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Last observed producer position (refreshed only when empty-looking).
    tail_cache: usize,
}

impl<T> Consumer<T> {
    /// Pops the oldest item, or `None` when the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        let head = self.inner.head.0.load(Ordering::Relaxed);
        if head == self.tail_cache {
            self.tail_cache = self.inner.tail.0.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None;
            }
        }
        let slot = self.inner.slots[head & self.inner.mask].get();
        // SAFETY: head < tail, so the slot holds an initialized value the
        // producer published with its release store on `tail`.
        let value = unsafe { (*slot).assume_init_read() };
        self.inner
            .head
            .0
            .store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Items currently in the ring (as observed by this side).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.0.load(Ordering::Acquire);
        let head = self.inner.head.0.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// Whether the ring looks empty from this side.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (mut tx, mut rx) = Spsc::with_capacity(4).split();
        for i in 0..4 {
            assert!(tx.try_push(i).is_ok());
        }
        assert_eq!(tx.try_push(99), Err(99), "ring is full at capacity");
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn wraparound_many_times() {
        let (mut tx, mut rx) = Spsc::with_capacity(2).split();
        for i in 0..1000u64 {
            assert!(tx.try_push(i).is_ok());
            assert_eq!(rx.try_pop(), Some(i));
        }
    }

    #[test]
    fn cross_thread_transfer_is_lossless() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = Spsc::with_capacity(64).split();
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.try_push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut sum = 0u64;
        let mut count = 0u64;
        while count < N {
            if let Some(v) = rx.try_pop() {
                sum = sum.wrapping_add(v);
                count += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(sum, N * (N - 1) / 2);
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn dropping_ring_drops_in_flight_items() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracked;
        impl Drop for Tracked {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (mut tx, mut rx) = Spsc::with_capacity(8).split();
        for _ in 0..5 {
            assert!(tx.try_push(Tracked).is_ok());
        }
        drop(rx.try_pop()); // one consumed and dropped
        drop(tx);
        drop(rx); // four in flight, dropped with the ring
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }
}
