//! Key=value configuration serializer over a TOML subset (in-tree `serde`
//! stand-in for `ivl-sim-core::config`).
//!
//! A document is a flat map from dotted keys (`core.l1.capacity_bytes`)
//! to scalar values. Serialization groups keys by their dotted prefix
//! into `[section]` headers, producing a file any TOML reader would also
//! accept for this subset:
//!
//! ```toml
//! [core.l1]
//! capacity_bytes = 32768
//! hit_latency = 4
//! ```
//!
//! Supported values: integers (`i64`), floats (round-trip via shortest
//! decimal form), booleans, and double-quoted strings with `\"`, `\\`,
//! `\n` escapes. Comments (`# ...`) and blank lines are ignored when
//! parsing. Unknown keys are preserved in the document (callers decide
//! strictness).

use std::collections::BTreeMap;
use std::fmt;

/// A scalar value in a document.
#[derive(Debug, Clone, PartialEq)]
pub enum KvValue {
    /// Integer (covers every integer field in the workspace configs).
    Int(i64),
    /// IEEE-754 double.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// String (serialized double-quoted).
    Str(String),
}

impl fmt::Display for KvValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvValue::Int(v) => write!(f, "{v}"),
            // `{:?}` prints the shortest decimal that round-trips and
            // always keeps a `.` or exponent, so ints and floats stay
            // distinguishable in the text form.
            KvValue::Float(v) => write!(f, "{v:?}"),
            KvValue::Bool(v) => write!(f, "{v}"),
            KvValue::Str(v) => {
                write!(f, "\"")?;
                for c in v.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
        }
    }
}

/// Errors from parsing or typed access.
#[derive(Debug, Clone, PartialEq)]
pub enum KvError {
    /// Malformed input line.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A required key is absent.
    MissingKey(String),
    /// A key exists with an incompatible type.
    TypeMismatch {
        /// The dotted key.
        key: String,
        /// Expected type name.
        expected: &'static str,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            KvError::MissingKey(key) => write!(f, "missing key `{key}`"),
            KvError::TypeMismatch { key, expected } => {
                write!(f, "key `{key}` is not of type {expected}")
            }
        }
    }
}

impl std::error::Error for KvError {}

/// A flat dotted-key document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KvDoc {
    entries: BTreeMap<String, KvValue>,
}

impl KvDoc {
    /// Empty document.
    pub fn new() -> Self {
        KvDoc::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the document has no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sets a raw value.
    pub fn set(&mut self, key: &str, value: KvValue) {
        self.entries.insert(key.to_string(), value);
    }

    /// Sets an unsigned integer (must fit `i64`, which every config
    /// field in this workspace does).
    ///
    /// # Panics
    ///
    /// Panics if `value` exceeds `i64::MAX`.
    pub fn set_u64(&mut self, key: &str, value: u64) {
        let v = i64::try_from(value).expect("config integer exceeds i64");
        self.set(key, KvValue::Int(v));
    }

    /// Sets a `usize` value.
    pub fn set_usize(&mut self, key: &str, value: usize) {
        self.set_u64(key, value as u64);
    }

    /// Sets a float value.
    pub fn set_f64(&mut self, key: &str, value: f64) {
        self.set(key, KvValue::Float(value));
    }

    /// Sets a boolean value.
    pub fn set_bool(&mut self, key: &str, value: bool) {
        self.set(key, KvValue::Bool(value));
    }

    /// Sets a string value.
    pub fn set_str(&mut self, key: &str, value: &str) {
        self.set(key, KvValue::Str(value.to_string()));
    }

    /// Raw typed access.
    pub fn get(&self, key: &str) -> Option<&KvValue> {
        self.entries.get(key)
    }

    fn require(&self, key: &str) -> Result<&KvValue, KvError> {
        self.get(key)
            .ok_or_else(|| KvError::MissingKey(key.to_string()))
    }

    /// A required `u64` field.
    pub fn get_u64(&self, key: &str) -> Result<u64, KvError> {
        match self.require(key)? {
            KvValue::Int(v) if *v >= 0 => Ok(*v as u64),
            _ => Err(KvError::TypeMismatch {
                key: key.to_string(),
                expected: "u64",
            }),
        }
    }

    /// A required `usize` field.
    pub fn get_usize(&self, key: &str) -> Result<usize, KvError> {
        self.get_u64(key).map(|v| v as usize)
    }

    /// A required `u32` field.
    pub fn get_u32(&self, key: &str) -> Result<u32, KvError> {
        let v = self.get_u64(key)?;
        u32::try_from(v).map_err(|_| KvError::TypeMismatch {
            key: key.to_string(),
            expected: "u32",
        })
    }

    /// A required float field (integers widen losslessly).
    pub fn get_f64(&self, key: &str) -> Result<f64, KvError> {
        match self.require(key)? {
            KvValue::Float(v) => Ok(*v),
            KvValue::Int(v) => Ok(*v as f64),
            _ => Err(KvError::TypeMismatch {
                key: key.to_string(),
                expected: "f64",
            }),
        }
    }

    /// A required boolean field.
    pub fn get_bool(&self, key: &str) -> Result<bool, KvError> {
        match self.require(key)? {
            KvValue::Bool(v) => Ok(*v),
            _ => Err(KvError::TypeMismatch {
                key: key.to_string(),
                expected: "bool",
            }),
        }
    }

    /// A required string field.
    pub fn get_str(&self, key: &str) -> Result<&str, KvError> {
        match self.require(key)? {
            KvValue::Str(v) => Ok(v),
            _ => Err(KvError::TypeMismatch {
                key: key.to_string(),
                expected: "string",
            }),
        }
    }

    /// Serializes to the TOML-subset text form: bare (undotted) keys
    /// first, then one `[section]` per dotted prefix (emitted exactly
    /// once), keys sorted within each section.
    pub fn to_toml_string(&self) -> String {
        // Group by section so each header appears once even though raw
        // key order interleaves (`core.mlp` sorts after `core.l1.*`).
        let mut rows: Vec<(&str, &str, &KvValue)> = self
            .entries
            .iter()
            .map(|(key, value)| match key.rfind('.') {
                Some(dot) => (&key[..dot], &key[dot + 1..], value),
                None => ("", key.as_str(), value),
            })
            .collect();
        rows.sort_by_key(|(section, leaf, _)| (*section, *leaf));
        let mut out = String::new();
        let mut current_section = "";
        for (section, leaf, value) in rows {
            if section != current_section {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(&format!("[{section}]\n"));
                current_section = section;
            }
            out.push_str(&format!("{leaf} = {value}\n"));
        }
        out
    }

    /// Parses the TOML-subset text form.
    pub fn parse(text: &str) -> Result<KvDoc, KvError> {
        let mut doc = KvDoc::new();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let header = header.strip_suffix(']').ok_or_else(|| KvError::Syntax {
                    line: line_no,
                    message: "unterminated section header".to_string(),
                })?;
                let header = header.trim();
                if header.is_empty() {
                    return Err(KvError::Syntax {
                        line: line_no,
                        message: "empty section header".to_string(),
                    });
                }
                section = header.to_string();
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| KvError::Syntax {
                line: line_no,
                message: "expected `key = value`".to_string(),
            })?;
            let key = key.trim();
            if key.is_empty() {
                return Err(KvError::Syntax {
                    line: line_no,
                    message: "empty key".to_string(),
                });
            }
            let full_key = if section.is_empty() {
                key.to_string()
            } else {
                format!("{section}.{key}")
            };
            doc.set(&full_key, parse_value(value.trim(), line_no)?);
        }
        Ok(doc)
    }
}

fn parse_value(text: &str, line: usize) -> Result<KvValue, KvError> {
    if text == "true" {
        return Ok(KvValue::Bool(true));
    }
    if text == "false" {
        return Ok(KvValue::Bool(false));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let body = rest.strip_suffix('"').ok_or_else(|| KvError::Syntax {
            line,
            message: "unterminated string".to_string(),
        })?;
        let mut out = String::new();
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                other => {
                    return Err(KvError::Syntax {
                        line,
                        message: format!(
                            "bad escape `\\{}`",
                            other.map_or_else(String::new, String::from)
                        ),
                    })
                }
            }
        }
        return Ok(KvValue::Str(out));
    }
    if let Ok(v) = text.parse::<i64>() {
        return Ok(KvValue::Int(v));
    }
    if let Ok(v) = text.parse::<f64>() {
        return Ok(KvValue::Float(v));
    }
    Err(KvError::Syntax {
        line,
        message: format!("unparseable value `{text}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> KvDoc {
        let mut d = KvDoc::new();
        d.set_u64("core.l1.capacity_bytes", 32 * 1024);
        d.set_usize("core.l1.ways", 8);
        d.set_u64("core.cores", 8);
        d.set_f64("core.base_ipc", 1.6);
        d.set_f64("ivleague.hot_region_fraction", 0.125);
        d.set_bool("llc.randomized", true);
        d.set_str("variant", "IvLeague-Pro");
        d
    }

    #[test]
    fn round_trips_through_text() {
        let d = sample();
        let text = d.to_toml_string();
        let back = KvDoc::parse(&text).expect("parse own output");
        assert_eq!(d, back);
    }

    #[test]
    fn serializes_sections_and_bare_keys() {
        let text = sample().to_toml_string();
        assert!(text.starts_with("variant = \"IvLeague-Pro\"\n"));
        assert!(text.contains("[core.l1]\ncapacity_bytes = 32768\n"));
        assert!(text.contains("[llc]\nrandomized = true\n"));
        assert!(text.contains("base_ipc = 1.6\n"));
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let text = "# top comment\n\n[dram]  \n  channels = 2\n\n# tail\nrow_bytes = 8192\n";
        let d = KvDoc::parse(text).expect("parse");
        assert_eq!(d.get_u64("dram.channels"), Ok(2));
        assert_eq!(d.get_u64("dram.row_bytes"), Ok(8192));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.125, 1.6, 3.0, 1e-9, 123456.789] {
            let mut d = KvDoc::new();
            d.set_f64("x", v);
            let back = KvDoc::parse(&d.to_toml_string()).expect("parse");
            assert_eq!(back.get_f64("x"), Ok(v));
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut d = KvDoc::new();
        d.set_str("s", "line1\nsaid \"hi\" \\ done");
        let back = KvDoc::parse(&d.to_toml_string()).expect("parse");
        assert_eq!(back.get_str("s"), Ok("line1\nsaid \"hi\" \\ done"));
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let err = KvDoc::parse("a = 1\nnot a pair\n").unwrap_err();
        assert_eq!(
            err,
            KvError::Syntax {
                line: 2,
                message: "expected `key = value`".to_string()
            }
        );
        assert!(KvDoc::parse("[unterminated\n").is_err());
        assert!(KvDoc::parse("x = \"open\n").is_err());
        assert!(KvDoc::parse("x = 1.2.3\n").is_err());
    }

    #[test]
    fn typed_access_reports_mismatch_and_missing() {
        let d = sample();
        assert_eq!(
            d.get_u64("nope"),
            Err(KvError::MissingKey("nope".to_string()))
        );
        assert_eq!(
            d.get_bool("core.cores"),
            Err(KvError::TypeMismatch {
                key: "core.cores".to_string(),
                expected: "bool"
            })
        );
        assert_eq!(d.get_f64("core.cores"), Ok(8.0));
    }
}
