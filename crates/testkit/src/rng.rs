//! Deterministic PRNG for the toolkit (SplitMix64-seeded xoshiro256**).
//!
//! This intentionally duplicates the tiny generator in
//! `ivl-sim-core::rng`: the testkit must sit at the bottom of the
//! dependency graph (every crate, including `ivl-sim-core` itself, depends
//! on it), so it cannot import the simulator's copy without a cycle.

/// SplitMix64 step: returns `(output, next_state)`.
pub fn splitmix64(state: u64) -> (u64, u64) {
    let next = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = next;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31), next)
}

/// xoshiro256** deterministic PRNG.
///
/// # Examples
///
/// ```
/// use ivl_testkit::rng::TestRng;
/// let mut a = TestRng::seed_from(7);
/// let mut b = TestRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            let (v, next) = splitmix64(state);
            *slot = v;
            state = next;
        }
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        TestRng { s }
    }

    /// Next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniformly selects an index into a collection of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::seed_from(42);
        let mut b = TestRng::seed_from(42);
        for _ in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::seed_from(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = TestRng::seed_from(1);
        for bound in [1u64, 2, 7, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = TestRng::seed_from(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
