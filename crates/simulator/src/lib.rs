//! Trace-driven multicore system model.
//!
//! This crate ties the substrates together into the evaluated system: eight
//! cores with private L2 caches, a shared (randomized) LLC, and a memory
//! controller whose miss path runs through a pluggable
//! [`IntegritySubsystem`](ivl_secure_mem::subsystem::IntegritySubsystem)
//! (Baseline global BMT, IvLeague-Basic/-Invert/-Pro, or the BV allocator
//! baselines).
//!
//! The engine is *trace-driven*: each core consumes the address stream of
//! its benchmark model, charging `gap_instrs / base_ipc` cycles of compute
//! between memory operations and `miss_latency / mlp` cycles of stall per
//! LLC miss (the MLP factor models the overlap an out-of-order core
//! extracts). Cores advance in loose lock-step (the least-advanced core
//! executes next), sharing the LLC, DRAM banks and metadata caches, which
//! reproduces the inter-workload interference the paper's multi-programmed
//! mixes exercise.
//!
//! See [`SchemeKind`] for the evaluated schemes and [`run_mix`] for the
//! one-call entry the figure harness uses.
//!
//! # Examples
//!
//! ```
//! use ivl_simulator::{run_mix, RunConfig, SchemeKind};
//! use ivl_workloads::mixes::mix_by_name;
//!
//! let mix = mix_by_name("S-1").unwrap();
//! let cfg = RunConfig::smoke_test();
//! let result = run_mix(mix, SchemeKind::Baseline, &cfg);
//! assert_eq!(result.cores.len(), 4);
//! assert!(result.weighted_ipc() > 0.0);
//! ```

pub mod calendar;
pub mod par;
pub mod system;

pub use par::{run_mix_observed_par, run_mix_par};
pub use system::{
    par_workers_from_env, run_mix, run_mix_observed, run_mix_observed_with_scheduler,
    run_mix_with_config, run_mix_with_scheduler, CoreResult, EngineKind, MixResult, ObservedRun,
    RunConfig, SchedulerKind, SchemeKind,
};
