//! The multicore engine and per-mix runner.

use crate::calendar::{CalendarEvent, EventCalendar};
use ivl_cache::randomized::RandomizedCache;
use ivl_cache::set_assoc::SetAssocCache;
use ivl_cache::CacheModel;
use ivl_dram::DramModel;
use ivl_secure_mem::baseline::GlobalBmtSubsystem;
use ivl_secure_mem::subsystem::{IntegritySubsystem, IvStats, NoProtection};
use ivl_sim_core::config::{IvVariant, SystemConfig};
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::obs::timeline::write_timeline_jsonl;
use ivl_sim_core::obs::{
    decorate_path, path_tag, write_stats_json, write_trace_jsonl, CacheKind, EventKind, Obs,
    ObsConfig, Phase, StatsRegistry, TimelineData, TraceRecord,
};
use ivl_sim_core::stats::HitMiss;
use ivl_sim_core::Cycle;
use ivl_workloads::mixes::Mix;
use ivl_workloads::trace::{MemEvent, TraceGenerator};
use ivleague::scheme::{AllocatorKind, IvLeagueSubsystem};

/// The schemes the evaluation compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Secure global Bonsai Merkle Tree (the paper's Baseline).
    Baseline,
    /// IvLeague with leaf-only mapping.
    IvBasic,
    /// IvLeague with top-down intermediate-node mapping.
    IvInvert,
    /// IvLeague-Invert plus the hotpage region.
    IvPro,
    /// IvLeague with the naive current-TreeLing bit-vector allocator.
    BvV1,
    /// IvLeague with the naive cross-TreeLing bit-vector allocator.
    BvV2,
    /// No memory protection (ablation floor).
    Insecure,
}

impl SchemeKind {
    /// The four schemes of Figures 15/16/18/19, in legend order.
    pub const MAIN: [SchemeKind; 4] = [
        SchemeKind::Baseline,
        SchemeKind::IvBasic,
        SchemeKind::IvInvert,
        SchemeKind::IvPro,
    ];

    /// Every scheme, in evaluation order (the leak-search fuzzer sweeps
    /// this list minus [`Insecure`](SchemeKind::Insecure)).
    pub const ALL: [SchemeKind; 7] = [
        SchemeKind::Baseline,
        SchemeKind::IvBasic,
        SchemeKind::IvInvert,
        SchemeKind::IvPro,
        SchemeKind::BvV1,
        SchemeKind::BvV2,
        SchemeKind::Insecure,
    ];

    /// Whether the scheme's isolation claims say the metadata timing
    /// channel must be closed. `Baseline` shares one global tree (the
    /// MetaLeak target) and `Insecure` has no metadata at all; every
    /// IvLeague variant — whatever its allocator — must show no
    /// attacker-distinguishable metadata signal.
    pub fn is_protected(self) -> bool {
        !matches!(self, SchemeKind::Baseline | SchemeKind::Insecure)
    }

    /// Parses a figure-legend label (or the common CLI aliases) back into
    /// the scheme; the inverse of [`label`](Self::label).
    pub fn from_label(name: &str) -> Option<SchemeKind> {
        let n = name.to_ascii_lowercase();
        Some(match n.as_str() {
            "baseline" => SchemeKind::Baseline,
            "ivbasic" | "ivleague-basic" | "basic" => SchemeKind::IvBasic,
            "ivinvert" | "ivleague-invert" | "invert" => SchemeKind::IvInvert,
            "ivpro" | "ivleague-pro" | "pro" => SchemeKind::IvPro,
            "bv-v1" | "bvv1" => SchemeKind::BvV1,
            "bv-v2" | "bvv2" => SchemeKind::BvV2,
            "insecure" | "noprotection" => SchemeKind::Insecure,
            _ => return None,
        })
    }

    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::Baseline => "Baseline",
            SchemeKind::IvBasic => "IvLeague-Basic",
            SchemeKind::IvInvert => "IvLeague-Invert",
            SchemeKind::IvPro => "IvLeague-Pro",
            SchemeKind::BvV1 => "BV-v1",
            SchemeKind::BvV2 => "BV-v2",
            SchemeKind::Insecure => "NoProtection",
        }
    }

    /// Builds the integrity subsystem for this scheme.
    pub fn build(self, cfg: &SystemConfig) -> SchemeInstance {
        match self {
            SchemeKind::Baseline => {
                SchemeInstance::Baseline(GlobalBmtSubsystem::new(&cfg.secure, cfg.total_pages()))
            }
            SchemeKind::IvBasic => SchemeInstance::Iv(IvLeagueSubsystem::new(
                cfg,
                IvVariant::Basic,
                AllocatorKind::Nfl,
            )),
            SchemeKind::IvInvert => SchemeInstance::Iv(IvLeagueSubsystem::new(
                cfg,
                IvVariant::Invert,
                AllocatorKind::Nfl,
            )),
            SchemeKind::IvPro => SchemeInstance::Iv(IvLeagueSubsystem::new(
                cfg,
                IvVariant::Pro,
                AllocatorKind::Nfl,
            )),
            SchemeKind::BvV1 => SchemeInstance::Iv(IvLeagueSubsystem::new(
                cfg,
                IvVariant::Pro,
                AllocatorKind::BvV1,
            )),
            SchemeKind::BvV2 => SchemeInstance::Iv(IvLeagueSubsystem::new(
                cfg,
                IvVariant::Pro,
                AllocatorKind::BvV2,
            )),
            SchemeKind::Insecure => SchemeInstance::None(NoProtection::new()),
        }
    }
}

/// A concrete scheme instance; an enum (rather than `Box<dyn …>`) so the
/// runner can reach scheme-specific state (forest utilization) afterwards.
// Only a handful of instances exist per run, so the size skew between
// variants costs nothing; boxing would just add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum SchemeInstance {
    /// Global-BMT baseline.
    Baseline(GlobalBmtSubsystem),
    /// Any IvLeague variant/allocator.
    Iv(IvLeagueSubsystem),
    /// No protection.
    None(NoProtection),
}

impl SchemeInstance {
    /// The instance as the trait object the memory controller drives.
    /// Public so external harnesses (the attack driver, the leak-search
    /// fuzzer) can run arbitrary access programs against a built scheme.
    pub fn as_subsystem(&mut self) -> &mut dyn IntegritySubsystem {
        match self {
            SchemeInstance::Baseline(s) => s,
            SchemeInstance::Iv(s) => s,
            SchemeInstance::None(s) => s,
        }
    }

    /// Shared-reference counterpart of [`as_subsystem`](Self::as_subsystem).
    pub fn as_subsystem_ref(&self) -> &dyn IntegritySubsystem {
        match self {
            SchemeInstance::Baseline(s) => s,
            SchemeInstance::Iv(s) => s,
            SchemeInstance::None(s) => s,
        }
    }

    /// Scheme statistics so far (monotonic; see [`IvStats::delta`]).
    pub fn stats(&self) -> &IvStats {
        match self {
            SchemeInstance::Baseline(s) => s.stats(),
            SchemeInstance::Iv(s) => s.stats(),
            SchemeInstance::None(s) => s.stats(),
        }
    }
}

/// How the engine picks the next core to execute.
///
/// Both schedulers realize the same loose global ordering — the
/// least-advanced eligible core executes next, ties broken by lowest core
/// index — and are pinned bit-identical against each other by regression
/// tests. The calendar is the default: it pops the next core in O(log n)
/// from an [`EventCalendar`] instead of rescanning every core per event,
/// and the same calendar is the insertion point for deferred model events
/// (bank-free, bus-free) when the engine grows beyond core granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Binary-heap event calendar keyed on core-ready cycles.
    #[default]
    EventCalendar,
    /// The pre-calendar linear `min_by_key` scan, kept as the ordering
    /// oracle for determinism tests.
    LinearScan,
}

/// Which stepping engine executes a run.
///
/// Both engines produce bit-identical figure data (pinned by the
/// determinism suite); the parallel engine additionally exports `par.*`
/// scheduling counters that legitimately vary run to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The single-threaded oracle engine.
    #[default]
    Serial,
    /// The decoupled front-end parallel engine ([`crate::par`]).
    Par {
        /// Front-end worker threads (clamped to the process count).
        workers: usize,
    },
}

impl EngineKind {
    /// Engine selection from the environment: `IVL_PAR_SYSTEM=1` (or
    /// `true`) turns the parallel engine on; `IVL_PAR_WORKERS` (falling
    /// back to `IVL_WORKERS`, then the machine's parallelism) sizes its
    /// front-end worker pool.
    pub fn from_env() -> Self {
        let on = std::env::var("IVL_PAR_SYSTEM")
            .map(|v| {
                let v = v.trim();
                v == "1" || v.eq_ignore_ascii_case("true")
            })
            .unwrap_or(false);
        if on {
            EngineKind::Par {
                workers: par_workers_from_env(),
            }
        } else {
            EngineKind::Serial
        }
    }
}

/// Worker-count resolution for the parallel engine: `IVL_PAR_WORKERS`
/// when set, else the testkit default (`IVL_WORKERS`, else one per
/// available core).
pub fn par_workers_from_env() -> usize {
    std::env::var("IVL_PAR_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(ivl_testkit::par::available_workers)
}

/// Run lengths and seed of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Memory accesses per core discarded as warmup (after the footprint
    /// ramp completes; the ramp itself is also warmup).
    pub warmup_accesses: u64,
    /// Memory accesses per core measured.
    pub measure_accesses: u64,
    /// Trace seed.
    pub seed: u64,
}

impl RunConfig {
    /// The configuration the figure harness uses.
    pub fn evaluation() -> Self {
        RunConfig {
            warmup_accesses: 100_000,
            measure_accesses: 400_000,
            seed: 2024,
        }
    }

    /// A tiny configuration for unit/integration tests.
    pub fn smoke_test() -> Self {
        RunConfig {
            warmup_accesses: 2_000,
            measure_accesses: 10_000,
            seed: 7,
        }
    }
}

/// Per-core measurement.
#[derive(Debug, Clone)]
pub struct CoreResult {
    /// Benchmark running on this core.
    pub benchmark: &'static str,
    /// Retired instructions in the measurement window.
    pub instrs: u64,
    /// Cycles in the measurement window.
    pub cycles: Cycle,
    /// Memory-idle IPC of this benchmark (normalization constant).
    pub base_ipc: f64,
}

impl CoreResult {
    /// Achieved IPC.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instrs as f64 / self.cycles as f64
        }
    }

    /// IPC normalized to the benchmark's memory-idle IPC.
    pub fn relative_ipc(&self) -> f64 {
        self.ipc() / self.base_ipc
    }
}

/// Result of one (mix, scheme) simulation.
#[derive(Debug, Clone)]
pub struct MixResult {
    /// Mix name ("S-1" …).
    pub mix: &'static str,
    /// Scheme that ran.
    pub scheme: SchemeKind,
    /// Per-core results.
    pub cores: Vec<CoreResult>,
    /// Integrity-subsystem statistics over the measurement window.
    pub stats: IvStats,
    /// Per-benchmark average verification path lengths cannot be split out
    /// of the shared subsystem, so path length is reported mix-wide.
    pub avg_path_length: f64,
    /// Whether any page allocation failed (BV-v1 exhaustion → "✗").
    pub failed: bool,
    /// Forest utilization statistics (NFL runs only).
    pub utilization: Option<f64>,
    /// Untracked slots at end of run (NFL runs only).
    pub untracked_slots: Option<u64>,
    /// Slots leaked by the naive BV-v1 allocator (BV runs only).
    pub bv_leaked_slots: Option<u64>,
    /// Bit-vector blocks scanned by the naive allocators (BV runs only).
    pub bv_blocks_scanned: Option<u64>,
    /// LLC-missing data reads observed in the measurement window.
    pub llc_miss_reads: u64,
    /// Sum of their critical-path latencies (cycles).
    pub read_latency_sum: u64,
    /// Memory accesses issued by the cores in the measurement window.
    pub core_accesses: u64,
}

impl MixResult {
    /// Mean LLC-miss read latency.
    pub fn avg_read_latency(&self) -> f64 {
        if self.llc_miss_reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.llc_miss_reads as f64
        }
    }
}

impl MixResult {
    /// Weighted IPC: mean of per-core IPCs normalized to each benchmark's
    /// memory-idle IPC (the per-benchmark constant plays the role of the
    /// alone-run IPC in the classical weighted-speedup metric; it cancels
    /// in the scheme-vs-Baseline ratios the figures report).
    pub fn weighted_ipc(&self) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        self.cores.iter().map(CoreResult::relative_ipc).sum::<f64>() / self.cores.len() as f64
    }
}

struct Core {
    /// Index into the per-process generator table (threads of a process
    /// share one generator: one heap, one footprint).
    gen: usize,
    domain: DomainId,
    l2: SetAssocCache,
    /// Local clock.
    now: Cycle,
    /// Instructions retired since measurement start.
    instrs: u64,
    /// Memory accesses seen since warmup start (for phase control).
    accesses: u64,
    /// Measurement-window start time.
    measure_start: Cycle,
    measure_instrs_start: u64,
    benchmark: &'static str,
    base_ipc: f64,
    mlp: f64,
    inv_ipc: f64,
}

/// One observed (mix, scheme) run: the classic result plus the measured
/// stats registry (epoch-delta'd over the measurement window, with
/// end-of-run gauges) and the cycle-sorted trace events.
#[derive(Debug)]
pub struct ObservedRun {
    /// The figure-facing result, identical to what [`run_mix`] returns.
    pub result: MixResult,
    /// Registry of every exported statistic; counters/ratios/histograms
    /// cover the measurement window only, gauges the end-of-run state.
    pub registry: StatsRegistry,
    /// Trace records, stably sorted by `(cycle, seq)`; empty unless the
    /// config enables tracing.
    pub events: Vec<TraceRecord>,
    /// Windowed simulated-time series over the measurement window (cleared
    /// at the warmup→measurement flip); empty unless the config enables the
    /// timeline.
    pub timeline: TimelineData,
}

/// Runs one mix under one scheme.
pub fn run_mix(mix: &Mix, scheme_kind: SchemeKind, run: &RunConfig) -> MixResult {
    let cfg = SystemConfig::default();
    run_mix_with_config(mix, scheme_kind, run, &cfg)
}

/// Runs one mix under one scheme with an explicit system configuration
/// (used by the sensitivity studies of Figure 20).
///
/// Observability is driven by the environment (`IVL_TRACE`,
/// `IVL_STATS_JSON`, `IVL_PROFILE`, …): when any sink is requested the run
/// records through [`run_mix_observed`] and writes the sinks to paths
/// decorated with a `<mix>.<scheme>` tag, so parallel matrix runs never
/// clobber each other's files.
pub fn run_mix_with_config(
    mix: &Mix,
    scheme_kind: SchemeKind,
    run: &RunConfig,
    cfg: &SystemConfig,
) -> MixResult {
    let obs_cfg = ObsConfig::from_env();
    let engine = EngineKind::from_env();
    let run_engine = |oc: &ObsConfig| match engine {
        EngineKind::Serial => run_mix_observed(mix, scheme_kind, run, cfg, oc),
        EngineKind::Par { workers } => {
            crate::par::run_mix_observed_par(mix, scheme_kind, run, cfg, oc, workers)
        }
    };
    if !obs_cfg.any_enabled() {
        return run_engine(&ObsConfig::off()).result;
    }
    let observed = run_engine(&obs_cfg);
    let tag = format!("{}.{}", path_tag(mix.name), path_tag(scheme_kind.label()));
    if let Some(p) = &obs_cfg.trace_path {
        let path = decorate_path(p, &tag);
        if let Err(e) = write_trace_jsonl(&observed.events, &path) {
            eprintln!("warning: could not write trace {}: {e}", path.display());
        }
    }
    if let Some(p) = &obs_cfg.stats_path {
        let path = decorate_path(p, &tag);
        if let Err(e) = write_stats_json(&observed.registry, &path) {
            eprintln!("warning: could not write stats {}: {e}", path.display());
        }
    }
    if let Some(p) = &obs_cfg.timeline_path {
        let path = decorate_path(p, &tag);
        if let Err(e) = write_timeline_jsonl(&observed.timeline, &path) {
            eprintln!("warning: could not write timeline {}: {e}", path.display());
        }
    }
    observed.result
}

/// Exports the scheme/DRAM/LLC statistics shared by both stepping
/// engines; each engine adds its own per-core L2 tallies on top (the
/// parallel engine reads them from producer stamps for single-core
/// processes).
pub(crate) fn export_shared_stats(
    scheme: &SchemeInstance,
    dram: &DramModel,
    llc: &RandomizedCache,
    reg: &mut StatsRegistry,
) {
    scheme.as_subsystem_ref().export_stats("scheme", reg);
    dram.export_stats("dram", reg);
    let lt = llc.tally();
    reg.set_ratio("llc.data", HitMiss::from_parts(lt.hits, lt.misses));
    reg.set_counter("llc.evictions", lt.evictions);
    reg.set_counter("llc.dirty_evictions", lt.dirty_evictions);
}

/// Exports everything every model knows into one registry snapshot.
fn export_run_stats(
    scheme: &SchemeInstance,
    dram: &DramModel,
    llc: &RandomizedCache,
    cores: &[Core],
    reg: &mut StatsRegistry,
) {
    export_shared_stats(scheme, dram, llc, reg);
    for (i, c) in cores.iter().enumerate() {
        let t = c.l2.tally();
        reg.set_ratio(
            &format!("core{i}.l2"),
            HitMiss::from_parts(t.hits, t.misses),
        );
    }
}

/// Runs one mix under one scheme while recording the observability
/// artifacts `obs_cfg` asks for. With [`ObsConfig::off`] this is exactly
/// [`run_mix_with_config`] minus the environment lookup: the tracer and
/// profiler handles stay disabled and every instrument collapses to one
/// branch.
///
/// Statistics are measured with **epoch deltas**, not resets: at the
/// warmup→measurement flip the run snapshots the full registry (and the
/// raw [`IvStats`]), and the reported values are the end-of-run export
/// minus that snapshot. No model mutates its counters at the flip, so a
/// later consumer can still read lifetime totals off the models.
pub fn run_mix_observed(
    mix: &Mix,
    scheme_kind: SchemeKind,
    run: &RunConfig,
    cfg: &SystemConfig,
    obs_cfg: &ObsConfig,
) -> ObservedRun {
    run_mix_observed_with_scheduler(
        mix,
        scheme_kind,
        run,
        cfg,
        obs_cfg,
        SchedulerKind::default(),
    )
}

/// Runs one mix under one scheme with an explicit core scheduler (the
/// ordering-determinism tests pin [`SchedulerKind::EventCalendar`] against
/// [`SchedulerKind::LinearScan`] this way; everything else uses the
/// default).
pub fn run_mix_with_scheduler(
    mix: &Mix,
    scheme_kind: SchemeKind,
    run: &RunConfig,
    scheduler: SchedulerKind,
) -> MixResult {
    let cfg = SystemConfig::default();
    run_mix_observed_with_scheduler(mix, scheme_kind, run, &cfg, &ObsConfig::off(), scheduler)
        .result
}

/// [`run_mix_observed`] with an explicit [`SchedulerKind`].
pub fn run_mix_observed_with_scheduler(
    mix: &Mix,
    scheme_kind: SchemeKind,
    run: &RunConfig,
    cfg: &SystemConfig,
    obs_cfg: &ObsConfig,
    scheduler: SchedulerKind,
) -> ObservedRun {
    let obs = Obs::from_config(obs_cfg);
    // Cached enabled flags: the hot loop branches on plain bools instead of
    // re-querying the handles per event.
    let trace_on = obs.tracer.enabled();
    let prof_on = obs.profiler.is_enabled();
    let tl_on = obs.timeline.enabled();
    let mut scheme = scheme_kind.build(cfg);
    scheme.as_subsystem().attach_obs(&obs);
    let mut dram = DramModel::new(&cfg.dram);
    dram.set_obs(obs.clone());
    let mut llc = RandomizedCache::with_geometry(
        cfg.llc.cache.capacity_bytes,
        cfg.llc.cache.ways,
        cfg.llc.cache.line_bytes,
        run.seed ^ 0x11C,
    );

    // Lay the four processes out in disjoint quarters of physical memory;
    // worker threads of a process share its heap (one generator).
    let threads = mix.class.threads_per_process();
    let total_pages = cfg.total_pages();
    let proc_range = total_pages / 4;
    let mut gens: Vec<TraceGenerator> = Vec::new();
    let mut cores: Vec<Core> = Vec::new();
    for (pi, profile) in mix.profiles().into_iter().enumerate() {
        let domain = DomainId::new_unchecked(pi as u16 + 1);
        let base = pi as u64 * proc_range;
        gens.push(TraceGenerator::with_footprint(
            profile,
            domain,
            base,
            run.seed.wrapping_mul(31).wrapping_add(pi as u64),
            profile.footprint_pages(),
            proc_range.next_power_of_two() / 2,
        ));
        for _ti in 0..threads {
            cores.push(Core {
                gen: pi,
                domain,
                // The trace models post-L1 traffic, so the first private
                // level a core owns here is its L2 (the parallel engine
                // mirrors this layout).
                l2: SetAssocCache::with_geometry(
                    cfg.core.l2.capacity_bytes,
                    cfg.core.l2.ways,
                    cfg.core.l2.line_bytes,
                ),
                now: 0,
                instrs: 0,
                accesses: 0,
                measure_start: 0,
                measure_instrs_start: 0,
                benchmark: profile.name,
                base_ipc: profile.base_ipc,
                mlp: profile.mlp,
                inv_ipc: 1.0 / profile.base_ipc,
            });
        }
    }

    let warmup_total = run.warmup_accesses;
    let measure_total = warmup_total + run.measure_accesses;
    let mut measuring = false;
    let mut llc_miss_reads = 0u64;
    let mut read_latency_sum = 0u64;
    let mut core_accesses = 0u64;
    // Epoch snapshots taken at the warmup→measurement flip; measured
    // values are end-of-run exports minus these.
    let mut epoch_stats = IvStats::default();
    let mut epoch_reg = StatsRegistry::new();
    // Scratch buffer for L2→LLC write-backs, reused every iteration so the
    // hot loop never allocates.
    let mut llc_writebacks: Vec<u64> = Vec::new();
    // Hoisted out of the event loop: one environment lookup per run, not
    // one per event (std::env::var takes a process-wide lock and scans the
    // environment block).
    let debug_warm = std::env::var("IVL_DEBUG_WARM").is_ok();
    // Event calendar over typed events: each eligible core holds exactly
    // one `CoreReady` entry, keyed `(ready cycle, core index)`, so a pop
    // is the least-advanced core with lowest-index tie-breaking — the same
    // loose global ordering the linear scan produced, in O(log n). The
    // DRAM model's bank-ready / bus-drain transitions live in its own
    // internal slot calendar: the access path reclaims due slots in place
    // (idle-window accounting is invariant to where the clock is advanced,
    // pinned by the dram-sim property tests), and the runner settles
    // anything still outstanding at the epoch edges below.
    let mut calendar: EventCalendar<CalendarEvent> = EventCalendar::with_capacity(cores.len());
    if scheduler == SchedulerKind::EventCalendar {
        for (i, c) in cores.iter().enumerate() {
            if c.accesses < measure_total {
                calendar.schedule(c.now, i as u64, CalendarEvent::CoreReady(i));
            }
        }
    }
    // Run-until-preempted fast path: when the core that just executed is
    // still strictly the earliest-keyed runnable core, keep running it
    // without a schedule/pop round-trip through the heap. Identical
    // selection order by construction — a fresh entry's sequence number is
    // larger than every queued one, so a strict key win is exactly the
    // case where the heap would have returned the same core.
    let mut next: Option<usize> = None;
    // Peak calendar occupancy (runnable core entries plus the running
    // core's implicit entry plus pending DRAM model events); reset at the
    // warmup→measurement flip so the exported gauge covers the window.
    let mut occ_peak: usize = 0;

    loop {
        // Least-advanced core executes next (loose global ordering).
        let idx = match next.take() {
            Some(i) => i,
            None => match scheduler {
                SchedulerKind::EventCalendar => match calendar.pop() {
                    Some((_, CalendarEvent::CoreReady(i))) => i,
                    Some((_, ev)) => unreachable!("runner schedules only CoreReady, got {ev:?}"),
                    None => break,
                },
                SchedulerKind::LinearScan => {
                    match cores
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| c.accesses < measure_total)
                        .min_by_key(|(_, c)| c.now)
                        .map(|(i, _)| i)
                    {
                        Some(i) => i,
                        None => break,
                    }
                }
            },
        };
        // Flip to the measurement window once every core leaves warmup and
        // its footprint is resident.
        if debug_warm && !measuring {
            let states: Vec<String> = cores
                .iter()
                .map(|c| format!("{}:{}", c.benchmark, c.accesses))
                .collect();
            if cores[0].accesses.is_multiple_of(100_000) && cores[0].accesses > 0 {
                eprintln!("warm? {}", states.join(" "));
            }
        }
        if !measuring
            && cores.iter().all(|c| c.accesses >= warmup_total)
            && gens.iter().all(TraceGenerator::warmed_up)
        {
            measuring = true;
            // Settle the DRAM clock at the epoch edge: every deferred
            // transition due by the least-advanced core's cycle fires in
            // one sweep, so the occupancy gauge enters the measurement
            // window counting only genuinely pending transitions.
            dram.advance_to(cores[idx].now);
            epoch_stats = *scheme.stats();
            export_run_stats(&scheme, &dram, &llc, &cores, &mut epoch_reg);
            // Clear at the same flip the registry snapshot is taken, so the
            // timeline's window sums equal the registry's epoch deltas.
            obs.timeline.clear();
            occ_peak = 0;
            if obs.tracer.enabled() {
                let flip = cores.iter().map(|c| c.now).min().unwrap_or(0);
                obs.tracer.emit(
                    flip,
                    "run",
                    None,
                    None,
                    EventKind::Epoch { label: "measure" },
                );
            }
            for c in &mut cores {
                c.measure_start = c.now;
                c.measure_instrs_start = c.instrs;
            }
        }

        let core = &mut cores[idx];
        let event = {
            let _gen_timing = prof_on.then(|| obs.profiler.scope(Phase::TraceGen));
            gens[core.gen].next_event()
        };
        // Labeled so the cache-hit early exits still fall through to the
        // requeue below (a plain `continue` would skip rescheduling the
        // core and stall the calendar).
        'event: {
            match event {
                MemEvent::Access {
                    block,
                    is_write,
                    gap_instrs,
                } => {
                    core.accesses += 1;
                    if measuring {
                        core_accesses += 1;
                    }
                    core.instrs += gap_instrs;
                    core.now += (gap_instrs as f64 * core.inv_ipc) as Cycle;

                    // The trace models post-L1 traffic (see ivl-workloads):
                    // the first hierarchy level consulted is the private L2.
                    let key = block.index();
                    core.now += cfg.core.l2.hit_latency;
                    let l2 = {
                        let _cache_timing = prof_on.then(|| obs.profiler.scope(Phase::CoreCache));
                        core.l2.access(key, is_write)
                    };
                    if trace_on {
                        obs.tracer.emit(
                            core.now,
                            "cache",
                            Some(core.domain),
                            Some(idx as u8),
                            EventKind::CacheAccess {
                                cache: CacheKind::L2,
                                hit: l2.hit,
                                evicted: l2.evicted.is_some(),
                            },
                        );
                    }
                    if l2.hit {
                        break 'event;
                    }
                    llc_writebacks.clear();
                    if let Some(e) = l2.evicted.filter(|e| e.dirty) {
                        llc_writebacks.push(e.key);
                    }
                    core.now += cfg.llc.cache.hit_latency - cfg.core.l2.hit_latency;
                    let llc_out = {
                        let _cache_timing = prof_on.then(|| obs.profiler.scope(Phase::CoreCache));
                        llc.access(key, is_write)
                    };
                    let llc_hit = llc_out.hit;
                    if tl_on {
                        ivl_cache::timeline_outcome(
                            &obs.timeline,
                            core.now,
                            &llc_out,
                            "llc.misses",
                            "llc.evictions",
                        );
                    }
                    if trace_on {
                        obs.tracer.emit(
                            core.now,
                            "cache",
                            Some(core.domain),
                            Some(idx as u8),
                            EventKind::CacheAccess {
                                cache: CacheKind::Llc,
                                hit: llc_hit,
                                evicted: llc_out.evicted.is_some(),
                            },
                        );
                    }
                    if let Some(e) = llc_out.evicted.filter(|e| e.dirty) {
                        // LLC dirty eviction: secure write-back to memory.
                        let _integrity_timing =
                            prof_on.then(|| obs.profiler.scope(Phase::Integrity));
                        scheme.as_subsystem().data_access(
                            core.now,
                            &mut dram,
                            ivl_sim_core::addr::BlockAddr::new(e.key),
                            core.domain,
                            true,
                        );
                    }
                    for wb in llc_writebacks.drain(..) {
                        let out = llc.access(wb, true);
                        if tl_on {
                            ivl_cache::timeline_outcome(
                                &obs.timeline,
                                core.now,
                                &out,
                                "llc.misses",
                                "llc.evictions",
                            );
                        }
                        if let Some(e) = out.evicted.filter(|e| e.dirty) {
                            let _integrity_timing =
                                prof_on.then(|| obs.profiler.scope(Phase::Integrity));
                            scheme.as_subsystem().data_access(
                                core.now,
                                &mut dram,
                                ivl_sim_core::addr::BlockAddr::new(e.key),
                                core.domain,
                                true,
                            );
                        }
                    }
                    if llc_hit {
                        break 'event;
                    }
                    // LLC miss: the secure memory path.
                    let done = {
                        let _integrity_timing =
                            prof_on.then(|| obs.profiler.scope(Phase::Integrity));
                        scheme.as_subsystem().data_access(
                            core.now,
                            &mut dram,
                            block,
                            core.domain,
                            is_write,
                        )
                    };
                    let latency = done.saturating_sub(core.now);
                    if measuring && !is_write {
                        llc_miss_reads += 1;
                        read_latency_sum += latency;
                    }
                    // MLP hides service latency but not bandwidth queueing:
                    // split the observed latency into a service portion (capped)
                    // that overlaps across outstanding misses, and a queueing
                    // remainder that throttles the core at full weight.
                    let service = latency.min(400);
                    let queueing = latency - service;
                    core.now += queueing + (service as f64 / core.mlp) as Cycle;
                }
                MemEvent::Alloc { page } => {
                    let done =
                        scheme
                            .as_subsystem()
                            .page_alloc(core.now, &mut dram, page, core.domain);
                    // Page-fault handling overhead (identical across schemes)
                    // plus the scheme's allocation work.
                    core.now = done + 200;
                    core.instrs += 50;
                }
                MemEvent::Dealloc { page } => {
                    // TLB shootdown semantics: a freed page's lines are flushed
                    // from the hierarchy, so no write-back of a dead page can
                    // reach the integrity machinery later.
                    for b in page.blocks() {
                        core.l2.invalidate(b.index());
                        llc.invalidate(b.index());
                    }
                    let done =
                        scheme
                            .as_subsystem()
                            .page_dealloc(core.now, &mut dram, page, core.domain);
                    core.now = done + 100;
                    core.instrs += 30;
                }
            }
        }

        // Requeue the core at its new ready cycle; a core past its access
        // budget simply leaves the calendar (mirroring the linear scan's
        // eligibility filter). If the core is still strictly ahead of the
        // calendar head it keeps running without touching the heap.
        if scheduler == SchedulerKind::EventCalendar {
            let c = &cores[idx];
            if c.accesses < measure_total {
                let key = (c.now, idx as u64);
                if calendar.peek_key().is_none_or(|head| key < head) {
                    next = Some(idx);
                } else {
                    calendar.schedule(c.now, idx as u64, CalendarEvent::CoreReady(idx));
                }
            }
            let occ = calendar.len() + next.is_some() as usize + dram.pending_events();
            if occ > occ_peak {
                occ_peak = occ;
            }
            if tl_on {
                obs.timeline.gauge("cal.occupancy", cores[idx].now, occ as f64);
            }
        }
    }

    // Measurement-window statistics: delta against the epoch snapshot
    // instead of having reset the models at the flip.
    let stats = scheme.stats().delta(&epoch_stats);
    let (utilization, untracked) = match &scheme {
        SchemeInstance::Iv(iv) => match iv.forest() {
            Some(f) => (
                Some(f.stats().mean_utilization()),
                Some(f.stats().untracked_slots),
            ),
            None => (None, None),
        },
        _ => (None, None),
    };
    let (bv_leaked, bv_scanned) = match &scheme {
        SchemeInstance::Iv(iv) => match iv.bv() {
            Some(b) => (Some(b.leaked_slots()), Some(b.total_blocks_scanned())),
            None => (None, None),
        },
        _ => (None, None),
    };

    let core_results: Vec<CoreResult> = cores
        .iter()
        .map(|c| CoreResult {
            benchmark: c.benchmark,
            instrs: c.instrs - c.measure_instrs_start,
            cycles: c.now - c.measure_start,
            base_ipc: c.base_ipc,
        })
        .collect();

    // Settle the DRAM clock at the run's end edge (the mirror of the
    // flip-time sweep) before the final export.
    dram.advance_to(cores.iter().map(|c| c.now).max().unwrap_or(0));
    let mut end_reg = StatsRegistry::new();
    export_run_stats(&scheme, &dram, &llc, &cores, &mut end_reg);
    let mut registry = end_reg.delta(&epoch_reg);
    if scheduler == SchedulerKind::EventCalendar {
        // Measurement-window peak of the `cal.occupancy` timeline gauge —
        // set after the delta (occ_peak was reset at the flip, so the end
        // export alone is the window value).
        registry.set_gauge("cal.occupancy_peak", occ_peak as f64);
    }
    registry.set_counter("run.core_accesses", core_accesses);
    registry.set_counter("run.llc_miss_reads", llc_miss_reads);
    registry.set_counter("run.read_latency_sum", read_latency_sum);
    // Self-profile covers the whole run (warmup included) — exported after
    // the delta so the epoch subtraction never touches it. The obs-layer
    // truncation counters ride along the same way: a nonzero value means a
    // ring dropped data silently, visible in every JSON snapshot.
    obs.profiler.export(&mut registry);
    if obs.tracer.enabled() {
        registry.set_counter("obs.trace.dropped", obs.tracer.dropped());
    }
    if tl_on {
        registry.set_counter("obs.timeline.dropped", obs.timeline.dropped());
    }
    let events = obs.tracer.sorted_records();
    let timeline = obs.timeline.snapshot();

    let result = MixResult {
        mix: mix.name,
        scheme: scheme_kind,
        avg_path_length: stats.avg_path_length(),
        failed: stats.alloc_failures > 0,
        stats,
        cores: core_results,
        utilization,
        untracked_slots: untracked,
        bv_leaked_slots: bv_leaked,
        bv_blocks_scanned: bv_scanned,
        llc_miss_reads,
        read_latency_sum,
        core_accesses,
    };
    ObservedRun {
        result,
        registry,
        events,
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_workloads::mixes::mix_by_name;

    #[test]
    fn scheme_labels_round_trip_and_protection_split() {
        for kind in SchemeKind::ALL {
            assert_eq!(SchemeKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(SchemeKind::from_label("IvPro"), Some(SchemeKind::IvPro));
        assert_eq!(SchemeKind::from_label("no-such-scheme"), None);
        let protected: Vec<_> = SchemeKind::ALL
            .into_iter()
            .filter(|k| k.is_protected())
            .collect();
        assert_eq!(protected.len(), 5, "all IvLeague variants are protected");
        assert!(!SchemeKind::Baseline.is_protected());
        assert!(!SchemeKind::Insecure.is_protected());
    }

    #[test]
    fn smoke_runs_all_main_schemes() {
        let mix = mix_by_name("S-3").unwrap();
        let run = RunConfig::smoke_test();
        for scheme in SchemeKind::MAIN {
            let r = run_mix(mix, scheme, &run);
            assert_eq!(r.cores.len(), 4);
            assert!(r.weighted_ipc() > 0.0, "{scheme:?}");
            assert!(!r.failed, "{scheme:?}");
            assert!(r.stats.data_reads > 0);
        }
    }

    #[test]
    fn medium_mixes_spawn_two_threads_per_process() {
        let mix = mix_by_name("M-1").unwrap();
        let r = run_mix(mix, SchemeKind::Insecure, &RunConfig::smoke_test());
        assert_eq!(r.cores.len(), 8);
    }

    #[test]
    fn secure_schemes_cost_more_than_insecure() {
        let mix = mix_by_name("S-1").unwrap();
        let run = RunConfig::smoke_test();
        let insecure = run_mix(mix, SchemeKind::Insecure, &run);
        let baseline = run_mix(mix, SchemeKind::Baseline, &run);
        assert!(
            baseline.weighted_ipc() <= insecure.weighted_ipc() * 1.02,
            "secure {} vs insecure {}",
            baseline.weighted_ipc(),
            insecure.weighted_ipc()
        );
        assert!(baseline.stats.meta_reads > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mix = mix_by_name("S-2").unwrap();
        let run = RunConfig::smoke_test();
        let a = run_mix(mix, SchemeKind::IvPro, &run);
        let b = run_mix(mix, SchemeKind::IvPro, &run);
        assert!((a.weighted_ipc() - b.weighted_ipc()).abs() < 1e-12);
        assert_eq!(a.stats.total_mem_accesses(), b.stats.total_mem_accesses());
    }
}
