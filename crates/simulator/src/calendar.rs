//! Event calendar: the simulator's deterministic discrete-event scheduler.
//!
//! The system runner used to pick the next core with a linear
//! `min_by_key` scan over all cores on every event. The calendar replaces
//! that with a binary min-heap keyed on `(cycle, tie, seq)`: popping the
//! least-advanced entry is O(log n), and the explicit `tie` key reproduces
//! the scan's deterministic tie-breaking (lowest core index among cores at
//! the same cycle) bit-for-bit. The payload is generic, so the same
//! calendar that orders core-ready events can own deferred model events —
//! a DRAM bank becoming free, a channel data bus draining its burst — which
//! is the scheduling substrate intra-system parallelism needs (ROADMAP
//! open item 1): entries with distinct `tie` keys order deterministically
//! regardless of insertion order, and entries with equal `(cycle, tie)`
//! fall back to FIFO insertion order via the internal sequence number.
//!
//! # Examples
//!
//! ```
//! use ivl_simulator::calendar::EventCalendar;
//!
//! let mut cal = EventCalendar::new();
//! cal.schedule(100, 1, "core1");
//! cal.schedule(100, 0, "core0"); // same cycle, lower tie → pops first
//! cal.schedule(50, 7, "bank-free");
//! assert_eq!(cal.pop(), Some((50, "bank-free")));
//! assert_eq!(cal.pop(), Some((100, "core0")));
//! assert_eq!(cal.pop(), Some((100, "core1")));
//! assert_eq!(cal.pop(), None);
//! ```

use std::collections::BinaryHeap;

use ivl_sim_core::Cycle;

/// One scheduled entry; ordered for a *min*-heap on `(at, tie, seq)`.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: Cycle,
    tie: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tie == other.tie && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, the calendar pops earliest.
        (other.at, other.tie, other.seq).cmp(&(self.at, self.tie, self.seq))
    }
}

/// A deterministic min-heap of timestamped events.
///
/// Pop order is `(cycle, tie, insertion order)`. Use a stable identity as
/// `tie` (a core index, a flat bank index) to get scan-equivalent
/// deterministic ordering among simultaneous events; unrelated event
/// classes can share a calendar as long as their `tie` spaces make the
/// intended priority explicit.
#[derive(Debug, Clone)]
pub struct EventCalendar<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventCalendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventCalendar<T> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        EventCalendar {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty calendar with room for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        EventCalendar {
            heap: BinaryHeap::with_capacity(n),
            seq: 0,
        }
    }

    /// Schedules `payload` at cycle `at`. Among entries with equal `at`,
    /// the lower `tie` pops first; full ties pop in insertion order.
    #[inline]
    pub fn schedule(&mut self, at: Cycle, tie: u64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at,
            tie,
            seq,
            payload,
        });
    }

    /// Removes and returns the earliest entry.
    #[inline]
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Cycle of the earliest entry without removing it.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// `(cycle, tie)` of the earliest entry without removing it — the key
    /// the sharded calendar merge compares across shards.
    pub fn peek_key(&self) -> Option<(Cycle, u64)> {
        self.heap.peek().map(|e| (e.at, e.tie))
    }

    /// Number of scheduled entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every scheduled entry (the sequence counter keeps advancing,
    /// so FIFO ordering stays stable across reuse).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_order() {
        let mut cal = EventCalendar::new();
        cal.schedule(30, 0, "c");
        cal.schedule(10, 0, "a");
        cal.schedule(20, 0, "b");
        assert_eq!(cal.pop(), Some((10, "a")));
        assert_eq!(cal.pop(), Some((20, "b")));
        assert_eq!(cal.pop(), Some((30, "c")));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn equal_cycles_break_ties_by_key_then_fifo() {
        let mut cal = EventCalendar::new();
        cal.schedule(5, 2, "tie2-first");
        cal.schedule(5, 1, "tie1");
        cal.schedule(5, 2, "tie2-second");
        assert_eq!(cal.pop(), Some((5, "tie1")));
        assert_eq!(cal.pop(), Some((5, "tie2-first")));
        assert_eq!(cal.pop(), Some((5, "tie2-second")));
    }

    #[test]
    fn matches_linear_scan_selection_order() {
        // The property the system runner relies on: popping the calendar
        // reproduces `min_by_key(now)` with lowest-index tie-breaking.
        let mut nows = [40u64, 10, 10, 25];
        let mut cal = EventCalendar::new();
        for (i, &n) in nows.iter().enumerate() {
            cal.schedule(n, i as u64, i);
        }
        let mut scan_order = Vec::new();
        let mut remaining: Vec<usize> = (0..nows.len()).collect();
        while !remaining.is_empty() {
            let &idx = remaining.iter().min_by_key(|&&i| nows[i]).unwrap();
            scan_order.push(idx);
            // Simulate the core advancing, then retiring on its third pick.
            nows[idx] += 30;
            if scan_order.iter().filter(|&&x| x == idx).count() == 3 {
                remaining.retain(|&i| i != idx);
            }
        }
        let mut nows2 = [40u64, 10, 10, 25];
        let mut heap_order = Vec::new();
        let mut picks = [0usize; 4];
        while let Some((_, idx)) = cal.pop() {
            heap_order.push(idx);
            nows2[idx] += 30;
            picks[idx] += 1;
            if picks[idx] < 3 {
                cal.schedule(nows2[idx], idx as u64, idx);
            }
        }
        assert_eq!(scan_order, heap_order);
    }

    #[test]
    fn mixed_event_classes_share_one_calendar() {
        // Core-ready and deferred bank/bus-free events interleave
        // deterministically by (cycle, tie).
        #[derive(Debug, PartialEq)]
        enum Ev {
            CoreReady(u32),
            BankFree(u32),
            BusFree(u32),
        }
        let mut cal = EventCalendar::new();
        cal.schedule(100, 0, Ev::CoreReady(0));
        cal.schedule(90, 1 << 32, Ev::BankFree(3));
        cal.schedule(100, 2 << 32, Ev::BusFree(1));
        cal.schedule(90, 1, Ev::CoreReady(1));
        assert_eq!(cal.pop(), Some((90, Ev::CoreReady(1))));
        assert_eq!(cal.pop(), Some((90, Ev::BankFree(3))));
        assert_eq!(cal.pop(), Some((100, Ev::CoreReady(0))));
        assert_eq!(cal.pop(), Some((100, Ev::BusFree(1))));
    }

    #[test]
    fn peek_len_clear() {
        let mut cal = EventCalendar::with_capacity(4);
        assert!(cal.is_empty());
        assert_eq!(cal.peek_cycle(), None);
        cal.schedule(7, 0, ());
        cal.schedule(3, 0, ());
        assert_eq!(cal.peek_cycle(), Some(3));
        assert_eq!(cal.len(), 2);
        cal.clear();
        assert!(cal.is_empty());
    }
}
