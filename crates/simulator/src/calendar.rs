//! Event calendar re-export: the scheduler now lives in
//! [`ivl_sim_core::calendar`] so the DRAM model (which cannot depend on
//! this crate) can schedule bank-ready / bus-drain events on the same
//! substrate the runners pop core-ready events from. Everything that used
//! `ivl_simulator::calendar::EventCalendar` keeps compiling unchanged.
//!
//! # Examples
//!
//! ```
//! use ivl_simulator::calendar::EventCalendar;
//!
//! let mut cal = EventCalendar::new();
//! cal.schedule(100, 1, "core1");
//! cal.schedule(100, 0, "core0"); // same cycle, lower tie → pops first
//! cal.schedule(50, 7, "bank-free");
//! assert_eq!(cal.pop(), Some((50, "bank-free")));
//! assert_eq!(cal.pop(), Some((100, "core0")));
//! assert_eq!(cal.pop(), Some((100, "core1")));
//! assert_eq!(cal.pop(), None);
//! ```

pub use ivl_sim_core::calendar::{
    CalendarEvent, EventCalendar, TIE_BANK, TIE_BUS, TIE_CORE, TIE_WRITEBACK,
};
