//! `ParSystem`: stepping one simulated system's cores on real threads.
//!
//! # Why a decoupled front-end, not a parallel back-end
//!
//! The serial engine's hot loop is *order-dependent end to end*: the LLC,
//! the integrity scheme, and the DRAM model are shared by every core, and
//! the figures are pinned bit-identical across refactors. Classic PDES
//! tricks (epoch barriers, optimistic rollback, domain partitioning) all
//! change — or cannot cheaply preserve — the loose global ordering the
//! serial loop realizes, so they are off the table.
//!
//! What *is* order-free is the front of the pipeline:
//!
//! * **Trace generation.** [`TraceGenerator::next_event`] takes no
//!   arguments: a process's event stream is a pure function of its seed,
//!   independent of when the consumer asks. Producers can run arbitrarily
//!   far ahead.
//! * **Private L2s of single-threaded processes.** When a process has one
//!   core (`threads_per_process() == 1`), its private L2 sees exactly its
//!   own stream in stream order — also consumer-order-independent. The
//!   producer simulates the L2 *ahead of time* and stamps each event with
//!   the outcome (hit, dirty victim, cumulative tally). The L1 is dead
//!   state in the serial loop (only ever invalidated, never read or
//!   exported), so nobody simulates it at all.
//!
//! Worker threads therefore own the generators (plus, for single-core
//! processes, the private L2s) and stream pre-computed [`FrontEv`]s
//! through bounded SPSC rings. The commit thread — the caller — replays
//! the **exact serial algorithm**, consuming events from rings instead of
//! calling `next_event()` inline: same sharded-calendar pop order, same
//! shared LLC/scheme/DRAM mutation order, same cycle arithmetic. The
//! result is byte-identical to the serial oracle at any worker count,
//! which the determinism suite asserts over the full mix × scheme matrix.
//!
//! Processes with multiple cores (M/H mixes) share one generator across
//! cores, and which core consumes the next event is a commit-order
//! question — so their cores get generation-prefetch only, and the commit
//! thread runs their private L2s inline exactly like the serial engine.
//!
//! # Determinism boundary
//!
//! Everything exported through [`MixResult`] and the stats registry is
//! bit-identical to serial **except** the `par.*` namespace
//! (`par.epoch_waits`, `par.backpressure_waits`, the
//! `par.commitphase.*` attribution counters), which measures real
//! scheduling behavior and legitimately varies run to run. The same split
//! holds for the windowed timeline: `dram.*`/`llc.*`/`scheme.*` series are
//! emitted by the commit thread at the exact cycles the serial engine
//! would use and compare bit-identical, while `par.w<i>.*` and
//! `par.commit.*` series carry genuinely cross-thread/real-time signal and
//! are excluded from the comparison. The self-profiler only ever times
//! commit-side phases in this engine; producer-side work is deliberately
//! unprofiled (a wall-clock scope on another thread would be attributed to
//! nothing meaningful) — producers do, however, record their own
//! backpressure series locally and hand the snapshot back for a
//! deterministic-order merge at join.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use crate::calendar::{CalendarEvent, EventCalendar};
use crate::system::{
    export_shared_stats, CoreResult, MixResult, ObservedRun, RunConfig, SchemeInstance, SchemeKind,
};
use ivl_cache::randomized::RandomizedCache;
use ivl_cache::set_assoc::SetAssocCache;
use ivl_cache::CacheModel;
use ivl_dram::DramModel;
use ivl_secure_mem::subsystem::IvStats;
use ivl_sim_core::config::SystemConfig;
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::obs::{
    CacheKind, EventKind, Obs, ObsConfig, Phase, StatsRegistry, Timeline, TimelineData,
};
use ivl_sim_core::stats::HitMiss;
use ivl_sim_core::Cycle;
use ivl_testkit::spsc::{Consumer, Spsc};
use ivl_workloads::mixes::Mix;
use ivl_workloads::trace::{MemEvent, TraceGenerator};

/// Ring depth per generator: how far a producer may run ahead of the
/// commit thread. Power of two; deep enough to ride out commit-side
/// bursts (a secure-memory miss costs hundreds of modeled cycles of
/// commit work per event), shallow enough to keep the dead-ahead
/// generator state cache-warm.
const RING_DEPTH: usize = 256;

/// Pre-simulated private-L2 outcome stamped onto an access event by the
/// producer that owns the cache (single-core processes only).
#[derive(Debug, Clone, Copy)]
struct L2Stamp {
    hit: bool,
    /// Whether the fill evicted any victim (clean or dirty) — drives the
    /// trace event's `evicted` field.
    evicted_any: bool,
    /// Dirty victim key needing an LLC write-back, if any.
    evict_dirty_key: Option<u64>,
    /// Cumulative (hits, misses) tally of the private L2 *after* this
    /// access — the commit thread re-exports these at the measurement
    /// flip and at end of run, exactly where the serial engine reads
    /// `l2.tally()`.
    hits: u64,
    misses: u64,
}

/// One pre-computed front-end event.
struct FrontEv {
    ev: MemEvent,
    /// `gen.warmed_up()` immediately after producing this event; the
    /// commit thread's warm-flip check reads the latest consumed stamp,
    /// reproducing the serial per-iteration `warmed_up()` poll.
    warmed: bool,
    /// Present on `Access` events of single-core processes.
    l2: Option<L2Stamp>,
}

/// Producer-side state for one process front-end.
struct Front {
    gen_index: usize,
    gen: TraceGenerator,
    /// The process's private L2, owned ahead of commit (single-core
    /// processes only).
    l2: Option<SetAssocCache>,
    tx: ivl_testkit::spsc::Producer<FrontEv>,
}

/// Generates the next event of a front, running the producer-owned L2
/// forward when this front carries one.
fn next_front_event(front: &mut Front) -> FrontEv {
    let ev = front.gen.next_event();
    let warmed = front.gen.warmed_up();
    let l2 = match (&mut front.l2, &ev) {
        (
            Some(l2),
            MemEvent::Access {
                block, is_write, ..
            },
        ) => {
            let out = l2.access(block.index(), *is_write);
            let t = l2.tally();
            Some(L2Stamp {
                hit: out.hit,
                evicted_any: out.evicted.is_some(),
                evict_dirty_key: out.evicted.filter(|e| e.dirty).map(|e| e.key),
                hits: t.hits,
                misses: t.misses,
            })
        }
        (Some(l2), MemEvent::Dealloc { page }) => {
            // TLB-shootdown flush of the producer-owned L2, mirroring the
            // serial engine (the L1 is dead state — nothing reads it — so
            // no engine simulates one).
            for b in page.blocks() {
                l2.invalidate(b.index());
            }
            None
        }
        _ => None,
    };
    FrontEv { ev, warmed, l2 }
}

/// One worker thread's loop: round-robin its owned fronts, producing one
/// event per front per pass. A full ring never blocks the worker — the
/// undeliverable event parks in a per-front `pending` slot and the worker
/// moves on, so one slow consumer cannot stall another front's stream.
///
/// When a timeline is handed in, backpressure stalls are recorded as a
/// `par.w<wid>.backpressure` series keyed on the worker's *pass counter*
/// (producers have no simulated clock — the pass index is their own
/// monotonic notion of progress). The snapshot is returned at exit for the
/// commit thread to merge; series names are worker-unique, so the merge is
/// a plain union regardless of join order.
fn producer_loop(
    mut fronts: Vec<Front>,
    stops: &[AtomicBool],
    backpressure: &AtomicU64,
    wid: usize,
    mut tl: Option<TimelineData>,
) -> Option<TimelineData> {
    let series = format!("par.w{wid}.backpressure");
    let mut pending: Vec<Option<FrontEv>> = fronts.iter().map(|_| None).collect();
    let mut passes = 0u64;
    loop {
        let mut progressed = false;
        let mut all_stopped = true;
        for (fi, front) in fronts.iter_mut().enumerate() {
            if stops[front.gen_index].load(Ordering::Acquire) {
                continue;
            }
            all_stopped = false;
            if let Some(ev) = pending[fi].take() {
                match front.tx.try_push(ev) {
                    Ok(()) => progressed = true,
                    Err(back) => {
                        pending[fi] = Some(back);
                        continue;
                    }
                }
            }
            let ev = next_front_event(front);
            match front.tx.try_push(ev) {
                Ok(()) => progressed = true,
                Err(back) => pending[fi] = Some(back),
            }
        }
        if all_stopped {
            break;
        }
        passes += 1;
        if !progressed {
            // Every live ring is full: the commit thread is the
            // bottleneck. Count it and get out of its way.
            backpressure.fetch_add(1, Ordering::Relaxed);
            if let Some(tl) = tl.as_mut() {
                tl.count(&series, passes, 1);
            }
            std::thread::yield_now();
        }
    }
    tl
}

/// Commit-thread phase names, in accumulator index order. `other` is the
/// residual bucket (warm-flip polls, event dispatch, trace emission);
/// every other phase maps onto a stage of the replayed serial algorithm.
const COMMIT_PHASES: [&str; 5] = ["calendar", "generation", "l2_replay", "integrity", "other"];
const P_CAL: usize = 0;
const P_GEN: usize = 1;
const P_L2: usize = 2;
const P_INT: usize = 3;
const P_OTHER: usize = 4;

/// Windowed-timeline series name per phase (`par.commit.<phase>_ns`).
const COMMIT_SERIES: [&str; 5] = [
    "par.commit.calendar_ns",
    "par.commit.generation_ns",
    "par.commit.l2_replay_ns",
    "par.commit.integrity_ns",
    "par.commit.other_ns",
];

/// Checkpoint-based wall-clock attribution for the commit thread.
///
/// Consecutive [`CommitProf::mark`] calls partition the commit loop's real
/// time *exhaustively*: whatever ran since the previous checkpoint is
/// charged to the phase named at the next one, so the per-phase sums add
/// up to the full profiled span with no un-attributed gaps — the property
/// the folded-stack coverage gate in `timeline_report` relies on. Each
/// increment also streams into the windowed timeline (keyed on the
/// simulated cycle of the event being committed), turning the profile into
/// a phase-attribution series over simulated time.
struct CommitProf {
    enabled: bool,
    tl: Timeline,
    last: Instant,
    nanos: [u64; COMMIT_PHASES.len()],
}

impl CommitProf {
    fn new(enabled: bool, tl: Timeline) -> Self {
        CommitProf {
            enabled,
            tl,
            last: Instant::now(),
            nanos: [0; COMMIT_PHASES.len()],
        }
    }

    /// Charges everything since the previous checkpoint to `phase`.
    #[inline]
    fn mark(&mut self, phase: usize, cycle: Cycle) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        let ns = now.duration_since(self.last).as_nanos() as u64;
        self.nanos[phase] += ns;
        if ns > 0 {
            self.tl.count(COMMIT_SERIES[phase], cycle, ns);
        }
        // Re-stamp *after* the window insertion so the recorder's own cost
        // is excluded from every phase (it would otherwise pollute whichever
        // phase happens to follow each checkpoint).
        self.last = Instant::now();
    }

    /// Zeroes the accumulators at the warmup→measurement flip so the
    /// exported profile covers exactly the measurement window.
    fn reset(&mut self) {
        self.nanos = [0; COMMIT_PHASES.len()];
        self.last = Instant::now();
    }

    /// Exports `par.commitphase.<phase>.micros` plus the total. Real-time
    /// measurements: exported after the epoch delta, like the profiler,
    /// and legitimately nondeterministic.
    fn export(&self, reg: &mut StatsRegistry) {
        if !self.enabled {
            return;
        }
        let mut total = 0u64;
        for (name, ns) in COMMIT_PHASES.iter().zip(self.nanos) {
            reg.set_counter(&format!("par.commitphase.{name}.micros"), ns / 1_000);
            total += ns;
        }
        reg.set_counter("par.commitphase.total.micros", total / 1_000);
    }
}

/// Blocking ring pop on the commit side. Empty polls are counted as
/// `epoch_waits` — the commit thread stalling on its front-end.
fn pop_ring(rx: &mut Consumer<FrontEv>, waits: &mut u64) -> FrontEv {
    let mut spins = 0u32;
    loop {
        if let Some(ev) = rx.try_pop() {
            return ev;
        }
        *waits += 1;
        spins += 1;
        if spins.is_multiple_of(64) {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Per-shard event calendars merged at the pop: the commit thread's
/// deterministic commit point. Each core holds at most one entry, keyed
/// `(ready cycle, global core index)`; ties are globally unique, so the
/// minimum over shard heads reproduces the single-calendar pop order
/// bit-for-bit regardless of how cores are sharded.
struct ShardedCalendar {
    shards: Vec<EventCalendar<CalendarEvent>>,
}

impl ShardedCalendar {
    fn new(n: usize) -> Self {
        ShardedCalendar {
            shards: (0..n).map(|_| EventCalendar::new()).collect(),
        }
    }

    fn schedule(&mut self, shard: usize, at: Cycle, tie: u64, ev: CalendarEvent) {
        self.shards[shard].schedule(at, tie, ev);
    }

    /// `(cycle, tie)` of the earliest entry across every shard — what a
    /// [`pop`](Self::pop) would return next; the commit loop's fast path
    /// compares the running core's key against this.
    fn peek_min_key(&self) -> Option<(Cycle, u64)> {
        self.shards
            .iter()
            .filter_map(EventCalendar::peek_key)
            .min()
    }

    /// Total queued entries across shards (the serial calendar's `len`).
    fn len(&self) -> usize {
        self.shards.iter().map(EventCalendar::len).sum()
    }

    fn pop(&mut self) -> Option<usize> {
        let mut best: Option<(Cycle, u64, usize)> = None;
        for (si, shard) in self.shards.iter().enumerate() {
            if let Some((at, tie)) = shard.peek_key() {
                if best.is_none_or(|(ba, bt, _)| (at, tie) < (ba, bt)) {
                    best = Some((at, tie, si));
                }
            }
        }
        let (_, _, si) = best?;
        self.shards[si].pop().map(|(_, ev)| match ev {
            CalendarEvent::CoreReady(core) => core,
            other => unreachable!("commit calendar holds only CoreReady, got {other:?}"),
        })
    }
}

/// Commit-side core state. Identical to the serial engine's core except
/// that single-core processes carry no commit-side L2 (`l2: None`): their
/// cache ran ahead on the producer, and `l2_stamp` holds the cumulative
/// tally of the last consumed access for the registry exports.
struct ParCore {
    gen: usize,
    domain: DomainId,
    /// Commit-owned private L2 — only for cores of multi-core processes,
    /// whose cache contents depend on commit-order event interleaving.
    l2: Option<SetAssocCache>,
    now: Cycle,
    instrs: u64,
    accesses: u64,
    measure_start: Cycle,
    measure_instrs_start: u64,
    benchmark: &'static str,
    base_ipc: f64,
    mlp: f64,
    inv_ipc: f64,
    /// `(hits, misses)` of the producer-owned L2 as of the last consumed
    /// access event (single-core processes only).
    l2_stamp: (u64, u64),
}

/// [`crate::system`]'s `export_run_stats`, with the per-core L2 tallies
/// read from wherever this engine keeps them: the commit-owned cache, or
/// the last consumed producer stamp.
fn export_par_run_stats(
    scheme: &SchemeInstance,
    dram: &DramModel,
    llc: &RandomizedCache,
    cores: &[ParCore],
    reg: &mut StatsRegistry,
) {
    export_shared_stats(scheme, dram, llc, reg);
    for (i, c) in cores.iter().enumerate() {
        let (hits, misses) = match &c.l2 {
            Some(l2) => {
                let t = l2.tally();
                (t.hits, t.misses)
            }
            None => c.l2_stamp,
        };
        reg.set_ratio(&format!("core{i}.l2"), HitMiss::from_parts(hits, misses));
    }
}

/// Runs one mix under one scheme on the parallel engine. Figure-facing
/// output is bit-identical to [`crate::system::run_mix`] at any
/// `workers ≥ 1`.
pub fn run_mix_par(
    mix: &Mix,
    scheme_kind: SchemeKind,
    run: &RunConfig,
    workers: usize,
) -> MixResult {
    let cfg = SystemConfig::default();
    run_mix_observed_par(mix, scheme_kind, run, &cfg, &ObsConfig::off(), workers).result
}

/// [`run_mix_par`] with an explicit system configuration and
/// observability config; the parallel counterpart of
/// [`crate::system::run_mix_observed`].
pub fn run_mix_observed_par(
    mix: &Mix,
    scheme_kind: SchemeKind,
    run: &RunConfig,
    cfg: &SystemConfig,
    obs_cfg: &ObsConfig,
    workers: usize,
) -> ObservedRun {
    let obs = Obs::from_config(obs_cfg);
    let trace_on = obs.tracer.enabled();
    let prof_on = obs.profiler.is_enabled();
    let tl_on = obs.timeline.enabled();
    // Phase attribution rides along whenever either recorder wants it; the
    // timeline side of `mark` is a no-op on a disabled handle.
    let mut cprof = CommitProf::new(tl_on || prof_on, obs.timeline.clone());
    let mut scheme = scheme_kind.build(cfg);
    scheme.as_subsystem().attach_obs(&obs);
    let mut dram = DramModel::new(&cfg.dram);
    dram.set_obs(obs.clone());
    let mut llc = RandomizedCache::with_geometry(
        cfg.llc.cache.capacity_bytes,
        cfg.llc.cache.ways,
        cfg.llc.cache.line_bytes,
        run.seed ^ 0x11C,
    );

    // Process layout identical to the serial engine: four processes in
    // disjoint quarters, threads of a process sharing one generator.
    let threads = mix.class.threads_per_process();
    let exclusive = threads == 1;
    let total_pages = cfg.total_pages();
    let proc_range = total_pages / 4;
    let mut gens: Vec<TraceGenerator> = Vec::new();
    let mut cores: Vec<ParCore> = Vec::new();
    for (pi, profile) in mix.profiles().into_iter().enumerate() {
        let domain = DomainId::new_unchecked(pi as u16 + 1);
        let base = pi as u64 * proc_range;
        gens.push(TraceGenerator::with_footprint(
            profile,
            domain,
            base,
            run.seed.wrapping_mul(31).wrapping_add(pi as u64),
            profile.footprint_pages(),
            proc_range.next_power_of_two() / 2,
        ));
        for _ti in 0..threads {
            cores.push(ParCore {
                gen: pi,
                domain,
                l2: (!exclusive).then(|| {
                    SetAssocCache::with_geometry(
                        cfg.core.l2.capacity_bytes,
                        cfg.core.l2.ways,
                        cfg.core.l2.line_bytes,
                    )
                }),
                now: 0,
                instrs: 0,
                accesses: 0,
                measure_start: 0,
                measure_instrs_start: 0,
                benchmark: profile.name,
                base_ipc: profile.base_ipc,
                mlp: profile.mlp,
                inv_ipc: 1.0 / profile.base_ipc,
                l2_stamp: (0, 0),
            });
        }
    }

    let gen_count = gens.len();
    let worker_count = workers.max(1).min(gen_count);
    // Warm-flip state seeded from the fresh generators, then kept current
    // from consumed event stamps — the serial engine's per-iteration
    // `warmed_up()` poll, one consumed event late never (state only
    // changes when an event is drawn).
    let mut last_warm: Vec<bool> = gens.iter().map(TraceGenerator::warmed_up).collect();
    // Shard assignment: generator `g` (and every core of its process)
    // lives on worker/shard `g % worker_count`.
    let shard_of_gen: Vec<usize> = (0..gen_count).map(|g| g % worker_count).collect();

    // Build the front-ends and hand each worker its share.
    let mut consumers: Vec<Option<Consumer<FrontEv>>> = Vec::with_capacity(gen_count);
    let mut worker_fronts: Vec<Vec<Front>> = (0..worker_count).map(|_| Vec::new()).collect();
    for (gi, gen) in gens.into_iter().enumerate() {
        let (tx, rx) = Spsc::with_capacity(RING_DEPTH).split();
        consumers.push(Some(rx));
        worker_fronts[shard_of_gen[gi]].push(Front {
            gen_index: gi,
            gen,
            l2: exclusive.then(|| {
                SetAssocCache::with_geometry(
                    cfg.core.l2.capacity_bytes,
                    cfg.core.l2.ways,
                    cfg.core.l2.line_bytes,
                )
            }),
            tx,
        });
    }
    let mut consumers: Vec<Consumer<FrontEv>> = consumers
        .into_iter()
        .map(|c| c.expect("one ring per generator"))
        .collect();

    let stops: Vec<AtomicBool> = (0..gen_count).map(|_| AtomicBool::new(false)).collect();
    let backpressure = AtomicU64::new(0);
    // Cores of a process still short of their access budget; when a
    // generator's count hits zero its producer front is stopped.
    let mut live_cores_of_gen: Vec<u32> = vec![0; gen_count];
    for c in &cores {
        live_cores_of_gen[c.gen] += 1;
    }

    let warmup_total = run.warmup_accesses;
    let measure_total = warmup_total + run.measure_accesses;
    let mut measuring = false;
    let mut llc_miss_reads = 0u64;
    let mut read_latency_sum = 0u64;
    let mut core_accesses = 0u64;
    let mut epoch_stats = IvStats::default();
    let mut epoch_reg = StatsRegistry::new();
    let mut epoch_waits = 0u64;
    let mut llc_writebacks: Vec<u64> = Vec::new();
    let debug_warm = std::env::var("IVL_DEBUG_WARM").is_ok();

    // Per-worker commit-side stall series names, allocated once so the hot
    // loop emits with `&str` only.
    let wait_series: Vec<String> = (0..worker_count)
        .map(|w| format!("par.w{w}.epoch_waits"))
        .collect();

    let mut calendar = ShardedCalendar::new(worker_count);
    for (i, c) in cores.iter().enumerate() {
        if c.accesses < measure_total {
            calendar.schedule(shard_of_gen[c.gen], c.now, i as u64, CalendarEvent::CoreReady(i));
        }
    }
    // Run-until-preempted fast path and occupancy peak, mirroring the
    // serial engine exactly (see `system.rs`): same strict-key comparison,
    // same per-iteration occupancy value, so the emitted `cal.occupancy`
    // series and exported peak are bit-identical across engines.
    let mut next: Option<usize> = None;
    let mut occ_peak: usize = 0;

    std::thread::scope(|s| {
        let stops_ref = &stops;
        let backpressure_ref = &backpressure;
        let mut producer_handles = Vec::with_capacity(worker_count);
        for (wid, fronts) in worker_fronts.into_iter().enumerate() {
            let tl =
                tl_on.then(|| TimelineData::new(obs_cfg.timeline_window, obs_cfg.timeline_cap));
            producer_handles
                .push(s.spawn(move || producer_loop(fronts, stops_ref, backpressure_ref, wid, tl)));
        }

        // ── The commit loop: the serial algorithm, fed from rings. ──
        loop {
            let idx = match next.take() {
                Some(i) => i,
                None => match calendar.pop() {
                    Some(i) => i,
                    None => break,
                },
            };
            cprof.mark(P_CAL, cores[idx].now);
            if debug_warm && !measuring {
                let states: Vec<String> = cores
                    .iter()
                    .map(|c| format!("{}:{}", c.benchmark, c.accesses))
                    .collect();
                if cores[0].accesses.is_multiple_of(100_000) && cores[0].accesses > 0 {
                    eprintln!("warm? {}", states.join(" "));
                }
            }
            if !measuring
                && cores.iter().all(|c| c.accesses >= warmup_total)
                && last_warm.iter().all(|&w| w)
            {
                measuring = true;
                // Same epoch-edge settle as the serial engine, at the same
                // selection site: every deferred DRAM transition due by the
                // least-advanced core's cycle fires before the snapshot.
                dram.advance_to(cores[idx].now);
                epoch_stats = *scheme.stats();
                export_par_run_stats(&scheme, &dram, &llc, &cores, &mut epoch_reg);
                // Same flip-aligned wipe as the serial engine, so window
                // sums equal registry epoch deltas; the phase profile
                // restarts with the measurement window too.
                obs.timeline.clear();
                occ_peak = 0;
                cprof.reset();
                if obs.tracer.enabled() {
                    let flip = cores.iter().map(|c| c.now).min().unwrap_or(0);
                    obs.tracer.emit(
                        flip,
                        "run",
                        None,
                        None,
                        EventKind::Epoch { label: "measure" },
                    );
                }
                for c in &mut cores {
                    c.measure_start = c.now;
                    c.measure_instrs_start = c.instrs;
                }
            }

            let gen_idx = cores[idx].gen;
            cprof.mark(P_OTHER, cores[idx].now);
            let waits_before = epoch_waits;
            let fe = pop_ring(&mut consumers[gen_idx], &mut epoch_waits);
            cprof.mark(P_GEN, cores[idx].now);
            if tl_on && epoch_waits > waits_before {
                obs.timeline.count(
                    &wait_series[shard_of_gen[gen_idx]],
                    cores[idx].now,
                    epoch_waits - waits_before,
                );
            }
            last_warm[gen_idx] = fe.warmed;
            let core = &mut cores[idx];
            'event: {
                match fe.ev {
                    MemEvent::Access {
                        block,
                        is_write,
                        gap_instrs,
                    } => {
                        core.accesses += 1;
                        if measuring {
                            core_accesses += 1;
                        }
                        core.instrs += gap_instrs;
                        core.now += (gap_instrs as f64 * core.inv_ipc) as Cycle;

                        let key = block.index();
                        core.now += cfg.core.l2.hit_latency;
                        let (l2_hit, l2_evicted_any, l2_wb) = match &mut core.l2 {
                            Some(l2) => {
                                let out = {
                                    let _cache_timing =
                                        prof_on.then(|| obs.profiler.scope(Phase::CoreCache));
                                    l2.access(key, is_write)
                                };
                                (
                                    out.hit,
                                    out.evicted.is_some(),
                                    out.evicted.filter(|e| e.dirty).map(|e| e.key),
                                )
                            }
                            None => {
                                let st =
                                    fe.l2.expect("single-core access events carry an L2 stamp");
                                core.l2_stamp = (st.hits, st.misses);
                                (st.hit, st.evicted_any, st.evict_dirty_key)
                            }
                        };
                        cprof.mark(P_L2, core.now);
                        if trace_on {
                            obs.tracer.emit(
                                core.now,
                                "cache",
                                Some(core.domain),
                                Some(idx as u8),
                                EventKind::CacheAccess {
                                    cache: CacheKind::L2,
                                    hit: l2_hit,
                                    evicted: l2_evicted_any,
                                },
                            );
                        }
                        if l2_hit {
                            break 'event;
                        }
                        llc_writebacks.clear();
                        if let Some(k) = l2_wb {
                            llc_writebacks.push(k);
                        }
                        core.now += cfg.llc.cache.hit_latency - cfg.core.l2.hit_latency;
                        let llc_out = {
                            let _cache_timing =
                                prof_on.then(|| obs.profiler.scope(Phase::CoreCache));
                            llc.access(key, is_write)
                        };
                        let llc_hit = llc_out.hit;
                        cprof.mark(P_L2, core.now);
                        if tl_on {
                            ivl_cache::timeline_outcome(
                                &obs.timeline,
                                core.now,
                                &llc_out,
                                "llc.misses",
                                "llc.evictions",
                            );
                        }
                        if trace_on {
                            obs.tracer.emit(
                                core.now,
                                "cache",
                                Some(core.domain),
                                Some(idx as u8),
                                EventKind::CacheAccess {
                                    cache: CacheKind::Llc,
                                    hit: llc_hit,
                                    evicted: llc_out.evicted.is_some(),
                                },
                            );
                        }
                        if let Some(e) = llc_out.evicted.filter(|e| e.dirty) {
                            let _integrity_timing =
                                prof_on.then(|| obs.profiler.scope(Phase::Integrity));
                            scheme.as_subsystem().data_access(
                                core.now,
                                &mut dram,
                                ivl_sim_core::addr::BlockAddr::new(e.key),
                                core.domain,
                                true,
                            );
                        }
                        cprof.mark(P_INT, core.now);
                        for wb in llc_writebacks.drain(..) {
                            let out = llc.access(wb, true);
                            cprof.mark(P_L2, core.now);
                            if tl_on {
                                ivl_cache::timeline_outcome(
                                    &obs.timeline,
                                    core.now,
                                    &out,
                                    "llc.misses",
                                    "llc.evictions",
                                );
                            }
                            if let Some(e) = out.evicted.filter(|e| e.dirty) {
                                let _integrity_timing =
                                    prof_on.then(|| obs.profiler.scope(Phase::Integrity));
                                scheme.as_subsystem().data_access(
                                    core.now,
                                    &mut dram,
                                    ivl_sim_core::addr::BlockAddr::new(e.key),
                                    core.domain,
                                    true,
                                );
                            }
                            cprof.mark(P_INT, core.now);
                        }
                        if llc_hit {
                            break 'event;
                        }
                        let done = {
                            let _integrity_timing =
                                prof_on.then(|| obs.profiler.scope(Phase::Integrity));
                            scheme.as_subsystem().data_access(
                                core.now,
                                &mut dram,
                                block,
                                core.domain,
                                is_write,
                            )
                        };
                        cprof.mark(P_INT, core.now);
                        let latency = done.saturating_sub(core.now);
                        if measuring && !is_write {
                            llc_miss_reads += 1;
                            read_latency_sum += latency;
                        }
                        let service = latency.min(400);
                        let queueing = latency - service;
                        core.now += queueing + (service as f64 / core.mlp) as Cycle;
                    }
                    MemEvent::Alloc { page } => {
                        let done = scheme.as_subsystem().page_alloc(
                            core.now,
                            &mut dram,
                            page,
                            core.domain,
                        );
                        cprof.mark(P_INT, core.now);
                        core.now = done + 200;
                        core.instrs += 50;
                    }
                    MemEvent::Dealloc { page } => {
                        for b in page.blocks() {
                            if let Some(l2) = &mut core.l2 {
                                l2.invalidate(b.index());
                            }
                            llc.invalidate(b.index());
                        }
                        cprof.mark(P_L2, core.now);
                        let done = scheme.as_subsystem().page_dealloc(
                            core.now,
                            &mut dram,
                            page,
                            core.domain,
                        );
                        cprof.mark(P_INT, core.now);
                        core.now = done + 100;
                        core.instrs += 30;
                    }
                }
            }

            let c = &cores[idx];
            if c.accesses < measure_total {
                let key = (c.now, idx as u64);
                if calendar.peek_min_key().is_none_or(|head| key < head) {
                    next = Some(idx);
                } else {
                    calendar.schedule(
                        shard_of_gen[c.gen],
                        c.now,
                        idx as u64,
                        CalendarEvent::CoreReady(idx),
                    );
                }
            } else {
                // Core retired. Once a whole process is done, stop its
                // producer front promptly so idle generators don't spin.
                live_cores_of_gen[gen_idx] -= 1;
                if live_cores_of_gen[gen_idx] == 0 {
                    stops[gen_idx].store(true, Ordering::Release);
                }
            }
            let occ = calendar.len() + next.is_some() as usize + dram.pending_events();
            if occ > occ_peak {
                occ_peak = occ;
            }
            if tl_on {
                obs.timeline.gauge("cal.occupancy", cores[idx].now, occ as f64);
            }
        }

        for stop in &stops {
            stop.store(true, Ordering::Release);
        }
        // Fold every producer's locally recorded series into the shared
        // timeline, in worker order. Names are worker-unique, so this is a
        // deterministic union; merge itself is the saturating combine the
        // property suite pins as associative and commutative.
        for h in producer_handles {
            if let Some(tl) = h.join().expect("producer thread panicked") {
                obs.timeline.merge(&tl);
            }
        }
    });

    // ── End-of-run accounting: identical to the serial engine. ──
    let stats = scheme.stats().delta(&epoch_stats);
    let (utilization, untracked) = match &scheme {
        SchemeInstance::Iv(iv) => match iv.forest() {
            Some(f) => (
                Some(f.stats().mean_utilization()),
                Some(f.stats().untracked_slots),
            ),
            None => (None, None),
        },
        _ => (None, None),
    };
    let (bv_leaked, bv_scanned) = match &scheme {
        SchemeInstance::Iv(iv) => match iv.bv() {
            Some(b) => (Some(b.leaked_slots()), Some(b.total_blocks_scanned())),
            None => (None, None),
        },
        _ => (None, None),
    };

    let core_results: Vec<CoreResult> = cores
        .iter()
        .map(|c| CoreResult {
            benchmark: c.benchmark,
            instrs: c.instrs - c.measure_instrs_start,
            cycles: c.now - c.measure_start,
            base_ipc: c.base_ipc,
        })
        .collect();

    // Same end-edge settle as the serial engine before the final export.
    dram.advance_to(cores.iter().map(|c| c.now).max().unwrap_or(0));
    let mut end_reg = StatsRegistry::new();
    export_par_run_stats(&scheme, &dram, &llc, &cores, &mut end_reg);
    let mut registry = end_reg.delta(&epoch_reg);
    registry.set_gauge("cal.occupancy_peak", occ_peak as f64);
    registry.set_counter("run.core_accesses", core_accesses);
    registry.set_counter("run.llc_miss_reads", llc_miss_reads);
    registry.set_counter("run.read_latency_sum", read_latency_sum);
    // Engine-health counters: real-time scheduling observability, exported
    // after the delta (like the profiler) and legitimately nondeterministic.
    registry.set_counter("par.workers", worker_count as u64);
    registry.set_counter("par.epoch_waits", epoch_waits);
    registry.set_counter(
        "par.backpressure_waits",
        backpressure.load(Ordering::Relaxed),
    );
    obs.profiler.export(&mut registry);
    cprof.export(&mut registry);
    if obs.tracer.enabled() {
        registry.set_counter("obs.trace.dropped", obs.tracer.dropped());
    }
    if tl_on {
        registry.set_counter("obs.timeline.dropped", obs.timeline.dropped());
    }
    let events = obs.tracer.sorted_records();
    let timeline = obs.timeline.snapshot();

    let result = MixResult {
        mix: mix.name,
        scheme: scheme_kind,
        avg_path_length: stats.avg_path_length(),
        failed: stats.alloc_failures > 0,
        stats,
        cores: core_results,
        utilization,
        untracked_slots: untracked,
        bv_leaked_slots: bv_leaked,
        bv_blocks_scanned: bv_scanned,
        llc_miss_reads,
        read_latency_sum,
        core_accesses,
    };
    ObservedRun {
        result,
        registry,
        events,
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::run_mix;
    use ivl_workloads::mixes::mix_by_name;

    #[test]
    fn exclusive_tier_matches_serial_bit_for_bit() {
        // S mixes: one core per process → gen + L2 offload.
        let mix = mix_by_name("S-1").unwrap();
        let run = RunConfig::smoke_test();
        let serial = format!("{:?}", run_mix(mix, SchemeKind::IvPro, &run));
        for workers in [1, 2, 4] {
            let par = format!("{:?}", run_mix_par(mix, SchemeKind::IvPro, &run, workers));
            assert_eq!(serial, par, "workers={workers}");
        }
    }

    #[test]
    fn shared_gen_tier_matches_serial_bit_for_bit() {
        // M mixes: two cores per process share a generator → gen-prefetch
        // only, commit-owned L2s.
        let mix = mix_by_name("M-1").unwrap();
        let run = RunConfig::smoke_test();
        let serial = format!("{:?}", run_mix(mix, SchemeKind::Baseline, &run));
        let par = format!("{:?}", run_mix_par(mix, SchemeKind::Baseline, &run, 3));
        assert_eq!(serial, par);
    }

    #[test]
    fn par_engine_exports_wait_counters() {
        let mix = mix_by_name("S-2").unwrap();
        let run = RunConfig::smoke_test();
        let cfg = SystemConfig::default();
        let observed =
            run_mix_observed_par(mix, SchemeKind::Insecure, &run, &cfg, &ObsConfig::off(), 2);
        assert_eq!(observed.registry.counter("par.workers"), Some(2));
        assert!(observed.registry.counter("par.epoch_waits").is_some());
        assert!(observed
            .registry
            .counter("par.backpressure_waits")
            .is_some());
    }
}
