//! End-to-end observability checks on a small mix: the trace carries the
//! advertised event kinds with monotonic cycle stamps, the stats registry
//! reconciles with the per-model accessors, and observing a run does not
//! change its simulated outcome.

use ivl_sim_core::config::SystemConfig;
use ivl_sim_core::obs::trace::{parse_jsonl, records_to_jsonl};
use ivl_sim_core::obs::{EventKind, ObsConfig, TimelineData, DEFAULT_TRACE_CAP};
use ivl_simulator::{run_mix_observed, run_mix_observed_par, RunConfig, SchemeKind};
use ivl_workloads::mixes::mix_by_name;

fn traced_cfg() -> ObsConfig {
    let mut cfg = ObsConfig::off();
    cfg.trace = true;
    cfg.trace_cap = DEFAULT_TRACE_CAP;
    cfg.profile = true;
    cfg
}

#[test]
fn observed_run_produces_reconciling_artifacts() {
    // S-1 has the smallest footprints, so its init spikes complete (and
    // the warmup→measurement epoch flips) within a short run.
    let mix = mix_by_name("S-1").unwrap();
    let run = RunConfig {
        warmup_accesses: 2_000,
        measure_accesses: 60_000,
        seed: 7,
    };
    let sys = SystemConfig::default();
    let obs = run_mix_observed(mix, SchemeKind::IvPro, &run, &sys, &traced_cfg());
    assert!(
        obs.result.core_accesses > 0,
        "run must reach the measurement window"
    );

    // The trace must carry every advertised event family.
    assert!(!obs.events.is_empty());
    for tag in ["dram", "cache", "tree_walk", "nflb", "page_alloc", "epoch"] {
        assert!(
            obs.events.iter().any(|r| r.kind.tag() == tag),
            "missing {tag} events"
        );
    }
    // Sorted records are cycle-monotonic even though cores interleave.
    assert!(obs.events.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    // Exactly one measurement-epoch mark.
    assert_eq!(
        obs.events
            .iter()
            .filter(|r| matches!(r.kind, EventKind::Epoch { .. }))
            .count(),
        1
    );

    // JSONL round-trips the event stream (a slice keeps the test quick;
    // the serializer is line-oriented so coverage is per-record anyway).
    let head = &obs.events[..obs.events.len().min(20_000)];
    let parsed = parse_jsonl(&records_to_jsonl(head)).expect("trace JSONL parses");
    assert_eq!(parsed, head);

    // The registry reconciles with the figure-facing result.
    let reg = &obs.registry;
    let st = &obs.result.stats;
    assert_eq!(reg.counter("scheme.data_reads"), Some(st.data_reads));
    assert_eq!(reg.counter("scheme.data_writes"), Some(st.data_writes));
    assert_eq!(reg.counter("scheme.meta_reads"), Some(st.meta_reads));
    assert_eq!(reg.counter("scheme.verifications"), Some(st.verifications));
    assert_eq!(
        reg.counter("run.llc_miss_reads"),
        Some(obs.result.llc_miss_reads)
    );
    assert_eq!(
        reg.counter("run.core_accesses"),
        Some(obs.result.core_accesses)
    );
    // Self-profile phases were measured.
    assert!(reg.counter("selfprof.trace_gen.entries").unwrap_or(0) > 0);
    assert!(reg.counter("selfprof.integrity.entries").unwrap_or(0) > 0);
}

#[test]
fn baseline_trace_covers_tree_walks_per_domain() {
    let mix = mix_by_name("S-1").unwrap();
    let run = RunConfig::smoke_test();
    let sys = SystemConfig::default();
    let obs = run_mix_observed(mix, SchemeKind::Baseline, &run, &sys, &traced_cfg());
    let walks = obs
        .events
        .iter()
        .filter(|r| matches!(r.kind, EventKind::TreeWalkLevel { .. }))
        .count();
    assert!(walks > 0, "baseline BMT walks must be traced");
    assert!(
        obs.events
            .iter()
            .filter(|r| r.component == "scheme")
            .all(|r| r.domain.is_some()),
        "scheme events carry the requesting domain"
    );
}

fn timeline_cfg() -> ObsConfig {
    let mut cfg = ObsConfig::off();
    cfg.timeline = true;
    cfg
}

/// The timeline's serial-comparable series: everything outside the
/// engine-health `par.*` namespace.
fn comparable(tl: &TimelineData) -> Vec<(&str, &ivl_sim_core::obs::timeline::Series)> {
    tl.series
        .iter()
        .filter(|(name, _)| !name.starts_with("par."))
        .map(|(name, s)| (name.as_str(), s))
        .collect()
}

#[test]
fn timeline_window_sums_reconcile_with_registry_deltas() {
    // The timeline clears at the warmup→measurement flip — the same point
    // the registry snapshot is taken — so per-window sums over the
    // measurement window must equal the registry's epoch deltas exactly,
    // on the serial engine and on ParSystem at every worker count.
    let mix = mix_by_name("S-1").unwrap();
    let run = RunConfig {
        warmup_accesses: 2_000,
        measure_accesses: 60_000,
        seed: 7,
    };
    let sys = SystemConfig::default();
    let cfg = timeline_cfg();

    let serial = run_mix_observed(mix, SchemeKind::IvPro, &run, &sys, &cfg);
    assert!(
        serial.result.core_accesses > 0,
        "run must reach measurement"
    );
    assert!(!serial.timeline.is_empty(), "timeline must record series");
    assert_eq!(serial.timeline.dropped(), 0, "default cap must not evict");

    let runs = [("serial", &serial)];
    let par_runs: Vec<_> = [1usize, 2, 4]
        .iter()
        .map(|&w| run_mix_observed_par(mix, SchemeKind::IvPro, &run, &sys, &cfg, w))
        .collect();

    for (tag, obs) in runs
        .iter()
        .map(|(t, o)| (*t, *o))
        .chain(par_runs.iter().map(|o| ("par", o)))
    {
        let tl = &obs.timeline;
        let reg = &obs.registry;
        let hot = reg.counter("scheme.hot_migrations").unwrap_or(0)
            + reg.counter("scheme.hot_demotions").unwrap_or(0);
        let expect = [
            ("dram.reads", reg.counter("dram.reads").unwrap_or(0)),
            ("dram.writes", reg.counter("dram.writes").unwrap_or(0)),
            (
                "llc.misses",
                reg.ratio("llc.data").map_or(0, |hm| hm.misses()),
            ),
            ("llc.evictions", reg.counter("llc.evictions").unwrap_or(0)),
            (
                "scheme.walk_legs",
                reg.counter("scheme.path_len_sum").unwrap_or(0),
            ),
            (
                "scheme.nflb_misses",
                reg.ratio("scheme.nflb").map_or(0, |hm| hm.misses()),
            ),
            (
                "scheme.nfl_claims",
                reg.counter("scheme.nfl_claims").unwrap_or(0),
            ),
            ("scheme.hot_churn", hot),
        ];
        for (series, v) in expect {
            assert_eq!(
                tl.counter_sum(series).unwrap_or(0),
                v,
                "{tag}: {series} window sum vs registry"
            );
        }
    }

    // Serial-comparable series are bit-identical across engines; the
    // exported dropped counter stays zero under the default cap.
    for (w, par) in [1usize, 2, 4].iter().zip(&par_runs) {
        assert_eq!(
            comparable(&par.timeline),
            comparable(&serial.timeline),
            "workers={w}: comparable series must match serial exactly"
        );
        assert_eq!(par.registry.counter("obs.timeline.dropped"), Some(0));
        // The commit-phase attribution rides along on ParSystem runs.
        assert!(
            par.registry
                .counter("par.commitphase.total.micros")
                .is_some(),
            "workers={w}: commit phase profile missing"
        );
    }
}

#[test]
fn observation_does_not_change_the_simulation() {
    let mix = mix_by_name("S-2").unwrap();
    let run = RunConfig::smoke_test();
    let sys = SystemConfig::default();
    let plain = run_mix_observed(mix, SchemeKind::IvBasic, &run, &sys, &ObsConfig::off());
    let traced = run_mix_observed(mix, SchemeKind::IvBasic, &run, &sys, &traced_cfg());
    assert!(plain.events.is_empty());
    assert_eq!(
        plain.result.stats.total_mem_accesses(),
        traced.result.stats.total_mem_accesses()
    );
    assert!((plain.result.weighted_ipc() - traced.result.weighted_ipc()).abs() < 1e-12);
    // The measured window reconciles either way.
    assert_eq!(
        plain.registry.counter("scheme.data_reads"),
        traced.registry.counter("scheme.data_reads")
    );
}
