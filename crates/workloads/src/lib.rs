//! Synthetic workload models for the IvLeague evaluation.
//!
//! The paper drives its evaluation with 16 multi-programmed mixes drawn
//! from SPEC CPU2017, PARSEC 3 and the GAP benchmark suite (Table II). We
//! cannot ship those binaries, so this crate models each benchmark as a
//! parameterized address-stream generator reproducing the properties the
//! evaluated mechanisms are sensitive to:
//!
//! * steady-state **memory footprint** (drives TreeLing counts, metadata
//!   cache pressure and the small/medium/large classification);
//! * **hot-page skew** (a Zipf popularity distribution — what IvLeague-Pro
//!   exploits);
//! * **spatial locality** (sequential-run probability — what the row-buffer
//!   and metadata caches exploit);
//! * **allocation churn** (page alloc/dealloc rate — what the NFL absorbs);
//! * **memory intensity** and read/write balance.
//!
//! Module map: [`profiles`] holds the calibrated per-benchmark parameters,
//! [`zipf`] the sampling machinery, [`trace`] the generator, [`mixes`] the
//! Table II mixes, and [`rsa`] the square-and-multiply victim used by the
//! metadata side-channel attack (Figure 3).
//!
//! Footprints are scaled down ~8× from the native runs (a 256 KiB metadata
//! cache against a multi-hundred-MB footprint already reproduces the
//! pressure regime of the paper's multi-GB runs); DESIGN.md documents the
//! substitution.

pub mod mixes;
pub mod profiles;
pub mod rsa;
pub mod trace;
pub mod zipf;
