//! The synthetic address-stream generator.
//!
//! A [`TraceGenerator`] turns a [`BenchmarkProfile`] into an infinite
//! stream of [`MemEvent`]s: memory accesses (with the instruction gap to
//! the previous access), page allocations (ramping to the steady-state
//! footprint, then churn) and page deallocations. Streams are deterministic
//! per seed.

use std::collections::VecDeque;

use ivl_sim_core::addr::{BlockAddr, PageNum, BLOCKS_PER_PAGE};
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::rng::Xoshiro256;

use crate::profiles::BenchmarkProfile;
use crate::zipf::Zipf;

/// OS frame-allocation cluster size (16 MiB chunks: buddy allocation plus
/// transparent huge pages keep large-footprint workloads this contiguous).
pub const CLUSTER_PAGES: u64 = 4096;

/// One event of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// A load or store.
    Access {
        /// Accessed cache block.
        block: BlockAddr,
        /// Store (`true`) or load.
        is_write: bool,
        /// Instructions executed since the previous memory operation.
        gap_instrs: u64,
    },
    /// OS page allocation (first touch).
    Alloc {
        /// Allocated page frame.
        page: PageNum,
    },
    /// OS page deallocation.
    Dealloc {
        /// Freed page frame.
        page: PageNum,
    },
}

/// Deterministic per-benchmark address-stream generator.
///
/// # Examples
///
/// ```
/// use ivl_workloads::{profiles::by_name, trace::TraceGenerator};
/// use ivl_sim_core::domain::DomainId;
///
/// let profile = by_name("gcc").unwrap();
/// let mut gen = TraceGenerator::new(profile, DomainId::new_unchecked(0), 0, 7);
/// let mut events = 0;
/// for _ in 0..100 {
///     let _ = gen.next_event();
///     events += 1;
/// }
/// assert_eq!(events, 100);
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    profile: &'static BenchmarkProfile,
    domain: DomainId,
    base_page: u64,
    range_pages: u64,
    footprint_pages: u64,
    rng: Xoshiro256,
    zipf: Zipf,
    /// Zipf rank → page (rank 0 = hottest).
    allocated: Vec<PageNum>,
    free_frames: Vec<u64>,
    next_frame: u64,
    pending: VecDeque<MemEvent>,
    run_page: PageNum,
    run_block: usize,
    run_left: u32,
    accesses_since_alloc: u64,
    /// Peak (init-spike) footprint in pages.
    peak_pages: u64,
    /// Transient init-phase pages, freed once the spike peaks.
    transients: Vec<PageNum>,
    /// The spike has peaked and transients are draining.
    releasing: bool,
    spike_done: bool,
}

impl TraceGenerator {
    /// Creates a generator for `profile`, drawing physical frames from a
    /// private range starting at `base_page`, seeded with `seed`.
    pub fn new(
        profile: &'static BenchmarkProfile,
        domain: DomainId,
        base_page: u64,
        seed: u64,
    ) -> Self {
        let footprint = profile.footprint_pages();
        let range = (footprint * 4).next_power_of_two().max(CLUSTER_PAGES * 4);
        Self::with_footprint(profile, domain, base_page, seed, footprint, range)
    }

    /// Like [`new`](Self::new) but with an explicit footprint and frame
    /// range in pages — threads of one process split the process footprint,
    /// and the range should span the process's whole physical region so the
    /// frame scatter has OS-like entropy.
    ///
    /// # Panics
    ///
    /// Panics unless `range_pages` is a power of two covering the spiked
    /// footprint.
    pub fn with_footprint(
        profile: &'static BenchmarkProfile,
        domain: DomainId,
        base_page: u64,
        seed: u64,
        footprint_pages: u64,
        range_pages: u64,
    ) -> Self {
        let footprint = footprint_pages.max(1);
        let peak_pages = (footprint as f64 * profile.init_spike) as u64;
        // Frames are handed out in buddy-allocator style: contiguous within
        // a cluster, clusters scattered bijectively across the process
        // range — real OS allocations are neither fully contiguous nor
        // fully random, and the scatter spreads metadata blocks across the
        // metadata caches' sets the way a fragmented physical memory does.
        assert!(
            range_pages.is_power_of_two(),
            "range must be a power of two"
        );
        assert!(
            range_pages >= peak_pages.next_power_of_two(),
            "range must cover the spiked footprint"
        );
        TraceGenerator {
            profile,
            domain,
            base_page,
            range_pages,
            footprint_pages: footprint,
            rng: Xoshiro256::seed_from(seed),
            zipf: Zipf::new(footprint as usize, profile.zipf_s),
            allocated: Vec::with_capacity(footprint as usize),
            free_frames: Vec::new(),
            next_frame: 0,
            pending: VecDeque::new(),
            run_page: PageNum::new(base_page),
            run_block: 0,
            run_left: 0,
            accesses_since_alloc: 0,
            peak_pages,
            transients: Vec::new(),
            releasing: false,
            spike_done: false,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &'static BenchmarkProfile {
        self.profile
    }

    /// The IV domain this stream belongs to.
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// Whether the init spike has completed and the steady-state footprint
    /// is resident.
    pub fn warmed_up(&self) -> bool {
        self.spike_done && self.allocated.len() as u64 >= self.footprint_pages
    }

    /// Currently allocated pages.
    pub fn live_pages(&self) -> u64 {
        self.allocated.len() as u64
    }

    fn take_frame(&mut self) -> PageNum {
        if let Some(f) = self.free_frames.pop() {
            return PageNum::new(self.base_page + f);
        }
        let i = self.next_frame;
        assert!(
            i < self.range_pages,
            "frame range exhausted (churn outpaced recycling)"
        );
        self.next_frame += 1;
        // Scatter at cluster granularity: multiplication by an odd constant
        // is a bijection modulo the power-of-two cluster count.
        let clusters = self.range_pages / CLUSTER_PAGES;
        let cluster = (i / CLUSTER_PAGES).wrapping_mul(0x9E37_79B1) & (clusters - 1);
        let f = cluster * CLUSTER_PAGES + (i % CLUSTER_PAGES);
        PageNum::new(self.base_page + f)
    }

    fn release_frame(&mut self, page: PageNum) {
        self.free_frames.push(page.index() - self.base_page);
    }

    fn pick_page(&mut self) -> PageNum {
        let rank = self
            .zipf
            .sample(&mut self.rng)
            .min(self.allocated.len() - 1);
        self.allocated[rank]
    }

    fn emit_access(&mut self) -> MemEvent {
        if self.run_left == 0 || self.allocated.is_empty() {
            // New sequential run at a Zipf-selected page.
            self.run_page = self.pick_page();
            self.run_block = self.rng.index(BLOCKS_PER_PAGE);
            // Geometric run length from the locality knob.
            let mut len = 1u32;
            while len < 256 && self.rng.chance(self.profile.locality) {
                len += 1;
            }
            self.run_left = len;
        }
        let block = self.run_page.block(self.run_block);
        self.run_block = (self.run_block + 1) % BLOCKS_PER_PAGE;
        self.run_left -= 1;
        let is_write = !self.rng.chance(self.profile.read_ratio);
        let mean_gap = (1.0 / self.profile.mem_ops_per_instr).max(1.0) as u64;
        let gap_instrs = 1 + self.rng.next_below(2 * mean_gap);
        MemEvent::Access {
            block,
            is_write,
            gap_instrs,
        }
    }

    /// Produces the next trace event.
    pub fn next_event(&mut self) -> MemEvent {
        if let Some(ev) = self.pending.pop_front() {
            return ev;
        }

        let footprint = self.footprint_pages;

        // Init ramp: allocate up to the spike peak. Pages beyond the
        // steady-state footprint are transient buffers.
        if !self.spike_done {
            let resident = self.allocated.len() as u64 + self.transients.len() as u64;
            if resident >= self.peak_pages {
                self.releasing = true;
            }
            if !self.releasing {
                self.accesses_since_alloc += 1;
                if resident == 0 || self.accesses_since_alloc >= 2 {
                    self.accesses_since_alloc = 0;
                    let page = self.take_frame();
                    if (self.allocated.len() as u64) < footprint {
                        self.allocated.push(page);
                    } else {
                        self.transients.push(page);
                    }
                    // Touch the fresh page next (allocation is first touch).
                    self.run_page = page;
                    self.run_block = 0;
                    self.run_left = 4;
                    return MemEvent::Alloc { page };
                }
                return self.emit_access();
            }
            // Spike peaked: release the transients (last-allocated first,
            // like freeing init-phase buffers).
            if let Some(page) = self.transients.pop() {
                self.release_frame(page);
                if self.run_page == page {
                    self.run_left = 0;
                }
                if self.transients.is_empty() {
                    self.spike_done = true;
                }
                return MemEvent::Dealloc { page };
            }
            self.spike_done = true;
        }

        // Steady state: churn with the profile's probability.
        if self.rng.chance(self.profile.churn) && self.allocated.len() > 8 {
            // Deallocate a cold page (upper half of the rank order) and
            // replace it with a fresh frame at the same rank.
            let rank = self.allocated.len() / 2 + self.rng.index(self.allocated.len() / 2);
            let victim = self.allocated[rank];
            let fresh = self.take_frame();
            self.allocated[rank] = fresh;
            self.release_frame(victim);
            if self.run_page == victim {
                self.run_left = 0;
            }
            self.pending.push_back(MemEvent::Alloc { page: fresh });
            return MemEvent::Dealloc { page: victim };
        }

        self.emit_access()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::by_name;

    fn generator(name: &str, seed: u64) -> TraceGenerator {
        TraceGenerator::new(
            by_name(name).unwrap(),
            DomainId::new_unchecked(0),
            1000,
            seed,
        )
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = generator("gcc", 1);
        let mut b = generator("gcc", 1);
        for _ in 0..1000 {
            assert_eq!(a.next_event(), b.next_event());
        }
    }

    #[test]
    fn ramps_through_spike_to_footprint() {
        let mut g = generator("x264", 2); // 40 MiB = 10240 pages
        let footprint = g.profile().footprint_pages();
        let spike = g.profile().init_spike;
        let mut allocs = 0u64;
        let mut deallocs = 0u64;
        for _ in 0..(footprint * 8) {
            match g.next_event() {
                MemEvent::Alloc { .. } => allocs += 1,
                MemEvent::Dealloc { .. } => deallocs += 1,
                MemEvent::Access { .. } => {}
            }
            if g.warmed_up() {
                break;
            }
        }
        assert!(g.warmed_up());
        // The init spike over-allocates and then frees the transients.
        let peak = (footprint as f64 * spike) as u64;
        assert_eq!(allocs, peak);
        assert_eq!(deallocs, peak - footprint);
        assert_eq!(g.live_pages(), footprint);
    }

    #[test]
    fn accesses_stay_in_allocated_pages() {
        let mut g = generator("gcc", 3);
        let mut live = std::collections::HashSet::new();
        for _ in 0..200_000 {
            match g.next_event() {
                MemEvent::Alloc { page } => {
                    assert!(live.insert(page), "double alloc of {page}");
                }
                MemEvent::Dealloc { page } => {
                    assert!(live.remove(&page), "dealloc of unallocated {page}");
                }
                MemEvent::Access { block, .. } => {
                    assert!(live.contains(&block.page()), "access outside footprint");
                }
            }
        }
    }

    #[test]
    fn churny_benchmarks_emit_deallocs() {
        let mut g = generator("dedup", 4);
        let mut deallocs = 0;
        for _ in 0..500_000 {
            if let MemEvent::Dealloc { .. } = g.next_event() {
                deallocs += 1;
            }
        }
        assert!(deallocs > 10, "dedup should churn: {deallocs}");
    }

    #[test]
    fn hot_pages_dominate_for_skewed_profiles() {
        let mut g = generator("x264", 5); // zipf 1.1
                                          // Warm up fully.
        while !g.warmed_up() {
            g.next_event();
        }
        let mut counts: std::collections::HashMap<PageNum, u64> = std::collections::HashMap::new();
        let n = 200_000;
        let mut total = 0;
        while total < n {
            if let MemEvent::Access { block, .. } = g.next_event() {
                *counts.entry(block.page()).or_insert(0) += 1;
                total += 1;
            }
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top16: u64 = freqs.iter().take(16).sum();
        assert!(
            top16 as f64 / n as f64 > 0.15,
            "hot pages should take a large share: {}",
            top16 as f64 / n as f64
        );
    }

    #[test]
    fn writes_respect_read_ratio_roughly() {
        let mut g = generator("lbm", 6); // read_ratio 0.55
        let mut reads = 0u64;
        let mut writes = 0u64;
        for _ in 0..300_000 {
            if let MemEvent::Access { is_write, .. } = g.next_event() {
                if is_write {
                    writes += 1;
                } else {
                    reads += 1;
                }
            }
        }
        let ratio = reads as f64 / (reads + writes) as f64;
        assert!((ratio - 0.55).abs() < 0.05, "read ratio {ratio}");
    }
}
