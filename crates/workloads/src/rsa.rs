//! The square-and-multiply RSA victim of the motivating attack (paper §IV).
//!
//! The classic left-to-right modular exponentiation leaks the private
//! exponent through its access pattern: every bit executes `sqr`, and only
//! set bits execute `mul`. When `sqr` and `mul` live on different code
//! pages, an attacker who can observe per-page access timing recovers the
//! exponent. This module generates the victim's page-access schedule; the
//! attack itself lives in the `ivl-attack` crate.

use ivl_sim_core::addr::{BlockAddr, PageNum};
use ivl_sim_core::rng::Xoshiro256;

/// The victim's memory layout and secret.
#[derive(Debug, Clone)]
pub struct SquareMultiplyVictim {
    /// Secret exponent bits, most significant first.
    exponent: Vec<bool>,
    /// Code page of the `sqr` routine.
    pub sqr_page: PageNum,
    /// Code page of the `mul` routine.
    pub mul_page: PageNum,
}

/// Accesses performed while processing one exponent bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitStep {
    /// Bit index (0 = most significant).
    pub bit: usize,
    /// The secret bit value.
    pub value: bool,
    /// Victim memory accesses for this bit, in program order.
    pub accesses: Vec<BlockAddr>,
}

impl SquareMultiplyVictim {
    /// Creates a victim with the given secret exponent bits.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is empty or the two code pages coincide.
    pub fn new(exponent: Vec<bool>, sqr_page: PageNum, mul_page: PageNum) -> Self {
        assert!(!exponent.is_empty(), "need at least one exponent bit");
        assert_ne!(
            sqr_page, mul_page,
            "sqr and mul must live on distinct pages"
        );
        SquareMultiplyVictim {
            exponent,
            sqr_page,
            mul_page,
        }
    }

    /// Creates a victim with a random `bits`-bit exponent (MSB forced to 1,
    /// as in a real RSA private exponent).
    pub fn random(bits: usize, sqr_page: PageNum, mul_page: PageNum, seed: u64) -> Self {
        assert!(bits >= 2);
        let mut rng = Xoshiro256::seed_from(seed);
        let mut exponent: Vec<bool> = (0..bits).map(|_| rng.chance(0.5)).collect();
        exponent[0] = true;
        Self::new(exponent, sqr_page, mul_page)
    }

    /// The secret exponent bits (ground truth for accuracy measurement).
    pub fn exponent(&self) -> &[bool] {
        &self.exponent
    }

    /// Number of exponent bits.
    pub fn bits(&self) -> usize {
        self.exponent.len()
    }

    /// The victim's accesses while processing bit `bit`: several `sqr`
    /// blocks always, several `mul` blocks iff the bit is set.
    ///
    /// # Panics
    ///
    /// Panics if `bit` is out of range.
    pub fn step(&self, bit: usize) -> BitStep {
        let value = self.exponent[bit];
        let mut accesses = Vec::new();
        // The sqr routine touches a few cache blocks of its code page.
        for b in 0..4 {
            accesses.push(self.sqr_page.block(b));
        }
        if value {
            for b in 0..4 {
                accesses.push(self.mul_page.block(b));
            }
        }
        BitStep {
            bit,
            value,
            accesses,
        }
    }

    /// All steps in order.
    pub fn steps(&self) -> impl Iterator<Item = BitStep> + '_ {
        (0..self.bits()).map(|b| self.step(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn victim() -> SquareMultiplyVictim {
        SquareMultiplyVictim::new(
            vec![true, false, true, true],
            PageNum::new(10),
            PageNum::new(20),
        )
    }

    #[test]
    fn set_bits_touch_mul_page() {
        let v = victim();
        let s = v.step(0);
        assert!(s.value);
        assert!(s.accesses.iter().any(|b| b.page() == v.mul_page));
        let s = v.step(1);
        assert!(!s.value);
        assert!(s.accesses.iter().all(|b| b.page() != v.mul_page));
    }

    #[test]
    fn every_bit_touches_sqr_page() {
        let v = victim();
        for s in v.steps() {
            assert!(s.accesses.iter().any(|b| b.page() == v.sqr_page));
        }
    }

    #[test]
    fn random_exponent_is_deterministic_and_msb_set() {
        let a = SquareMultiplyVictim::random(64, PageNum::new(1), PageNum::new(2), 9);
        let b = SquareMultiplyVictim::random(64, PageNum::new(1), PageNum::new(2), 9);
        assert_eq!(a.exponent(), b.exponent());
        assert!(a.exponent()[0]);
        assert_eq!(a.bits(), 64);
    }

    #[test]
    fn random_bits_are_balanced() {
        let v = SquareMultiplyVictim::random(2048, PageNum::new(1), PageNum::new(2), 11);
        let ones = v.exponent().iter().filter(|b| **b).count();
        assert!((800..1250).contains(&ones), "ones {ones}");
    }
}
