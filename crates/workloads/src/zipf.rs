//! Zipf-distributed sampling over page ranks.
//!
//! Real workloads access a small set of pages very frequently (the paper's
//! hotpages, §VII-B). A Zipf distribution with exponent `s` over page ranks
//! captures that: rank-1 pages dominate for large `s`, while `s → 0`
//! degenerates to uniform.

use ivl_sim_core::rng::Xoshiro256;

/// A precomputed inverse-CDF Zipf sampler.
///
/// # Examples
///
/// ```
/// use ivl_workloads::zipf::Zipf;
/// use ivl_sim_core::rng::Xoshiro256;
///
/// let z = Zipf::new(100, 1.0);
/// let mut rng = Xoshiro256::seed_from(1);
/// let r = z.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative weights, normalized to 1.0 at the end.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over ranks `0..n` with exponent `s` (`s == 0` is
    /// uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (rank 0 is the most popular).
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let u = rng.next_f64();
        // Binary search for the first cdf entry >= u.
        match self
            .cdf
            .binary_search_by(|v| v.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_distribution_prefers_low_ranks() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = Xoshiro256::seed_from(3);
        let n = 100_000;
        let top10 = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        assert!(
            top10 as f64 / n as f64 > 0.4,
            "top-10 share too small: {top10}"
        );
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Xoshiro256::seed_from(4);
        let n = 100_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            let share = c as f64 / n as f64;
            assert!((share - 0.1).abs() < 0.02, "share {share}");
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 0.8);
        let mut rng = Xoshiro256::seed_from(5);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }
}
