//! The 16 multi-programmed workload mixes of Table II.
//!
//! Each mix runs four benchmark processes on the 8-core system. Small
//! (SPEC) processes are single-threaded; medium (PARSEC) and large (GAP)
//! processes run two worker threads. Threads of a process share one IV
//! domain (the paper groups threads of a process into the same domain).

use crate::profiles::{by_name, BenchmarkProfile};

/// Footprint class of a mix (paper: small <5 GB, medium 5–10 GB, large
/// >10 GB — scaled 8× down here, the classification is unchanged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MixClass {
    /// SPEC2017 mixes S-1..S-6.
    Small,
    /// PARSEC mixes M-1..M-6.
    Medium,
    /// GAP mixes L-1..L-4.
    Large,
}

impl MixClass {
    /// Worker threads per process in this class.
    pub fn threads_per_process(self) -> usize {
        match self {
            MixClass::Small => 1,
            MixClass::Medium | MixClass::Large => 2,
        }
    }

    /// Figure label prefix.
    pub fn prefix(self) -> &'static str {
        match self {
            MixClass::Small => "S",
            MixClass::Medium => "M",
            MixClass::Large => "L",
        }
    }
}

/// One multi-programmed mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mix {
    /// Mix name as in Table II ("S-1" … "L-4").
    pub name: &'static str,
    /// Footprint class.
    pub class: MixClass,
    /// The four constituent benchmarks.
    pub benchmarks: [&'static str; 4],
}

impl Mix {
    /// Resolves the benchmark profiles.
    ///
    /// # Panics
    ///
    /// Panics if a name is missing from the profile table (checked in
    /// tests).
    pub fn profiles(&self) -> [&'static BenchmarkProfile; 4] {
        self.benchmarks
            .map(|n| by_name(n).unwrap_or_else(|| panic!("unknown benchmark {n}")))
    }

    /// Combined steady-state footprint in MiB.
    pub fn total_footprint_mib(&self) -> u64 {
        self.profiles().iter().map(|p| p.footprint_mib).sum()
    }
}

/// Table II, verbatim.
pub const MIXES: [Mix; 16] = [
    Mix {
        name: "S-1",
        class: MixClass::Small,
        benchmarks: ["gcc", "cactu", "perlb", "depsj"],
    },
    Mix {
        name: "S-2",
        class: MixClass::Small,
        benchmarks: ["mcf", "omntp", "lbm", "xlnbmk"],
    },
    Mix {
        name: "S-3",
        class: MixClass::Small,
        benchmarks: ["bwves", "lbm", "x264", "cactu"],
    },
    Mix {
        name: "S-4",
        class: MixClass::Small,
        benchmarks: ["perlb", "xlnbmk", "gcc", "omntp"],
    },
    Mix {
        name: "S-5",
        class: MixClass::Small,
        benchmarks: ["mcf", "bwves", "depsj", "x264"],
    },
    Mix {
        name: "S-6",
        class: MixClass::Small,
        benchmarks: ["omntp", "gcc", "mcf", "perlb"],
    },
    Mix {
        name: "M-1",
        class: MixClass::Medium,
        benchmarks: ["dedup", "ferret", "blksch", "bdytrk"],
    },
    Mix {
        name: "M-2",
        class: MixClass::Medium,
        benchmarks: ["cannl", "swaptn", "vips", "ferret"],
    },
    Mix {
        name: "M-3",
        class: MixClass::Medium,
        benchmarks: ["freqmn", "fluida", "cannl", "fcesim"],
    },
    Mix {
        name: "M-4",
        class: MixClass::Medium,
        benchmarks: ["vips", "swaptn", "dedup", "ferret"],
    },
    Mix {
        name: "M-5",
        class: MixClass::Medium,
        benchmarks: ["blksch", "bdytrk", "freqmn", "fluida"],
    },
    Mix {
        name: "M-6",
        class: MixClass::Medium,
        benchmarks: ["dedup", "fcesim", "bdytrk", "swaptn"],
    },
    Mix {
        name: "L-1",
        class: MixClass::Large,
        benchmarks: ["bfs", "pr", "bc", "sssp"],
    },
    Mix {
        name: "L-2",
        class: MixClass::Large,
        benchmarks: ["bfs", "pr", "cc", "tc"],
    },
    Mix {
        name: "L-3",
        class: MixClass::Large,
        benchmarks: ["bc", "sssp", "cc", "tc"],
    },
    Mix {
        name: "L-4",
        class: MixClass::Large,
        benchmarks: ["sssp", "pr", "bc", "tc"],
    },
];

/// Looks up a mix by name.
///
/// # Examples
///
/// ```
/// use ivl_workloads::mixes::{mix_by_name, MixClass};
/// assert_eq!(mix_by_name("L-2").unwrap().class, MixClass::Large);
/// ```
pub fn mix_by_name(name: &str) -> Option<&'static Mix> {
    MIXES.iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_mixes_six_six_four() {
        assert_eq!(MIXES.len(), 16);
        assert_eq!(
            MIXES.iter().filter(|m| m.class == MixClass::Small).count(),
            6
        );
        assert_eq!(
            MIXES.iter().filter(|m| m.class == MixClass::Medium).count(),
            6
        );
        assert_eq!(
            MIXES.iter().filter(|m| m.class == MixClass::Large).count(),
            4
        );
    }

    #[test]
    fn all_benchmarks_resolve() {
        for m in &MIXES {
            let _ = m.profiles();
        }
    }

    #[test]
    fn footprint_classes_are_ordered() {
        // Scaled thresholds: small < 640 MiB, medium 640–1280, large > 1280.
        for m in &MIXES {
            let f = m.total_footprint_mib();
            match m.class {
                MixClass::Small => assert!(f < 640, "{}: {f}", m.name),
                MixClass::Medium => assert!((640..=1280).contains(&f), "{}: {f}", m.name),
                MixClass::Large => assert!(f > 1280, "{}: {f}", m.name),
            }
        }
    }

    #[test]
    fn thread_counts_match_paper() {
        assert_eq!(MixClass::Small.threads_per_process(), 1);
        assert_eq!(MixClass::Medium.threads_per_process(), 2);
        assert_eq!(MixClass::Large.threads_per_process(), 2);
    }
}
