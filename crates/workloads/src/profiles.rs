//! Calibrated per-benchmark workload parameters.
//!
//! One [`BenchmarkProfile`] per benchmark used in the paper's Table II
//! mixes: ten SPEC CPU2017 programs, ten PARSEC 3 programs and six GAP
//! graph kernels. Parameters are calibrated to the published memory
//! characterization of these suites (footprint, intensity, locality,
//! hot-page skew), with footprints scaled ~8× down as documented in
//! DESIGN.md. The mixes' small/medium/large classification is preserved.

/// Benchmark suite of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2017 (single-threaded processes in the mixes).
    Spec2017,
    /// PARSEC 3 (two worker threads per process).
    Parsec,
    /// GAP graph kernels on twitter-like inputs (two threads).
    Gap,
}

/// Parameters of one synthetic benchmark model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchmarkProfile {
    /// Benchmark name as the paper abbreviates it.
    pub name: &'static str,
    /// Origin suite.
    pub suite: Suite,
    /// Steady-state resident footprint in MiB (scaled, see DESIGN.md).
    pub footprint_mib: u64,
    /// Zipf exponent of page popularity (hot-page skew).
    pub zipf_s: f64,
    /// Probability an access continues the current sequential run.
    pub locality: f64,
    /// Fraction of memory operations that are reads.
    pub read_ratio: f64,
    /// Memory operations per instruction.
    pub mem_ops_per_instr: f64,
    /// Probability per memory access of a page dealloc+alloc churn event.
    pub churn: f64,
    /// Init-phase allocation spike: peak resident footprint as a multiple
    /// of the steady-state footprint (transient buffers freed after init).
    pub init_spike: f64,
    /// Memory-idle IPC of the modeled core on this benchmark.
    pub base_ipc: f64,
    /// Memory-level parallelism (overlap factor on miss stalls).
    pub mlp: f64,
}

impl BenchmarkProfile {
    /// Footprint in 4 KiB pages.
    pub fn footprint_pages(&self) -> u64 {
        self.footprint_mib * 1024 / 4
    }
}

/// The full benchmark table.
pub const BENCHMARKS: [BenchmarkProfile; 26] = [
    // --- SPEC CPU2017 (Small mixes) ---
    bench(
        "gcc",
        Suite::Spec2017,
        96,
        0.95,
        0.55,
        0.74,
        0.0375,
        6e-4,
        1.8,
        2.6,
    ),
    bench(
        "cactu",
        Suite::Spec2017,
        84,
        0.70,
        0.80,
        0.72,
        0.0425,
        2e-4,
        1.6,
        3.2,
    ),
    bench(
        "perlb",
        Suite::Spec2017,
        64,
        1.00,
        0.60,
        0.76,
        0.0350,
        5e-4,
        2.0,
        2.2,
    ),
    bench(
        "depsj",
        Suite::Spec2017,
        90,
        0.85,
        0.50,
        0.78,
        0.0325,
        3e-4,
        2.1,
        2.0,
    ),
    bench(
        "mcf",
        Suite::Spec2017,
        200,
        0.70,
        0.35,
        0.75,
        0.0525,
        4e-4,
        1.1,
        3.8,
    ),
    bench(
        "omntp",
        Suite::Spec2017,
        150,
        0.80,
        0.45,
        0.73,
        0.0450,
        5e-4,
        1.3,
        2.8,
    ),
    bench(
        "lbm",
        Suite::Spec2017,
        52,
        0.40,
        0.92,
        0.55,
        0.0500,
        1e-4,
        1.5,
        4.5,
    ),
    bench(
        "xlnbmk",
        Suite::Spec2017,
        60,
        0.90,
        0.55,
        0.77,
        0.0375,
        5e-4,
        1.7,
        2.4,
    ),
    bench(
        "bwves",
        Suite::Spec2017,
        140,
        0.45,
        0.90,
        0.68,
        0.0475,
        1e-4,
        1.6,
        4.2,
    ),
    bench(
        "x264",
        Suite::Spec2017,
        40,
        1.10,
        0.75,
        0.70,
        0.0300,
        2e-4,
        2.2,
        2.4,
    ),
    // --- PARSEC 3 (Medium mixes) ---
    bench(
        "dedup",
        Suite::Parsec,
        250,
        0.85,
        0.60,
        0.66,
        0.0400,
        3.0e-3,
        1.6,
        3.0,
    ),
    bench(
        "ferret",
        Suite::Parsec,
        220,
        0.90,
        0.55,
        0.74,
        0.0375,
        1.5e-3,
        1.7,
        2.8,
    ),
    bench(
        "blksch",
        Suite::Parsec,
        120,
        1.00,
        0.80,
        0.82,
        0.0275,
        4e-4,
        2.2,
        2.2,
    ),
    bench(
        "bdytrk",
        Suite::Parsec,
        160,
        0.95,
        0.65,
        0.76,
        0.0350,
        8e-4,
        1.9,
        2.6,
    ),
    bench(
        "cannl",
        Suite::Parsec,
        300,
        0.65,
        0.30,
        0.74,
        0.0500,
        1.0e-3,
        1.1,
        3.6,
    ),
    bench(
        "swaptn",
        Suite::Parsec,
        110,
        1.05,
        0.70,
        0.80,
        0.0300,
        5e-4,
        2.2,
        2.2,
    ),
    bench(
        "vips",
        Suite::Parsec,
        210,
        0.85,
        0.70,
        0.68,
        0.0375,
        2.0e-3,
        1.8,
        2.8,
    ),
    bench(
        "freqmn",
        Suite::Parsec,
        260,
        0.80,
        0.50,
        0.75,
        0.0425,
        1.2e-3,
        1.5,
        3.0,
    ),
    bench(
        "fluida",
        Suite::Parsec,
        240,
        0.70,
        0.75,
        0.62,
        0.0425,
        8e-4,
        1.6,
        3.4,
    ),
    bench(
        "fcesim",
        Suite::Parsec,
        320,
        0.75,
        0.70,
        0.70,
        0.0425,
        9e-4,
        1.5,
        3.2,
    ),
    // --- GAP graph kernels (Large mixes) ---
    bench(
        "bfs",
        Suite::Gap,
        620,
        0.90,
        0.20,
        0.80,
        0.0575,
        1.8e-3,
        0.9,
        4.5,
    ),
    bench(
        "pr",
        Suite::Gap,
        680,
        1.10,
        0.25,
        0.72,
        0.0600,
        1.5e-3,
        0.9,
        5.0,
    ),
    bench(
        "bc",
        Suite::Gap,
        700,
        0.95,
        0.20,
        0.76,
        0.0600,
        1.8e-3,
        0.8,
        4.5,
    ),
    bench(
        "sssp",
        Suite::Gap,
        660,
        0.90,
        0.22,
        0.74,
        0.0575,
        1.8e-3,
        0.9,
        4.2,
    ),
    bench(
        "cc",
        Suite::Gap,
        640,
        0.85,
        0.25,
        0.76,
        0.0550,
        1.5e-3,
        1.0,
        4.2,
    ),
    bench(
        "tc",
        Suite::Gap,
        720,
        1.00,
        0.18,
        0.84,
        0.0625,
        1.5e-3,
        0.8,
        4.8,
    ),
];

// One positional argument per profile column keeps the table above compact.
#[allow(clippy::too_many_arguments)]
const fn bench(
    name: &'static str,
    suite: Suite,
    footprint_mib: u64,
    zipf_s: f64,
    locality: f64,
    read_ratio: f64,
    mem_ops_per_instr: f64,
    churn: f64,
    base_ipc: f64,
    mlp: f64,
) -> BenchmarkProfile {
    // Init-phase transients are universal (loaders, parsers, graph
    // construction); graph kernels have the largest build-time spike.
    let init_spike = match suite {
        Suite::Spec2017 => 1.05,
        Suite::Parsec => 1.08,
        Suite::Gap => 1.15,
    };
    BenchmarkProfile {
        name,
        suite,
        footprint_mib,
        zipf_s,
        locality,
        read_ratio,
        mem_ops_per_instr,
        churn,
        base_ipc,
        mlp,
        init_spike,
    }
}

/// Looks up a benchmark profile by its paper abbreviation.
///
/// # Examples
///
/// ```
/// use ivl_workloads::profiles::by_name;
/// assert_eq!(by_name("mcf").unwrap().footprint_mib, 200);
/// assert!(by_name("nonexistent").is_none());
/// ```
pub fn by_name(name: &str) -> Option<&'static BenchmarkProfile> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_suites() {
        assert_eq!(
            BENCHMARKS
                .iter()
                .filter(|b| b.suite == Suite::Spec2017)
                .count(),
            10
        );
        assert_eq!(
            BENCHMARKS
                .iter()
                .filter(|b| b.suite == Suite::Parsec)
                .count(),
            10
        );
        assert_eq!(
            BENCHMARKS.iter().filter(|b| b.suite == Suite::Gap).count(),
            6
        );
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = BENCHMARKS.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn parameters_in_sane_ranges() {
        for b in &BENCHMARKS {
            assert!(b.footprint_mib >= 8, "{}", b.name);
            assert!((0.0..=1.5).contains(&b.zipf_s), "{}", b.name);
            assert!((0.0..1.0).contains(&b.locality), "{}", b.name);
            assert!((0.3..1.0).contains(&b.read_ratio), "{}", b.name);
            assert!(
                b.mem_ops_per_instr > 0.0 && b.mem_ops_per_instr < 0.2,
                "{}",
                b.name
            );
            assert!(b.churn < 0.01, "{}", b.name);
            assert!((1.0..2.0).contains(&b.init_spike), "{}", b.name);
            assert!(b.base_ipc > 0.5 && b.mlp >= 1.0, "{}", b.name);
        }
    }

    #[test]
    fn graph_kernels_are_biggest_and_least_local() {
        let avg = |suite: Suite, f: fn(&BenchmarkProfile) -> f64| {
            let items: Vec<f64> = BENCHMARKS
                .iter()
                .filter(|b| b.suite == suite)
                .map(f)
                .collect();
            items.iter().sum::<f64>() / items.len() as f64
        };
        assert!(
            avg(Suite::Gap, |b| b.footprint_mib as f64)
                > avg(Suite::Parsec, |b| b.footprint_mib as f64)
        );
        assert!(avg(Suite::Gap, |b| b.locality) < avg(Suite::Spec2017, |b| b.locality));
    }

    #[test]
    fn footprint_pages_conversion() {
        let b = by_name("gcc").unwrap();
        assert_eq!(b.footprint_pages(), 96 * 256);
    }
}
