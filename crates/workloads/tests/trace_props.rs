//! Property tests on the workload generators.

use ivl_sim_core::domain::DomainId;
use ivl_testkit::prelude::*;
use ivl_workloads::profiles::BENCHMARKS;
use ivl_workloads::trace::{MemEvent, TraceGenerator};
use std::collections::HashSet;

props! {
    #![cases(24)]

    #[test]
    fn alloc_dealloc_access_discipline(bench_idx in 0usize..26, seed in any::<u64>()) {
        let profile = &BENCHMARKS[bench_idx];
        // Cap the modeled footprint so the test stays fast.
        let footprint = profile.footprint_pages().min(2048);
        let range = (footprint * 4).next_power_of_two().max(4096 * 4);
        let mut g = TraceGenerator::with_footprint(
            profile,
            DomainId::new_unchecked(0),
            1 << 20,
            seed,
            footprint,
            range,
        );
        let mut live = HashSet::new();
        for _ in 0..30_000 {
            match g.next_event() {
                MemEvent::Alloc { page } => {
                    prop_assert!(live.insert(page), "double alloc");
                }
                MemEvent::Dealloc { page } => {
                    prop_assert!(live.remove(&page), "free of unallocated page");
                }
                MemEvent::Access { block, gap_instrs, .. } => {
                    prop_assert!(live.contains(&block.page()), "wild access");
                    prop_assert!(gap_instrs >= 1);
                }
            }
        }
        prop_assert!(live.len() as u64 <= (footprint as f64 * profile.init_spike) as u64 + 1);
    }

    #[test]
    fn streams_differ_across_seeds(bench_idx in 0usize..26) {
        let profile = &BENCHMARKS[bench_idx];
        let mk = |seed| {
            TraceGenerator::with_footprint(
                profile,
                DomainId::new_unchecked(0),
                0,
                seed,
                256,
                4096 * 4,
            )
        };
        let mut a = mk(1);
        let mut b = mk(2);
        let differs = (0..2000).any(|_| a.next_event() != b.next_event());
        prop_assert!(differs);
    }
}
