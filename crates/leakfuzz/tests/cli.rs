//! End-to-end tests of the `leakfuzz` binary: seed-driven determinism,
//! corpus replay exit codes, and the gate direction (a protected scheme
//! flagging must fail the replay).

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

use ivl_leakfuzz::corpus::{metaleak_entry, CorpusEntry};
use ivl_simulator::system::SchemeKind;

fn leakfuzz() -> Command {
    Command::new(env!("CARGO_BIN_EXE_leakfuzz"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The finding lines (one per leak) of a fuzz run's stdout.
fn finding_lines(out: &Output) -> Vec<String> {
    stdout_of(out)
        .lines()
        .filter(|l| l.starts_with("leak:"))
        .map(str::to_string)
        .collect()
}

#[test]
fn ivl_fuzz_seed_makes_runs_reproducible() {
    let run = |dir: &str, seed: &str| {
        leakfuzz()
            .args(["fuzz", "--max-cases", "4", "--budget-secs", "0"])
            .args(["--out", tmp_dir(dir).to_str().unwrap()])
            .env("IVL_FUZZ_SEED", seed)
            .output()
            .expect("run leakfuzz fuzz")
    };
    let a = run("fuzz-det-a", "12345");
    let b = run("fuzz-det-b", "12345");
    assert!(a.status.success(), "stderr: {:?}", a.stderr);
    assert_eq!(
        finding_lines(&a),
        finding_lines(&b),
        "same IVL_FUZZ_SEED must reproduce the identical findings"
    );
    // The banner reflects the env seed (flags would win, none passed).
    assert!(stdout_of(&a).contains("seed=0x3039"), "{}", stdout_of(&a));

    let c = run("fuzz-det-c", "54321");
    assert!(c.status.success());
    assert!(
        stdout_of(&c).contains("seed=0xd431"),
        "different env seed must change the stream"
    );
}

#[test]
fn fuzz_writes_corpus_entries_and_traces_for_findings() {
    let out_dir = tmp_dir("fuzz-artifacts");
    let out = leakfuzz()
        .args([
            "fuzz",
            "--seed",
            "7",
            "--max-cases",
            "3",
            "--budget-secs",
            "0",
        ])
        .args(["--out", out_dir.to_str().unwrap()])
        .output()
        .expect("run leakfuzz fuzz");
    // Whether or not this tiny run finds something is seed-dependent;
    // what must hold: exit 0 (no protected finding) and every finding
    // printed has a .kv plus a trace next to it.
    assert!(out.status.success(), "stderr: {:?}", out.stderr);
    let findings = finding_lines(&out);
    let kvs: Vec<_> = fs::read_dir(&out_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "kv"))
        .collect();
    assert_eq!(kvs.len(), findings.len(), "one corpus entry per finding");
    for e in kvs {
        let entry = CorpusEntry::load(&e.path()).expect("finding entry parses");
        assert_eq!(entry.leaky.len(), 1);
        let trace = e.path().with_extension("trace.jsonl");
        assert!(trace.exists(), "missing trace dump {}", trace.display());
        assert!(fs::metadata(&trace).unwrap().len() > 0);
    }
}

#[test]
fn replay_passes_on_the_checked_in_corpus() {
    let out = leakfuzz().arg("replay").output().expect("run replay");
    assert!(
        out.status.success(),
        "stdout: {} stderr: {}",
        stdout_of(&out),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout_of(&out).contains("metaleak-evict-reload: ok"));
}

#[test]
fn replay_fails_when_a_clean_expectation_is_violated() {
    // Declare the Baseline "clean" — it leaks, so replay must exit 1.
    // This is the drift-detector direction that guards protected schemes.
    let dir = tmp_dir("replay-violation");
    let mut entry = metaleak_entry();
    entry.name = "tampered".into();
    entry.leaky = Vec::new();
    entry.clean = vec![SchemeKind::Baseline];
    entry.save(&dir.join("tampered.kv")).unwrap();

    let out = leakfuzz()
        .args(["replay", "--corpus", dir.to_str().unwrap()])
        .output()
        .expect("run replay");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("isolation regression"), "stderr: {err}");
}

#[test]
fn show_prints_the_verdict_matrix() {
    let path = ivl_leakfuzz::corpus::default_corpus_dir().join("metaleak-evict-reload.kv");
    let out = leakfuzz()
        .args(["show", path.to_str().unwrap()])
        .output()
        .expect("run show");
    assert!(out.status.success());
    let text = stdout_of(&out);
    assert!(text.contains("Baseline") && text.contains("flagged=true"));
    assert!(text.contains("IvLeague-Pro") && text.contains("flagged=false"));
}
