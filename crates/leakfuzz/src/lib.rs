//! Leak-search fuzzer over IvLeague's isolation boundaries.
//!
//! The workspace's scripted attack (`crates/attack-sim`) demonstrates one
//! known channel — MetaLeak's Evict+Reload over shared integrity-tree
//! nodes. This crate searches for channels nobody scripted: it generates
//! random attacker/victim access programs ([`program`]), runs each against
//! every scheme under a fixed-vs-fixed measurement ([`harness`]), applies
//! a statistical distinguisher over the attacker's probe latencies
//! ([`distinguisher`]), and shrinks anything that flags down to a minimal
//! counterexample ([`fuzz`]). Minimal counterexamples are checked into a
//! replayable corpus ([`corpus`]) that CI runs as a drift detector: the
//! Baseline must keep leaking, the protected schemes must stay silent.
//!
//! Everything is deterministic: programs come from a seeded splitmix64 →
//! xoshiro256** stream (`ivl_testkit::rng`), the simulator is noiseless,
//! and shrinking is a greedy fixpoint walk — so a finding on one machine
//! is a finding on every machine, and the `leakfuzz` binary's
//! `IVL_FUZZ_SEED` reproduces a whole run.
//!
//! # Quick start
//!
//! ```
//! use ivl_leakfuzz::harness::{run_program, HarnessConfig};
//! use ivl_leakfuzz::program::metaleak_program;
//! use ivl_simulator::SchemeKind;
//!
//! let cfg = HarnessConfig::default();
//! let prog = metaleak_program();
//! assert!(run_program(SchemeKind::Baseline, &prog, &cfg).flagged);
//! assert!(!run_program(SchemeKind::IvPro, &prog, &cfg).flagged);
//! ```

pub mod corpus;
pub mod distinguisher;
pub mod fuzz;
pub mod gen;
pub mod harness;
pub mod program;

pub use corpus::CorpusEntry;
pub use distinguisher::Distinguisher;
pub use fuzz::{fuzz, fuzz_with, Finding, FuzzConfig, FuzzOutcome};
pub use harness::{run_program, run_program_with_obs, HarnessConfig, ProgramReport};
pub use program::{metaleak_program, AccessProgram};
