//! The counterexample corpus: shrunk leak programs checked into
//! `crates/leakfuzz/corpus/*.kv` and replayed by CI.
//!
//! Each entry records a minimal [`AccessProgram`] together with the
//! schemes it is *expected* to flag on (`leaky`) and the schemes it must
//! stay silent on (`clean`). Replaying the corpus is a drift detector in
//! both directions:
//!
//! * a `leaky` scheme going quiet means the harness lost its
//!   sensitivity (or someone "fixed" the Baseline by accident);
//! * a `clean` scheme starting to flag means an isolation regression —
//!   the exact bug class IvLeague exists to prevent.
//!
//! Files are `ivl_testkit::kv` documents (a TOML subset), so entries are
//! hand-auditable and diff-friendly.

use std::fs;
use std::path::{Path, PathBuf};

use ivl_simulator::system::SchemeKind;
use ivl_testkit::kv::{KvDoc, KvError};

use crate::harness::{run_program, HarnessConfig};
use crate::program::AccessProgram;

/// One corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Entry name (also the file stem by convention).
    pub name: String,
    /// Human note: where the program came from, what it exercises.
    pub note: String,
    /// Fuzzer case seed that produced the program (0 for hand-written).
    pub seed: u64,
    /// Sampled rounds per secret class used when judging the entry.
    pub rounds_per_class: usize,
    /// The (shrunk) program.
    pub program: AccessProgram,
    /// Schemes this program must flag on.
    pub leaky: Vec<SchemeKind>,
    /// Schemes this program must stay silent on.
    pub clean: Vec<SchemeKind>,
}

fn labels(kinds: &[SchemeKind]) -> String {
    kinds
        .iter()
        .map(|k| k.label())
        .collect::<Vec<_>>()
        .join(",")
}

// Seeds are full-range u64 (often above i64::MAX, which the kv integer
// type cannot hold), so they serialize as hex strings.
fn parse_seed(text: &str) -> Result<u64, KvError> {
    let t = text.trim();
    let parsed = match t.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => t.parse(),
    };
    parsed.map_err(|_| KvError::Syntax {
        line: 0,
        message: format!("bad seed `{t}`"),
    })
}

fn parse_labels(text: &str) -> Result<Vec<SchemeKind>, KvError> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            SchemeKind::from_label(s).ok_or_else(|| KvError::Syntax {
                line: 0,
                message: format!("unknown scheme label `{s}`"),
            })
        })
        .collect()
}

impl CorpusEntry {
    /// Serializes the entry to its `.kv` document text.
    pub fn to_kv_string(&self) -> String {
        let mut doc = KvDoc::new();
        doc.set_str("meta.name", &self.name);
        doc.set_str("meta.note", &self.note);
        doc.set_str("meta.seed", &format!("{:#x}", self.seed));
        doc.set_u64("meta.rounds_per_class", self.rounds_per_class as u64);
        doc.set_str("expect.leaky", &labels(&self.leaky));
        doc.set_str("expect.clean", &labels(&self.clean));
        self.program.write_kv("program", &mut doc);
        doc.to_toml_string()
    }

    /// Parses an entry from `.kv` document text.
    pub fn from_kv_str(text: &str) -> Result<CorpusEntry, KvError> {
        let doc = KvDoc::parse(text)?;
        Ok(CorpusEntry {
            name: doc.get_str("meta.name")?.to_string(),
            note: doc.get_str("meta.note")?.to_string(),
            seed: parse_seed(doc.get_str("meta.seed")?)?,
            rounds_per_class: doc.get_usize("meta.rounds_per_class")?,
            program: AccessProgram::read_kv("program", &doc)?,
            leaky: parse_labels(doc.get_str("expect.leaky")?)?,
            clean: parse_labels(doc.get_str("expect.clean")?)?,
        })
    }

    /// Writes the entry to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        fs::write(path, self.to_kv_string())
    }

    /// Reads an entry from `path`.
    pub fn load(path: &Path) -> Result<CorpusEntry, String> {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        CorpusEntry::from_kv_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Replays the entry: every `leaky` scheme must flag, every `clean`
    /// scheme must not. Returns human-readable violations (empty = pass).
    pub fn replay(&self, base: &HarnessConfig) -> Vec<String> {
        let cfg = HarnessConfig {
            rounds_per_class: self.rounds_per_class,
            ..*base
        };
        let mut violations = Vec::new();
        for &kind in &self.leaky {
            let report = run_program(kind, &self.program, &cfg);
            if !report.flagged {
                violations.push(format!(
                    "{}: {} no longer flags (max |t| = {:.2}, max gap = {:.1} cycles) — \
                     the harness lost its known leak",
                    self.name,
                    kind.label(),
                    report.max_abs_t(),
                    report.max_mean_gap()
                ));
            }
        }
        for &kind in &self.clean {
            let report = run_program(kind, &self.program, &cfg);
            if report.flagged {
                violations.push(format!(
                    "{}: {} now flags (max |t| = {:.2}, max gap = {:.1} cycles) — \
                     isolation regression",
                    self.name,
                    kind.label(),
                    report.max_abs_t(),
                    report.max_mean_gap()
                ));
            }
        }
        violations
    }
}

/// Loads every `.kv` entry under `dir`, sorted by file name for
/// deterministic replay order.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, CorpusEntry)>, String> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "kv"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|p| CorpusEntry::load(&p).map(|e| (p, e)))
        .collect()
}

/// The checked-in corpus directory (relative to the crate, resolved at
/// compile time so tests and the binary agree).
pub fn default_corpus_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

/// The corpus seed entry: the scripted MetaLeak Evict+Reload attack of
/// `crates/attack-sim`, expressed as an access program
/// ([`metaleak_program`](crate::program::metaleak_program)). The
/// checked-in `metaleak-evict-reload.kv` is this entry verbatim
/// (`leakfuzz seed-corpus` regenerates it), so the corpus stays
/// mechanically in sync with the code.
pub fn metaleak_entry() -> CorpusEntry {
    CorpusEntry {
        name: "metaleak-evict-reload".into(),
        note: "scripted MetaLeak Evict+Reload (paper Fig. 2b) as an access program; \
               hand-seeded, not fuzzer-found"
            .into(),
        seed: 0,
        rounds_per_class: 48,
        program: crate::program::metaleak_program(),
        leaky: vec![SchemeKind::Baseline],
        clean: vec![
            SchemeKind::IvBasic,
            SchemeKind::IvInvert,
            SchemeKind::IvPro,
            SchemeKind::BvV1,
            SchemeKind::BvV2,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::metaleak_program;

    fn entry() -> CorpusEntry {
        CorpusEntry {
            name: "metaleak-evict-reload".into(),
            note: "scripted MetaLeak attack as a program".into(),
            // Above i64::MAX, covering the hex seed codec.
            seed: 0xDEAD_BEEF_DEAD_BEEF,
            rounds_per_class: 32,
            program: metaleak_program(),
            leaky: vec![SchemeKind::Baseline],
            clean: vec![
                SchemeKind::IvBasic,
                SchemeKind::IvInvert,
                SchemeKind::IvPro,
                SchemeKind::BvV1,
                SchemeKind::BvV2,
            ],
        }
    }

    #[test]
    fn corpus_entry_round_trips_through_kv() {
        let e = entry();
        let text = e.to_kv_string();
        let back = CorpusEntry::from_kv_str(&text).expect("parses");
        assert_eq!(e.name, back.name);
        assert_eq!(e.note, back.note);
        assert_eq!(e.seed, back.seed);
        assert_eq!(e.rounds_per_class, back.rounds_per_class);
        assert_eq!(e.program, back.program);
        assert_eq!(e.leaky, back.leaky);
        assert_eq!(e.clean, back.clean);
        // Serialization is canonical: a second round trip is textual
        // identity (what keeps corpus diffs clean).
        assert_eq!(text, back.to_kv_string());
    }

    #[test]
    fn unknown_scheme_labels_are_rejected() {
        let text = entry().to_kv_string().replace("Baseline", "Fortress");
        assert!(CorpusEntry::from_kv_str(&text).is_err());
    }

    #[test]
    fn checked_in_metaleak_entry_matches_the_code() {
        let path = default_corpus_dir().join("metaleak-evict-reload.kv");
        let text = fs::read_to_string(&path).expect("seed corpus entry present");
        assert_eq!(
            text,
            metaleak_entry().to_kv_string(),
            "seed entry drifted from the code; run `leakfuzz seed-corpus` to refresh"
        );
    }

    #[test]
    fn checked_in_corpus_parses_and_names_match_files() {
        let entries = load_dir(&default_corpus_dir()).expect("corpus loads");
        assert!(!entries.is_empty(), "corpus must not be empty");
        for (path, e) in &entries {
            assert_eq!(
                Some(e.name.as_str()),
                path.file_stem().and_then(|s| s.to_str()),
                "entry name should match its file stem"
            );
            assert!(!e.leaky.is_empty() || !e.clean.is_empty());
            assert!(!e.program.probes.is_empty());
        }
    }
}
