//! Strategies generating (and shrinking) random [`AccessProgram`]s.
//!
//! All strategies are custom [`Strategy`](ivl_testkit::prop::Strategy)
//! implementations rather than `prop_map` chains: the testkit's `prop_map`
//! values do not shrink (no inverse to recover the pre-image), and
//! shrinking found leaks down to minimal counterexamples is the whole
//! point of the corpus. Vector structure reuses the testkit's
//! [`vec`] shrinker (drop-prefix / drop-element / per-element), so a
//! twelve-op program with one real leak collapses to the few ops that
//! carry it.
//!
//! # Link bias
//!
//! Uniformly random programs rarely line up all four ingredients of the
//! MetaLeak pattern (evict victim meta + evict attacker meta + a
//! secret-conditional victim access + a probe, all in one level-2 group).
//! [`ProgramStrategy`] therefore injects that four-op *link* into half the
//! generated programs, at a page chosen from the same seeded stream. The
//! bias only shapes the search distribution: flagged programs are still
//! validated and shrunk like any other, and the unlinked half keeps
//! exploring patterns the designers did not anticipate.

use ivl_testkit::prop::{vec, Strategy, VecStrategy};
use ivl_testkit::rng::TestRng;

use crate::program::{AccessProgram, PageRef, PrepOp, VictimOp, When, GROUPS, SLOTS};

/// Strategy over the page universe; shrinks lexicographically towards
/// group 0, slot 0.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageRefStrategy;

impl Strategy for PageRefStrategy {
    type Value = PageRef;

    fn generate(&self, rng: &mut TestRng) -> PageRef {
        PageRef {
            group: rng.below(GROUPS as u64) as u8,
            slot: rng.below(SLOTS as u64) as u8,
        }
    }

    fn shrink(&self, value: &PageRef) -> Vec<PageRef> {
        let mut out = Vec::new();
        if value.group > 0 || value.slot > 0 {
            out.push(PageRef { group: 0, slot: 0 });
        }
        if value.slot > 0 {
            out.push(PageRef {
                group: value.group,
                slot: value.slot - 1,
            });
        }
        if value.group > 0 {
            out.push(PageRef {
                group: value.group - 1,
                slot: value.slot,
            });
        }
        out.retain(|c| c != value);
        out.dedup();
        out
    }

    fn contains(&self, value: &PageRef) -> bool {
        value.group < GROUPS && value.slot < SLOTS
    }
}

/// Strategy over prep ops. Eviction of victim metadata — the attacker
/// move every known metadata channel needs — is drawn as often as the
/// other two variants combined. Shrinks simplify the page and turn writes
/// into reads.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrepOpStrategy;

impl Strategy for PrepOpStrategy {
    type Value = PrepOp;

    fn generate(&self, rng: &mut TestRng) -> PrepOp {
        let page = PageRefStrategy.generate(rng);
        match rng.below(4) {
            0 | 1 => PrepOp::EvictVictimMeta(page),
            2 => PrepOp::EvictAttackerMeta(page),
            _ => PrepOp::Touch {
                page,
                write: rng.below(2) == 1,
            },
        }
    }

    fn shrink(&self, value: &PrepOp) -> Vec<PrepOp> {
        match *value {
            PrepOp::EvictVictimMeta(r) => PageRefStrategy
                .shrink(&r)
                .into_iter()
                .map(PrepOp::EvictVictimMeta)
                .collect(),
            PrepOp::EvictAttackerMeta(r) => PageRefStrategy
                .shrink(&r)
                .into_iter()
                .map(PrepOp::EvictAttackerMeta)
                .collect(),
            PrepOp::Touch { page, write } => {
                let mut out: Vec<PrepOp> = PageRefStrategy
                    .shrink(&page)
                    .into_iter()
                    .map(|p| PrepOp::Touch { page: p, write })
                    .collect();
                if write {
                    out.insert(0, PrepOp::Touch { page, write: false });
                }
                out
            }
        }
    }

    fn contains(&self, value: &PrepOp) -> bool {
        let page = match value {
            PrepOp::EvictVictimMeta(r) | PrepOp::EvictAttackerMeta(r) => r,
            PrepOp::Touch { page, .. } => page,
        };
        PageRefStrategy.contains(page)
    }
}

/// Strategy over victim ops. Shrinks simplify the page, turn writes into
/// reads, and reduce the condition `s0 → s1 → always` (each step strictly
/// simpler, so greedy shrinking cannot oscillate between the two
/// secret-conditional forms).
#[derive(Debug, Clone, Copy, Default)]
pub struct VictimOpStrategy;

impl Strategy for VictimOpStrategy {
    type Value = VictimOp;

    fn generate(&self, rng: &mut TestRng) -> VictimOp {
        VictimOp {
            page: PageRefStrategy.generate(rng),
            write: rng.below(2) == 1,
            when: match rng.below(4) {
                // Secret-conditional ops are what a leak needs; bias
                // towards them.
                0 => When::Always,
                1 | 2 => When::SecretSet,
                _ => When::SecretClear,
            },
        }
    }

    fn shrink(&self, value: &VictimOp) -> Vec<VictimOp> {
        let mut out = Vec::new();
        match value.when {
            When::SecretClear => {
                out.push(VictimOp {
                    when: When::SecretSet,
                    ..*value
                });
                out.push(VictimOp {
                    when: When::Always,
                    ..*value
                });
            }
            When::SecretSet => out.push(VictimOp {
                when: When::Always,
                ..*value
            }),
            When::Always => {}
        }
        if value.write {
            out.push(VictimOp {
                write: false,
                ..*value
            });
        }
        out.extend(
            PageRefStrategy
                .shrink(&value.page)
                .into_iter()
                .map(|p| VictimOp { page: p, ..*value }),
        );
        out
    }

    fn contains(&self, value: &VictimOp) -> bool {
        PageRefStrategy.contains(&value.page)
    }
}

/// Strategy over whole programs; see the module docs for the link bias.
pub struct ProgramStrategy {
    prep: VecStrategy<PrepOpStrategy>,
    victim: VecStrategy<VictimOpStrategy>,
    probes: VecStrategy<PageRefStrategy>,
}

impl ProgramStrategy {
    /// The fuzzer's default program shape: up to six prep ops, up to four
    /// victim ops, one to four probes.
    pub fn new() -> Self {
        ProgramStrategy {
            prep: vec(PrepOpStrategy, 0..7),
            victim: vec(VictimOpStrategy, 0..5),
            probes: vec(PageRefStrategy, 1..5),
        }
    }
}

impl Default for ProgramStrategy {
    fn default() -> Self {
        ProgramStrategy::new()
    }
}

impl Strategy for ProgramStrategy {
    type Value = AccessProgram;

    fn generate(&self, rng: &mut TestRng) -> AccessProgram {
        let mut prog = AccessProgram {
            prep: self.prep.generate(rng),
            victim: self.victim.generate(rng),
            probes: self.probes.generate(rng),
        };
        if rng.below(2) == 0 {
            let r = PageRefStrategy.generate(rng);
            prog.prep.push(PrepOp::EvictVictimMeta(r));
            prog.prep.push(PrepOp::EvictAttackerMeta(r));
            prog.victim.push(VictimOp {
                page: r,
                write: false,
                when: When::SecretSet,
            });
            prog.probes.push(r);
        }
        prog
    }

    fn shrink(&self, value: &AccessProgram) -> Vec<AccessProgram> {
        let mut out = Vec::new();
        for cand in self.prep.shrink(&value.prep) {
            out.push(AccessProgram {
                prep: cand,
                ..value.clone()
            });
        }
        for cand in self.victim.shrink(&value.victim) {
            out.push(AccessProgram {
                victim: cand,
                ..value.clone()
            });
        }
        for cand in self.probes.shrink(&value.probes) {
            out.push(AccessProgram {
                probes: cand,
                ..value.clone()
            });
        }
        out
    }

    // No upper length check: link injection legitimately extends the
    // base vectors past their generated length ranges.
    fn contains(&self, value: &AccessProgram) -> bool {
        !value.probes.is_empty()
            && value.prep.iter().all(|op| PrepOpStrategy.contains(op))
            && value.victim.iter().all(|op| VictimOpStrategy.contains(op))
            && value.probes.iter().all(|r| PageRefStrategy.contains(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_in_universe() {
        let strat = ProgramStrategy::new();
        let mut a = TestRng::seed_from(42);
        let mut b = TestRng::seed_from(42);
        for _ in 0..64 {
            let pa = strat.generate(&mut a);
            let pb = strat.generate(&mut b);
            assert_eq!(pa, pb);
            assert!(strat.contains(&pa));
            assert!(!pa.probes.is_empty(), "programs always probe something");
        }
    }

    #[test]
    fn link_bias_injects_the_metaleak_pattern() {
        let strat = ProgramStrategy::new();
        let mut rng = TestRng::seed_from(7);
        let mut linked = 0usize;
        const N: usize = 200;
        for _ in 0..N {
            let prog = strat.generate(&mut rng);
            let has_link = prog.probes.iter().any(|r| {
                prog.prep.contains(&PrepOp::EvictVictimMeta(*r))
                    && prog.prep.contains(&PrepOp::EvictAttackerMeta(*r))
                    && prog
                        .victim
                        .iter()
                        .any(|op| op.page == *r && op.when == When::SecretSet)
            });
            if has_link {
                linked += 1;
            }
        }
        assert!(
            (N / 4..N).contains(&linked),
            "link bias should mark roughly half the programs, got {linked}/{N}"
        );
    }

    #[test]
    fn shrinking_terminates_at_a_fixpoint() {
        // Greedily accept the first shrink candidate forever: every chain
        // must hit an unshrinkable value, or the step cap below trips.
        let strat = ProgramStrategy::new();
        let mut rng = TestRng::seed_from(11);
        for _ in 0..32 {
            let mut value = strat.generate(&mut rng);
            let mut steps = 0u32;
            while let Some(next) = strat.shrink(&value).into_iter().next() {
                value = next;
                steps += 1;
                assert!(steps < 10_000, "shrink chain did not terminate");
            }
        }
    }

    #[test]
    fn shrink_candidates_stay_in_universe() {
        let strat = ProgramStrategy::new();
        let mut rng = TestRng::seed_from(13);
        for _ in 0..32 {
            let value = strat.generate(&mut rng);
            for cand in strat.shrink(&value) {
                assert!(strat.contains(&cand));
            }
        }
    }
}
