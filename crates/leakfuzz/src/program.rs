//! The access-program grammar the fuzzer searches over, plus its textual
//! codec (corpus files are `ivl_testkit::kv` documents).
//!
//! A program describes one *round template* of an attacker/victim
//! interaction over a small shared page universe:
//!
//! 1. **prep** — attacker phase: metadata evictions (modeling successful
//!    conflict-eviction campaigns in the shared metadata caches) and plain
//!    warming accesses to the attacker's own pages;
//! 2. **victim** — victim phase: data accesses, each unconditional or
//!    conditioned on the victim's secret bit (`s1` executes only when the
//!    bit is set, `s0` only when clear);
//! 3. **probes** — attacker phase: timed reloads of attacker pages; each
//!    probe position is one latency sample per round.
//!
//! The harness replays the template for many rounds, alternating the
//! secret bit, and feeds the per-probe latency samples to the statistical
//! distinguisher. The attacker-visible part (prep + probes) is identical
//! in both secret classes by construction, so any distinguishable
//! per-probe distribution difference is a secret-correlated signal.
//!
//! # Page universe
//!
//! Pages are named by [`PageRef`] = (group, slot) over [`GROUPS`] level-2
//! sharing groups of 64 pages each, based at [`PAGE_BASE`]. Victim pages
//! occupy slots `0..8` of a group and attacker pages slots `8..16`, so an
//! attacker page always shares its group's level-2 tree node with the
//! group's victim pages under the global tree (the MetaLeak precondition)
//! while never sharing a leaf node, a counter block, or the page itself —
//! the same placement the scripted attack uses
//! (`ivl_attack::colocated_attacker_page`).

use std::fmt;

use ivl_sim_core::addr::PageNum;
use ivl_sim_core::domain::DomainId;
use ivl_testkit::kv::{KvDoc, KvError};

/// First page of the shared universe (level-2-group aligned).
pub const PAGE_BASE: u64 = 1_000_000;

/// Level-2 sharing groups in the universe.
pub const GROUPS: u8 = 2;

/// Victim (and attacker) page slots per group.
pub const SLOTS: u8 = 8;

/// The victim's domain in every generated program.
pub const VICTIM_DOMAIN: DomainId = DomainId::new_unchecked(1);

/// The attacker's domain in every generated program.
pub const ATTACKER_DOMAIN: DomainId = DomainId::new_unchecked(2);

/// A page name in the shared universe: `group` selects a 64-page level-2
/// sharing group, `slot` a page within the role's half of the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PageRef {
    /// Level-2 sharing group, `0..GROUPS`.
    pub group: u8,
    /// Page slot within the role's range, `0..SLOTS`.
    pub slot: u8,
}

impl PageRef {
    /// The victim-owned page this reference names (offsets `0..8`).
    pub fn victim_page(self) -> PageNum {
        PageNum::new(PAGE_BASE + self.group as u64 * 64 + self.slot as u64)
    }

    /// The attacker-owned page this reference names (offsets `8..16`:
    /// same level-2 group as the victim slots, different leaf group).
    pub fn attacker_page(self) -> PageNum {
        PageNum::new(PAGE_BASE + self.group as u64 * 64 + 8 + self.slot as u64)
    }
}

impl fmt::Display for PageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.group, self.slot)
    }
}

/// When a victim op executes relative to the secret bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum When {
    /// Every round.
    Always,
    /// Only in secret=1 rounds.
    SecretSet,
    /// Only in secret=0 rounds.
    SecretClear,
}

impl When {
    /// Whether an op with this condition runs in a round with `secret`.
    pub fn applies(self, secret: bool) -> bool {
        match self {
            When::Always => true,
            When::SecretSet => secret,
            When::SecretClear => !secret,
        }
    }

    fn token(self) -> &'static str {
        match self {
            When::Always => "always",
            When::SecretSet => "s1",
            When::SecretClear => "s0",
        }
    }
}

/// One attacker prep-phase operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrepOp {
    /// Evict the metadata (counter block + tree path) of a victim page —
    /// a cross-domain conflict eviction in the shared metadata caches.
    EvictVictimMeta(PageRef),
    /// Evict the metadata of one of the attacker's own pages (resets the
    /// attacker's probe state so the following reload walks the tree).
    EvictAttackerMeta(PageRef),
    /// Plain attacker data access (warms attacker-side state).
    Touch {
        /// Attacker page accessed.
        page: PageRef,
        /// Write access (else read).
        write: bool,
    },
}

/// One victim-phase operation: a data access, possibly secret-conditional.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimOp {
    /// Victim page accessed.
    pub page: PageRef,
    /// Write access (else read).
    pub write: bool,
    /// Execution condition relative to the secret bit.
    pub when: When,
}

/// A full round template. See the module docs for the grammar.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessProgram {
    /// Attacker prep phase, executed first each round.
    pub prep: Vec<PrepOp>,
    /// Victim phase.
    pub victim: Vec<VictimOp>,
    /// Attacker probe phase: each entry is a timed reload of an attacker
    /// page and contributes one latency sample per round.
    pub probes: Vec<PageRef>,
}

fn rw_token(write: bool) -> &'static str {
    if write {
        "w"
    } else {
        "r"
    }
}

impl AccessProgram {
    /// Victim pages the program references (sorted, deduplicated) — the
    /// setup phase allocates these into [`VICTIM_DOMAIN`].
    pub fn victim_pages(&self) -> Vec<PageNum> {
        let mut pages: Vec<PageNum> = self
            .prep
            .iter()
            .filter_map(|op| match op {
                PrepOp::EvictVictimMeta(r) => Some(r.victim_page()),
                _ => None,
            })
            .chain(self.victim.iter().map(|op| op.page.victim_page()))
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// Attacker pages the program references (sorted, deduplicated) — the
    /// setup phase allocates these into [`ATTACKER_DOMAIN`].
    pub fn attacker_pages(&self) -> Vec<PageNum> {
        let mut pages: Vec<PageNum> = self
            .prep
            .iter()
            .filter_map(|op| match op {
                PrepOp::EvictAttackerMeta(r) => Some(r.attacker_page()),
                PrepOp::Touch { page, .. } => Some(page.attacker_page()),
                PrepOp::EvictVictimMeta(_) => None,
            })
            .chain(self.probes.iter().map(|r| r.attacker_page()))
            .collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }

    /// Serializes the program under `prefix` dotted keys into `doc`
    /// (`prefix.prep.op00 = "evict v 0 3"`, …). Zero-padded indices keep
    /// the document's key order equal to program order.
    pub fn write_kv(&self, prefix: &str, doc: &mut KvDoc) {
        for (i, op) in self.prep.iter().enumerate() {
            let text = match op {
                PrepOp::EvictVictimMeta(r) => format!("evict v {r}"),
                PrepOp::EvictAttackerMeta(r) => format!("evict a {r}"),
                PrepOp::Touch { page, write } => format!("touch {} {page}", rw_token(*write)),
            };
            doc.set_str(&format!("{prefix}.prep.op{i:02}"), &text);
        }
        for (i, op) in self.victim.iter().enumerate() {
            let text = format!("{} {} {}", op.when.token(), rw_token(op.write), op.page);
            doc.set_str(&format!("{prefix}.victim.op{i:02}"), &text);
        }
        for (i, r) in self.probes.iter().enumerate() {
            doc.set_str(&format!("{prefix}.probes.op{i:02}"), &format!("probe {r}"));
        }
    }

    /// Parses a program previously written by [`write_kv`](Self::write_kv).
    pub fn read_kv(prefix: &str, doc: &KvDoc) -> Result<AccessProgram, KvError> {
        let mut prog = AccessProgram::default();
        for phase in ["prep", "victim", "probes"] {
            for i in 0..100usize {
                let key = format!("{prefix}.{phase}.op{i:02}");
                let Some(_) = doc.get(&key) else { break };
                let text = doc.get_str(&key)?;
                let parse_err = |msg: &str| KvError::Syntax {
                    line: 0,
                    message: format!("{key}: {msg} in `{text}`"),
                };
                let toks: Vec<&str> = text.split_whitespace().collect();
                let page_at = |idx: usize| -> Result<PageRef, KvError> {
                    let group: u8 = toks
                        .get(idx)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| parse_err("bad group"))?;
                    let slot: u8 = toks
                        .get(idx + 1)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| parse_err("bad slot"))?;
                    if group >= GROUPS || slot >= SLOTS {
                        return Err(parse_err("page out of universe"));
                    }
                    Ok(PageRef { group, slot })
                };
                match (phase, toks.first().copied()) {
                    ("prep", Some("evict")) => {
                        let r = page_at(2)?;
                        match toks.get(1).copied() {
                            Some("v") => prog.prep.push(PrepOp::EvictVictimMeta(r)),
                            Some("a") => prog.prep.push(PrepOp::EvictAttackerMeta(r)),
                            _ => return Err(parse_err("expected `v` or `a`")),
                        }
                    }
                    ("prep", Some("touch")) => {
                        let write = match toks.get(1).copied() {
                            Some("r") => false,
                            Some("w") => true,
                            _ => return Err(parse_err("expected `r` or `w`")),
                        };
                        prog.prep.push(PrepOp::Touch {
                            page: page_at(2)?,
                            write,
                        });
                    }
                    ("victim", Some(when_tok)) => {
                        let when = match when_tok {
                            "always" => When::Always,
                            "s1" => When::SecretSet,
                            "s0" => When::SecretClear,
                            _ => return Err(parse_err("expected always|s1|s0")),
                        };
                        let write = match toks.get(1).copied() {
                            Some("r") => false,
                            Some("w") => true,
                            _ => return Err(parse_err("expected `r` or `w`")),
                        };
                        prog.victim.push(VictimOp {
                            page: page_at(2)?,
                            write,
                            when,
                        });
                    }
                    ("probes", Some("probe")) => prog.probes.push(page_at(1)?),
                    _ => return Err(parse_err("unknown op")),
                }
            }
        }
        Ok(prog)
    }
}

/// The scripted MetaLeak Evict+Reload attack of `crates/attack-sim`,
/// expressed as an access program: the victim's `sqr` page (group 0) is
/// touched every round, its `mul` page (group 1) only when the secret bit
/// is set; the attacker evicts all four pages' metadata and times a reload
/// of its co-located page in each group. Under the global tree the group-1
/// probe is fast exactly when the victim touched `mul` — the paper's
/// Figure 2b channel; under IvLeague both probe distributions are
/// identical.
pub fn metaleak_program() -> AccessProgram {
    let sqr = PageRef { group: 0, slot: 0 };
    let mul = PageRef { group: 1, slot: 0 };
    AccessProgram {
        prep: vec![
            PrepOp::EvictVictimMeta(sqr),
            PrepOp::EvictVictimMeta(mul),
            PrepOp::EvictAttackerMeta(sqr),
            PrepOp::EvictAttackerMeta(mul),
        ],
        victim: vec![
            VictimOp {
                page: sqr,
                write: false,
                when: When::Always,
            },
            VictimOp {
                page: mul,
                write: false,
                when: When::SecretSet,
            },
        ],
        probes: vec![sqr, mul],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_placement_matches_the_metaleak_precondition() {
        for g in 0..GROUPS {
            for s in 0..SLOTS {
                let r = PageRef { group: g, slot: s };
                let v = r.victim_page();
                let a = r.attacker_page();
                assert_eq!(v.index() / 64, a.index() / 64, "same level-2 group");
                assert_ne!(v.index() / 8, a.index() / 8, "different leaf group");
                assert_ne!(v.index(), a.index());
            }
        }
        // Matches the scripted attack's co-location function for slot 0.
        let r = PageRef { group: 0, slot: 0 };
        assert_eq!(
            r.attacker_page(),
            ivl_attack::colocated_attacker_page(r.victim_page())
        );
    }

    #[test]
    fn kv_codec_round_trips() {
        let prog = AccessProgram {
            prep: vec![
                PrepOp::EvictVictimMeta(PageRef { group: 1, slot: 3 }),
                PrepOp::EvictAttackerMeta(PageRef { group: 0, slot: 7 }),
                PrepOp::Touch {
                    page: PageRef { group: 1, slot: 0 },
                    write: true,
                },
            ],
            victim: vec![
                VictimOp {
                    page: PageRef { group: 0, slot: 2 },
                    write: false,
                    when: When::SecretSet,
                },
                VictimOp {
                    page: PageRef { group: 1, slot: 5 },
                    write: true,
                    when: When::SecretClear,
                },
                VictimOp {
                    page: PageRef { group: 0, slot: 0 },
                    write: false,
                    when: When::Always,
                },
            ],
            probes: vec![PageRef { group: 1, slot: 3 }, PageRef { group: 0, slot: 7 }],
        };
        let mut doc = KvDoc::new();
        prog.write_kv("program", &mut doc);
        let text = doc.to_toml_string();
        let parsed = KvDoc::parse(&text).expect("kv parses");
        let back = AccessProgram::read_kv("program", &parsed).expect("program parses");
        assert_eq!(prog, back);
    }

    #[test]
    fn codec_rejects_out_of_universe_pages() {
        let mut doc = KvDoc::new();
        doc.set_str("p.probes.op00", "probe 9 0");
        assert!(AccessProgram::read_kv("p", &doc).is_err());
        let mut doc = KvDoc::new();
        doc.set_str("p.prep.op00", "evict x 0 0");
        assert!(AccessProgram::read_kv("p", &doc).is_err());
    }

    #[test]
    fn page_collection_is_sorted_and_deduped() {
        let prog = metaleak_program();
        let v = prog.victim_pages();
        let a = prog.attacker_pages();
        assert_eq!(
            v,
            vec![PageNum::new(PAGE_BASE), PageNum::new(PAGE_BASE + 64)]
        );
        assert_eq!(
            a,
            vec![PageNum::new(PAGE_BASE + 8), PageNum::new(PAGE_BASE + 72)]
        );
    }

    #[test]
    fn when_conditions_apply_correctly() {
        assert!(When::Always.applies(true) && When::Always.applies(false));
        assert!(When::SecretSet.applies(true) && !When::SecretSet.applies(false));
        assert!(!When::SecretClear.applies(true) && When::SecretClear.applies(false));
    }
}
