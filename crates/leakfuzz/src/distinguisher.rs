//! Statistical distinguisher over per-probe latency samples.
//!
//! The harness runs a program for many rounds with the victim's secret bit
//! alternating, yielding two latency sample sets per probe slot (class 0:
//! secret clear, class 1: secret set). This module decides whether the two
//! distributions are *distinguishable* — i.e. whether the attacker-visible
//! timing carries secret-correlated information.
//!
//! Two complementary test arms, in the spirit of TVLA's fixed-vs-fixed
//! methodology:
//!
//! * **Welch's t-test** on the class means — catches mean shifts (the
//!   MetaLeak signal: one class re-primes a shared tree node, saving a
//!   DRAM fetch on the probe).
//! * **Kolmogorov–Smirnov statistic** on the empirical CDFs — catches
//!   distribution-shape differences with equal means (e.g. a bimodal
//!   class against a constant one).
//!
//! Both arms are gated on a practical-significance guard: the simulator is
//! noiseless, so even a sub-cycle systematic difference yields `t → ∞`
//! with enough samples. A flagged slot must show at least
//! [`Distinguisher::min_gap`] cycles of separation (mean gap for the t
//! arm, max quantile gap for the KS arm) — about the cost of the cheapest
//! real microarchitectural event, and far below a DRAM fetch.

use ivl_sim_core::Cycle;

/// Distinguisher thresholds.
#[derive(Debug, Clone, Copy)]
pub struct Distinguisher {
    /// |t| at or above this flags the t arm (TVLA's canonical 4.5).
    pub t_threshold: f64,
    /// KS statistic at or above this flags the KS arm.
    pub ks_threshold: f64,
    /// Minimum cycle separation (mean gap / max quantile gap) for a flag.
    pub min_gap: f64,
    /// Minimum samples per class; fewer yields an unflagged verdict.
    pub min_samples: usize,
}

impl Default for Distinguisher {
    fn default() -> Self {
        Distinguisher {
            t_threshold: 4.5,
            ks_threshold: 0.5,
            min_gap: 5.0,
            min_samples: 16,
        }
    }
}

/// Per-probe-slot verdict.
#[derive(Debug, Clone, Copy)]
pub struct SlotVerdict {
    /// Welch's t statistic (`f64::INFINITY` for two distinct constants).
    pub t: f64,
    /// KS statistic in `[0, 1]`.
    pub ks: f64,
    /// Class-mean gap, cycles (`mean₁ − mean₀`).
    pub mean_gap: f64,
    /// Largest per-quantile latency gap, cycles.
    pub quantile_gap: f64,
    /// Whether this slot's distributions are distinguishable.
    pub flagged: bool,
}

fn mean_var(samples: &[Cycle]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().map(|&x| x as f64).sum::<f64>() / n;
    let var = samples
        .iter()
        .map(|&x| {
            let d = x as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / (n - 1.0).max(1.0);
    (mean, var)
}

/// Welch's two-sample t statistic. Zero-variance classes are common here
/// (a noiseless simulator often produces constant latencies): two distinct
/// constants are perfectly distinguishable (`±∞`), identical constants are
/// indistinguishable (`0`).
pub fn welch_t(a: &[Cycle], b: &[Cycle]) -> f64 {
    let (ma, va) = mean_var(a);
    let (mb, vb) = mean_var(b);
    let gap = mb - ma;
    let denom = (va / a.len() as f64 + vb / b.len() as f64).sqrt();
    if denom == 0.0 {
        if gap == 0.0 {
            0.0
        } else {
            gap.signum() * f64::INFINITY
        }
    } else {
        gap / denom
    }
}

/// Two-sample Kolmogorov–Smirnov statistic: the largest vertical distance
/// between the two empirical CDFs, in `[0, 1]`.
pub fn ks_stat(a: &[Cycle], b: &[Cycle]) -> f64 {
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_unstable();
    sb.sort_unstable();
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Largest latency gap between same-rank order statistics of the two
/// (equal-length) sample sets — the practical-significance guard for the
/// KS arm: a shape difference only counts if some quantile moved by a
/// real number of cycles.
pub fn max_quantile_gap(a: &[Cycle], b: &[Cycle]) -> f64 {
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_unstable();
    sb.sort_unstable();
    sa.iter()
        .zip(sb.iter())
        .map(|(&x, &y)| (x as f64 - y as f64).abs())
        .fold(0.0, f64::max)
}

impl Distinguisher {
    /// Judges one probe slot's two latency sample classes.
    pub fn judge(&self, class0: &[Cycle], class1: &[Cycle]) -> SlotVerdict {
        let t = welch_t(class0, class1);
        let ks = ks_stat(class0, class1);
        let (m0, _) = mean_var(class0);
        let (m1, _) = mean_var(class1);
        let mean_gap = m1 - m0;
        let quantile_gap = max_quantile_gap(class0, class1);
        let enough = class0.len() >= self.min_samples && class1.len() >= self.min_samples;
        let t_arm = t.abs() >= self.t_threshold && mean_gap.abs() >= self.min_gap;
        let ks_arm = ks >= self.ks_threshold && quantile_gap >= self.min_gap;
        SlotVerdict {
            t,
            ks,
            mean_gap,
            quantile_gap,
            flagged: enough && (t_arm || ks_arm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(vals: &[Cycle]) -> Vec<Cycle> {
        vals.to_vec()
    }

    #[test]
    fn identical_distributions_do_not_flag() {
        let d = Distinguisher::default();
        // Identical constants.
        let a = vec![200u64; 64];
        let v = d.judge(&a, &a);
        assert!(!v.flagged);
        assert_eq!(v.t, 0.0);
        assert_eq!(v.ks, 0.0);
        // Identical non-constant distributions.
        let b: Vec<Cycle> = (0..64).map(|i| 180 + (i % 5) * 7).collect();
        let v = d.judge(&b, &b);
        assert!(!v.flagged, "t={} ks={}", v.t, v.ks);
    }

    #[test]
    fn shifted_mean_flags_via_the_t_arm() {
        let d = Distinguisher::default();
        // A DRAM-fetch-sized mean shift with mild jitter.
        let a: Vec<Cycle> = (0..64).map(|i| 200 + (i % 3)).collect();
        let b: Vec<Cycle> = (0..64).map(|i| 320 + (i % 3)).collect();
        let v = d.judge(&a, &b);
        assert!(v.flagged);
        assert!(v.t.abs() >= d.t_threshold, "t = {}", v.t);
        assert!(v.mean_gap > 100.0);
        // Two distinct constants: t degenerates to ±∞ but still flags.
        let v = d.judge(&samples(&[200; 32]), &samples(&[320; 32]));
        assert!(v.flagged);
        assert!(v.t.is_infinite());
    }

    #[test]
    fn shifted_variance_flags_via_the_ks_arm() {
        let d = Distinguisher::default();
        // Equal means (250), very different shapes: constant vs bimodal
        // 200/300 — the t arm is blind to this, KS is not.
        let a = vec![250u64; 64];
        let b: Vec<Cycle> = (0..64)
            .map(|i| if i % 2 == 0 { 200 } else { 300 })
            .collect();
        let v = d.judge(&a, &b);
        assert!(v.mean_gap.abs() < d.min_gap, "means match by construction");
        assert!(v.t.abs() < d.t_threshold, "t arm blind, t = {}", v.t);
        assert!(v.ks >= d.ks_threshold, "ks = {}", v.ks);
        assert!(v.quantile_gap >= d.min_gap);
        assert!(v.flagged);
    }

    #[test]
    fn sub_cycle_gaps_and_small_samples_do_not_flag() {
        let d = Distinguisher::default();
        // Systematic but tiny gap: statistically "significant" (constant
        // vs constant ⇒ t = ∞) yet below the practical guard.
        let v = d.judge(&samples(&[200; 64]), &samples(&[202; 64]));
        assert!(v.t.is_infinite());
        assert!(!v.flagged, "2-cycle gap is below min_gap");
        // Huge gap but too few samples.
        let v = d.judge(&samples(&[200; 4]), &samples(&[320; 4]));
        assert!(!v.flagged, "under min_samples no verdict");
    }

    #[test]
    fn ks_stat_matches_hand_computed_value() {
        // a = {1,2,3,4}, b = {3,4,5,6}: at x=2 F_a=0.5, F_b=0 ⇒ D=0.5.
        let a = samples(&[1, 2, 3, 4]);
        let b = samples(&[3, 4, 5, 6]);
        let d = ks_stat(&a, &b);
        assert!((d - 0.5).abs() < 1e-12, "D = {d}");
        assert_eq!(ks_stat(&a, &a), 0.0);
    }
}
