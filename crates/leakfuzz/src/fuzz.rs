//! The fuzz loop: generate → run on every scheme → shrink what flags.
//!
//! Determinism contract: with the same master seed and case count the
//! loop visits identical programs and produces identical findings, on any
//! machine — per-case seeds come from a splitmix64 chain over the master
//! seed, so case *i* is reproducible in isolation (`case_seed` is recorded
//! in every finding and corpus entry). The wall-clock budget only decides
//! *when to stop*, never what any case does, so a budget-limited run is a
//! prefix of the unlimited run.

use std::time::{Duration, Instant};

use ivl_simulator::system::SchemeKind;
use ivl_testkit::prop::{shrink_to_minimal, Strategy};
use ivl_testkit::rng::{splitmix64, TestRng};

use crate::gen::ProgramStrategy;
use crate::harness::{run_program, HarnessConfig, ProgramReport};
use crate::program::AccessProgram;

/// Fuzz loop parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed (`IVL_FUZZ_SEED`).
    pub seed: u64,
    /// Hard cap on generated cases (`None` = unlimited).
    pub max_cases: Option<u64>,
    /// Wall-clock budget (`IVL_FUZZ_BUDGET_SECS`; `None` = unlimited).
    pub budget: Option<Duration>,
    /// Schemes every program runs against.
    pub schemes: Vec<SchemeKind>,
    /// Measurement parameters.
    pub harness: HarnessConfig,
    /// Shrink candidate-evaluation cap per finding.
    pub shrink_steps: u32,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0x1EAC_F055,
            max_cases: None,
            budget: Some(Duration::from_secs(60)),
            // Every scheme with an isolation story, plus the Baseline it
            // is measured against. Insecure is excluded: it has no
            // metadata, so there is nothing to leak or protect.
            schemes: SchemeKind::ALL
                .into_iter()
                .filter(|k| *k != SchemeKind::Insecure)
                .collect(),
            harness: HarnessConfig::default(),
            shrink_steps: 512,
        }
    }
}

/// One confirmed, shrunk leak.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Scheme the program distinguishes secrets on.
    pub scheme: SchemeKind,
    /// Zero-based fuzz case index that found it.
    pub case_index: u64,
    /// The per-case seed (reproduces the original program alone).
    pub case_seed: u64,
    /// The shrunk program (still flagging).
    pub program: AccessProgram,
    /// Report of the shrunk program on `scheme`.
    pub report: ProgramReport,
    /// Shrink candidate evaluations spent.
    pub shrink_steps: u32,
}

/// Fuzz run summary.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Cases generated and executed.
    pub cases_run: u64,
    /// Deduplicated findings, in discovery order.
    pub findings: Vec<Finding>,
    /// Whether the wall-clock budget (not the case cap) ended the run.
    pub stopped_by_budget: bool,
}

impl FuzzOutcome {
    /// Findings on schemes whose isolation story says they must be clean.
    pub fn protected_findings(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.scheme.is_protected())
            .collect()
    }
}

/// Runs the fuzz loop. `on_finding` fires once per deduplicated finding,
/// after shrinking (the binary uses it for progress output and trace
/// dumps).
pub fn fuzz_with<F>(cfg: &FuzzConfig, mut on_finding: F) -> FuzzOutcome
where
    F: FnMut(&Finding),
{
    let strategy = ProgramStrategy::new();
    let start = Instant::now();
    let mut outcome = FuzzOutcome::default();
    let mut seen: Vec<(SchemeKind, String)> = Vec::new();
    let mut chain = cfg.seed;

    for case_index in 0.. {
        if cfg.max_cases.is_some_and(|cap| case_index >= cap) {
            break;
        }
        if cfg.budget.is_some_and(|b| start.elapsed() >= b) {
            outcome.stopped_by_budget = true;
            break;
        }
        let (case_seed, next) = splitmix64(chain);
        chain = next;
        let mut rng = TestRng::seed_from(case_seed);
        let program = strategy.generate(&mut rng);
        outcome.cases_run = case_index + 1;

        for &scheme in &cfg.schemes {
            let report = run_program(scheme, &program, &cfg.harness);
            if !report.flagged {
                continue;
            }
            let (minimal, shrink_steps) = shrink_to_minimal(
                &strategy,
                program.clone(),
                |p| run_program(scheme, p, &cfg.harness).flagged,
                cfg.shrink_steps,
            );
            let key = (scheme, {
                let mut doc = ivl_testkit::kv::KvDoc::new();
                minimal.write_kv("p", &mut doc);
                doc.to_toml_string()
            });
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let finding = Finding {
                scheme,
                case_index,
                case_seed,
                report: run_program(scheme, &minimal, &cfg.harness),
                program: minimal,
                shrink_steps,
            };
            on_finding(&finding);
            outcome.findings.push(finding);
        }
    }
    outcome
}

/// [`fuzz_with`] without a finding callback.
pub fn fuzz(cfg: &FuzzConfig) -> FuzzOutcome {
    fuzz_with(cfg, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(cases: u64) -> FuzzConfig {
        FuzzConfig {
            seed: 0xF00D,
            max_cases: Some(cases),
            budget: None,
            schemes: vec![SchemeKind::Baseline, SchemeKind::IvPro],
            harness: HarnessConfig {
                rounds_per_class: 24,
                ..HarnessConfig::default()
            },
            shrink_steps: 256,
        }
    }

    #[test]
    fn fuzzer_rediscovers_the_baseline_leak_quickly() {
        let outcome = fuzz(&quick_cfg(6));
        let baseline: Vec<_> = outcome
            .findings
            .iter()
            .filter(|f| f.scheme == SchemeKind::Baseline)
            .collect();
        assert!(
            !baseline.is_empty(),
            "six link-biased cases must rediscover the Baseline channel"
        );
        // Shrunk findings still flag and are small.
        for f in baseline {
            assert!(f.report.flagged);
            assert!(
                f.program.prep.len() + f.program.victim.len() + f.program.probes.len() <= 8,
                "shrinking should leave a small program, got {:?}",
                f.program
            );
        }
        assert!(
            outcome.protected_findings().is_empty(),
            "IvLeague-Pro must stay clean: {:?}",
            outcome.protected_findings()
        );
    }

    #[test]
    fn same_seed_and_case_count_reproduce_identical_findings() {
        let a = fuzz(&quick_cfg(4));
        let b = fuzz(&quick_cfg(4));
        assert_eq!(a.cases_run, b.cases_run);
        assert_eq!(a.findings.len(), b.findings.len());
        for (x, y) in a.findings.iter().zip(b.findings.iter()) {
            assert_eq!(x.scheme, y.scheme);
            assert_eq!(x.case_index, y.case_index);
            assert_eq!(x.case_seed, y.case_seed);
            assert_eq!(x.program, y.program);
        }
    }

    #[test]
    fn different_seeds_explore_different_programs() {
        let a = fuzz(&quick_cfg(2));
        let mut cfg = quick_cfg(2);
        cfg.seed ^= 0xDEAD_BEEF;
        let b = fuzz(&cfg);
        let programs = |o: &FuzzOutcome| o.findings.iter().map(|f| f.case_seed).collect::<Vec<_>>();
        // Case seeds derive from the master seed, so the streams differ
        // even when both runs happen to find something.
        if !a.findings.is_empty() && !b.findings.is_empty() {
            assert_ne!(programs(&a), programs(&b));
        }
    }

    #[test]
    fn case_cap_bounds_the_run() {
        let outcome = fuzz(&quick_cfg(3));
        assert_eq!(outcome.cases_run, 3);
        assert!(!outcome.stopped_by_budget);
    }
}
