//! `leakfuzz` — leak-search fuzzing and corpus replay from the shell.
//!
//! ```text
//! leakfuzz fuzz   [--seed N] [--budget-secs N] [--max-cases N] [--out DIR]
//! leakfuzz replay [--corpus DIR]
//! leakfuzz show FILE
//! leakfuzz seed-corpus [--corpus DIR]
//! ```
//!
//! Environment: `IVL_FUZZ_SEED` and `IVL_FUZZ_BUDGET_SECS` set the `fuzz`
//! defaults (flags win). A budget of `0` means unlimited (pair it with
//! `--max-cases`).
//!
//! Exit codes: `fuzz` exits 2 if any *protected* scheme flagged (an
//! isolation regression) and 0 otherwise — Baseline findings are the
//! expected, healthy outcome. `replay` exits 1 on any corpus violation.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ivl_leakfuzz::corpus::{self, CorpusEntry};
use ivl_leakfuzz::fuzz::{fuzz_with, Finding, FuzzConfig};
use ivl_leakfuzz::harness::{run_program, run_program_with_obs, HarnessConfig};
use ivl_sim_core::obs::timeline::write_timeline_jsonl;
use ivl_sim_core::obs::{write_trace_jsonl, Obs, Profiler, Timeline, TraceFilter, Tracer};
use ivl_simulator::system::SchemeKind;
use ivl_simulator::{run_mix, run_mix_par, EngineKind, RunConfig};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

fn parse_u64(args: &[String], flag: &str, env: Option<&str>) -> Result<Option<u64>, String> {
    if let Some(raw) = arg_value(args, flag) {
        return raw
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag} wants an integer, got `{raw}`"));
    }
    Ok(env.and_then(env_u64))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: leakfuzz fuzz [--seed N] [--budget-secs N] [--max-cases N] [--out DIR]\n\
         \x20      leakfuzz replay [--corpus DIR]\n\
         \x20      leakfuzz show FILE\n\
         \x20      leakfuzz seed-corpus [--corpus DIR]"
    );
    ExitCode::FAILURE
}

/// Re-runs a finding's program with tracing and the windowed timeline live
/// and dumps both — the forensic artifacts the nightly job uploads next to
/// the `.kv`. The timeline lands beside the trace with a `.timeline.jsonl`
/// suffix, turning the raw counterexample into a metrics-over-time
/// narrative (DRAM, LLC, walk-leg series around the probe window).
fn dump_trace(finding: &Finding, cfg: &HarnessConfig, path: &Path) -> std::io::Result<()> {
    let obs = Obs {
        tracer: Tracer::bounded(1 << 20, TraceFilter::default()),
        profiler: Profiler::disabled(),
        // A fine-grained window: shrunk programs run for few cycles, so the
        // default 10k-cycle window would flatten the whole run into one cell.
        timeline: Timeline::bounded(256, 1 << 14),
    };
    run_program_with_obs(finding.scheme, &finding.program, cfg, &obs);
    write_trace_jsonl(&obs.tracer.sorted_records(), path)?;
    let tl_path = match path.to_str() {
        Some(p) => PathBuf::from(p.replace(".trace.jsonl", ".timeline.jsonl")),
        None => path.with_extension("timeline.jsonl"),
    };
    write_timeline_jsonl(&obs.timeline.snapshot(), &tl_path)
}

fn cmd_fuzz(args: &[String]) -> Result<ExitCode, String> {
    let seed = parse_u64(args, "--seed", Some("IVL_FUZZ_SEED"))?;
    let budget = parse_u64(args, "--budget-secs", Some("IVL_FUZZ_BUDGET_SECS"))?;
    let max_cases = parse_u64(args, "--max-cases", None)?;
    let out_dir =
        PathBuf::from(arg_value(args, "--out").unwrap_or_else(|| "target/leakfuzz".to_string()));
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("{}: {e}", out_dir.display()))?;

    let mut cfg = FuzzConfig::default();
    if let Some(s) = seed {
        cfg.seed = s;
    }
    cfg.budget = match budget {
        Some(0) => None,
        Some(secs) => Some(Duration::from_secs(secs)),
        None => cfg.budget,
    };
    cfg.max_cases = max_cases;

    println!(
        "leakfuzz: seed={:#x} budget={} max-cases={} schemes={}",
        cfg.seed,
        cfg.budget
            .map_or("unlimited".to_string(), |b| format!("{}s", b.as_secs())),
        cfg.max_cases
            .map_or("unlimited".to_string(), |c| c.to_string()),
        cfg.schemes
            .iter()
            .map(|k| k.label())
            .collect::<Vec<_>>()
            .join(",")
    );

    let start = Instant::now();
    let harness = cfg.harness;
    let out = out_dir.clone();
    let mut dumped = 0usize;
    let outcome = fuzz_with(&cfg, |finding| {
        println!(
            "leak: scheme={} case={} case-seed={:#x} |t|={:.1} gap={:.1}cy \
             ops={} (shrunk, {} step(s))",
            finding.scheme.label(),
            finding.case_index,
            finding.case_seed,
            finding.report.max_abs_t(),
            finding.report.max_mean_gap(),
            finding.program.prep.len() + finding.program.victim.len(),
            finding.shrink_steps,
        );
        let stem = format!(
            "finding-{dumped:02}-{}",
            finding.scheme.label().to_lowercase()
        );
        let entry = CorpusEntry {
            name: stem.clone(),
            note: format!(
                "fuzzer-found on {} (case {}, case-seed {:#x})",
                finding.scheme.label(),
                finding.case_index,
                finding.case_seed
            ),
            seed: finding.case_seed,
            rounds_per_class: harness.rounds_per_class,
            program: finding.program.clone(),
            leaky: vec![finding.scheme],
            clean: Vec::new(),
        };
        if let Err(e) = entry.save(&out.join(format!("{stem}.kv"))) {
            eprintln!("warning: could not save {stem}.kv: {e}");
        }
        if let Err(e) = dump_trace(finding, &harness, &out.join(format!("{stem}.trace.jsonl"))) {
            eprintln!("warning: could not dump {stem} trace: {e}");
        }
        dumped += 1;
    });

    let protected = outcome.protected_findings();
    println!(
        "leakfuzz: {} case(s) in {:.1}s{}; {} finding(s) ({} on protected schemes) -> {}",
        outcome.cases_run,
        start.elapsed().as_secs_f64(),
        if outcome.stopped_by_budget {
            " (budget)"
        } else {
            ""
        },
        outcome.findings.len(),
        protected.len(),
        out_dir.display(),
    );
    if !protected.is_empty() {
        for f in &protected {
            eprintln!(
                "ISOLATION REGRESSION: {} distinguishes secrets (|t|={:.1}, gap={:.1}cy)",
                f.scheme.label(),
                f.report.max_abs_t(),
                f.report.max_mean_gap()
            );
        }
        return Ok(ExitCode::from(2));
    }
    if outcome
        .findings
        .iter()
        .all(|f| f.scheme != SchemeKind::Baseline)
    {
        // Not fatal (a tiny --max-cases run may legitimately find
        // nothing), but worth shouting about: the Baseline channel is the
        // fuzzer's built-in positive control.
        eprintln!("warning: no Baseline finding — the distinguisher may have lost sensitivity");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_replay(args: &[String]) -> Result<ExitCode, String> {
    let dir = arg_value(args, "--corpus")
        .map(PathBuf::from)
        .unwrap_or_else(corpus::default_corpus_dir);
    let entries = corpus::load_dir(&dir)?;
    if entries.is_empty() {
        return Err(format!("no .kv entries under {}", dir.display()));
    }
    let cfg = HarnessConfig::default();
    let mut violations = Vec::new();
    for (path, entry) in &entries {
        let bad = entry.replay(&cfg);
        if bad.is_empty() {
            println!(
                "replay {}: ok ({} leaky, {} clean)",
                entry.name,
                entry.leaky.len(),
                entry.clean.len()
            );
        } else {
            for v in &bad {
                eprintln!("replay {}: FAIL: {v}", path.display());
            }
            violations.extend(bad);
        }
    }
    if !violations.is_empty() {
        eprintln!("replay: {} violation(s)", violations.len());
        return Ok(ExitCode::FAILURE);
    }
    println!("replay: {} corpus entr(ies) hold", entries.len());

    // With `IVL_PAR_SYSTEM=1` the corpus verdicts above already ran in
    // whatever mode the figure pipeline uses; on top of that, gate on the
    // ParSystem engine being bit-identical to serial for the schemes the
    // corpus exercises, so a threading bug cannot reclassify a leak.
    if let EngineKind::Par { workers } = EngineKind::from_env() {
        println!("replay: ParSystem drift gate ({workers} worker(s))");
        let mix = ivl_workloads::mixes::mix_by_name("S-1").expect("S-1 mix exists");
        let run = RunConfig::smoke_test();
        for scheme in [SchemeKind::Baseline, SchemeKind::IvPro] {
            let serial = format!("{:?}", run_mix(mix, scheme, &run));
            let par = format!("{:?}", run_mix_par(mix, scheme, &run, workers));
            if serial != par {
                eprintln!(
                    "replay: FAIL: ParSystem drifted from serial on S-1/{} \
                     at {workers} worker(s)",
                    scheme.label()
                );
                return Ok(ExitCode::FAILURE);
            }
            println!("replay: S-1/{} serial == par", scheme.label());
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_show(args: &[String]) -> Result<ExitCode, String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("show wants a corpus file path")?;
    let entry = CorpusEntry::load(Path::new(path))?;
    print!("{}", entry.to_kv_string());
    println!();
    let cfg = HarnessConfig {
        rounds_per_class: entry.rounds_per_class,
        ..HarnessConfig::default()
    };
    for &kind in entry.leaky.iter().chain(entry.clean.iter()) {
        let report = run_program(kind, &entry.program, &cfg);
        println!(
            "{:16} flagged={:5} max|t|={:8.2} max-gap={:7.1}cy",
            kind.label(),
            report.flagged,
            report.max_abs_t(),
            report.max_mean_gap()
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_seed_corpus(args: &[String]) -> Result<ExitCode, String> {
    let dir = arg_value(args, "--corpus")
        .map(PathBuf::from)
        .unwrap_or_else(corpus::default_corpus_dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let entry = corpus::metaleak_entry();
    let path = dir.join(format!("{}.kv", entry.name));
    entry
        .save(&path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    println!("seeded {}", path.display());
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("show") => cmd_show(&args[1..]),
        Some("seed-corpus") => cmd_seed_corpus(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("leakfuzz: {msg}");
            ExitCode::FAILURE
        }
    }
}
