//! Executes an [`AccessProgram`] against a scheme and judges the result.
//!
//! The harness realizes the fixed-vs-fixed measurement the distinguisher
//! expects: the program's round template runs `2 × rounds_per_class`
//! times with the victim's secret bit alternating (even rounds: clear,
//! odd rounds: set), producing one latency sample per probe slot per
//! round. Per slot, the two class sample sets go to the
//! [`Distinguisher`]; the program *flags* on a scheme if any slot's
//! distributions are distinguishable.
//!
//! Two normalization details make the verdict about the **metadata**
//! channel (the channel IvLeague isolates) and nothing else:
//!
//! * [`SchemeDriver::reset_dram`] runs between the victim phase and the
//!   probe phase of every round, so DRAM bank/row-buffer residue — a
//!   real but orthogonal shared-channel, outside the paper's threat
//!   model — cannot reach the probes.
//! * A few unsampled warm-up rounds run first, so one-time cold-start
//!   effects (first-touch metadata misses, tree construction) do not
//!   land asymmetrically in the even-round class.

use ivl_sim_core::config::SystemConfig;
use ivl_sim_core::obs::Obs;
use ivl_simulator::system::SchemeKind;

use ivl_attack::driver::SchemeDriver;

use crate::distinguisher::{Distinguisher, SlotVerdict};
use crate::program::{AccessProgram, PrepOp, ATTACKER_DOMAIN, VICTIM_DOMAIN};

/// Harness parameters.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Sampled rounds per secret class (total rounds = twice this).
    pub rounds_per_class: usize,
    /// Unsampled warm-up rounds before measurement begins.
    pub warmup_rounds: usize,
    /// Distinguisher thresholds.
    pub distinguisher: Distinguisher,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            rounds_per_class: 48,
            warmup_rounds: 4,
            distinguisher: Distinguisher::default(),
        }
    }
}

/// Verdict of one program on one scheme.
#[derive(Debug, Clone)]
pub struct ProgramReport {
    /// Per-probe-slot verdicts, in program probe order.
    pub slots: Vec<SlotVerdict>,
    /// Whether any slot distinguishes the secret classes.
    pub flagged: bool,
}

impl ProgramReport {
    /// The strongest |t| across slots (0 for a probe-less program).
    pub fn max_abs_t(&self) -> f64 {
        self.slots.iter().map(|s| s.t.abs()).fold(0.0, f64::max)
    }

    /// The largest absolute mean gap across slots, cycles.
    pub fn max_mean_gap(&self) -> f64 {
        self.slots
            .iter()
            .map(|s| s.mean_gap.abs())
            .fold(0.0, f64::max)
    }
}

fn run_round(drv: &mut SchemeDriver, prog: &AccessProgram, secret: bool) {
    for op in &prog.prep {
        match *op {
            PrepOp::EvictVictimMeta(r) => drv.evict_page_meta(r.victim_page()),
            PrepOp::EvictAttackerMeta(r) => drv.evict_page_meta(r.attacker_page()),
            PrepOp::Touch { page, write } => {
                drv.access_block(page.attacker_page().block(0), ATTACKER_DOMAIN, write, 50);
            }
        }
    }
    for op in &prog.victim {
        if op.when.applies(secret) {
            drv.access_block(op.page.victim_page().block(0), VICTIM_DOMAIN, op.write, 50);
        }
    }
    drv.reset_dram();
}

/// Runs `prog` on `kind` with observability disabled.
pub fn run_program(kind: SchemeKind, prog: &AccessProgram, cfg: &HarnessConfig) -> ProgramReport {
    run_program_with_obs(kind, prog, cfg, &Obs::disabled())
}

/// Runs `prog` on `kind`, emitting scheme events and per-probe
/// [`Probe`](ivl_sim_core::obs::EventKind::Probe) records (tagged with the
/// measured round number) through `obs`.
pub fn run_program_with_obs(
    kind: SchemeKind,
    prog: &AccessProgram,
    cfg: &HarnessConfig,
    obs: &Obs,
) -> ProgramReport {
    let sys = SystemConfig::default();
    let mut drv = SchemeDriver::with_obs(kind, &sys, obs);

    for page in prog.victim_pages() {
        drv.page_alloc(page, VICTIM_DOMAIN, 100);
        drv.access_block(page.block(0), VICTIM_DOMAIN, true, 100);
    }
    for page in prog.attacker_pages() {
        drv.page_alloc(page, ATTACKER_DOMAIN, 100);
        drv.access_block(page.block(0), ATTACKER_DOMAIN, true, 100);
    }

    for round in 0..cfg.warmup_rounds {
        run_round(&mut drv, prog, round % 2 == 1);
        for r in &prog.probes {
            drv.probe(r.attacker_page(), ATTACKER_DOMAIN, 0, false);
        }
    }

    // class_samples[slot][class]
    let mut class_samples = vec![[Vec::new(), Vec::new()]; prog.probes.len()];
    for round in 0..2 * cfg.rounds_per_class {
        let secret = round % 2 == 1;
        run_round(&mut drv, prog, secret);
        for (slot, r) in prog.probes.iter().enumerate() {
            let lat = drv.probe(r.attacker_page(), ATTACKER_DOMAIN, round as u32, true);
            class_samples[slot][secret as usize].push(lat);
        }
    }

    let slots: Vec<SlotVerdict> = class_samples
        .iter()
        .map(|[c0, c1]| cfg.distinguisher.judge(c0, c1))
        .collect();
    let flagged = slots.iter().any(|s| s.flagged);
    ProgramReport { slots, flagged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::metaleak_program;

    #[test]
    fn metaleak_flags_baseline_and_not_ivpro() {
        let cfg = HarnessConfig::default();
        let prog = metaleak_program();
        let base = run_program(SchemeKind::Baseline, &prog, &cfg);
        assert!(
            base.flagged,
            "Baseline must leak: t = {}, gap = {}",
            base.max_abs_t(),
            base.max_mean_gap()
        );
        // The leaking slot is the mul probe (slot 1), and the set-bit
        // class is the *fast* one (shared node pre-primed).
        assert!(base.slots[1].flagged);
        assert!(base.slots[1].mean_gap < 0.0, "secret-set class is faster");

        let pro = run_program(SchemeKind::IvPro, &prog, &cfg);
        assert!(
            !pro.flagged,
            "IvLeague-Pro must not leak: t = {}, gap = {}",
            pro.max_abs_t(),
            pro.max_mean_gap()
        );
    }

    #[test]
    fn insecure_scheme_shows_no_metadata_channel() {
        // No metadata at all plus DRAM normalization ⇒ the probe sees
        // identical latencies in both classes.
        let report = run_program(
            SchemeKind::Insecure,
            &metaleak_program(),
            &HarnessConfig::default(),
        );
        assert!(!report.flagged);
        for s in &report.slots {
            assert_eq!(s.t, 0.0);
            assert_eq!(s.ks, 0.0);
        }
    }

    #[test]
    fn harness_is_deterministic() {
        let cfg = HarnessConfig::default();
        let prog = metaleak_program();
        let a = run_program(SchemeKind::Baseline, &prog, &cfg);
        let b = run_program(SchemeKind::Baseline, &prog, &cfg);
        assert_eq!(a.flagged, b.flagged);
        for (x, y) in a.slots.iter().zip(b.slots.iter()) {
            assert_eq!(x.t, y.t);
            assert_eq!(x.ks, y.ks);
            assert_eq!(x.mean_gap, y.mean_gap);
        }
    }

    #[test]
    fn probe_less_programs_never_flag() {
        let prog = AccessProgram::default();
        let report = run_program(SchemeKind::Baseline, &prog, &HarnessConfig::default());
        assert!(!report.flagged);
        assert!(report.slots.is_empty());
        assert_eq!(report.max_abs_t(), 0.0);
    }
}
