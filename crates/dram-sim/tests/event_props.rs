//! Property tests for the event-driven DRAM substrate: completion times
//! and idle-window accounting are a pure function of the access stream —
//! invariant to where the runner places `advance_to` drains — and both
//! match an independent slab-shadow model of the pre-event timing math.

use ivl_dram::DramModel;
use ivl_sim_core::addr::{BlockAddr, BLOCK_BYTES};
use ivl_sim_core::config::{DramConfig, SystemConfig};
use ivl_sim_core::rng::Xoshiro256;
use ivl_sim_core::Cycle;
use ivl_testkit::prelude::*;

/// Independent replica of the timing slabs using the original lazy
/// `now.max(slab)` math, plus the touched-bank rule the idle-skip counter
/// is defined by: a request to a previously-touched bank whose array freed
/// at `busy_until` skips `now - busy_until` idle cycles.
struct SlabShadow {
    cfg: DramConfig,
    banks_per_channel: usize,
    blocks_per_row: u64,
    open_row: Vec<u64>,
    busy_until: Vec<Cycle>,
    bus_free: Vec<Cycle>,
    touched: Vec<bool>,
    idle_skipped: u64,
}

impl SlabShadow {
    fn new(cfg: &DramConfig) -> Self {
        let banks_per_channel = cfg.ranks_per_channel * cfg.banks_per_rank;
        let total = cfg.channels * banks_per_channel;
        SlabShadow {
            cfg: *cfg,
            banks_per_channel,
            blocks_per_row: (cfg.row_bytes / BLOCK_BYTES) as u64,
            open_row: vec![u64::MAX; total],
            busy_until: vec![0; total],
            bus_free: vec![0; cfg.channels],
            touched: vec![false; total],
            idle_skipped: 0,
        }
    }

    fn access(&mut self, now: Cycle, block: BlockAddr) -> Cycle {
        let idx = block.index();
        let channel = (idx % self.cfg.channels as u64) as usize;
        let row_global = idx / self.cfg.channels as u64 / self.blocks_per_row;
        let bank = (row_global % self.banks_per_channel as u64) as usize;
        let row = row_global / self.banks_per_channel as u64;
        let bi = channel * self.banks_per_channel + bank;

        if self.touched[bi] {
            self.idle_skipped += now.saturating_sub(self.busy_until[bi]);
        }
        self.touched[bi] = true;

        let start = now.max(self.busy_until[bi]);
        let array = if self.open_row[bi] == row {
            self.cfg.t_cas
        } else if self.open_row[bi] != u64::MAX {
            self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas
        } else {
            self.cfg.t_rcd + self.cfg.t_cas
        };
        let data_ready = start + array;
        let done = data_ready.max(self.bus_free[channel]) + self.cfg.t_burst;
        self.open_row[bi] = row;
        self.busy_until[bi] = data_ready;
        self.bus_free[channel] = done;
        done
    }
}

props! {
    #![cases(48)]

    #[test]
    fn timing_and_idle_skip_match_shadow_under_any_drain_placement(
        seed in any::<u64>(),
        accesses in 20usize..200,
    ) {
        let cfg = SystemConfig::default().dram;
        let mut rng = Xoshiro256::seed_from(seed);
        let mut dram = DramModel::new(&cfg);
        let mut shadow = SlabShadow::new(&cfg);
        let mut now: Cycle = 0;
        for _ in 0..accesses {
            // Mixed cadence: bursts at one cycle, short gaps, long idle
            // windows — plus randomly placed runner drains.
            now += match rng.index(4) {
                0 => 0,
                1 => 1 + rng.next_u64() % 50,
                2 => 1 + rng.next_u64() % 2_000,
                _ => 10_000 + rng.next_u64() % 500_000,
            };
            if rng.chance(0.4) {
                dram.advance_to(now + rng.next_u64() % 1_000);
            }
            // Small block universe so banks and rows collide often.
            let block = BlockAddr::new(rng.next_u64() % 96);
            let is_write = rng.chance(0.3);
            let done = dram.access(now, block, is_write);
            prop_assert_eq!(done, shadow.access(now, block));
        }
        // Idle-skip accounting must match the slab definition exactly.
        prop_assert_eq!(dram.stats().idle_skipped_cycles.get(), shadow.idle_skipped);
    }

    #[test]
    fn batched_legs_equal_serial_legs(seed in any::<u64>(), rounds in 5usize..40) {
        let cfg = SystemConfig::default().dram;
        let mut rng = Xoshiro256::seed_from(seed);
        let mut batched = DramModel::new(&cfg);
        let mut serial = DramModel::new(&cfg);
        let mut now: Cycle = 0;
        let mut done_b = Vec::new();
        for _ in 0..rounds {
            now += rng.next_u64() % 30_000;
            let legs: Vec<(BlockAddr, bool)> = (0..1 + rng.index(6))
                .map(|_| (BlockAddr::new(rng.next_u64() % 64), rng.chance(0.4)))
                .collect();
            batched.access_many(now, &legs, &mut done_b);
            for (i, &(blk, w)) in legs.iter().enumerate() {
                prop_assert_eq!(done_b[i], serial.access(now, blk, w));
            }
        }
        prop_assert_eq!(
            batched.stats().idle_skipped_cycles.get(),
            serial.stats().idle_skipped_cycles.get()
        );
        prop_assert_eq!(
            batched.stats().events_stale.get(),
            serial.stats().events_stale.get()
        );
        prop_assert_eq!(batched.pending_events(), serial.pending_events());
    }
}
