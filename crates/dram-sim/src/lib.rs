//! DRAM timing model: channels, ranks, banks, open-row policy, FR-FCFS-style
//! row-hit preference.
//!
//! The model answers one question for the system simulator: *when does a
//! memory request to block `B`, issued at cycle `t`, complete?* It tracks
//! per-bank open rows and busy windows and a per-channel data bus, charging
//! the Table I timing parameters (tRCD / tCAS / tRP / burst). Requests are
//! served in arrival order per bank, but row-buffer hits skip the
//! activate/precharge phases exactly as an FR-FCFS scheduler's row-hit-first
//! policy would produce for the steady state the trace-driven engine models.
//!
//! # State layout
//!
//! Bank state lives in dense, index-addressed tables rather than nested
//! per-channel vectors (DESIGN.md §6): one flat slab per field, indexed by
//! `channel * banks_per_channel + bank`. The hot fields the per-access path
//! reads and writes (`open_row`, `busy_until`) are split from the cold
//! per-bank statistics (structure-of-arrays), so an access touches two
//! small hot arrays instead of pulling whole bank structs through the
//! cache. Address decode uses shift/mask arithmetic whenever the geometry
//! is power-of-two (the default and every Table I configuration), falling
//! back to div/mod otherwise — a differential test pins both paths to the
//! arithmetic definition.
//!
//! # Event-driven state transitions
//!
//! Every access schedules its deferred state transitions — a bank-ready
//! when the bank's array frees (`busy_until`), and a bus-drain (reads) or
//! posted-writeback retire (writes) when the burst leaves the channel's
//! data bus (`bus_free`) — on an internal *slot calendar* (DESIGN.md
//! §12): one slot per bank and one per channel, exploiting the model's
//! single-outstanding-transition invariant (a same-resource follow-up
//! strictly raises the slab horizon, so at most one transition per
//! resource is ever live). Scheduling is a store; a follow-up that lands
//! before the old transition fires *supersedes* it in place (counted in
//! `events_stale`); and the only ordered question the runner ever asks —
//! "is anything due?" — is answered by a cached lower bound on the
//! earliest live slot, so the per-scheduling-point
//! [`DramModel::advance_to`] is a two-word compare in the common case.
//! An idle window — the span between a bank's last array completion and
//! its next request — is crossed in one jump and measured in
//! `idle_skipped_cycles`. (A first cut kept these events in a binary
//! heap; four heap operations per access took `dram_access` from 7.7 ns
//! to 104 ns and regressed the figure campaign 1.7x, which is what forced
//! the dense-slot representation.) The timing slabs stay authoritative,
//! which is what keeps completion times bit-identical to the pre-event
//! model.
//!
//! # Examples
//!
//! ```
//! use ivl_dram::DramModel;
//! use ivl_sim_core::{addr::BlockAddr, config::SystemConfig};
//!
//! let cfg = SystemConfig::default().dram;
//! let mut dram = DramModel::new(&cfg);
//! let done = dram.access(0, BlockAddr::new(0), false);
//! // Block 2 sits on the same channel and row as block 0 → row-buffer hit.
//! let done2 = dram.access(done, BlockAddr::new(2), false);
//! assert!(done2 - done < done, "row hit is cheaper than a cold access");
//! ```

use ivl_sim_core::addr::{BlockAddr, BLOCK_BYTES};
use ivl_sim_core::config::DramConfig;
use ivl_sim_core::obs::registry::StatsRegistry;
use ivl_sim_core::obs::trace::{EventKind, RowResult};
use ivl_sim_core::obs::Obs;
use ivl_sim_core::stats::Counter;
use ivl_sim_core::Cycle;

/// Decoded DRAM coordinates of a block address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramCoord {
    /// Channel index.
    pub channel: usize,
    /// Bank index within the channel (rank-flattened).
    pub bank: usize,
    /// Row within the bank.
    pub row: u64,
}

/// Sentinel in the `open_row` table for "no row open" (all banks precharge
/// far below 2^64 rows: a 32 GiB module has fewer than 2^26).
const NO_OPEN_ROW: u64 = u64::MAX;

/// Sentinel in the deferred-transition slot tables for "no transition
/// pending on this resource".
const EVENT_NONE: Cycle = Cycle::MAX;

/// Tag bit marking a *fired* bank slot: the transition retired (via an
/// [`DramModel::advance_to`] sweep) and the low bits now carry the cycle
/// the bank's array went idle, awaiting the next request to measure the
/// window. Simulated cycles stay far below 2^63, so the bit is free.
const FIRED_BIT: Cycle = 1 << 63;

/// Row-buffer outcome of a single access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The target row was already open.
    Hit,
    /// The bank was idle (no open row): activate only.
    Empty,
    /// A different row was open: precharge + activate.
    Conflict,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramStats {
    /// Total read requests.
    pub reads: Counter,
    /// Total write requests.
    pub writes: Counter,
    /// Row-buffer hits.
    pub row_hits: Counter,
    /// Row-buffer conflicts.
    pub row_conflicts: Counter,
    /// Bank-idle cycles crossed in one jump: the sum over requests of the
    /// span between the target bank's last array completion (its fresh
    /// bank-ready event) and the request's issue cycle. A per-cycle
    /// stepper would have walked every one of these.
    pub idle_skipped_cycles: Counter,
    /// Deferred transitions superseded before they fired: a follow-up
    /// request re-busied the bank / re-occupied the bus while its
    /// predecessor's transition was still pending in the slot calendar.
    pub events_stale: Counter,
}

/// Precomputed address-decode constants: shift/mask when every geometry
/// factor is a power of two, div/mod fallback otherwise.
#[derive(Debug, Clone, Copy)]
struct Decode {
    /// All of channels / blocks-per-row / banks-per-channel are powers of
    /// two, so `coord` reduces to shifts and masks.
    pow2: bool,
    ch_mask: u64,
    ch_shift: u32,
    row_shift: u32,
    bank_mask: u64,
    bank_shift: u32,
}

/// The DRAM timing model.
#[derive(Debug, Clone)]
pub struct DramModel {
    cfg: DramConfig,
    banks_per_channel: usize,
    blocks_per_row: u64,
    decode: Decode,
    /// Hot per-bank state, flat-indexed by `channel * banks_per_channel +
    /// bank`: the currently open row ([`NO_OPEN_ROW`] when precharged).
    open_row: Box<[u64]>,
    /// Hot per-bank state: cycle the bank's array becomes free.
    busy_until: Box<[Cycle]>,
    /// Per-channel data-bus availability.
    bus_free: Box<[Cycle]>,
    /// Slot calendar, bank half: the deferred bank-ready transition per
    /// bank ([`EVENT_NONE`] = none). While pending a slot always equals
    /// the bank's `busy_until` — both are written together — so a
    /// same-bank follow-up supersedes it in place instead of queueing
    /// behind it; once fired by a sweep the slot carries
    /// [`FIRED_BIT`]` | `*idle-since cycle* until the next request to the
    /// bank consumes the measured window. One word per bank holds the
    /// whole lifecycle, so the access path touches a single cache line
    /// where a heap would have paid two sift passes.
    bank_event: Box<[Cycle]>,
    /// Slot calendar, channel half: the pending bus-drain (or posted
    /// writeback retire) transition per channel ([`EVENT_NONE`] = none;
    /// no fired state — a drained bus opens no measured window).
    bus_event: Box<[Cycle]>,
    /// Pending (unfired, unsuperseded) slots across both halves — the
    /// model's contribution to the runner's `cal.occupancy` gauge.
    pending: usize,
    /// Lower bound on the earliest pending transition ([`EVENT_NONE`]
    /// when none). A supersede can leave it early — the next
    /// [`advance_to`] then sweeps, fires nothing, and re-tightens it —
    /// but never late, so "nothing due" is decided by one compare.
    ///
    /// [`advance_to`]: DramModel::advance_to
    next_expiry: Cycle,
    /// Cold per-bank statistics (same flat indexing as the hot tables).
    bank_row_hits: Box<[u64]>,
    bank_row_conflicts: Box<[u64]>,
    stats: DramStats,
    obs: Obs,
    /// Cached tracer gate: `access` branches on a plain bool instead of
    /// re-querying the tracer handle per request.
    trace_on: bool,
    /// Cached timeline gate, same purpose.
    tl_on: bool,
}

impl DramModel {
    /// Creates a model from a [`DramConfig`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero channels/ranks/banks or a row
    /// smaller than a block.
    pub fn new(cfg: &DramConfig) -> Self {
        assert!(cfg.channels > 0 && cfg.ranks_per_channel > 0 && cfg.banks_per_rank > 0);
        assert!(cfg.row_bytes >= BLOCK_BYTES);
        let banks_per_channel = cfg.ranks_per_channel * cfg.banks_per_rank;
        let blocks_per_row = (cfg.row_bytes / BLOCK_BYTES) as u64;
        let total_banks = cfg.channels * banks_per_channel;
        let pow2 = cfg.channels.is_power_of_two()
            && blocks_per_row.is_power_of_two()
            && banks_per_channel.is_power_of_two();
        DramModel {
            cfg: *cfg,
            banks_per_channel,
            blocks_per_row,
            decode: Decode {
                pow2,
                ch_mask: cfg.channels as u64 - 1,
                ch_shift: cfg.channels.trailing_zeros(),
                row_shift: blocks_per_row.trailing_zeros(),
                bank_mask: banks_per_channel as u64 - 1,
                bank_shift: banks_per_channel.trailing_zeros(),
            },
            open_row: vec![NO_OPEN_ROW; total_banks].into_boxed_slice(),
            busy_until: vec![0; total_banks].into_boxed_slice(),
            bus_free: vec![0; cfg.channels].into_boxed_slice(),
            bank_event: vec![EVENT_NONE; total_banks].into_boxed_slice(),
            bus_event: vec![EVENT_NONE; cfg.channels].into_boxed_slice(),
            pending: 0,
            next_expiry: EVENT_NONE,
            bank_row_hits: vec![0; total_banks].into_boxed_slice(),
            bank_row_conflicts: vec![0; total_banks].into_boxed_slice(),
            stats: DramStats::default(),
            obs: Obs::disabled(),
            trace_on: false,
            tl_on: false,
        }
    }

    /// Attaches an observability handle; the model emits a `DramAccess`
    /// trace event per request while the tracer is enabled, and per-window
    /// `dram.reads`/`dram.writes`/`dram.busy_cycles` counters plus a
    /// `dram.latency` histogram while the timeline is.
    pub fn set_obs(&mut self, obs: Obs) {
        self.trace_on = obs.tracer.enabled();
        self.tl_on = obs.timeline.enabled();
        self.obs = obs;
    }

    /// Maps a block address to its DRAM coordinates (block-interleaved
    /// channels, then row-interleaved banks).
    #[inline]
    pub fn coord(&self, block: BlockAddr) -> DramCoord {
        let idx = block.index();
        let d = self.decode;
        if d.pow2 {
            let channel = (idx & d.ch_mask) as usize;
            let row_global = idx >> d.ch_shift >> d.row_shift;
            DramCoord {
                channel,
                bank: (row_global & d.bank_mask) as usize,
                row: row_global >> d.bank_shift,
            }
        } else {
            let channel = (idx % self.cfg.channels as u64) as usize;
            let per_channel = idx / self.cfg.channels as u64;
            let row_global = per_channel / self.blocks_per_row;
            DramCoord {
                channel,
                bank: (row_global % self.banks_per_channel as u64) as usize,
                row: row_global / self.banks_per_channel as u64,
            }
        }
    }

    /// Fires every deferred transition due at or before `cycle`: a due
    /// bank slot opens the bank's measured idle window (the array is idle
    /// from the slot's timestamp on); a due channel slot just retires.
    /// One dense sweep handles every due slot at once and re-tightens
    /// `next_expiry` to the exact minimum of what remains — superseded
    /// entries never exist here (they are overwritten in place at
    /// schedule time), so everything swept up is fresh by construction.
    #[cold]
    fn fire_due(&mut self, cycle: Cycle) {
        let mut min = EVENT_NONE;
        for slot in self.bank_event.iter_mut() {
            let at = *slot;
            if at >= FIRED_BIT {
                // EVENT_NONE or an already-fired slot awaiting its bank's
                // next request — nothing pending here.
                continue;
            }
            if at <= cycle {
                *slot = FIRED_BIT | at;
                self.pending -= 1;
            } else if at < min {
                min = at;
            }
        }
        for slot in self.bus_event.iter_mut() {
            let at = *slot;
            if at == EVENT_NONE {
                continue;
            }
            if at <= cycle {
                *slot = EVENT_NONE;
                self.pending -= 1;
            } else if at < min {
                min = at;
            }
        }
        self.next_expiry = min;
    }

    /// Advances the model's event clock to `cycle` without issuing a
    /// request: the runner calls this at every scheduling point, so idle
    /// windows are crossed in one jump. The common case — nothing due —
    /// is a single compare against the cached expiry bound.
    #[inline]
    pub fn advance_to(&mut self, cycle: Cycle) {
        if cycle >= self.next_expiry {
            self.fire_due(cycle);
        }
    }

    /// Deferred transitions currently pending (the model's contribution
    /// to the runner's `cal.occupancy` gauge).
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.pending
    }

    /// Timing core of one request: charges the bank/bus state machines,
    /// closes the bank's idle window, and schedules the deferred events
    /// this request creates. Returns `(done, outcome, busy_added,
    /// idle_skipped)`; the caller owns event draining and obs emission.
    #[inline]
    fn leg_timing(
        &mut self,
        now: Cycle,
        c: DramCoord,
        is_write: bool,
    ) -> (Cycle, RowOutcome, Cycle, Cycle) {
        let bi = c.channel * self.banks_per_channel + c.bank;
        if is_write {
            self.stats.writes.inc();
        } else {
            self.stats.reads.inc();
        }

        // This request resolves whatever its bank's slot holds, in one
        // load. The reschedule below always installs a fresh transition,
        // so only the *old* state decides the pending delta and the idle
        // accounting. A measured window can be empty: a request issued
        // behind the bank's horizon never saw the bank idle. The window
        // may have been opened by a runner sweep (slot tagged
        // [`FIRED_BIT`]) or still sit in an unfired due slot — both carry
        // the same timestamp (the bank's old `busy_until`), so the
        // measured span is identical no matter where the runner placed
        // its `advance_to` calls.
        let slot = self.bank_event[bi];
        let mut skipped = 0;
        if slot >= FIRED_BIT {
            // Nothing pending: first touch ([`EVENT_NONE`]) or a fired
            // slot carrying the cycle the bank's array went idle.
            if slot != EVENT_NONE {
                skipped = now.saturating_sub(slot & !FIRED_BIT);
                self.stats.idle_skipped_cycles.add(skipped);
            }
            self.pending += 1;
        } else if slot <= now {
            // Due but never swept: fire the transition here, in place.
            // The reschedule replaces it, so `pending` is unchanged.
            skipped = now - slot;
            self.stats.idle_skipped_cycles.add(skipped);
        } else {
            // Still pending: this request beat the transition to the
            // punch — the reschedule supersedes it in place.
            self.stats.events_stale.inc();
        }
        // The channel's slot resolves the same way, minus idle
        // accounting: a due drain just retires (replaced below, net 0).
        let bus_slot = self.bus_event[c.channel];
        if bus_slot == EVENT_NONE {
            self.pending += 1;
        } else if bus_slot > now {
            self.stats.events_stale.inc();
        }

        // Bank-level serialization only: array accesses in different banks
        // overlap, and the shared data bus is occupied just for the burst.
        let start = now.max(self.busy_until[bi]);

        let open = self.open_row[bi];
        let (outcome, array_latency) = if open == c.row {
            (RowOutcome::Hit, self.cfg.t_cas)
        } else if open != NO_OPEN_ROW {
            (
                RowOutcome::Conflict,
                self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas,
            )
        } else {
            (RowOutcome::Empty, self.cfg.t_rcd + self.cfg.t_cas)
        };
        match outcome {
            RowOutcome::Hit => {
                self.stats.row_hits.inc();
                self.bank_row_hits[bi] = self.bank_row_hits[bi].saturating_add(1);
            }
            RowOutcome::Conflict => {
                self.stats.row_conflicts.inc();
                self.bank_row_conflicts[bi] = self.bank_row_conflicts[bi].saturating_add(1);
            }
            RowOutcome::Empty => {}
        }

        let data_ready = start + array_latency;
        // The burst waits for the channel's data bus, which frees at burst
        // granularity (pipelined with other banks' array accesses).
        let burst_start = data_ready.max(self.bus_free[c.channel]);
        let done = burst_start + self.cfg.t_burst;
        self.open_row[bi] = c.row;
        self.busy_until[bi] = data_ready;
        self.bus_free[c.channel] = done;

        // Reschedule: the array frees at `data_ready`, the bus drains at
        // `done` (a posted write retires there). Both are in the strict
        // future of `now`, so a batch of same-cycle legs never fires its
        // own slots. The pending/stale deltas were settled above against
        // the slots' *old* contents, so these stores are unconditional.
        self.bank_event[bi] = data_ready;
        self.bus_event[c.channel] = done;
        if data_ready < self.next_expiry {
            self.next_expiry = data_ready;
        }

        (done, outcome, data_ready - start, skipped)
    }

    /// Issues one request at cycle `now`; returns its completion cycle.
    pub fn access(&mut self, now: Cycle, block: BlockAddr, is_write: bool) -> Cycle {
        let c = self.coord(block);
        let (done, outcome, busy_added, skipped) = self.leg_timing(now, c, is_write);

        if self.tl_on {
            let tl = &self.obs.timeline;
            tl.count(
                if is_write {
                    "dram.writes"
                } else {
                    "dram.reads"
                },
                now,
                1,
            );
            // Bank occupancy: array-busy cycles this access added.
            tl.count("dram.busy_cycles", now, busy_added);
            tl.observe("dram.latency", now, done - now);
            if skipped > 0 {
                tl.count("dram.idle_skipped_cycles", now, skipped);
            }
        }
        if self.trace_on {
            self.obs.tracer.emit(
                now,
                "dram",
                None,
                None,
                EventKind::DramAccess {
                    channel: c.channel as u8,
                    bank: c.bank as u8,
                    row: match outcome {
                        RowOutcome::Hit => RowResult::Hit,
                        RowOutcome::Empty => RowResult::Empty,
                        RowOutcome::Conflict => RowResult::Conflict,
                    },
                    is_write,
                    latency: done - now,
                },
            );
        }
        done
    }

    /// Issues the independent sibling legs of one integrity walk — all at
    /// the same cycle, in slice order — as a single calendar-mediated
    /// batch: the address-decode pass runs tight over the slice and the
    /// timeline gate is tested once for the whole batch instead of once
    /// per leg. Completion cycles land in `done_out` (cleared first),
    /// leg-for-leg.
    ///
    /// Equivalent, leg for leg, to calling [`access`](Self::access) in the
    /// same order at the same `now`: every deferred event a leg schedules
    /// lands strictly after `now`, so sibling legs can never observe each
    /// other through the calendar, only through the timing slabs — exactly
    /// as the serial calls would.
    pub fn access_many(
        &mut self,
        now: Cycle,
        legs: &[(BlockAddr, bool)],
        done_out: &mut Vec<Cycle>,
    ) {
        done_out.clear();
        let (mut reads, mut writes) = (0u64, 0u64);
        let (mut busy, mut skipped) = (0u64, 0u64);
        for &(block, is_write) in legs {
            let c = self.coord(block);
            let (done, outcome, busy_added, skip) = self.leg_timing(now, c, is_write);
            if is_write {
                writes += 1;
            } else {
                reads += 1;
            }
            busy += busy_added;
            skipped += skip;
            if self.tl_on {
                // Latency stays a per-leg observation (each leg has its
                // own); the counters batch below (same window sums).
                self.obs.timeline.observe("dram.latency", now, done - now);
            }
            if self.trace_on {
                self.obs.tracer.emit(
                    now,
                    "dram",
                    None,
                    None,
                    EventKind::DramAccess {
                        channel: c.channel as u8,
                        bank: c.bank as u8,
                        row: match outcome {
                            RowOutcome::Hit => RowResult::Hit,
                            RowOutcome::Empty => RowResult::Empty,
                            RowOutcome::Conflict => RowResult::Conflict,
                        },
                        is_write,
                        latency: done - now,
                    },
                );
            }
            done_out.push(done);
        }
        if self.tl_on && !legs.is_empty() {
            let tl = &self.obs.timeline;
            if reads > 0 {
                tl.count("dram.reads", now, reads);
            }
            if writes > 0 {
                tl.count("dram.writes", now, writes);
            }
            tl.count("dram.busy_cycles", now, busy);
            if skipped > 0 {
                tl.count("dram.idle_skipped_cycles", now, skipped);
            }
        }
    }

    /// Convenience: latency (cycles) of a request issued at `now`.
    pub fn access_latency(&mut self, now: Cycle, block: BlockAddr, is_write: bool) -> Cycle {
        self.access(now, block, is_write) - now
    }

    /// Snapshot of statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Exports aggregate and per-bank statistics under `prefix` (e.g.
    /// `dram.reads`, `dram.ch0.bank3.row_conflicts`). Banks that saw no
    /// row-buffer activity are skipped to keep the registry readable.
    pub fn export_stats(&self, prefix: &str, reg: &mut StatsRegistry) {
        reg.set_counter(&format!("{prefix}.reads"), self.stats.reads.get());
        reg.set_counter(&format!("{prefix}.writes"), self.stats.writes.get());
        reg.set_counter(&format!("{prefix}.row_hits"), self.stats.row_hits.get());
        reg.set_counter(
            &format!("{prefix}.row_conflicts"),
            self.stats.row_conflicts.get(),
        );
        reg.set_counter(
            &format!("{prefix}.idle_skipped_cycles"),
            self.stats.idle_skipped_cycles.get(),
        );
        reg.set_counter(
            &format!("{prefix}.events_stale"),
            self.stats.events_stale.get(),
        );
        for ch in 0..self.cfg.channels {
            for b in 0..self.banks_per_channel {
                let bi = ch * self.banks_per_channel + b;
                let (hits, conflicts) = (self.bank_row_hits[bi], self.bank_row_conflicts[bi]);
                if hits == 0 && conflicts == 0 {
                    continue;
                }
                reg.set_counter(&format!("{prefix}.ch{ch}.bank{b}.row_hits"), hits);
                reg.set_counter(&format!("{prefix}.ch{ch}.bank{b}.row_conflicts"), conflicts);
            }
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivl_sim_core::config::SystemConfig;

    fn model() -> DramModel {
        DramModel::new(&SystemConfig::default().dram)
    }

    #[test]
    fn row_hit_is_cheaper_than_conflict() {
        let mut d = model();
        let cfg = *d.config();
        let blocks_per_row = (cfg.row_bytes / BLOCK_BYTES) as u64;
        let b0 = BlockAddr::new(0);
        // Same channel (stride = channels), same bank, different row:
        let other_row = BlockAddr::new(
            blocks_per_row
                * cfg.channels as u64
                * (cfg.ranks_per_channel * cfg.banks_per_rank) as u64,
        );
        assert_eq!(d.coord(b0).channel, d.coord(other_row).channel);
        assert_eq!(d.coord(b0).bank, d.coord(other_row).bank);
        assert_ne!(d.coord(b0).row, d.coord(other_row).row);

        let t_first = d.access_latency(0, b0, false); // empty
        let t_hit = d.access_latency(10_000, b0, false); // hit
        let t_conflict = d.access_latency(20_000, other_row, false); // conflict
        assert!(t_hit < t_first);
        assert!(t_first < t_conflict);
        assert_eq!(t_hit, cfg.t_cas + cfg.t_burst);
        assert_eq!(t_conflict, cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_burst);
    }

    #[test]
    fn consecutive_blocks_interleave_channels() {
        let d = model();
        let c0 = d.coord(BlockAddr::new(0));
        let c1 = d.coord(BlockAddr::new(1));
        assert_ne!(c0.channel, c1.channel);
    }

    #[test]
    fn bus_serializes_bursts_only() {
        let mut d = model();
        let cfg = *d.config();
        let b = BlockAddr::new(0);
        let done1 = d.access(0, b, false);
        // A same-bank follow-up serializes on the bank (array) and then on
        // the data bus for one burst.
        let done2 = d.access(0, b, false);
        assert!(done2 >= done1 + cfg.t_burst);
        // A different-bank access on the same channel overlaps its array
        // access with the earlier bursts and pays at most one extra burst.
        let banks = (d.config().ranks_per_channel * d.config().banks_per_rank) as u64;
        let other_bank = BlockAddr::new((cfg.row_bytes / BLOCK_BYTES) as u64 * cfg.channels as u64);
        assert_ne!(d.coord(b).bank, d.coord(other_bank).bank);
        let _ = banks;
        let done3 = d.access(0, other_bank, false);
        assert!(done3 <= done2 + cfg.t_burst + cfg.t_rcd + cfg.t_cas);
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let mut d = model();
        let done_a = d.access(0, BlockAddr::new(0), false);
        let done_b = d.access(0, BlockAddr::new(1), false);
        // Same issue cycle, disjoint channels: identical completion times.
        assert_eq!(done_a, done_b);
    }

    #[test]
    fn stats_track_outcomes() {
        let mut d = model();
        let b = BlockAddr::new(0);
        d.access(0, b, false);
        d.access(1000, b, true);
        let s = d.stats();
        assert_eq!(s.reads.get(), 1);
        assert_eq!(s.writes.get(), 1);
        assert_eq!(s.row_hits.get(), 1);
    }

    #[test]
    fn export_reconciles_with_aggregate_stats_and_emits_trace() {
        use ivl_sim_core::obs::trace::TraceFilter;
        use ivl_sim_core::obs::{Obs, Tracer};

        let mut d = model();
        let mut obs = Obs::disabled();
        obs.tracer = Tracer::bounded(64, TraceFilter::all());
        d.set_obs(obs.clone());

        let b = BlockAddr::new(0);
        d.access(0, b, false);
        d.access(1000, b, true); // row hit

        let mut reg = StatsRegistry::new();
        d.export_stats("dram", &mut reg);
        assert_eq!(reg.counter("dram.reads"), Some(d.stats().reads.get()));
        assert_eq!(reg.counter("dram.row_hits"), Some(1));
        // Per-bank counters sum to the aggregate.
        let bank_hits: u64 = reg
            .iter()
            .filter(|(p, _)| p.starts_with("dram.ch") && p.ends_with("row_hits"))
            .filter_map(|(p, _)| reg.counter(p))
            .sum();
        assert_eq!(bank_hits, d.stats().row_hits.get());

        let records = obs.tracer.sorted_records();
        assert_eq!(records.len(), 2);
        assert!(matches!(
            records[1].kind,
            EventKind::DramAccess {
                row: RowResult::Hit,
                is_write: true,
                ..
            }
        ));
    }

    #[test]
    fn access_latency_equals_completion_minus_issue() {
        let mut d = model();
        let b = BlockAddr::new(0);
        let lat = d.access_latency(100, b, false);
        let mut d2 = model();
        let done = d2.access(100, b, false);
        assert_eq!(lat, done - 100);
    }

    #[test]
    fn row_conflicts_are_counted() {
        let mut d = model();
        let cfg = *d.config();
        let blocks_per_row = (cfg.row_bytes / BLOCK_BYTES) as u64;
        let stride = blocks_per_row
            * cfg.channels as u64
            * (cfg.ranks_per_channel * cfg.banks_per_rank) as u64;
        d.access(0, BlockAddr::new(0), false);
        d.access(10_000, BlockAddr::new(stride), false); // same bank, new row
        d.access(20_000, BlockAddr::new(0), false); // back again
        assert_eq!(d.stats().row_conflicts.get(), 2);
        assert_eq!(d.stats().row_hits.get(), 0);
    }

    #[test]
    fn idle_banks_do_not_delay_late_requests() {
        let mut d = model();
        let lat_now = d.access_latency(1_000_000, BlockAddr::new(0), false);
        let cfg = *d.config();
        assert_eq!(lat_now, cfg.t_rcd + cfg.t_cas + cfg.t_burst);
    }

    #[test]
    fn coord_is_stable_and_in_range() {
        let d = model();
        for i in 0..10_000u64 {
            let c = d.coord(BlockAddr::new(i * 97));
            assert!(c.channel < d.config().channels);
            assert!(c.bank < d.banks_per_channel);
        }
    }

    /// The arithmetic definition of the address mapping, as the pre-SoA
    /// implementation computed it with div/mod on every access.
    fn reference_coord(cfg: &DramConfig, idx: u64) -> DramCoord {
        let blocks_per_row = (cfg.row_bytes / BLOCK_BYTES) as u64;
        let banks_per_channel = (cfg.ranks_per_channel * cfg.banks_per_rank) as u64;
        let channel = (idx % cfg.channels as u64) as usize;
        let per_channel = idx / cfg.channels as u64;
        let row_global = per_channel / blocks_per_row;
        DramCoord {
            channel,
            bank: (row_global % banks_per_channel) as usize,
            row: row_global / banks_per_channel,
        }
    }

    #[test]
    fn shift_mask_coord_matches_divmod_reference() {
        let d = model();
        assert!(d.decode.pow2, "default geometry must take the fast path");
        let cfg = *d.config();
        for i in 0..200_000u64 {
            let idx = i.wrapping_mul(0x9E37_79B9).wrapping_add(i);
            assert_eq!(d.coord(BlockAddr::new(idx)), reference_coord(&cfg, idx));
        }
    }

    #[test]
    fn non_power_of_two_geometry_falls_back_to_divmod() {
        let mut cfg = SystemConfig::default().dram;
        cfg.channels = 3;
        cfg.ranks_per_channel = 1;
        cfg.banks_per_rank = 5;
        let d = DramModel::new(&cfg);
        assert!(!d.decode.pow2);
        for i in 0..50_000u64 {
            let idx = i.wrapping_mul(131).wrapping_add(7);
            let c = d.coord(BlockAddr::new(idx));
            assert_eq!(c, reference_coord(&cfg, idx));
            assert!(c.channel < 3 && c.bank < 5);
        }
        // Timing math is geometry-independent: an empty-bank access still
        // charges activate + column + burst.
        let mut d = d;
        assert_eq!(
            d.access_latency(0, BlockAddr::new(0), false),
            cfg.t_rcd + cfg.t_cas + cfg.t_burst
        );
    }

    #[test]
    fn idle_windows_are_skipped_and_measured() {
        let mut d = model();
        let cfg = *d.config();
        let b = BlockAddr::new(0);
        let done = d.access(0, b, false);
        // Two deferred events per access: bank-ready + bus-drain.
        assert_eq!(d.pending_events(), 2);
        // The runner jumps simulated time: the drain is one call, and the
        // bank's idle window is measured when the next request lands.
        d.advance_to(done);
        assert_eq!(d.pending_events(), 0);
        let idle_from = cfg.t_rcd + cfg.t_cas; // the bank's busy_until
        d.access(1_000_000, b, false);
        assert_eq!(d.stats().idle_skipped_cycles.get(), 1_000_000 - idle_from);
        // Timing is unchanged by the bookkeeping (slabs stay
        // authoritative): pinned by idle_banks_do_not_delay_late_requests.
    }

    #[test]
    fn idle_skip_is_invariant_to_advance_placement() {
        // Whether the runner drained eagerly or the access drains lazily
        // on entry, the measured idle window is identical — the property
        // that makes the counter deterministic across engines.
        let b = BlockAddr::new(0);
        let mut eager = model();
        let done = eager.access(0, b, false);
        eager.advance_to(done + 123);
        eager.access(500_000, b, false);

        let mut lazy = model();
        lazy.access(0, b, false);
        lazy.access(500_000, b, false);

        assert!(eager.stats().idle_skipped_cycles.get() > 0);
        assert_eq!(
            eager.stats().idle_skipped_cycles.get(),
            lazy.stats().idle_skipped_cycles.get()
        );
    }

    #[test]
    fn first_touch_opens_no_idle_window() {
        let mut d = model();
        d.access(777_777, BlockAddr::new(0), false);
        assert_eq!(
            d.stats().idle_skipped_cycles.get(),
            0,
            "a never-touched bank has no idle window to skip"
        );
    }

    #[test]
    fn superseded_transitions_are_counted_stale() {
        let mut d = model();
        let b = BlockAddr::new(0);
        // Back-to-back same-bank requests: the second strictly raises both
        // slab horizons, so the first request's bank-ready and bus-drain
        // transitions are overwritten in their slots before they fire.
        let done1 = d.access(0, b, false);
        let done2 = d.access(0, b, false);
        assert!(done2 > done1);
        assert_eq!(d.stats().events_stale.get(), 2);
        d.advance_to(done2 * 2);
        assert_eq!(d.pending_events(), 0);
    }

    #[test]
    fn access_many_matches_serial_access_sequence() {
        let cfg = SystemConfig::default().dram;
        let blocks_per_row = (cfg.row_bytes / BLOCK_BYTES) as u64;
        let bank_stride =
            blocks_per_row * cfg.channels as u64 * (cfg.ranks_per_channel * cfg.banks_per_rank) as u64;
        // Mixed legs: same channel pressure, a write, a same-bank repeat.
        let legs: Vec<(BlockAddr, bool)> = vec![
            (BlockAddr::new(0), true),
            (BlockAddr::new(1), false),
            (BlockAddr::new(bank_stride), false),
            (BlockAddr::new(0), false),
        ];
        let mut batched = DramModel::new(&cfg);
        let mut serial = DramModel::new(&cfg);
        // Pre-history so idle windows and stale entries are in play.
        batched.access(0, BlockAddr::new(0), false);
        serial.access(0, BlockAddr::new(0), false);

        let mut done_b = Vec::new();
        batched.access_many(5_000, &legs, &mut done_b);
        let done_s: Vec<Cycle> = legs
            .iter()
            .map(|&(blk, w)| serial.access(5_000, blk, w))
            .collect();
        assert_eq!(done_b, done_s);

        let (sb, ss) = (batched.stats(), serial.stats());
        assert_eq!(sb.reads.get(), ss.reads.get());
        assert_eq!(sb.writes.get(), ss.writes.get());
        assert_eq!(sb.row_hits.get(), ss.row_hits.get());
        assert_eq!(sb.row_conflicts.get(), ss.row_conflicts.get());
        assert_eq!(sb.idle_skipped_cycles.get(), ss.idle_skipped_cycles.get());
        assert_eq!(sb.events_stale.get(), ss.events_stale.get());
        assert_eq!(batched.pending_events(), serial.pending_events());

        // Follow-up requests observe identical slab state.
        let after_b = batched.access(20_000, BlockAddr::new(1), false);
        let after_s = serial.access(20_000, BlockAddr::new(1), false);
        assert_eq!(after_b, after_s);
    }

    #[test]
    fn export_includes_idle_skip_and_stale_counters() {
        let mut d = model();
        let b = BlockAddr::new(0);
        let done = d.access(0, b, false);
        d.advance_to(done);
        d.access(100_000, b, false);
        let mut reg = StatsRegistry::new();
        d.export_stats("dram", &mut reg);
        assert_eq!(
            reg.counter("dram.idle_skipped_cycles"),
            Some(d.stats().idle_skipped_cycles.get())
        );
        assert_eq!(
            reg.counter("dram.events_stale"),
            Some(d.stats().events_stale.get())
        );
        assert!(d.stats().idle_skipped_cycles.get() > 0);
    }

    #[test]
    fn set_obs_caches_tracer_gate() {
        use ivl_sim_core::obs::trace::TraceFilter;
        use ivl_sim_core::obs::{Obs, Tracer};

        let mut d = model();
        d.access(0, BlockAddr::new(0), false);
        let mut obs = Obs::disabled();
        obs.tracer = Tracer::bounded(16, TraceFilter::all());
        d.set_obs(obs.clone());
        d.access(100, BlockAddr::new(0), false);
        assert_eq!(obs.tracer.sorted_records().len(), 1, "gate on after attach");
        d.set_obs(Obs::disabled());
        d.access(200, BlockAddr::new(0), false);
        assert_eq!(
            obs.tracer.sorted_records().len(),
            1,
            "gate off after detach"
        );
    }
}
