//! Integrity-verification (IV) domain identifiers.
//!
//! IvLeague provisions at most `2^12` concurrent IV domains, matching the
//! 12-bit process-context identifiers of contemporary hardware
//! (paper Section VI-D1).

use std::fmt;

/// Maximum number of concurrently supported IV domains (`2^12`).
pub const MAX_DOMAINS: usize = 1 << 12;

/// Identifier of an integrity-verification domain (e.g. one enclave).
///
/// # Examples
///
/// ```
/// use ivl_sim_core::domain::DomainId;
/// let d = DomainId::new(3).unwrap();
/// assert_eq!(d.index(), 3);
/// assert!(DomainId::new(4096).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(u16);

impl DomainId {
    /// Creates a domain id, returning `None` if `id` exceeds the
    /// architectural limit of [`MAX_DOMAINS`].
    pub fn new(id: u16) -> Option<Self> {
        if (id as usize) < MAX_DOMAINS {
            Some(DomainId(id))
        } else {
            None
        }
    }

    /// Creates a domain id without range checking.
    ///
    /// Useful in tests and tight loops where the range is known.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if out of range.
    pub const fn new_unchecked(id: u16) -> Self {
        debug_assert!((id as usize) < MAX_DOMAINS);
        DomainId(id)
    }

    /// The numeric index of this domain.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

impl From<DomainId> for u16 {
    fn from(d: DomainId) -> u16 {
        d.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_enforced() {
        assert!(DomainId::new(0).is_some());
        assert!(DomainId::new((MAX_DOMAINS - 1) as u16).is_some());
        assert!(DomainId::new(MAX_DOMAINS as u16).is_none());
    }

    #[test]
    fn ordering_follows_index() {
        let a = DomainId::new(1).unwrap();
        let b = DomainId::new(2).unwrap();
        assert!(a < b);
        assert_eq!(u16::from(a), 1);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(format!("{}", DomainId::new(5).unwrap()), "D5");
    }
}
