//! Deterministic pseudo-random number generation for reproducible runs.
//!
//! All stochastic pieces of the reproduction (workload generators, Monte-Carlo
//! scalability analysis, randomized cache indexing) draw from [`Xoshiro256`],
//! a xoshiro256** generator seeded via SplitMix64. Given the same seed, every
//! experiment in the harness produces identical output on every platform.

/// SplitMix64 step, used for seeding and as a cheap stateless mixer.
///
/// # Examples
///
/// ```
/// use ivl_sim_core::rng::splitmix64;
/// let (v, next) = splitmix64(42);
/// assert_ne!(v, splitmix64(next).0);
/// ```
pub fn splitmix64(state: u64) -> (u64, u64) {
    let next = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = next;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31), next)
}

/// xoshiro256** deterministic PRNG.
///
/// # Examples
///
/// ```
/// use ivl_sim_core::rng::Xoshiro256;
/// let mut a = Xoshiro256::seed_from(7);
/// let mut b = Xoshiro256::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            let (v, next) = splitmix64(state);
            *slot = v;
            state = next;
        }
        // xoshiro256** must not be seeded with the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }

    /// Next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection-free variant is fine here:
        // statistical bias of multiply-shift is negligible for simulation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniformly selects an index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Forks an independent generator (for per-core / per-domain streams).
    pub fn fork(&mut self) -> Self {
        Xoshiro256::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xoshiro256::seed_from(123);
        let mut b = Xoshiro256::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256::seed_from(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Xoshiro256::seed_from(1);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from(2);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_is_roughly_half() {
        let mut r = Xoshiro256::seed_from(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from(4);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_produces_diverging_streams() {
        let mut a = Xoshiro256::seed_from(5);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xoshiro256::seed_from(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
