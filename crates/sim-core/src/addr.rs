//! Physical address geometry: 64-byte cache blocks and 4-KiB pages.
//!
//! All memory-system models in the workspace operate on [`BlockAddr`]s
//! (cache-line granularity) and [`PageNum`]s (OS page granularity). A raw
//! byte address is a [`PhysAddr`]. The newtypes make it impossible to confuse
//! a block index with a byte address or a page frame number.

use std::fmt;

/// Bytes per cache block / memory line (the paper's 64 B blocks).
pub const BLOCK_BYTES: usize = 64;
/// Bytes per OS page (4 KiB).
pub const PAGE_BYTES: usize = 4096;
/// Cache blocks per page.
pub const BLOCKS_PER_PAGE: usize = PAGE_BYTES / BLOCK_BYTES;

const BLOCK_SHIFT: u32 = BLOCK_BYTES.trailing_zeros();
const PAGE_SHIFT: u32 = PAGE_BYTES.trailing_zeros();

/// A raw physical byte address.
///
/// # Examples
///
/// ```
/// use ivl_sim_core::addr::PhysAddr;
/// let a = PhysAddr::new(0x1040);
/// assert_eq!(a.block().index(), 0x41);
/// assert_eq!(a.page().index(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// The raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache block containing this address.
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// The page containing this address.
    pub const fn page(self) -> PageNum {
        PageNum(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the containing block.
    pub const fn block_offset(self) -> usize {
        (self.0 & (BLOCK_BYTES as u64 - 1)) as usize
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

/// A cache-block (64 B line) index in physical memory.
///
/// # Examples
///
/// ```
/// use ivl_sim_core::addr::{BlockAddr, BLOCKS_PER_PAGE};
/// let b = BlockAddr::new(130);
/// assert_eq!(b.page().index(), 130 / BLOCKS_PER_PAGE as u64);
/// assert_eq!(b.page_offset(), 130 % BLOCKS_PER_PAGE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block index.
    pub const fn new(index: u64) -> Self {
        BlockAddr(index)
    }

    /// The block index (byte address divided by [`BLOCK_BYTES`]).
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of this block.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << BLOCK_SHIFT)
    }

    /// The page containing this block.
    pub const fn page(self) -> PageNum {
        PageNum(self.0 >> (PAGE_SHIFT - BLOCK_SHIFT))
    }

    /// Index of this block within its page (`0..BLOCKS_PER_PAGE`).
    pub const fn page_offset(self) -> usize {
        (self.0 & (BLOCKS_PER_PAGE as u64 - 1)) as usize
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

/// A physical page frame number.
///
/// # Examples
///
/// ```
/// use ivl_sim_core::addr::PageNum;
/// let p = PageNum::new(7);
/// assert_eq!(p.block(3).index(), 7 * 64 + 3);
/// assert_eq!(p.base().raw(), 7 * 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageNum(u64);

impl PageNum {
    /// Creates a page number from a frame index.
    pub const fn new(index: u64) -> Self {
        PageNum(index)
    }

    /// The page frame index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// The byte address of the first byte of this page.
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// The `offset`-th cache block of this page.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= BLOCKS_PER_PAGE` (debug builds).
    pub fn block(self, offset: usize) -> BlockAddr {
        debug_assert!(offset < BLOCKS_PER_PAGE, "block offset out of page");
        BlockAddr((self.0 << (PAGE_SHIFT - BLOCK_SHIFT)) + offset as u64)
    }

    /// Iterator over all cache blocks of this page.
    pub fn blocks(self) -> impl Iterator<Item = BlockAddr> {
        let first = self.0 << (PAGE_SHIFT - BLOCK_SHIFT);
        (first..first + BLOCKS_PER_PAGE as u64).map(BlockAddr)
    }
}

impl fmt::Display for PageNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_and_page_round_trip() {
        let a = PhysAddr::new(0xdead_beef);
        let b = a.block();
        assert_eq!(b.base().raw(), a.raw() & !(BLOCK_BYTES as u64 - 1));
        assert_eq!(b.page(), a.page());
        assert_eq!(a.page().base().raw(), a.raw() & !(PAGE_BYTES as u64 - 1));
    }

    #[test]
    fn page_block_indexing() {
        let p = PageNum::new(10);
        for (i, b) in p.blocks().enumerate() {
            assert_eq!(b.page(), p);
            assert_eq!(b.page_offset(), i);
            assert_eq!(p.block(i), b);
        }
        assert_eq!(p.blocks().count(), BLOCKS_PER_PAGE);
    }

    #[test]
    fn block_offset_within_block() {
        let a = PhysAddr::new(64 * 5 + 17);
        assert_eq!(a.block().index(), 5);
        assert_eq!(a.block_offset(), 17);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", PhysAddr::new(0)).is_empty());
        assert!(!format!("{}", BlockAddr::new(0)).is_empty());
        assert!(!format!("{}", PageNum::new(0)).is_empty());
    }

    #[test]
    fn geometry_constants_consistent() {
        assert_eq!(BLOCKS_PER_PAGE * BLOCK_BYTES, PAGE_BYTES);
        assert!(BLOCK_BYTES.is_power_of_two());
        assert!(PAGE_BYTES.is_power_of_two());
    }
}
