//! Architecture configuration (paper Table I) as plain data.
//!
//! Defaults reproduce the evaluated configuration: an 8-core out-of-order
//! processor with a three-level cache hierarchy, dual-channel 32 GiB main
//! memory, 8-way 256 KiB counter/tree metadata caches, an 8-ary Bonsai Merkle
//! Tree with split (64-bit major / 7-bit minor) counters, and the IvLeague
//! parameters (204 KiB LMM cache, 2-entry per-domain NFLB, 4-level TreeLings,
//! 4 Ki TreeLings, 128-entry hotpage tracker).

use serde::{Deserialize, Serialize};

use crate::Cycle;

/// Geometry and latency of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in core cycles.
    pub hit_latency: Cycle,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> usize {
        let lines = self.capacity_bytes / self.line_bytes;
        assert!(
            lines % self.ways == 0,
            "cache capacity must be a multiple of ways * line size"
        );
        lines / self.ways
    }
}

/// Per-core pipeline and private-cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Number of out-of-order cores.
    pub cores: usize,
    /// Base (memory-idle) IPC of the modeled OoO pipeline.
    pub base_ipc: f64,
    /// Memory-level parallelism: average overlap factor applied to memory
    /// stall cycles (an OoO core hides part of each miss).
    pub mlp: f64,
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Private L2 cache.
    pub l2: CacheConfig,
}

/// Shared last-level cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Geometry and latency.
    pub cache: CacheConfig,
    /// Whether MIRAGE-style randomized indexing is enabled (the paper's
    /// baseline integrates a randomized-cache defense in the LLC).
    pub randomized: bool,
}

/// DRAM device and channel timing (DDR-style, in memory-controller cycles
/// normalized to core cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Total main-memory capacity in bytes (32 GiB).
    pub capacity_bytes: u64,
    /// Independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: usize,
    /// Activate-to-column delay (tRCD) in core cycles.
    pub t_rcd: Cycle,
    /// Column access latency (tCAS) in core cycles.
    pub t_cas: Cycle,
    /// Precharge latency (tRP) in core cycles.
    pub t_rp: Cycle,
    /// Data burst occupancy per access in core cycles.
    pub t_burst: Cycle,
    /// Read/write queue capacity per channel.
    pub queue_depth: usize,
}

/// Secure-memory (encryption + integrity) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecureMemConfig {
    /// AES engine latency for one-time-pad generation, cycles.
    pub aes_latency: Cycle,
    /// Keyed-hash latency per tree-node hash, cycles.
    pub hash_latency: Cycle,
    /// Integrity-tree arity (hashes per 64 B node).
    pub tree_arity: usize,
    /// Counter metadata cache (8-way 256 KiB).
    pub counter_cache: CacheConfig,
    /// Integrity-tree metadata cache (8-way 256 KiB).
    pub tree_cache: CacheConfig,
    /// MAC bytes per data block.
    pub mac_bytes: usize,
}

/// Which IvLeague variant a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IvVariant {
    /// IvLeague-Basic: leaf-only page mapping.
    Basic,
    /// IvLeague-Invert: top-down intermediate-node mapping (Section VII-A).
    Invert,
    /// IvLeague-Pro: Invert plus hotpage region and migration (Section VII-B).
    Pro,
}

impl IvVariant {
    /// All variants in evaluation order.
    pub const ALL: [IvVariant; 3] = [IvVariant::Basic, IvVariant::Invert, IvVariant::Pro];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            IvVariant::Basic => "IvLeague-Basic",
            IvVariant::Invert => "IvLeague-Invert",
            IvVariant::Pro => "IvLeague-Pro",
        }
    }
}

/// IvLeague mechanism parameters (Table I, "IvLeague Params").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvLeagueConfig {
    /// Levels of tree nodes inside each TreeLing, below (and including) the
    /// TreeLing root's children... precisely: a TreeLing root sits `levels`
    /// levels above the counter blocks, so one TreeLing covers
    /// `arity^levels` counter blocks (= pages, with 64-counter blocks).
    pub treeling_levels: usize,
    /// Number of TreeLings provisioned in the system (4 Ki).
    pub treeling_count: usize,
    /// LMM cache entries (8 Ki entries ≈ 204 KiB with 16-way organization).
    pub lmm_cache_entries: usize,
    /// LMM cache associativity.
    pub lmm_cache_ways: usize,
    /// LMM cache hit latency, cycles.
    pub lmm_hit_latency: Cycle,
    /// On-chip NFL buffer entries per domain.
    pub nflb_entries_per_domain: usize,
    /// NFL entries per in-memory NFL block (64 B block / 8 B entry).
    pub nfl_entries_per_block: usize,
    /// Hotpage tracker entries per domain (IvLeague-Pro).
    pub tracker_entries: usize,
    /// Access-counter width of the tracker, bits.
    pub tracker_counter_bits: u32,
    /// Accesses after which a tracked page is promoted to the hot region.
    pub hot_threshold: u32,
    /// Tracker decay interval (accesses) after which counters clear.
    pub tracker_clear_interval: u64,
    /// Fraction of each TreeLing's leaf capacity reserved for the hot region.
    pub hot_region_fraction: f64,
}

/// Complete system configuration (paper Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Core + private caches.
    pub core: CoreConfig,
    /// Shared LLC.
    pub llc: LlcConfig,
    /// DRAM.
    pub dram: DramConfig,
    /// Secure-memory engine.
    pub secure: SecureMemConfig,
    /// IvLeague parameters.
    pub ivleague: IvLeagueConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            core: CoreConfig {
                cores: 8,
                base_ipc: 1.6,
                mlp: 3.0,
                l1: CacheConfig {
                    capacity_bytes: 32 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    hit_latency: 4,
                },
                l2: CacheConfig {
                    capacity_bytes: 1024 * 1024,
                    ways: 4,
                    line_bytes: 64,
                    hit_latency: 12,
                },
            },
            llc: LlcConfig {
                cache: CacheConfig {
                    capacity_bytes: 8 * 1024 * 1024,
                    ways: 16,
                    line_bytes: 64,
                    hit_latency: 40,
                },
                randomized: true,
            },
            dram: DramConfig {
                capacity_bytes: 32 * 1024 * 1024 * 1024,
                channels: 2,
                ranks_per_channel: 2,
                banks_per_rank: 8,
                row_bytes: 8 * 1024,
                t_rcd: 44,
                t_cas: 44,
                t_rp: 44,
                t_burst: 16,
                queue_depth: 64,
            },
            secure: SecureMemConfig {
                aes_latency: 20,
                hash_latency: 20,
                tree_arity: 8,
                counter_cache: CacheConfig {
                    capacity_bytes: 256 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    hit_latency: 8,
                },
                tree_cache: CacheConfig {
                    capacity_bytes: 256 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    hit_latency: 8,
                },
                mac_bytes: 8,
            },
            ivleague: IvLeagueConfig::default(),
        }
    }
}

impl Default for IvLeagueConfig {
    fn default() -> Self {
        IvLeagueConfig {
            treeling_levels: 5,
            treeling_count: 4096,
            lmm_cache_entries: 8192,
            lmm_cache_ways: 16,
            lmm_hit_latency: 2,
            nflb_entries_per_domain: 2,
            nfl_entries_per_block: 8,
            tracker_entries: 128,
            tracker_counter_bits: 8,
            hot_threshold: 16,
            tracker_clear_interval: 1_000_000,
            hot_region_fraction: 0.125,
        }
    }
}

impl SystemConfig {
    /// Total number of 4 KiB pages covered by main memory.
    pub fn total_pages(&self) -> u64 {
        self.dram.capacity_bytes / crate::addr::PAGE_BYTES as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = SystemConfig::default();
        assert_eq!(c.core.cores, 8);
        assert_eq!(c.core.l1.capacity_bytes, 32 * 1024);
        assert_eq!(c.core.l1.ways, 8);
        assert_eq!(c.core.l2.capacity_bytes, 1024 * 1024);
        assert_eq!(c.llc.cache.capacity_bytes, 8 * 1024 * 1024);
        assert_eq!(c.llc.cache.hit_latency, 40);
        assert_eq!(c.secure.aes_latency, 20);
        assert_eq!(c.ivleague.hot_threshold, 16);
        assert_eq!(c.secure.tree_arity, 8);
        assert_eq!(c.secure.tree_cache.capacity_bytes, 256 * 1024);
        assert_eq!(c.ivleague.treeling_count, 4096);
        assert_eq!(c.ivleague.nflb_entries_per_domain, 2);
        assert_eq!(c.ivleague.tracker_entries, 128);
        assert_eq!(c.dram.channels, 2);
        assert_eq!(c.total_pages(), 8 * 1024 * 1024);
    }

    #[test]
    fn cache_sets_geometry() {
        let c = CacheConfig {
            capacity_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency: 4,
        };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn cache_sets_rejects_ragged_geometry() {
        let c = CacheConfig {
            capacity_bytes: 100,
            ways: 3,
            line_bytes: 64,
            hit_latency: 1,
        };
        let _ = c.sets();
    }

    #[test]
    fn variant_labels_are_paper_names() {
        assert_eq!(IvVariant::Basic.label(), "IvLeague-Basic");
        assert_eq!(IvVariant::ALL.len(), 3);
    }

    #[test]
    fn config_is_cloneable_and_comparable() {
        let c = SystemConfig::default();
        let d = c.clone();
        assert_eq!(c, d);
    }
}
