//! Architecture configuration (paper Table I) as plain data.
//!
//! Defaults reproduce the evaluated configuration: an 8-core out-of-order
//! processor with a three-level cache hierarchy, dual-channel 32 GiB main
//! memory, 8-way 256 KiB counter/tree metadata caches, an 8-ary Bonsai Merkle
//! Tree with split (64-bit major / 7-bit minor) counters, and the IvLeague
//! parameters (204 KiB LMM cache, 2-entry per-domain NFLB, 4-level TreeLings,
//! 4 Ki TreeLings, 128-entry hotpage tracker).

use ivl_testkit::kv::{KvDoc, KvError};

use crate::Cycle;

/// Geometry and latency of a single cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in core cycles.
    pub hit_latency: Cycle,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    pub fn sets(&self) -> usize {
        let lines = self.capacity_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways),
            "cache capacity must be a multiple of ways * line size"
        );
        lines / self.ways
    }
}

/// Per-core pipeline and private-cache configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Number of out-of-order cores.
    pub cores: usize,
    /// Base (memory-idle) IPC of the modeled OoO pipeline.
    pub base_ipc: f64,
    /// Memory-level parallelism: average overlap factor applied to memory
    /// stall cycles (an OoO core hides part of each miss).
    pub mlp: f64,
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Private L2 cache.
    pub l2: CacheConfig,
}

/// Shared last-level cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Geometry and latency.
    pub cache: CacheConfig,
    /// Whether MIRAGE-style randomized indexing is enabled (the paper's
    /// baseline integrates a randomized-cache defense in the LLC).
    pub randomized: bool,
}

/// DRAM device and channel timing (DDR-style, in memory-controller cycles
/// normalized to core cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Total main-memory capacity in bytes (32 GiB).
    pub capacity_bytes: u64,
    /// Independent channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: usize,
    /// Activate-to-column delay (tRCD) in core cycles.
    pub t_rcd: Cycle,
    /// Column access latency (tCAS) in core cycles.
    pub t_cas: Cycle,
    /// Precharge latency (tRP) in core cycles.
    pub t_rp: Cycle,
    /// Data burst occupancy per access in core cycles.
    pub t_burst: Cycle,
    /// Read/write queue capacity per channel.
    pub queue_depth: usize,
}

/// Secure-memory (encryption + integrity) configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecureMemConfig {
    /// AES engine latency for one-time-pad generation, cycles.
    pub aes_latency: Cycle,
    /// Keyed-hash latency per tree-node hash, cycles.
    pub hash_latency: Cycle,
    /// Integrity-tree arity (hashes per 64 B node).
    pub tree_arity: usize,
    /// Counter metadata cache (8-way 256 KiB).
    pub counter_cache: CacheConfig,
    /// Integrity-tree metadata cache (8-way 256 KiB).
    pub tree_cache: CacheConfig,
    /// MAC bytes per data block.
    pub mac_bytes: usize,
}

/// Which IvLeague variant a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IvVariant {
    /// IvLeague-Basic: leaf-only page mapping.
    Basic,
    /// IvLeague-Invert: top-down intermediate-node mapping (Section VII-A).
    Invert,
    /// IvLeague-Pro: Invert plus hotpage region and migration (Section VII-B).
    Pro,
}

impl IvVariant {
    /// All variants in evaluation order.
    pub const ALL: [IvVariant; 3] = [IvVariant::Basic, IvVariant::Invert, IvVariant::Pro];

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            IvVariant::Basic => "IvLeague-Basic",
            IvVariant::Invert => "IvLeague-Invert",
            IvVariant::Pro => "IvLeague-Pro",
        }
    }
}

/// IvLeague mechanism parameters (Table I, "IvLeague Params").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvLeagueConfig {
    /// Levels of tree nodes inside each TreeLing, below (and including) the
    /// TreeLing root's children... precisely: a TreeLing root sits `levels`
    /// levels above the counter blocks, so one TreeLing covers
    /// `arity^levels` counter blocks (= pages, with 64-counter blocks).
    pub treeling_levels: usize,
    /// Number of TreeLings provisioned in the system (4 Ki).
    pub treeling_count: usize,
    /// LMM cache entries (8 Ki entries ≈ 204 KiB with 16-way organization).
    pub lmm_cache_entries: usize,
    /// LMM cache associativity.
    pub lmm_cache_ways: usize,
    /// LMM cache hit latency, cycles.
    pub lmm_hit_latency: Cycle,
    /// On-chip NFL buffer entries per domain.
    pub nflb_entries_per_domain: usize,
    /// NFL entries per in-memory NFL block (64 B block / 8 B entry).
    pub nfl_entries_per_block: usize,
    /// Hotpage tracker entries per domain (IvLeague-Pro).
    pub tracker_entries: usize,
    /// Access-counter width of the tracker, bits.
    pub tracker_counter_bits: u32,
    /// Accesses after which a tracked page is promoted to the hot region.
    pub hot_threshold: u32,
    /// Tracker decay interval (accesses) after which counters clear.
    pub tracker_clear_interval: u64,
    /// Fraction of each TreeLing's leaf capacity reserved for the hot region.
    pub hot_region_fraction: f64,
}

/// Complete system configuration (paper Table I).
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Core + private caches.
    pub core: CoreConfig,
    /// Shared LLC.
    pub llc: LlcConfig,
    /// DRAM.
    pub dram: DramConfig,
    /// Secure-memory engine.
    pub secure: SecureMemConfig,
    /// IvLeague parameters.
    pub ivleague: IvLeagueConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            core: CoreConfig {
                cores: 8,
                base_ipc: 1.6,
                mlp: 3.0,
                l1: CacheConfig {
                    capacity_bytes: 32 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    hit_latency: 4,
                },
                l2: CacheConfig {
                    capacity_bytes: 1024 * 1024,
                    ways: 4,
                    line_bytes: 64,
                    hit_latency: 12,
                },
            },
            llc: LlcConfig {
                cache: CacheConfig {
                    capacity_bytes: 8 * 1024 * 1024,
                    ways: 16,
                    line_bytes: 64,
                    hit_latency: 40,
                },
                randomized: true,
            },
            dram: DramConfig {
                capacity_bytes: 32 * 1024 * 1024 * 1024,
                channels: 2,
                ranks_per_channel: 2,
                banks_per_rank: 8,
                row_bytes: 8 * 1024,
                t_rcd: 44,
                t_cas: 44,
                t_rp: 44,
                t_burst: 16,
                queue_depth: 64,
            },
            secure: SecureMemConfig {
                aes_latency: 20,
                hash_latency: 20,
                tree_arity: 8,
                counter_cache: CacheConfig {
                    capacity_bytes: 256 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    hit_latency: 8,
                },
                tree_cache: CacheConfig {
                    capacity_bytes: 256 * 1024,
                    ways: 8,
                    line_bytes: 64,
                    hit_latency: 8,
                },
                mac_bytes: 8,
            },
            ivleague: IvLeagueConfig::default(),
        }
    }
}

impl Default for IvLeagueConfig {
    fn default() -> Self {
        IvLeagueConfig {
            treeling_levels: 5,
            treeling_count: 4096,
            lmm_cache_entries: 8192,
            lmm_cache_ways: 16,
            lmm_hit_latency: 2,
            nflb_entries_per_domain: 2,
            nfl_entries_per_block: 8,
            tracker_entries: 128,
            tracker_counter_bits: 8,
            hot_threshold: 16,
            tracker_clear_interval: 1_000_000,
            hot_region_fraction: 0.125,
        }
    }
}

impl SystemConfig {
    /// Total number of 4 KiB pages covered by main memory.
    pub fn total_pages(&self) -> u64 {
        self.dram.capacity_bytes / crate::addr::PAGE_BYTES as u64
    }

    /// Serializes the configuration to the TOML-subset text form
    /// (`ivl-testkit`'s key=value serializer; see DESIGN.md §5).
    pub fn to_toml(&self) -> String {
        let mut doc = KvDoc::new();
        let c = &self.core;
        doc.set_usize("core.cores", c.cores);
        doc.set_f64("core.base_ipc", c.base_ipc);
        doc.set_f64("core.mlp", c.mlp);
        put_cache(&mut doc, "core.l1", &c.l1);
        put_cache(&mut doc, "core.l2", &c.l2);
        doc.set_bool("llc.randomized", self.llc.randomized);
        put_cache(&mut doc, "llc.cache", &self.llc.cache);
        let d = &self.dram;
        doc.set_u64("dram.capacity_bytes", d.capacity_bytes);
        doc.set_usize("dram.channels", d.channels);
        doc.set_usize("dram.ranks_per_channel", d.ranks_per_channel);
        doc.set_usize("dram.banks_per_rank", d.banks_per_rank);
        doc.set_usize("dram.row_bytes", d.row_bytes);
        doc.set_u64("dram.t_rcd", d.t_rcd);
        doc.set_u64("dram.t_cas", d.t_cas);
        doc.set_u64("dram.t_rp", d.t_rp);
        doc.set_u64("dram.t_burst", d.t_burst);
        doc.set_usize("dram.queue_depth", d.queue_depth);
        let s = &self.secure;
        doc.set_u64("secure.aes_latency", s.aes_latency);
        doc.set_u64("secure.hash_latency", s.hash_latency);
        doc.set_usize("secure.tree_arity", s.tree_arity);
        doc.set_usize("secure.mac_bytes", s.mac_bytes);
        put_cache(&mut doc, "secure.counter_cache", &s.counter_cache);
        put_cache(&mut doc, "secure.tree_cache", &s.tree_cache);
        let iv = &self.ivleague;
        doc.set_usize("ivleague.treeling_levels", iv.treeling_levels);
        doc.set_usize("ivleague.treeling_count", iv.treeling_count);
        doc.set_usize("ivleague.lmm_cache_entries", iv.lmm_cache_entries);
        doc.set_usize("ivleague.lmm_cache_ways", iv.lmm_cache_ways);
        doc.set_u64("ivleague.lmm_hit_latency", iv.lmm_hit_latency);
        doc.set_usize(
            "ivleague.nflb_entries_per_domain",
            iv.nflb_entries_per_domain,
        );
        doc.set_usize("ivleague.nfl_entries_per_block", iv.nfl_entries_per_block);
        doc.set_usize("ivleague.tracker_entries", iv.tracker_entries);
        doc.set_u64(
            "ivleague.tracker_counter_bits",
            iv.tracker_counter_bits as u64,
        );
        doc.set_u64("ivleague.hot_threshold", iv.hot_threshold as u64);
        doc.set_u64("ivleague.tracker_clear_interval", iv.tracker_clear_interval);
        doc.set_f64("ivleague.hot_region_fraction", iv.hot_region_fraction);
        doc.to_toml_string()
    }

    /// Parses a configuration previously produced by [`Self::to_toml`]
    /// (unknown keys are ignored; missing or mistyped keys error).
    pub fn from_toml(text: &str) -> Result<Self, KvError> {
        let doc = KvDoc::parse(text)?;
        Ok(SystemConfig {
            core: CoreConfig {
                cores: doc.get_usize("core.cores")?,
                base_ipc: doc.get_f64("core.base_ipc")?,
                mlp: doc.get_f64("core.mlp")?,
                l1: get_cache(&doc, "core.l1")?,
                l2: get_cache(&doc, "core.l2")?,
            },
            llc: LlcConfig {
                cache: get_cache(&doc, "llc.cache")?,
                randomized: doc.get_bool("llc.randomized")?,
            },
            dram: DramConfig {
                capacity_bytes: doc.get_u64("dram.capacity_bytes")?,
                channels: doc.get_usize("dram.channels")?,
                ranks_per_channel: doc.get_usize("dram.ranks_per_channel")?,
                banks_per_rank: doc.get_usize("dram.banks_per_rank")?,
                row_bytes: doc.get_usize("dram.row_bytes")?,
                t_rcd: doc.get_u64("dram.t_rcd")?,
                t_cas: doc.get_u64("dram.t_cas")?,
                t_rp: doc.get_u64("dram.t_rp")?,
                t_burst: doc.get_u64("dram.t_burst")?,
                queue_depth: doc.get_usize("dram.queue_depth")?,
            },
            secure: SecureMemConfig {
                aes_latency: doc.get_u64("secure.aes_latency")?,
                hash_latency: doc.get_u64("secure.hash_latency")?,
                tree_arity: doc.get_usize("secure.tree_arity")?,
                counter_cache: get_cache(&doc, "secure.counter_cache")?,
                tree_cache: get_cache(&doc, "secure.tree_cache")?,
                mac_bytes: doc.get_usize("secure.mac_bytes")?,
            },
            ivleague: IvLeagueConfig {
                treeling_levels: doc.get_usize("ivleague.treeling_levels")?,
                treeling_count: doc.get_usize("ivleague.treeling_count")?,
                lmm_cache_entries: doc.get_usize("ivleague.lmm_cache_entries")?,
                lmm_cache_ways: doc.get_usize("ivleague.lmm_cache_ways")?,
                lmm_hit_latency: doc.get_u64("ivleague.lmm_hit_latency")?,
                nflb_entries_per_domain: doc.get_usize("ivleague.nflb_entries_per_domain")?,
                nfl_entries_per_block: doc.get_usize("ivleague.nfl_entries_per_block")?,
                tracker_entries: doc.get_usize("ivleague.tracker_entries")?,
                tracker_counter_bits: doc.get_u32("ivleague.tracker_counter_bits")?,
                hot_threshold: doc.get_u32("ivleague.hot_threshold")?,
                tracker_clear_interval: doc.get_u64("ivleague.tracker_clear_interval")?,
                hot_region_fraction: doc.get_f64("ivleague.hot_region_fraction")?,
            },
        })
    }
}

fn put_cache(doc: &mut KvDoc, prefix: &str, c: &CacheConfig) {
    doc.set_usize(&format!("{prefix}.capacity_bytes"), c.capacity_bytes);
    doc.set_usize(&format!("{prefix}.ways"), c.ways);
    doc.set_usize(&format!("{prefix}.line_bytes"), c.line_bytes);
    doc.set_u64(&format!("{prefix}.hit_latency"), c.hit_latency);
}

fn get_cache(doc: &KvDoc, prefix: &str) -> Result<CacheConfig, KvError> {
    Ok(CacheConfig {
        capacity_bytes: doc.get_usize(&format!("{prefix}.capacity_bytes"))?,
        ways: doc.get_usize(&format!("{prefix}.ways"))?,
        line_bytes: doc.get_usize(&format!("{prefix}.line_bytes"))?,
        hit_latency: doc.get_u64(&format!("{prefix}.hit_latency"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = SystemConfig::default();
        assert_eq!(c.core.cores, 8);
        assert_eq!(c.core.l1.capacity_bytes, 32 * 1024);
        assert_eq!(c.core.l1.ways, 8);
        assert_eq!(c.core.l2.capacity_bytes, 1024 * 1024);
        assert_eq!(c.llc.cache.capacity_bytes, 8 * 1024 * 1024);
        assert_eq!(c.llc.cache.hit_latency, 40);
        assert_eq!(c.secure.aes_latency, 20);
        assert_eq!(c.ivleague.hot_threshold, 16);
        assert_eq!(c.secure.tree_arity, 8);
        assert_eq!(c.secure.tree_cache.capacity_bytes, 256 * 1024);
        assert_eq!(c.ivleague.treeling_count, 4096);
        assert_eq!(c.ivleague.nflb_entries_per_domain, 2);
        assert_eq!(c.ivleague.tracker_entries, 128);
        assert_eq!(c.dram.channels, 2);
        assert_eq!(c.total_pages(), 8 * 1024 * 1024);
    }

    #[test]
    fn cache_sets_geometry() {
        let c = CacheConfig {
            capacity_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency: 4,
        };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn cache_sets_rejects_ragged_geometry() {
        let c = CacheConfig {
            capacity_bytes: 100,
            ways: 3,
            line_bytes: 64,
            hit_latency: 1,
        };
        let _ = c.sets();
    }

    #[test]
    fn variant_labels_are_paper_names() {
        assert_eq!(IvVariant::Basic.label(), "IvLeague-Basic");
        assert_eq!(IvVariant::ALL.len(), 3);
    }

    #[test]
    fn config_is_cloneable_and_comparable() {
        let c = SystemConfig::default();
        let d = c.clone();
        assert_eq!(c, d);
    }

    #[test]
    fn toml_round_trips_default_config() {
        let c = SystemConfig::default();
        let text = c.to_toml();
        let back = SystemConfig::from_toml(&text).expect("parse own output");
        assert_eq!(c, back);
    }

    #[test]
    fn toml_round_trips_modified_config() {
        let mut c = SystemConfig::default();
        c.core.cores = 64;
        c.core.base_ipc = 2.5;
        c.llc.randomized = false;
        c.ivleague.hot_region_fraction = 0.0625;
        c.dram.capacity_bytes = 128 * 1024 * 1024 * 1024;
        let back = SystemConfig::from_toml(&c.to_toml()).expect("parse");
        assert_eq!(c, back);
    }

    #[test]
    fn toml_output_is_sectioned() {
        let text = SystemConfig::default().to_toml();
        assert!(text.contains("[core.l1]\n"));
        assert!(text.contains("[dram]\n"));
        assert!(text.contains("[ivleague]\n"));
        assert!(text.contains("capacity_bytes = 32768\n"));
        assert!(text.contains("randomized = true\n"));
    }

    #[test]
    fn from_toml_reports_missing_keys() {
        let err = SystemConfig::from_toml("[core]\ncores = 8\n").unwrap_err();
        assert!(matches!(err, ivl_testkit::kv::KvError::MissingKey(_)));
    }
}
