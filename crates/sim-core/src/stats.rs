//! Lightweight statistics primitives used by all models.
//!
//! Each component owns its own counters and exposes them through accessor
//! methods, which keeps the models testable in isolation; the
//! [`obs`](crate::obs) layer collects them into a dotted-path
//! [`StatsRegistry`](crate::obs::registry::StatsRegistry) snapshot when a
//! run wants a unified view.
//!
//! All accumulation is **saturating**: pathological long runs clamp at the
//! numeric ceiling instead of overflow-panicking in debug builds.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use ivl_sim_core::stats::Counter;
/// let mut c = Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one (saturating).
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` events (saturating).
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }

    /// Events accumulated since an earlier snapshot of this counter
    /// (saturating: a nonsensical "earlier" snapshot ahead of `self`
    /// yields zero rather than wrapping).
    pub const fn since(self, earlier: Counter) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Hit/miss ratio tracker (caches, predictors, buffers).
///
/// # Examples
///
/// ```
/// use ivl_sim_core::stats::HitMiss;
/// let mut h = HitMiss::new();
/// h.hit();
/// h.hit();
/// h.miss();
/// assert!((h.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitMiss {
    hits: u64,
    misses: u64,
}

impl HitMiss {
    /// Creates a zeroed tracker.
    pub const fn new() -> Self {
        HitMiss { hits: 0, misses: 0 }
    }

    /// Reconstructs a tracker from raw hit/miss counts (used when
    /// deserializing registry snapshots).
    pub const fn from_parts(hits: u64, misses: u64) -> Self {
        HitMiss { hits, misses }
    }

    /// Records a hit (saturating).
    pub fn hit(&mut self) {
        self.hits = self.hits.saturating_add(1);
    }

    /// Records a miss (saturating).
    pub fn miss(&mut self) {
        self.misses = self.misses.saturating_add(1);
    }

    /// Records either, from a boolean outcome.
    pub fn record(&mut self, was_hit: bool) {
        if was_hit {
            self.hit();
        } else {
            self.miss();
        }
    }

    /// Total hits.
    pub const fn hits(self) -> u64 {
        self.hits
    }

    /// Total misses.
    pub const fn misses(self) -> u64 {
        self.misses
    }

    /// Total accesses.
    pub const fn total(self) -> u64 {
        self.hits.saturating_add(self.misses)
    }

    /// The hits/misses accumulated since an earlier snapshot of this
    /// tracker (saturating fieldwise — the warmup-epoch delta the
    /// simulator's measurement window uses).
    pub const fn since(self, earlier: HitMiss) -> HitMiss {
        HitMiss {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }

    /// Hit rate in `[0, 1]`; `0` when no accesses were recorded.
    pub fn hit_rate(self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// Running mean over `f64` samples (Welford-free: sum + count is enough for
/// the magnitudes involved here).
///
/// # Examples
///
/// ```
/// use ivl_sim_core::stats::RunningMean;
/// let mut m = RunningMean::new();
/// m.push(1.0);
/// m.push(3.0);
/// assert_eq!(m.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        RunningMean { sum: 0.0, count: 0 }
    }

    /// Adds a sample.
    pub fn push(&mut self, sample: f64) {
        self.sum += sample;
        self.count = self.count.saturating_add(1);
    }

    /// Number of samples.
    pub const fn count(self) -> u64 {
        self.count
    }

    /// Mean of samples; `0` when empty.
    pub fn mean(self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of samples.
    pub const fn sum(self) -> f64 {
        self.sum
    }
}

/// A fixed-width histogram over `u32` samples, saturating at the last bin.
///
/// # Examples
///
/// ```
/// use ivl_sim_core::stats::Histogram;
/// let mut h = Histogram::new(4);
/// h.push(0);
/// h.push(2);
/// h.push(99); // saturates into the last bin
/// assert_eq!(h.bin(3), 1);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram with `bins` buckets (sample `i` lands in bin `i`,
    /// anything `>= bins` in the last bin).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            bins: vec![0; bins],
        }
    }

    /// Records one sample (bin counts saturate).
    pub fn push(&mut self, sample: u32) {
        let idx = (sample as usize).min(self.bins.len() - 1);
        self.bins[idx] = self.bins[idx].saturating_add(1);
    }

    /// The raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// `true` when no bins exist (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Total number of samples (saturating).
    pub fn total(&self) -> u64 {
        self.bins.iter().fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    /// Mean of the recorded samples (using bin index as value).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, &c)| i as u64 * c)
            .sum();
        weighted as f64 / total as f64
    }
}

/// Geometric mean of a slice of positive values; `0` for an empty slice.
///
/// # Examples
///
/// ```
/// use ivl_sim_core::stats::gmean;
/// assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn hitmiss_rates() {
        let mut h = HitMiss::new();
        assert_eq!(h.hit_rate(), 0.0);
        h.record(true);
        h.record(false);
        h.record(false);
        assert_eq!(h.hits(), 1);
        assert_eq!(h.misses(), 2);
        assert!((h.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn running_mean_empty_is_zero() {
        assert_eq!(RunningMean::new().mean(), 0.0);
    }

    #[test]
    fn histogram_saturates_and_means() {
        let mut h = Histogram::new(3);
        h.push(0);
        h.push(1);
        h.push(5);
        assert_eq!(h.bin(2), 1);
        assert_eq!(h.total(), 3);
        assert!((h.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counter_and_hitmiss_saturate_instead_of_overflowing() {
        // Regression: these used to be raw `+=`, which overflow-panics in
        // debug builds on pathological long runs.
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.inc();
        c.add(17);
        assert_eq!(c.get(), u64::MAX);
        assert_eq!(c.since(Counter::new()), u64::MAX);

        let mut h = HitMiss {
            hits: u64::MAX,
            misses: u64::MAX,
        };
        h.hit();
        h.miss();
        assert_eq!(h.hits(), u64::MAX);
        assert_eq!(h.misses(), u64::MAX);
        assert_eq!(h.total(), u64::MAX, "total saturates too");
    }

    #[test]
    fn histogram_bins_saturate() {
        let mut h = Histogram::new(2);
        h.bins[1] = u64::MAX;
        h.push(5); // lands in the saturated last bin
        assert_eq!(h.bin(1), u64::MAX);
        assert_eq!(h.total(), u64::MAX);
    }

    #[test]
    fn since_is_saturating_and_matches_subtraction() {
        let mut early = HitMiss::new();
        early.hit();
        let mut late = early;
        late.hit();
        late.miss();
        let d = late.since(early);
        assert_eq!((d.hits(), d.misses()), (1, 1));
        // Nonsense ordering clamps at zero instead of wrapping.
        let z = early.since(late);
        assert_eq!((z.hits(), z.misses()), (0, 0));
    }

    #[test]
    fn gmean_matches_hand_computation() {
        assert!((gmean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(gmean(&[]), 0.0);
        let single = gmean(&[3.5]);
        assert!((single - 3.5).abs() < 1e-12);
    }
}
