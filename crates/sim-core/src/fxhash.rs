//! A fast, deterministic hasher for simulator-internal maps.
//!
//! `std`'s default `SipHash13` is keyed per-process for HashDoS resistance,
//! which the simulator does not need: every key hashed here (page numbers,
//! TreeLing ids, domain ids) is simulator-internal, never
//! attacker-controlled. The multiply-fold hasher below (the well-known
//! "Fx" construction used by rustc) is 3-5x cheaper per lookup and — being
//! unkeyed — hashes identically in every process, which keeps map behaviour
//! reproducible across runs and across the serial/parallel campaign
//! runners.
//!
//! # Examples
//!
//! ```
//! use ivl_sim_core::fxhash::FxHashMap;
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(42, "slot");
//! assert_eq!(m.get(&42), Some(&"slot"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply constant (the golden-ratio fraction rustc's FxHasher
/// uses); any odd constant with good bit dispersion works.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: one 64-bit accumulator folded with a
/// rotate-xor-multiply per word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// Builder producing [`FxHasher`]s (stateless, zero-sized).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by the deterministic fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the deterministic fast hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        assert_eq!(hash_of(&0xDEAD_BEEFu64), hash_of(&0xDEAD_BEEFu64));
        assert_eq!(hash_of(&"treeling"), hash_of(&"treeling"));
    }

    #[test]
    fn distinct_small_keys_disperse() {
        // Sequential page numbers must not collapse into a few buckets:
        // check the top bits (the ones hashbrown uses for bucket choice)
        // take many distinct values over a small dense key range.
        let mut tops = FxHashSet::default();
        for k in 0u64..1024 {
            tops.insert(hash_of(&k) >> 57);
        }
        assert!(
            tops.len() > 64,
            "only {} distinct top-7-bit values",
            tops.len()
        );
    }

    #[test]
    fn tail_bytes_affect_hash() {
        let a: &[u8] = b"abcdefgh-x";
        let b: &[u8] = b"abcdefgh-y";
        let mut ha = FxHasher::default();
        ha.write(a);
        let mut hb = FxHasher::default();
        hb.write(b);
        assert_ne!(ha.finish(), hb.finish());
        // Length is folded into the tail word, so a prefix differs from the
        // padded full word.
        let mut hc = FxHasher::default();
        hc.write(b"abcdefgh-x\0\0");
        assert_ne!(ha.finish(), hc.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u16), u64> = FxHashMap::default();
        for i in 0..100u32 {
            m.insert((i, (i % 7) as u16), i as u64 * 3);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&(42, 0)), Some(&126));
        assert_eq!(m.remove(&(99, 1)), Some(297));
    }
}
