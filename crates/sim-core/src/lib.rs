//! Simulator substrate shared by every crate in the IvLeague reproduction.
//!
//! This crate holds the vocabulary types the rest of the workspace speaks:
//!
//! * [`addr`] — physical addresses, cache-block and page newtypes with the
//!   64-byte-block / 4-KiB-page geometry used throughout the paper;
//! * [`domain`] — integrity-verification (IV) domain identifiers, capped at
//!   `2^12` domains exactly as IvLeague provisions (Section VI-D1);
//! * [`calendar`] — the deterministic `(cycle, tie, seq)` min-heap event
//!   calendar and the typed [`calendar::CalendarEvent`] payload shared by
//!   the runners and the DRAM model;
//! * [`config`] — the Table I architecture configuration as plain data;
//! * [`stats`] — counters, running means and histograms used by the models;
//! * [`obs`] — the workspace-wide observability layer: dotted-path stats
//!   registry, cycle-stamped event tracing, host-time self-profiling;
//! * [`rng`] — a small deterministic PRNG (SplitMix64-seeded xoshiro256**)
//!   so every experiment in the harness is reproducible bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use ivl_sim_core::addr::{PhysAddr, BLOCK_BYTES};
//!
//! let a = PhysAddr::new(0x1234_5678);
//! assert_eq!(a.block().index() * BLOCK_BYTES as u64, a.block().base().raw());
//! assert_eq!(a.page(), a.block().page());
//! ```

pub mod addr;
pub mod calendar;
pub mod config;
pub mod domain;
pub mod fxhash;
pub mod obs;
pub mod rng;
pub mod stats;

/// A simulation timestamp / duration measured in core clock cycles.
pub type Cycle = u64;
