//! Event calendar: the deterministic discrete-event scheduler every engine
//! shares.
//!
//! The system runner used to pick the next core with a linear
//! `min_by_key` scan over all cores on every event. The calendar replaces
//! that with a binary min-heap keyed on `(cycle, tie, seq)`: popping the
//! least-advanced entry is O(log n), and the explicit `tie` key reproduces
//! the scan's deterministic tie-breaking (lowest core index among cores at
//! the same cycle) bit-for-bit. The payload is generic, so the same
//! calendar that orders core-ready events can own deferred model events —
//! a DRAM bank becoming free, a channel data bus draining its burst:
//! entries with distinct `tie` keys order deterministically regardless of
//! insertion order, and entries with equal `(cycle, tie)` fall back to
//! FIFO insertion order via the internal sequence number.
//!
//! [`CalendarEvent`] is the heterogeneous payload the runners and the DRAM
//! model speak: each event class owns a disjoint `tie` space (the class
//! constants below), so mixed-class entries at the same cycle pop in the
//! pinned order *cores → banks → buses → writebacks* and never collide.
//!
//! # Examples
//!
//! ```
//! use ivl_sim_core::calendar::{CalendarEvent, EventCalendar};
//!
//! let mut cal = EventCalendar::new();
//! cal.schedule(100, CalendarEvent::CoreReady(1).tie(), CalendarEvent::CoreReady(1));
//! cal.schedule(100, CalendarEvent::BankReady(3).tie(), CalendarEvent::BankReady(3));
//! cal.schedule(90, CalendarEvent::BusDrain(0).tie(), CalendarEvent::BusDrain(0));
//! assert_eq!(cal.pop(), Some((90, CalendarEvent::BusDrain(0))));
//! // Same cycle: the core-ready class outranks the bank class.
//! assert_eq!(cal.pop(), Some((100, CalendarEvent::CoreReady(1))));
//! assert_eq!(cal.pop(), Some((100, CalendarEvent::BankReady(3))));
//! ```

use std::collections::BinaryHeap;

use crate::Cycle;

/// Tie-space base for core-ready events: `tie = TIE_CORE + core index`.
/// Cores outrank every deferred model event at the same cycle, which is
/// what keeps the calendar order equal to the legacy core-only scan.
pub const TIE_CORE: u64 = 0;
/// Tie-space base for bank-ready events: `tie = TIE_BANK + flat bank id`.
pub const TIE_BANK: u64 = 1 << 32;
/// Tie-space base for channel bus-drain events: `tie = TIE_BUS + channel`.
pub const TIE_BUS: u64 = 2 << 32;
/// Tie-space base for deferred writebacks: `tie = TIE_WRITEBACK + token`.
pub const TIE_WRITEBACK: u64 = 3 << 32;

/// Heterogeneous event payload for one shared calendar: core wake-ups plus
/// the DRAM model's deferred state transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalendarEvent {
    /// Core `idx` is ready to issue its next front-end event.
    CoreReady(usize),
    /// Flat bank `bi`'s array finishes its current access (its
    /// `busy_until` horizon) — the bank sits idle past this point.
    BankReady(u32),
    /// Channel `ch`'s data bus drains the burst in flight (`bus_free`).
    BusDrain(u32),
    /// A posted write's burst fully retires on channel `token` (writes
    /// complete after the issuing access returns).
    DeferredWriteback(u32),
}

impl CalendarEvent {
    /// The entry's `tie` key: class base + instance id. Classes occupy
    /// disjoint `u32`-wide spaces, so cross-class ties are impossible and
    /// same-cycle ordering is pinned to core < bank < bus < writeback.
    #[inline]
    pub fn tie(&self) -> u64 {
        match *self {
            CalendarEvent::CoreReady(idx) => TIE_CORE + idx as u64,
            CalendarEvent::BankReady(bi) => TIE_BANK + bi as u64,
            CalendarEvent::BusDrain(ch) => TIE_BUS + ch as u64,
            CalendarEvent::DeferredWriteback(tok) => TIE_WRITEBACK + tok as u64,
        }
    }
}

/// One scheduled entry; ordered for a *min*-heap on `(at, tie, seq)`.
#[derive(Debug, Clone)]
struct Entry<T> {
    at: Cycle,
    tie: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.tie == other.tie && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, the calendar pops earliest.
        (other.at, other.tie, other.seq).cmp(&(self.at, self.tie, self.seq))
    }
}

/// A deterministic min-heap of timestamped events.
///
/// Pop order is `(cycle, tie, insertion order)`. Use a stable identity as
/// `tie` (a core index, a flat bank index) to get scan-equivalent
/// deterministic ordering among simultaneous events; unrelated event
/// classes can share a calendar as long as their `tie` spaces make the
/// intended priority explicit ([`CalendarEvent::tie`] does exactly that).
#[derive(Debug, Clone)]
pub struct EventCalendar<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> Default for EventCalendar<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventCalendar<T> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        EventCalendar {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty calendar with room for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        EventCalendar {
            heap: BinaryHeap::with_capacity(n),
            seq: 0,
        }
    }

    /// Schedules `payload` at cycle `at`. Among entries with equal `at`,
    /// the lower `tie` pops first; full ties pop in insertion order.
    #[inline]
    pub fn schedule(&mut self, at: Cycle, tie: u64, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            at,
            tie,
            seq,
            payload,
        });
    }

    /// Removes and returns the earliest entry.
    #[inline]
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Cycle of the earliest entry without removing it.
    #[inline]
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// `(cycle, tie)` of the earliest entry without removing it — the key
    /// the sharded calendar merge compares across shards, and the key the
    /// runner's fast path compares against the running core to decide
    /// whether anything can preempt it.
    #[inline]
    pub fn peek_key(&self) -> Option<(Cycle, u64)> {
        self.heap.peek().map(|e| (e.at, e.tie))
    }

    /// Number of scheduled entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every scheduled entry (the sequence counter keeps advancing,
    /// so FIFO ordering stays stable across reuse).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_order() {
        let mut cal = EventCalendar::new();
        cal.schedule(30, 0, "c");
        cal.schedule(10, 0, "a");
        cal.schedule(20, 0, "b");
        assert_eq!(cal.pop(), Some((10, "a")));
        assert_eq!(cal.pop(), Some((20, "b")));
        assert_eq!(cal.pop(), Some((30, "c")));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn equal_cycles_break_ties_by_key_then_fifo() {
        let mut cal = EventCalendar::new();
        cal.schedule(5, 2, "tie2-first");
        cal.schedule(5, 1, "tie1");
        cal.schedule(5, 2, "tie2-second");
        assert_eq!(cal.pop(), Some((5, "tie1")));
        assert_eq!(cal.pop(), Some((5, "tie2-first")));
        assert_eq!(cal.pop(), Some((5, "tie2-second")));
    }

    #[test]
    fn matches_linear_scan_selection_order() {
        // The property the system runner relies on: popping the calendar
        // reproduces `min_by_key(now)` with lowest-index tie-breaking.
        let mut nows = [40u64, 10, 10, 25];
        let mut cal = EventCalendar::new();
        for (i, &n) in nows.iter().enumerate() {
            cal.schedule(n, i as u64, i);
        }
        let mut scan_order = Vec::new();
        let mut remaining: Vec<usize> = (0..nows.len()).collect();
        while !remaining.is_empty() {
            let &idx = remaining.iter().min_by_key(|&&i| nows[i]).unwrap();
            scan_order.push(idx);
            // Simulate the core advancing, then retiring on its third pick.
            nows[idx] += 30;
            if scan_order.iter().filter(|&&x| x == idx).count() == 3 {
                remaining.retain(|&i| i != idx);
            }
        }
        let mut nows2 = [40u64, 10, 10, 25];
        let mut heap_order = Vec::new();
        let mut picks = [0usize; 4];
        while let Some((_, idx)) = cal.pop() {
            heap_order.push(idx);
            nows2[idx] += 30;
            picks[idx] += 1;
            if picks[idx] < 3 {
                cal.schedule(nows2[idx], idx as u64, idx);
            }
        }
        assert_eq!(scan_order, heap_order);
    }

    #[test]
    fn typed_event_classes_pop_in_pinned_order() {
        // Mixed core/bank/bus/writeback entries at one cycle pop in the
        // documented class order; earlier cycles still win outright.
        let evs = [
            CalendarEvent::DeferredWriteback(0),
            CalendarEvent::BusDrain(1),
            CalendarEvent::BankReady(3),
            CalendarEvent::CoreReady(2),
        ];
        let mut cal = EventCalendar::new();
        for e in evs {
            cal.schedule(100, e.tie(), e);
        }
        cal.schedule(90, CalendarEvent::BankReady(7).tie(), CalendarEvent::BankReady(7));
        assert_eq!(cal.pop(), Some((90, CalendarEvent::BankReady(7))));
        assert_eq!(cal.pop(), Some((100, CalendarEvent::CoreReady(2))));
        assert_eq!(cal.pop(), Some((100, CalendarEvent::BankReady(3))));
        assert_eq!(cal.pop(), Some((100, CalendarEvent::BusDrain(1))));
        assert_eq!(cal.pop(), Some((100, CalendarEvent::DeferredWriteback(0))));
        assert_eq!(cal.pop(), None);
    }

    #[test]
    fn tie_spaces_are_disjoint() {
        // No instance id in one class can collide with another class.
        assert!(CalendarEvent::CoreReady(u32::MAX as usize).tie() < TIE_BANK);
        assert!(CalendarEvent::BankReady(u32::MAX).tie() < TIE_BUS);
        assert!(CalendarEvent::BusDrain(u32::MAX).tie() < TIE_WRITEBACK);
    }

    #[test]
    fn peek_len_clear() {
        let mut cal = EventCalendar::with_capacity(4);
        assert!(cal.is_empty());
        assert_eq!(cal.peek_cycle(), None);
        cal.schedule(7, 0, ());
        cal.schedule(3, 0, ());
        assert_eq!(cal.peek_cycle(), Some(3));
        assert_eq!(cal.len(), 2);
        cal.clear();
        assert!(cal.is_empty());
    }
}
