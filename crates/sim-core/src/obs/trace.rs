//! Cycle-stamped structured event tracing.
//!
//! Models emit typed [`TraceRecord`]s into a bounded ring buffer owned by
//! a [`Tracer`]. The tracer is a cheap cloneable handle: a disabled tracer
//! is a `None` and every emit is a single branch, so runs without
//! `IVL_TRACE` pay no measurable overhead. Each model holds its own clone
//! and stamps events with its component name, current cycle, and (where
//! meaningful) the security domain and core.
//!
//! Cycle stamps are monotonic *per component stream* but not globally at
//! emit time: the simulator advances the least-advanced core, so core A's
//! deep integrity walk can stamp cycles beyond core B's next issue.
//! [`Tracer::sorted_records`] therefore returns the buffer stably sorted
//! by cycle, which is the order the JSONL sink writes.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::domain::DomainId;
use crate::Cycle;

/// Default ring capacity when `IVL_TRACE_CAP` is unset.
pub const DEFAULT_TRACE_CAP: usize = 1 << 20;

/// Which cache a [`EventKind::CacheAccess`] hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheKind {
    /// A core-private L2.
    L2,
    /// The shared randomized LLC.
    Llc,
    /// The encryption-counter metadata cache.
    Counter,
    /// The integrity-tree node cache.
    Tree,
    /// The MAC cache.
    Mac,
    /// The leaf-to-metadata map (LMM) cache.
    Lmm,
}

impl CacheKind {
    /// Stable lowercase name used in trace output and filters.
    pub const fn name(self) -> &'static str {
        match self {
            CacheKind::L2 => "l2",
            CacheKind::Llc => "llc",
            CacheKind::Counter => "ctr_cache",
            CacheKind::Tree => "tree_cache",
            CacheKind::Mac => "mac_cache",
            CacheKind::Lmm => "lmm_cache",
        }
    }

    fn from_name(name: &str) -> Option<CacheKind> {
        Some(match name {
            "l2" => CacheKind::L2,
            "llc" => CacheKind::Llc,
            "ctr_cache" => CacheKind::Counter,
            "tree_cache" => CacheKind::Tree,
            "mac_cache" => CacheKind::Mac,
            "lmm_cache" => CacheKind::Lmm,
            _ => return None,
        })
    }
}

/// Outcome of a DRAM row-buffer access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowResult {
    /// Row already open.
    Hit,
    /// Bank had no open row.
    Empty,
    /// A different row was open and had to be closed.
    Conflict,
}

impl RowResult {
    /// Stable lowercase name used in trace output.
    pub const fn name(self) -> &'static str {
        match self {
            RowResult::Hit => "hit",
            RowResult::Empty => "empty",
            RowResult::Conflict => "conflict",
        }
    }

    fn from_name(name: &str) -> Option<RowResult> {
        Some(match name {
            "hit" => RowResult::Hit,
            "empty" => RowResult::Empty,
            "conflict" => RowResult::Conflict,
            _ => return None,
        })
    }
}

/// The typed payload of one trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// One DRAM transaction, stamped at issue with its modeled latency.
    DramAccess {
        /// Channel index.
        channel: u8,
        /// Bank index within the channel.
        bank: u8,
        /// Row-buffer outcome.
        row: RowResult,
        /// Whether this was a write.
        is_write: bool,
        /// Modeled service latency in cycles.
        latency: Cycle,
    },
    /// A lookup in one of the modeled caches.
    CacheAccess {
        /// Which cache.
        cache: CacheKind,
        /// Whether the lookup hit.
        hit: bool,
        /// Whether the fill evicted a victim.
        evicted: bool,
    },
    /// One level of an integrity-tree walk (level 0 = leaf/counter).
    TreeWalkLevel {
        /// Tree level visited.
        level: u8,
        /// Whether the node was found cached (terminating the walk).
        hit: bool,
    },
    /// An NFL buffer lookup or insertion.
    NflbAccess {
        /// Whether the entry was present.
        hit: bool,
    },
    /// An NFL buffer eviction (writeback to the NFL memory region).
    NflbEvict,
    /// An attacker probe observation (the latency the attack measures).
    Probe {
        /// Which secret bit this probe round targets.
        bit: u32,
        /// Observed probe latency in cycles.
        latency: Cycle,
    },
    /// A secure-page allocation.
    PageAlloc {
        /// Whether allocation failed (forest/slot exhaustion).
        failed: bool,
    },
    /// A secure-page deallocation.
    PageDealloc,
    /// A run-phase boundary (e.g. warmup → measurement).
    Epoch {
        /// Phase label, e.g. `"measure"`.
        label: &'static str,
    },
}

impl EventKind {
    /// Stable lowercase kind tag used in trace output and the CI smoke
    /// check.
    pub const fn tag(&self) -> &'static str {
        match self {
            EventKind::DramAccess { .. } => "dram",
            EventKind::CacheAccess { .. } => "cache",
            EventKind::TreeWalkLevel { .. } => "tree_walk",
            EventKind::NflbAccess { .. } => "nflb",
            EventKind::NflbEvict => "nflb_evict",
            EventKind::Probe { .. } => "probe",
            EventKind::PageAlloc { .. } => "page_alloc",
            EventKind::PageDealloc => "page_dealloc",
            EventKind::Epoch { .. } => "epoch",
        }
    }
}

/// One fully stamped trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Emission order (global, gap-free until the ring drops).
    pub seq: u64,
    /// Simulated cycle stamp.
    pub cycle: Cycle,
    /// Emitting component, e.g. `"dram"`, `"scheme"`, `"attacker"`.
    pub component: &'static str,
    /// Security domain, when the event is domain-attributable.
    pub domain: Option<DomainId>,
    /// Issuing core, when known.
    pub core: Option<u8>,
    /// Typed payload.
    pub kind: EventKind,
}

/// Component/domain filter parsed from `IVL_TRACE_FILTER`.
///
/// Syntax: comma-separated component names plus an optional `domain=<n>`
/// term, e.g. `dram,tree_cache,domain=2`. An empty component list admits
/// every component.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceFilter {
    components: Vec<String>,
    domain: Option<DomainId>,
}

impl TraceFilter {
    /// A filter admitting everything.
    pub fn all() -> Self {
        TraceFilter::default()
    }

    /// Parses the `IVL_TRACE_FILTER` syntax.
    pub fn parse(spec: &str) -> Self {
        let mut f = TraceFilter::default();
        for term in spec.split(',') {
            let term = term.trim();
            if term.is_empty() {
                continue;
            }
            if let Some(d) = term.strip_prefix("domain=") {
                f.domain = d.trim().parse::<u16>().ok().and_then(DomainId::new);
            } else {
                f.components.push(term.to_string());
            }
        }
        f
    }

    /// Whether a record passes this filter.
    pub fn admits(&self, record: &TraceRecord) -> bool {
        let comp_ok =
            self.components.is_empty() || self.components.iter().any(|c| c == record.component);
        let domain_ok = match self.domain {
            None => true,
            Some(want) => record.domain == Some(want),
        };
        comp_ok && domain_ok
    }
}

#[derive(Debug)]
struct TracerInner {
    ring: VecDeque<TraceRecord>,
    cap: usize,
    filter: TraceFilter,
    next_seq: u64,
    dropped: u64,
}

/// Cheap cloneable tracing handle.
///
/// A tracer built with [`Tracer::disabled`] (the default) makes every
/// [`emit`](Tracer::emit) a single `None` check. Handles share one ring,
/// so every model in a run appends to the same buffer; runs are
/// single-threaded per worker, hence the `Rc<RefCell<…>>` backing (the
/// handle is deliberately `!Send` — never store it in anything returned
/// across threads).
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TracerInner>>>,
}

impl Tracer {
    /// A no-op tracer.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An active tracer with the given ring capacity and filter.
    pub fn bounded(cap: usize, filter: TraceFilter) -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TracerInner {
                ring: VecDeque::with_capacity(cap.min(4096)),
                cap: cap.max(1),
                filter,
                next_seq: 0,
                dropped: 0,
            }))),
        }
    }

    /// Whether emits are recorded. Callers building expensive payloads
    /// should branch on this first.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event (drops the oldest record when the ring is full).
    pub fn emit(
        &self,
        cycle: Cycle,
        component: &'static str,
        domain: Option<DomainId>,
        core: Option<u8>,
        kind: EventKind,
    ) {
        let Some(inner) = &self.inner else { return };
        let mut t = inner.borrow_mut();
        let record = TraceRecord {
            seq: t.next_seq,
            cycle,
            component,
            domain,
            core,
            kind,
        };
        t.next_seq = t.next_seq.saturating_add(1);
        if !t.filter.admits(&record) {
            return;
        }
        if t.ring.len() == t.cap {
            t.ring.pop_front();
            t.dropped = t.dropped.saturating_add(1);
        }
        t.ring.push_back(record);
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.borrow().ring.len())
    }

    /// Whether the buffer is empty (or the tracer disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().dropped)
    }

    /// The buffered records, stably sorted by cycle (ties keep emission
    /// order). This is the canonical trace order written to JSONL.
    pub fn sorted_records(&self) -> Vec<TraceRecord> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut records: Vec<TraceRecord> = inner.borrow().ring.iter().cloned().collect();
        records.sort_by_key(|r| (r.cycle, r.seq));
        records
    }

    /// Drains the ring (keeps the tracer active and the seq counter
    /// running).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().ring.clear();
        }
    }
}

/// Serializes records as JSONL — one compact JSON object per line, in the
/// given order.
pub fn records_to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        let _ = write!(
            out,
            "{{\"seq\": {}, \"cycle\": {}, \"comp\": \"{}\", \"kind\": \"{}\"",
            r.seq,
            r.cycle,
            r.component,
            r.kind.tag()
        );
        if let Some(d) = r.domain {
            let _ = write!(out, ", \"domain\": {}", d.index());
        }
        if let Some(c) = r.core {
            let _ = write!(out, ", \"core\": {c}");
        }
        match &r.kind {
            EventKind::DramAccess {
                channel,
                bank,
                row,
                is_write,
                latency,
            } => {
                let _ = write!(
                    out,
                    ", \"channel\": {channel}, \"bank\": {bank}, \"row\": \"{}\", \"write\": {is_write}, \"latency\": {latency}",
                    row.name()
                );
            }
            EventKind::CacheAccess {
                cache,
                hit,
                evicted,
            } => {
                let _ = write!(
                    out,
                    ", \"cache\": \"{}\", \"hit\": {hit}, \"evicted\": {evicted}",
                    cache.name()
                );
            }
            EventKind::TreeWalkLevel { level, hit } => {
                let _ = write!(out, ", \"level\": {level}, \"hit\": {hit}");
            }
            EventKind::NflbAccess { hit } => {
                let _ = write!(out, ", \"hit\": {hit}");
            }
            EventKind::NflbEvict | EventKind::PageDealloc => {}
            EventKind::Probe { bit, latency } => {
                let _ = write!(out, ", \"bit\": {bit}, \"latency\": {latency}");
            }
            EventKind::PageAlloc { failed } => {
                let _ = write!(out, ", \"failed\": {failed}");
            }
            EventKind::Epoch { label } => {
                let _ = write!(out, ", \"label\": \"{label}\"");
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Parses a JSONL trace back into records (line-oriented; the component
/// string is leaked per distinct name, which is fine for the handful of
/// fixed component names the models emit).
///
/// # Errors
///
/// Returns `(line_number, description)` for the first malformed line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, (usize, String)> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        records.push(parse_line(line).map_err(|e| (idx + 1, e))?);
    }
    Ok(records)
}

fn parse_line(line: &str) -> Result<TraceRecord, String> {
    let fields = split_flat_object(line)?;
    let get = |k: &str| {
        fields
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    };
    let req = |k: &str| get(k).ok_or_else(|| format!("missing field `{k}`"));
    let num =
        |k: &str| -> Result<u64, String> { req(k)?.parse().map_err(|e| format!("bad `{k}`: {e}")) };
    let boolean = |k: &str| -> Result<bool, String> {
        req(k)?.parse().map_err(|e| format!("bad `{k}`: {e}"))
    };
    let unquote = |v: &str| -> Result<String, String> {
        let v = v
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("expected string, got `{v}`"))?;
        Ok(v.to_string())
    };

    let tag = unquote(req("kind")?)?;
    let kind = match tag.as_str() {
        "dram" => EventKind::DramAccess {
            channel: num("channel")? as u8,
            bank: num("bank")? as u8,
            row: RowResult::from_name(&unquote(req("row")?)?)
                .ok_or_else(|| "bad `row`".to_string())?,
            is_write: boolean("write")?,
            latency: num("latency")?,
        },
        "cache" => EventKind::CacheAccess {
            cache: CacheKind::from_name(&unquote(req("cache")?)?)
                .ok_or_else(|| "bad `cache`".to_string())?,
            hit: boolean("hit")?,
            evicted: boolean("evicted")?,
        },
        "tree_walk" => EventKind::TreeWalkLevel {
            level: num("level")? as u8,
            hit: boolean("hit")?,
        },
        "nflb" => EventKind::NflbAccess {
            hit: boolean("hit")?,
        },
        "nflb_evict" => EventKind::NflbEvict,
        "probe" => EventKind::Probe {
            bit: num("bit")? as u32,
            latency: num("latency")?,
        },
        "page_alloc" => EventKind::PageAlloc {
            failed: boolean("failed")?,
        },
        "page_dealloc" => EventKind::PageDealloc,
        "epoch" => EventKind::Epoch {
            label: leak_name(&unquote(req("label")?)?),
        },
        other => return Err(format!("unknown kind `{other}`")),
    };

    Ok(TraceRecord {
        seq: num("seq")?,
        cycle: num("cycle")?,
        component: leak_name(&unquote(req("comp")?)?),
        domain: get("domain")
            .map(|v| v.parse::<u16>())
            .transpose()
            .map_err(|e| format!("bad `domain`: {e}"))?
            .and_then(DomainId::new),
        core: get("core")
            .map(|v| v.parse::<u8>())
            .transpose()
            .map_err(|e| format!("bad `core`: {e}"))?,
        kind,
    })
}

/// Interns a component/label name as `&'static str`. Only the small fixed
/// vocabulary of model names ever reaches this, so the intentional leak is
/// bounded.
fn leak_name(name: &str) -> &'static str {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static KNOWN: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut known = KNOWN.lock().expect("name intern table poisoned");
    if let Some(existing) = known.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    known.insert(leaked);
    leaked
}

/// Splits one flat `{"k": v, ...}` object into `(key, raw_value)` pairs.
/// Values are either numbers, booleans, or strings without embedded
/// quotes/commas — all the trace serializer ever writes.
fn split_flat_object(line: &str) -> Result<Vec<(String, String)>, String> {
    let body = line
        .strip_prefix('{')
        .and_then(|l| l.strip_suffix('}'))
        .ok_or("line is not a JSON object")?;
    let mut fields = Vec::new();
    for part in split_top_level_commas(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, value) = part.split_once(':').ok_or("field missing `:`")?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or("key is not a string")?;
        fields.push((key.to_string(), value.trim().to_string()));
    }
    Ok(fields)
}

fn split_top_level_commas(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut in_string = false;
    let mut start = 0;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

/// Forensics: the attacker-visible probe observations in a trace, in
/// trace order — `(bit, latency)` pairs matching what `attack-sim`
/// records as `LatencySample`s.
pub fn probe_observations(records: &[TraceRecord]) -> Vec<(u32, Cycle)> {
    records
        .iter()
        .filter_map(|r| match r.kind {
            EventKind::Probe { bit, latency } => Some((bit, latency)),
            _ => None,
        })
        .collect()
}

/// Forensics: reconstructs the metadata-cache access pattern the attack
/// measures — every counter/tree/MAC/LMM cache lookup plus tree-walk
/// levels, as `(cycle, component, hit)` triples in trace order. Contiguous
/// miss runs in this stream are exactly the signal the occupancy attack
/// times.
pub fn metadata_accesses(records: &[TraceRecord]) -> Vec<(Cycle, &'static str, bool)> {
    records
        .iter()
        .filter_map(|r| match r.kind {
            EventKind::CacheAccess { cache, hit, .. }
                if !matches!(cache, CacheKind::L2 | CacheKind::Llc) =>
            {
                Some((r.cycle, cache.name(), hit))
            }
            EventKind::TreeWalkLevel { hit, .. } => Some((r.cycle, "tree_walk", hit)),
            EventKind::NflbAccess { hit } => Some((r.cycle, "nflb", hit)),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_tracer() -> Tracer {
        Tracer::bounded(16, TraceFilter::all())
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.emit(5, "dram", None, None, EventKind::PageDealloc);
        assert!(t.is_empty());
        assert!(t.sorted_records().is_empty());
    }

    #[test]
    fn ring_drops_oldest_beyond_capacity() {
        let t = Tracer::bounded(3, TraceFilter::all());
        for i in 0..5u64 {
            t.emit(i, "dram", None, None, EventKind::PageDealloc);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let cycles: Vec<_> = t.sorted_records().iter().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn sorted_records_orders_by_cycle_then_seq() {
        let t = probe_tracer();
        t.emit(10, "scheme", None, Some(1), EventKind::PageDealloc);
        t.emit(4, "dram", None, Some(0), EventKind::PageDealloc);
        t.emit(10, "dram", None, Some(0), EventKind::PageDealloc);
        let r = t.sorted_records();
        assert_eq!(
            r.iter().map(|r| (r.cycle, r.seq)).collect::<Vec<_>>(),
            vec![(4, 1), (10, 0), (10, 2)]
        );
    }

    #[test]
    fn filter_by_component_and_domain() {
        let f = TraceFilter::parse("dram, tree_cache, domain=2");
        let mk = |comp: &'static str, domain: Option<u16>| TraceRecord {
            seq: 0,
            cycle: 0,
            component: comp,
            domain: domain.map(DomainId::new_unchecked),
            core: None,
            kind: EventKind::PageDealloc,
        };
        assert!(f.admits(&mk("dram", Some(2))));
        assert!(!f.admits(&mk("dram", Some(3))));
        assert!(!f.admits(&mk("dram", None)));
        assert!(!f.admits(&mk("scheme", Some(2))));
        assert!(TraceFilter::all().admits(&mk("anything", None)));
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let t = probe_tracer();
        t.emit(
            1,
            "dram",
            Some(DomainId::new_unchecked(3)),
            Some(2),
            EventKind::DramAccess {
                channel: 1,
                bank: 7,
                row: RowResult::Conflict,
                is_write: true,
                latency: 38,
            },
        );
        t.emit(
            2,
            "scheme",
            Some(DomainId::new_unchecked(3)),
            None,
            EventKind::CacheAccess {
                cache: CacheKind::Tree,
                hit: false,
                evicted: true,
            },
        );
        t.emit(
            3,
            "scheme",
            None,
            None,
            EventKind::TreeWalkLevel {
                level: 4,
                hit: true,
            },
        );
        t.emit(
            4,
            "scheme",
            None,
            None,
            EventKind::NflbAccess { hit: false },
        );
        t.emit(5, "scheme", None, None, EventKind::NflbEvict);
        t.emit(
            6,
            "attacker",
            None,
            None,
            EventKind::Probe {
                bit: 12,
                latency: 900,
            },
        );
        t.emit(
            7,
            "scheme",
            None,
            None,
            EventKind::PageAlloc { failed: true },
        );
        t.emit(8, "scheme", None, None, EventKind::PageDealloc);
        t.emit(9, "run", None, None, EventKind::Epoch { label: "measure" });
        let records = t.sorted_records();
        let text = records_to_jsonl(&records);
        let back = parse_jsonl(&text).expect("parse own output");
        assert_eq!(back, records);
    }

    #[test]
    fn forensics_helpers_extract_expected_streams() {
        let t = probe_tracer();
        t.emit(
            1,
            "scheme",
            None,
            None,
            EventKind::CacheAccess {
                cache: CacheKind::Counter,
                hit: true,
                evicted: false,
            },
        );
        t.emit(
            2,
            "cache",
            None,
            None,
            EventKind::CacheAccess {
                cache: CacheKind::Llc,
                hit: true,
                evicted: false,
            },
        );
        t.emit(
            3,
            "scheme",
            None,
            None,
            EventKind::TreeWalkLevel {
                level: 1,
                hit: false,
            },
        );
        t.emit(
            4,
            "attacker",
            None,
            None,
            EventKind::Probe {
                bit: 5,
                latency: 777,
            },
        );
        let records = t.sorted_records();
        assert_eq!(
            metadata_accesses(&records),
            vec![(1, "ctr_cache", true), (3, "tree_walk", false)],
            "LLC access is not metadata"
        );
        assert_eq!(probe_observations(&records), vec![(5, 777)]);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"seq\": 0}").is_err());
        let err = parse_jsonl("{\"seq\": 0, \"cycle\": 1, \"comp\": \"x\", \"kind\": \"nope\"}")
            .unwrap_err();
        assert_eq!(err.0, 1);
    }
}
