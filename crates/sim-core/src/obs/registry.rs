//! Hierarchical statistics registry.
//!
//! Components export named statistics under dotted paths
//! (`dram.ch0.bank3.row_conflicts`, `scheme.tree_cache`, …) into a
//! [`StatsRegistry`]. A registry is a *snapshot*: collecting one is cheap,
//! and two snapshots subtract ([`StatsRegistry::delta`]) to isolate a
//! measurement window — this is the single warmup-epoch mechanism the
//! simulator uses instead of per-model `reset_stats` calls.
//!
//! Export formats:
//!
//! * [`StatsRegistry::to_json`] — a flat JSON object, one dotted path per
//!   key, parseable back with [`StatsRegistry::parse_json`] (exact
//!   round-trip; the `IVL_STATS_JSON` sink uses this);
//! * [`StatsRegistry::to_kv`] — a [`KvDoc`] via the in-tree `kv`
//!   serializer, rendering as the TOML-subset table form with derived
//!   convenience values (`*.hit_rate`, histogram means).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use ivl_testkit::kv::KvDoc;

use crate::stats::HitMiss;

/// One statistic node in the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum StatValue {
    /// Monotonically increasing event count; deltas subtract.
    Counter(u64),
    /// Point-in-time level (occupancy, utilization); deltas keep the
    /// later value.
    Gauge(f64),
    /// Hit/miss pair; deltas subtract fieldwise.
    Ratio {
        /// Recorded hits.
        hits: u64,
        /// Recorded misses.
        misses: u64,
    },
    /// Fixed-width histogram bins; deltas subtract binwise.
    Histogram(Vec<u64>),
}

impl StatValue {
    /// The change from `earlier` to `self` under each node's delta rule.
    /// A variant mismatch (a path that changed meaning between snapshots)
    /// keeps the later value unchanged.
    fn since(&self, earlier: &StatValue) -> StatValue {
        match (self, earlier) {
            (StatValue::Counter(now), StatValue::Counter(then)) => {
                StatValue::Counter(now.saturating_sub(*then))
            }
            (StatValue::Gauge(now), StatValue::Gauge(_)) => StatValue::Gauge(*now),
            (
                StatValue::Ratio { hits, misses },
                StatValue::Ratio {
                    hits: eh,
                    misses: em,
                },
            ) => StatValue::Ratio {
                hits: hits.saturating_sub(*eh),
                misses: misses.saturating_sub(*em),
            },
            (StatValue::Histogram(now), StatValue::Histogram(then)) => StatValue::Histogram(
                now.iter()
                    .enumerate()
                    .map(|(i, &n)| n.saturating_sub(then.get(i).copied().unwrap_or(0)))
                    .collect(),
            ),
            (later, _) => later.clone(),
        }
    }
}

/// A snapshot of dotted-path statistics.
///
/// # Examples
///
/// ```
/// use ivl_sim_core::obs::registry::StatsRegistry;
///
/// let mut warm = StatsRegistry::new();
/// warm.set_counter("dram.reads", 100);
/// let mut end = StatsRegistry::new();
/// end.set_counter("dram.reads", 140);
/// let measured = end.delta(&warm);
/// assert_eq!(measured.counter("dram.reads"), Some(40));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsRegistry {
    nodes: BTreeMap<String, StatValue>,
}

impl StatsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        StatsRegistry::default()
    }

    /// Number of registered paths.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no paths are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Sets a node, replacing any previous value at `path`.
    pub fn set(&mut self, path: &str, value: StatValue) {
        self.nodes.insert(path.to_string(), value);
    }

    /// Sets a counter node.
    pub fn set_counter(&mut self, path: &str, value: u64) {
        self.set(path, StatValue::Counter(value));
    }

    /// Adds to a counter node (creating it at zero first).
    pub fn add_counter(&mut self, path: &str, value: u64) {
        match self.nodes.get_mut(path) {
            Some(StatValue::Counter(v)) => *v = v.saturating_add(value),
            _ => self.set_counter(path, value),
        }
    }

    /// Sets a gauge node.
    pub fn set_gauge(&mut self, path: &str, value: f64) {
        self.set(path, StatValue::Gauge(value));
    }

    /// Sets a hit/miss ratio node.
    pub fn set_ratio(&mut self, path: &str, hm: HitMiss) {
        self.set(
            path,
            StatValue::Ratio {
                hits: hm.hits(),
                misses: hm.misses(),
            },
        );
    }

    /// Sets a histogram node from raw bin counts.
    pub fn set_histogram(&mut self, path: &str, bins: &[u64]) {
        self.set(path, StatValue::Histogram(bins.to_vec()));
    }

    /// The node at `path`.
    pub fn get(&self, path: &str) -> Option<&StatValue> {
        self.nodes.get(path)
    }

    /// The counter at `path`, if that path is a counter.
    pub fn counter(&self, path: &str) -> Option<u64> {
        match self.get(path)? {
            StatValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge at `path`, if that path is a gauge.
    pub fn gauge(&self, path: &str) -> Option<f64> {
        match self.get(path)? {
            StatValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The ratio at `path` as a [`HitMiss`], if that path is a ratio.
    pub fn ratio(&self, path: &str) -> Option<HitMiss> {
        match self.get(path)? {
            StatValue::Ratio { hits, misses } => Some(HitMiss::from_parts(*hits, *misses)),
            _ => None,
        }
    }

    /// The `pct`-th percentile (in `0.0..=1.0`) of the histogram at `path`,
    /// read as "the smallest bin index whose cumulative count reaches
    /// `pct · total`" — registry histograms are index-valued (bin *i* counts
    /// occurrences of value *i*, e.g. walk depth). `None` when the path is
    /// not a histogram or the histogram is empty.
    pub fn histogram_percentile(&self, path: &str, pct: f64) -> Option<u64> {
        match self.get(path)? {
            StatValue::Histogram(bins) => {
                let total = bins.iter().fold(0u64, |a, &b| a.saturating_add(b));
                if total == 0 {
                    return None;
                }
                Some(crate::obs::timeline::percentile_of_bins(
                    bins,
                    total,
                    pct,
                    |i| i as u64,
                ))
            }
            _ => None,
        }
    }

    /// Iterates `(path, value)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StatValue)> {
        self.nodes.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The change from `earlier` to `self`: counters/ratios/histograms
    /// subtract (saturating), gauges keep the later value. Paths present
    /// only in `self` are kept as-is (they accumulated entirely inside the
    /// window); paths present only in `earlier` are dropped.
    pub fn delta(&self, earlier: &StatsRegistry) -> StatsRegistry {
        let mut out = StatsRegistry::new();
        for (path, value) in &self.nodes {
            let d = match earlier.nodes.get(path) {
                Some(then) => value.since(then),
                None => value.clone(),
            };
            out.nodes.insert(path.clone(), d);
        }
        out
    }

    /// Exports through the in-tree `kv` serializer: counters and gauges
    /// map directly, ratios expand to `.hits`/`.misses`/`.hit_rate`,
    /// histograms to `.bin<i>`/`.total` plus `.p50`/`.p95`/`.p99`
    /// percentile bins (omitted when empty).
    pub fn to_kv(&self) -> KvDoc {
        let mut doc = KvDoc::new();
        let clamp = |v: u64| v.min(i64::MAX as u64);
        for (path, value) in &self.nodes {
            match value {
                StatValue::Counter(v) => doc.set_u64(path, clamp(*v)),
                StatValue::Gauge(v) => doc.set_f64(path, *v),
                StatValue::Ratio { hits, misses } => {
                    doc.set_u64(&format!("{path}.hits"), clamp(*hits));
                    doc.set_u64(&format!("{path}.misses"), clamp(*misses));
                    doc.set_f64(
                        &format!("{path}.hit_rate"),
                        HitMiss::from_parts(*hits, *misses).hit_rate(),
                    );
                }
                StatValue::Histogram(bins) => {
                    for (i, b) in bins.iter().enumerate() {
                        doc.set_u64(&format!("{path}.bin{i}"), clamp(*b));
                    }
                    doc.set_u64(
                        &format!("{path}.total"),
                        clamp(bins.iter().fold(0u64, |a, &b| a.saturating_add(b))),
                    );
                    for (tag, pct) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                        if let Some(p) = self.histogram_percentile(path, pct) {
                            doc.set_u64(&format!("{path}.{tag}"), clamp(p));
                        }
                    }
                }
            }
        }
        doc
    }

    /// The TOML-subset table rendering of [`to_kv`](Self::to_kv).
    pub fn to_table_string(&self) -> String {
        self.to_kv().to_toml_string()
    }

    /// Serializes as a flat JSON object: counters as integers, gauges as
    /// floats (always containing `.` or an exponent), ratios as
    /// `{"hits": h, "misses": m}`, histograms as integer arrays. This form
    /// round-trips exactly through [`parse_json`](Self::parse_json).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (path, value)) in self.nodes.iter().enumerate() {
            let comma = if i + 1 < self.nodes.len() { "," } else { "" };
            let _ = write!(out, "  \"{}\": ", json_escape(path));
            match value {
                StatValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                StatValue::Gauge(v) => {
                    let _ = write!(out, "{}", json_f64(*v));
                }
                StatValue::Ratio { hits, misses } => {
                    let _ = write!(out, "{{\"hits\": {hits}, \"misses\": {misses}}}");
                }
                StatValue::Histogram(bins) => {
                    let _ = write!(out, "[");
                    for (j, b) in bins.iter().enumerate() {
                        let sep = if j == 0 { "" } else { ", " };
                        let _ = write!(out, "{sep}{b}");
                    }
                    let _ = write!(out, "]");
                }
            }
            let _ = writeln!(out, "{comma}");
        }
        out.push_str("}\n");
        out
    }

    /// Parses the flat JSON form produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn parse_json(text: &str) -> Result<StatsRegistry, String> {
        let mut p = Parser {
            chars: text.char_indices().peekable(),
            text,
        };
        p.skip_ws();
        p.expect('{')?;
        let mut reg = StatsRegistry::new();
        p.skip_ws();
        if p.peek() == Some('}') {
            p.next_char();
            return Ok(reg);
        }
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(':')?;
            p.skip_ws();
            let value = p.value()?;
            reg.nodes.insert(key, value);
            p.skip_ws();
            match p.next_char() {
                Some(',') => continue,
                Some('}') => return Ok(reg),
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0.0".to_string();
    }
    // `{:?}` prints the shortest round-tripping decimal and always keeps a
    // `.` or exponent, so integers and floats stay distinguishable.
    format!("{v:?}")
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.next_char();
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().map(|(_, c)| *c)
    }

    fn next_char(&mut self) -> Option<char> {
        self.chars.next().map(|(_, c)| c)
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.next_char() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected `{want}`, got {other:?}")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next_char() {
                Some('"') => return Ok(out),
                Some('\\') => match self.next_char() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .next_char()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number_token(&mut self) -> Result<String, String> {
        let mut tok = String::new();
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
        ) {
            tok.push(self.next_char().expect("peeked"));
        }
        if tok.is_empty() {
            let at = self
                .chars
                .peek()
                .map(|(i, _)| *i)
                .unwrap_or(self.text.len());
            return Err(format!("expected a number at byte {at}"));
        }
        Ok(tok)
    }

    fn value(&mut self) -> Result<StatValue, String> {
        match self.peek() {
            Some('{') => {
                // Ratio object: {"hits": h, "misses": m} in either order.
                self.next_char();
                let (mut hits, mut misses) = (None, None);
                loop {
                    self.skip_ws();
                    if self.peek() == Some('}') {
                        self.next_char();
                        break;
                    }
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(':')?;
                    self.skip_ws();
                    let tok = self.number_token()?;
                    let v: u64 = tok.parse().map_err(|e| format!("bad ratio field: {e}"))?;
                    match key.as_str() {
                        "hits" => hits = Some(v),
                        "misses" => misses = Some(v),
                        other => return Err(format!("unknown ratio field `{other}`")),
                    }
                    self.skip_ws();
                    match self.next_char() {
                        Some(',') => continue,
                        Some('}') => break,
                        other => return Err(format!("expected `,` or `}}`, got {other:?}")),
                    }
                }
                Ok(StatValue::Ratio {
                    hits: hits.ok_or("ratio missing `hits`")?,
                    misses: misses.ok_or("ratio missing `misses`")?,
                })
            }
            Some('[') => {
                self.next_char();
                let mut bins = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.next_char();
                    return Ok(StatValue::Histogram(bins));
                }
                loop {
                    self.skip_ws();
                    let tok = self.number_token()?;
                    bins.push(tok.parse().map_err(|e| format!("bad bin: {e}"))?);
                    self.skip_ws();
                    match self.next_char() {
                        Some(',') => continue,
                        Some(']') => return Ok(StatValue::Histogram(bins)),
                        other => return Err(format!("expected `,` or `]`, got {other:?}")),
                    }
                }
            }
            _ => {
                let tok = self.number_token()?;
                if let Ok(v) = tok.parse::<u64>() {
                    Ok(StatValue::Counter(v))
                } else {
                    Ok(StatValue::Gauge(
                        tok.parse::<f64>().map_err(|e| format!("bad number: {e}"))?,
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsRegistry {
        let mut r = StatsRegistry::new();
        r.set_counter("dram.reads", 123);
        r.set_counter("dram.ch0.bank3.row_conflicts", 7);
        r.set_gauge("forest.utilization", 0.375);
        r.set(
            "scheme.tree_cache",
            StatValue::Ratio {
                hits: 10,
                misses: 4,
            },
        );
        r.set_histogram("scheme.walk_depth", &[0, 5, 9, 0]);
        r
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample();
        let back = StatsRegistry::parse_json(&r.to_json()).expect("parse own output");
        assert_eq!(r, back);
    }

    #[test]
    fn empty_registry_round_trips() {
        let r = StatsRegistry::new();
        assert_eq!(StatsRegistry::parse_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn delta_subtracts_counters_and_keeps_gauges() {
        let warm = sample();
        let mut end = sample();
        end.add_counter("dram.reads", 40);
        end.set_gauge("forest.utilization", 0.5);
        end.set(
            "scheme.tree_cache",
            StatValue::Ratio {
                hits: 25,
                misses: 5,
            },
        );
        end.set_counter("fresh.counter", 3);
        let d = end.delta(&warm);
        assert_eq!(d.counter("dram.reads"), Some(40));
        assert_eq!(d.gauge("forest.utilization"), Some(0.5));
        assert_eq!(
            d.get("scheme.tree_cache"),
            Some(&StatValue::Ratio {
                hits: 15,
                misses: 1
            })
        );
        assert_eq!(d.counter("fresh.counter"), Some(3), "window-only path kept");
    }

    #[test]
    fn delta_is_saturating() {
        let mut warm = StatsRegistry::new();
        warm.set_counter("c", 100);
        let mut end = StatsRegistry::new();
        end.set_counter("c", 40); // nonsensical ordering
        assert_eq!(end.delta(&warm).counter("c"), Some(0));
    }

    #[test]
    fn kv_export_expands_ratios_and_histograms() {
        let text = sample().to_table_string();
        assert!(
            text.contains("hit_rate = 0.7142857142857143") || text.contains("hit_rate = 0.714")
        );
        assert!(text.contains("bin2 = 9"));
        assert!(text.contains("[dram]\nreads = 123"));
        // Percentile satellites ride along in the table export.
        assert!(text.contains("p50 = 2"));
        assert!(text.contains("p95 = 2"));
        assert!(text.contains("p99 = 2"));
    }

    #[test]
    fn histogram_percentiles_walk_cumulative_bins() {
        let r = sample();
        // bins [0, 5, 9, 0], total 14: p·14 targets 7 → bin 2, 0.25·14 → bin 1.
        assert_eq!(r.histogram_percentile("scheme.walk_depth", 0.50), Some(2));
        assert_eq!(r.histogram_percentile("scheme.walk_depth", 0.25), Some(1));
        assert_eq!(r.histogram_percentile("scheme.walk_depth", 0.99), Some(2));
        assert_eq!(r.histogram_percentile("dram.reads", 0.5), None);
        let mut empty = StatsRegistry::new();
        empty.set_histogram("h", &[0, 0]);
        assert_eq!(empty.histogram_percentile("h", 0.5), None);
    }

    #[test]
    fn ratio_accessor_reconstructs_hitmiss() {
        let r = sample();
        let hm = r.ratio("scheme.tree_cache").unwrap();
        assert_eq!((hm.hits(), hm.misses()), (10, 4));
        assert!(r.ratio("dram.reads").is_none());
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(StatsRegistry::parse_json("").is_err());
        assert!(StatsRegistry::parse_json("{\"a\": }").is_err());
        assert!(StatsRegistry::parse_json("{\"a\": {\"hits\": 1}}").is_err());
        assert!(StatsRegistry::parse_json("{\"a\": [1,]}").is_err());
    }

    #[test]
    fn escaped_paths_round_trip() {
        let mut r = StatsRegistry::new();
        r.set_counter("weird\"path\\with\nescapes", 1);
        let back = StatsRegistry::parse_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }
}
