//! Windowed simulated-time metric series (DESIGN.md §11).
//!
//! Where the [`registry`](super::registry) answers "how much, in total, over
//! the measured epoch", the timeline answers "how much, *when*": every record
//! lands in a window of configurable width keyed on the simulated cycle, and
//! each `(series, window)` cell is a counter, a gauge, or a log₂-bucketed
//! histogram. The recorder mirrors the tracer's shape — a cheap cloneable
//! `!Send` [`Timeline`] handle that is a single branch when disabled, with a
//! ring bound (drop-oldest, counted) so an unexpectedly long run cannot eat
//! the host.
//!
//! [`TimelineData`] is the plain, `Send`, order-independent snapshot:
//! per-worker series from ParSystem shards [`merge`](TimelineData::merge)
//! with saturating adds (counters, histogram buckets) and max (gauges), all
//! associative and commutative, so the combined series is bit-identical no
//! matter which worker commits first. Export is line-oriented JSONL (exact
//! round-trip via [`parse_jsonl`]) or CSV for plotting.

use std::cell::RefCell;
use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// Default window width in simulated cycles (`IVL_TIMELINE_WINDOW`).
pub const DEFAULT_TIMELINE_WINDOW: u64 = 10_000;
/// Default per-series window cap (`IVL_TIMELINE_CAP`).
pub const DEFAULT_TIMELINE_CAP: usize = 4_096;

/// Histogram bucket count: bucket 0 holds zero values, bucket `b ≥ 1` holds
/// `[2^(b-1), 2^b)`, so bucket 64 tops out the `u64` range.
pub const HIST_BUCKETS: usize = 65;

/// Which cell type a series carries (fixed at first record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Saturating event count per window.
    Counter,
    /// High-water mark per window (merge keeps the max).
    Gauge,
    /// Log₂-bucketed value distribution per window.
    Hist,
}

impl SeriesKind {
    /// Stable wire tag.
    pub fn tag(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Hist => "hist",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "counter" => Some(SeriesKind::Counter),
            "gauge" => Some(SeriesKind::Gauge),
            "hist" => Some(SeriesKind::Hist),
            _ => None,
        }
    }
}

/// Per-window log₂ histogram with exact count/sum and observed min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistCell {
    /// Number of observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Log₂ occupancy (see [`HIST_BUCKETS`]).
    pub buckets: Box<[u64; HIST_BUCKETS]>,
}

/// Index of the log₂ bucket holding `v`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl HistCell {
    /// A cell with no observations (`min` starts saturated high so the
    /// first sample overwrites it).
    pub fn empty() -> Self {
        HistCell {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Box::new([0; HIST_BUCKETS]),
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] = self.buckets[bucket_of(v)].saturating_add(1);
    }

    /// Saturating element-wise combine with another cell.
    pub fn merge(&mut self, other: &HistCell) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// Approximate percentile (`pct` in `0.0..=1.0`): the upper bound of the
    /// first bucket whose cumulative count reaches `pct · count`, clamped to
    /// the observed max — so the error is at most one power of two and never
    /// exceeds the true range.
    pub fn percentile(&self, pct: f64) -> u64 {
        percentile_of_bins(&self.buckets[..], self.count, pct, |b| {
            // Upper bound of bucket b: 0, then 2^b - 1.
            if b == 0 {
                0
            } else if b >= 64 {
                u64::MAX
            } else {
                (1u64 << b) - 1
            }
        })
        .min(self.max)
    }
}

/// Shared percentile walk over cumulative bins: smallest bin whose cumulative
/// count reaches `pct · total`, mapped through `value_of`. Returns 0 for an
/// empty histogram.
pub fn percentile_of_bins(
    bins: &[u64],
    total: u64,
    pct: f64,
    value_of: impl Fn(usize) -> u64,
) -> u64 {
    if total == 0 {
        return 0;
    }
    let target = ((pct * total as f64).ceil() as u64).clamp(1, total);
    let mut cum = 0u64;
    for (i, &b) in bins.iter().enumerate() {
        cum = cum.saturating_add(b);
        if cum >= target {
            return value_of(i);
        }
    }
    value_of(bins.len().saturating_sub(1))
}

/// One `(series, window)` cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Saturating count.
    Counter(u64),
    /// Window high-water mark.
    Gauge(f64),
    /// Log₂ histogram.
    Hist(HistCell),
}

impl Cell {
    fn kind(&self) -> SeriesKind {
        match self {
            Cell::Counter(_) => SeriesKind::Counter,
            Cell::Gauge(_) => SeriesKind::Gauge,
            Cell::Hist(_) => SeriesKind::Hist,
        }
    }

    fn merge(&mut self, other: &Cell) {
        match (self, other) {
            (Cell::Counter(a), Cell::Counter(b)) => *a = a.saturating_add(*b),
            (Cell::Gauge(a), Cell::Gauge(b)) => *a = a.max(*b),
            (Cell::Hist(a), Cell::Hist(b)) => a.merge(b),
            _ => debug_assert!(false, "merging mismatched cell kinds"),
        }
    }
}

/// One named series: its kind, its retained windows (ascending by window
/// index, at most `cap`), and how many windows the cap evicted.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Cell type, fixed by the first record.
    pub kind: SeriesKind,
    /// `(window index, cell)` pairs, sorted ascending, no duplicates.
    pub windows: VecDeque<(u64, Cell)>,
    /// Windows lost to the cap (drop-oldest), plus records that arrived for
    /// an already-evicted window.
    pub dropped: u64,
}

impl Series {
    fn new(kind: SeriesKind) -> Self {
        Series {
            kind,
            windows: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The cell for window `wi`, creating (and cap-bounding) as needed.
    /// `None` when the window was already evicted by the cap.
    fn cell_mut(&mut self, wi: u64, cap: usize, fresh: impl FnOnce() -> Cell) -> Option<&mut Cell> {
        // Hot path: records arrive with non-decreasing cycles.
        match self.windows.back() {
            Some(&(back, _)) if back == wi => {
                let last = self.windows.len() - 1;
                return Some(&mut self.windows[last].1);
            }
            Some(&(back, _)) if back > wi => {
                // Out-of-order record: binary search the retained ring.
                let pos = self.windows.partition_point(|&(w, _)| w < wi);
                if self.windows.get(pos).map(|&(w, _)| w) == Some(wi) {
                    return Some(&mut self.windows[pos].1);
                }
                if pos == 0 && self.dropped > 0 {
                    // The target window fell off the front already.
                    self.dropped = self.dropped.saturating_add(1);
                    return None;
                }
                self.windows.insert(pos, (wi, fresh()));
                self.enforce_cap(cap);
                let pos = self.windows.partition_point(|&(w, _)| w < wi);
                return match self.windows.get(pos).map(|&(w, _)| w) {
                    Some(w) if w == wi => Some(&mut self.windows[pos].1),
                    _ => None, // the insert itself was the oldest window
                };
            }
            _ => {}
        }
        self.windows.push_back((wi, fresh()));
        self.enforce_cap(cap);
        match self.windows.back() {
            Some(&(back, _)) if back == wi => {
                let last = self.windows.len() - 1;
                Some(&mut self.windows[last].1)
            }
            _ => None,
        }
    }

    fn enforce_cap(&mut self, cap: usize) {
        while self.windows.len() > cap.max(1) {
            self.windows.pop_front();
            self.dropped = self.dropped.saturating_add(1);
        }
    }

    /// Saturating sum over counter windows (0 for other kinds).
    pub fn counter_sum(&self) -> u64 {
        self.windows.iter().fold(0u64, |acc, (_, c)| match c {
            Cell::Counter(v) => acc.saturating_add(*v),
            _ => acc,
        })
    }

    /// Total observations across histogram windows.
    pub fn hist_count(&self) -> u64 {
        self.windows.iter().fold(0u64, |acc, (_, c)| match c {
            Cell::Hist(h) => acc.saturating_add(h.count),
            _ => acc,
        })
    }

    fn merge(&mut self, other: &Series, cap: usize) {
        debug_assert_eq!(self.kind, other.kind, "merging mismatched series kinds");
        self.dropped = self.dropped.saturating_add(other.dropped);
        for (wi, cell) in &other.windows {
            if other.kind != self.kind {
                continue;
            }
            if let Some(mine) = self.cell_mut(*wi, cap, || match other.kind {
                SeriesKind::Counter => Cell::Counter(0),
                SeriesKind::Gauge => Cell::Gauge(f64::NEG_INFINITY),
                SeriesKind::Hist => Cell::Hist(HistCell::empty()),
            }) {
                mine.merge(cell);
            }
        }
    }
}

/// A full timeline snapshot: plain data, `Send`, mergeable, serializable.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineData {
    /// Window width in simulated cycles.
    pub window: u64,
    /// Maximum retained windows per series (drop-oldest beyond it).
    pub cap: usize,
    /// Series by dotted name.
    pub series: BTreeMap<String, Series>,
}

impl Default for TimelineData {
    fn default() -> Self {
        TimelineData::new(DEFAULT_TIMELINE_WINDOW, DEFAULT_TIMELINE_CAP)
    }
}

impl TimelineData {
    /// An empty timeline with the given window width and per-series cap.
    pub fn new(window: u64, cap: usize) -> Self {
        TimelineData {
            window: window.max(1),
            cap: cap.max(1),
            series: BTreeMap::new(),
        }
    }

    /// The window index holding `cycle`.
    pub fn window_of(&self, cycle: u64) -> u64 {
        cycle / self.window
    }

    /// True when no series holds any window.
    pub fn is_empty(&self) -> bool {
        self.series.values().all(|s| s.windows.is_empty())
    }

    fn series_mut(&mut self, name: &str, kind: SeriesKind) -> &mut Series {
        // Steady state never allocates: the entry API only clones the name
        // when the series is first seen.
        if !self.series.contains_key(name) {
            self.series.insert(name.to_string(), Series::new(kind));
        }
        self.series.get_mut(name).expect("just ensured")
    }

    /// Adds `n` to the counter series `name` in `cycle`'s window.
    pub fn count(&mut self, name: &str, cycle: u64, n: u64) {
        let (window, cap) = (self.window, self.cap);
        let wi = cycle / window;
        let s = self.series_mut(name, SeriesKind::Counter);
        if s.kind != SeriesKind::Counter {
            debug_assert!(false, "series {name} is not a counter");
            return;
        }
        if let Some(Cell::Counter(v)) = s.cell_mut(wi, cap, || Cell::Counter(0)) {
            *v = v.saturating_add(n);
        }
    }

    /// Raises the gauge series `name` in `cycle`'s window to at least `v`.
    pub fn gauge(&mut self, name: &str, cycle: u64, v: f64) {
        let (window, cap) = (self.window, self.cap);
        let wi = cycle / window;
        let s = self.series_mut(name, SeriesKind::Gauge);
        if s.kind != SeriesKind::Gauge {
            debug_assert!(false, "series {name} is not a gauge");
            return;
        }
        if let Some(Cell::Gauge(g)) = s.cell_mut(wi, cap, || Cell::Gauge(f64::NEG_INFINITY)) {
            *g = g.max(v);
        }
    }

    /// Observes `v` into the histogram series `name` in `cycle`'s window.
    pub fn observe(&mut self, name: &str, cycle: u64, v: u64) {
        let (window, cap) = (self.window, self.cap);
        let wi = cycle / window;
        let s = self.series_mut(name, SeriesKind::Hist);
        if s.kind != SeriesKind::Hist {
            debug_assert!(false, "series {name} is not a histogram");
            return;
        }
        if let Some(Cell::Hist(h)) = s.cell_mut(wi, cap, || Cell::Hist(HistCell::empty())) {
            h.observe(v);
        }
    }

    /// Merges `other` into `self` window-by-window: saturating add for
    /// counters and histogram buckets, max for gauges. Associative and
    /// commutative, so ParSystem workers can be merged in any order with a
    /// bit-identical result.
    pub fn merge(&mut self, other: &TimelineData) {
        debug_assert_eq!(self.window, other.window, "merging mismatched windows");
        let cap = self.cap;
        for (name, theirs) in &other.series {
            match self.series.entry(name.clone()) {
                Entry::Vacant(e) => {
                    let mut s = theirs.clone();
                    s.enforce_cap(cap);
                    e.insert(s);
                }
                Entry::Occupied(mut e) => e.get_mut().merge(theirs, cap),
            }
        }
    }

    /// Drops every retained window and dropped count (the warmup →
    /// measurement flip), keeping window width and cap.
    pub fn clear(&mut self) {
        self.series.clear();
    }

    /// Total windows lost to the cap across all series.
    pub fn dropped(&self) -> u64 {
        self.series
            .values()
            .fold(0u64, |acc, s| acc.saturating_add(s.dropped))
    }

    /// Saturating sum of a counter series' windows (`None` if absent).
    pub fn counter_sum(&self, name: &str) -> Option<u64> {
        self.series.get(name).map(Series::counter_sum)
    }

    /// Serializes to JSONL: a header line, one `meta` line per series, then
    /// one line per retained window. Exact round-trip via [`parse_jsonl`].
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"timeline\":1,\"window\":{},\"cap\":{}}}\n",
            self.window, self.cap
        ));
        for (name, s) in &self.series {
            out.push_str(&format!(
                "{{\"series\":{},\"kind\":\"{}\",\"dropped\":{}}}\n",
                json_str(name),
                s.kind.tag(),
                s.dropped
            ));
            for (wi, cell) in &s.windows {
                let start = wi.saturating_mul(self.window);
                match cell {
                    Cell::Counter(v) => out.push_str(&format!(
                        "{{\"series\":{},\"w\":{wi},\"start\":{start},\"v\":{v}}}\n",
                        json_str(name)
                    )),
                    Cell::Gauge(g) => out.push_str(&format!(
                        "{{\"series\":{},\"w\":{wi},\"start\":{start},\"g\":{g:?}}}\n",
                        json_str(name)
                    )),
                    Cell::Hist(h) => {
                        let mut buckets = String::new();
                        for (b, &c) in h.buckets.iter().enumerate() {
                            if c > 0 {
                                if !buckets.is_empty() {
                                    buckets.push(',');
                                }
                                buckets.push_str(&format!("{b}:{c}"));
                            }
                        }
                        out.push_str(&format!(
                            "{{\"series\":{},\"w\":{wi},\"start\":{start},\"count\":{},\
                             \"sum\":{},\"min\":{},\"max\":{},\"b\":\"{buckets}\"}}\n",
                            json_str(name),
                            h.count,
                            h.sum,
                            h.min,
                            h.max
                        ));
                    }
                }
            }
        }
        out
    }

    /// Parses the JSONL produced by [`to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse_jsonl(text: &str) -> Result<TimelineData, String> {
        let mut lines = text
            .lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty());
        let (_, header) = lines.next().ok_or("empty timeline JSONL")?;
        let window = field_u64(header, "window").ok_or("header missing \"window\"")?;
        let cap = field_u64(header, "cap").ok_or("header missing \"cap\"")? as usize;
        let mut data = TimelineData::new(window, cap);
        for (ln, line) in lines {
            let err = |what: &str| format!("line {}: {what}: {line}", ln + 1);
            let name = field_str(line, "series").ok_or_else(|| err("missing \"series\""))?;
            if let Some(kind) = field_str(line, "kind") {
                let kind = SeriesKind::from_tag(&kind).ok_or_else(|| err("unknown series kind"))?;
                let s = data.series_mut(&name, kind);
                s.dropped = field_u64(line, "dropped").ok_or_else(|| err("missing \"dropped\""))?;
                continue;
            }
            let wi = field_u64(line, "w").ok_or_else(|| err("missing \"w\""))?;
            let cell = if let Some(v) = field_u64(line, "v") {
                Cell::Counter(v)
            } else if let Some(g) = field_f64(line, "g") {
                Cell::Gauge(g)
            } else if let Some(count) = field_u64(line, "count") {
                let mut h = HistCell {
                    count,
                    sum: field_u64(line, "sum").ok_or_else(|| err("missing \"sum\""))?,
                    min: field_u64(line, "min").ok_or_else(|| err("missing \"min\""))?,
                    max: field_u64(line, "max").ok_or_else(|| err("missing \"max\""))?,
                    buckets: Box::new([0; HIST_BUCKETS]),
                };
                let b = field_str(line, "b").ok_or_else(|| err("missing \"b\""))?;
                for pair in b.split(',').filter(|p| !p.is_empty()) {
                    let (bi, c) = pair.split_once(':').ok_or_else(|| err("bad bucket pair"))?;
                    let bi: usize = bi.parse().map_err(|_| err("bad bucket index"))?;
                    if bi >= HIST_BUCKETS {
                        return Err(err("bucket index out of range"));
                    }
                    h.buckets[bi] = c.parse().map_err(|_| err("bad bucket count"))?;
                }
                Cell::Hist(h)
            } else {
                return Err(err("window line has no cell payload"));
            };
            let kind = cell.kind();
            let s = data.series_mut(&name, kind);
            if s.kind != kind {
                return Err(err("cell kind conflicts with series meta"));
            }
            // Lines are emitted in window order per series; push directly so
            // the parse cannot itself evict (cap was enforced at write time).
            s.windows.push_back((wi, cell));
        }
        for s in data.series.values_mut() {
            s.windows.make_contiguous().sort_by_key(|&(w, _)| w);
        }
        Ok(data)
    }

    /// CSV export: one row per `(series, window)` with percentiles for
    /// histogram cells.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("series,kind,window,start,value,count,sum,min,max,p50,p95,p99\n");
        for (name, s) in &self.series {
            for (wi, cell) in &s.windows {
                let start = wi.saturating_mul(self.window);
                match cell {
                    Cell::Counter(v) => {
                        out.push_str(&format!("{name},counter,{wi},{start},{v},,,,,,,\n"));
                    }
                    Cell::Gauge(g) => {
                        out.push_str(&format!("{name},gauge,{wi},{start},{g:?},,,,,,,\n"));
                    }
                    Cell::Hist(h) => out.push_str(&format!(
                        "{name},hist,{wi},{start},,{},{},{},{},{},{},{}\n",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.percentile(0.50),
                        h.percentile(0.95),
                        h.percentile(0.99)
                    )),
                }
            }
        }
        out
    }
}

/// Joins a phase stack into a folded-stack line (`a;b;c count`), the format
/// `flamegraph.pl` and speedscope ingest directly.
pub fn folded_line(stack: &[&str], count: u64) -> String {
    format!("{} {count}", stack.join(";"))
}

/// Renders values as a unicode sparkline (one glyph per value, 8 levels,
/// scaled to the slice max).
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if v <= 0.0 || max <= 0.0 {
                GLYPHS[0]
            } else {
                let lvl = (v / max * 7.0).round() as usize;
                GLYPHS[lvl.min(7)]
            }
        })
        .collect()
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Extracts `"key":<raw>` from a flat single-line JSON object.
fn field_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut end = rest.len();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in rest.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' if depth > 0 => depth -= 1,
            ',' | '}' if depth == 0 => {
                end = i;
                break;
            }
            _ => {}
        }
    }
    Some(rest[..end].trim())
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    field_raw(line, key)?.parse().ok()
}

fn field_f64(line: &str, key: &str) -> Option<f64> {
    field_raw(line, key)?.parse().ok()
}

fn field_str(line: &str, key: &str) -> Option<String> {
    let raw = field_raw(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'u' => {
                let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
            }
            other => out.push(other),
        }
    }
    Some(out)
}

/// The cloneable recorder handle models hold (`!Send`, like the tracer): a
/// single branch when disabled, an `Rc<RefCell<TimelineData>>` when live.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    inner: Option<Rc<RefCell<TimelineData>>>,
}

impl Timeline {
    /// A recorder that drops everything at the cost of one branch.
    pub fn disabled() -> Self {
        Timeline { inner: None }
    }

    /// A live recorder with the given window width and per-series cap.
    pub fn bounded(window: u64, cap: usize) -> Self {
        Timeline {
            inner: Some(Rc::new(RefCell::new(TimelineData::new(window, cap)))),
        }
    }

    /// Whether records are being retained.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to counter series `name` in `cycle`'s window.
    pub fn count(&self, name: &str, cycle: u64, n: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().count(name, cycle, n);
        }
    }

    /// Raises gauge series `name` in `cycle`'s window to at least `v`.
    pub fn gauge(&self, name: &str, cycle: u64, v: f64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().gauge(name, cycle, v);
        }
    }

    /// Observes `v` into histogram series `name` in `cycle`'s window.
    pub fn observe(&self, name: &str, cycle: u64, v: u64) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().observe(name, cycle, v);
        }
    }

    /// Merges a (typically per-worker) snapshot into this recorder.
    pub fn merge(&self, other: &TimelineData) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().merge(other);
        }
    }

    /// Drops all retained windows (the warmup → measurement flip).
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().clear();
        }
    }

    /// Windows lost to the cap so far.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.borrow().dropped())
    }

    /// A plain `Send` copy of the recorded data (empty when disabled).
    pub fn snapshot(&self) -> TimelineData {
        self.inner
            .as_ref()
            .map_or_else(TimelineData::default, |inner| inner.borrow().clone())
    }
}

/// Writes a timeline snapshot to `path` as JSONL.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_timeline_jsonl(data: &TimelineData, path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, data.to_jsonl())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tl = Timeline::disabled();
        tl.count("x", 0, 1);
        tl.observe("y", 0, 1);
        tl.gauge("z", 0, 1.0);
        assert!(!tl.enabled());
        assert!(tl.snapshot().is_empty());
        assert_eq!(tl.dropped(), 0);
    }

    #[test]
    fn counters_land_in_their_windows() {
        let mut d = TimelineData::new(100, 16);
        d.count("a", 5, 2);
        d.count("a", 99, 1);
        d.count("a", 100, 7);
        d.count("a", 950, 1);
        let s = &d.series["a"];
        assert_eq!(
            s.windows.iter().cloned().collect::<Vec<_>>(),
            vec![
                (0, Cell::Counter(3)),
                (1, Cell::Counter(7)),
                (9, Cell::Counter(1))
            ]
        );
        assert_eq!(d.counter_sum("a"), Some(11));
    }

    #[test]
    fn out_of_order_records_are_sorted_in() {
        let mut d = TimelineData::new(10, 16);
        d.count("a", 95, 1);
        d.count("a", 15, 1);
        d.count("a", 55, 1);
        d.count("a", 15, 2);
        let idxs: Vec<u64> = d.series["a"].windows.iter().map(|&(w, _)| w).collect();
        assert_eq!(idxs, vec![1, 5, 9]);
        assert_eq!(d.series["a"].windows[0].1, Cell::Counter(3));
    }

    #[test]
    fn cap_drops_oldest_and_counts() {
        let mut d = TimelineData::new(10, 3);
        for w in 0..6u64 {
            d.count("a", w * 10, 1);
        }
        let s = &d.series["a"];
        assert_eq!(s.windows.len(), 3);
        assert_eq!(s.dropped, 3);
        assert_eq!(
            s.windows.iter().map(|&(w, _)| w).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        // A record for an evicted window is dropped, not resurrected.
        d.count("a", 0, 1);
        let s = &d.series["a"];
        assert_eq!(s.windows.len(), 3);
        assert_eq!(s.dropped, 4);
        assert_eq!(d.dropped(), 4);
    }

    #[test]
    fn hist_cell_percentiles_are_clamped_log2_bounds() {
        let mut d = TimelineData::new(10, 8);
        for v in [0u64, 1, 2, 3, 100, 100, 100, 200] {
            d.observe("lat", 5, v);
        }
        let Cell::Hist(h) = &d.series["lat"].windows[0].1 else {
            panic!("hist cell expected");
        };
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 200);
        assert_eq!(h.sum, 506);
        // p50 of 8 values → 4th: value 3 lives in bucket 2, upper bound 3.
        assert_eq!(h.percentile(0.50), 3);
        // p95+ land in the top buckets, clamped to the observed max.
        assert_eq!(h.percentile(0.99), 200);
        assert!(h.percentile(0.95) >= 127);
    }

    #[test]
    fn gauges_keep_window_high_water_marks() {
        let mut d = TimelineData::new(10, 8);
        d.gauge("q", 1, 2.5);
        d.gauge("q", 5, 1.0);
        d.gauge("q", 15, 4.0);
        assert_eq!(d.series["q"].windows[0].1, Cell::Gauge(2.5));
        assert_eq!(d.series["q"].windows[1].1, Cell::Gauge(4.0));
    }

    #[test]
    fn merge_is_commutative_and_matches_serial() {
        let mut serial = TimelineData::new(50, 64);
        let mut w0 = TimelineData::new(50, 64);
        let mut w1 = TimelineData::new(50, 64);
        for i in 0..200u64 {
            let cycle = i * 7 % 900;
            serial.count("c", cycle, i);
            serial.observe("h", cycle, i * 3);
            if i % 2 == 0 {
                w0.count("c", cycle, i);
                w0.observe("h", cycle, i * 3);
            } else {
                w1.count("c", cycle, i);
                w1.observe("h", cycle, i * 3);
            }
        }
        let mut ab = w0.clone();
        ab.merge(&w1);
        let mut ba = w1.clone();
        ba.merge(&w0);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab, serial, "worker-merged series must match serial");
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let mut d = TimelineData::new(10_000, 32);
        d.count("dram.reads", 123, 4);
        d.count("dram.reads", 25_000, 9);
        d.gauge("par.depth", 11_000, 3.25);
        d.observe("dram.latency", 500, 42);
        d.observe("dram.latency", 700, 0);
        d.series.get_mut("dram.reads").unwrap().dropped = 7;
        let parsed = TimelineData::parse_jsonl(&d.to_jsonl()).expect("own JSONL parses");
        assert_eq!(parsed, d);
    }

    #[test]
    fn csv_has_one_row_per_window() {
        let mut d = TimelineData::new(10, 8);
        d.count("a", 1, 1);
        d.observe("b", 1, 9);
        let csv = d.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().next().unwrap().starts_with("series,kind"));
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[0.0, 1.0, 7.0]), "▁▂█");
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0.0, 0.0]), "▁▁");
    }

    #[test]
    fn folded_lines_join_with_semicolons() {
        assert_eq!(
            folded_line(&["commit", "integrity"], 42),
            "commit;integrity 42"
        );
    }

    #[test]
    fn percentile_of_empty_bins_is_zero() {
        assert_eq!(percentile_of_bins(&[0, 0, 0], 0, 0.5, |i| i as u64), 0);
        assert_eq!(percentile_of_bins(&[1, 0, 3], 4, 0.5, |i| i as u64), 2);
        assert_eq!(percentile_of_bins(&[1, 0, 3], 4, 0.25, |i| i as u64), 0);
    }
}
