//! Host-time self-profiling.
//!
//! Perf PRs need to know where *wall time* goes inside a run, separately
//! from simulated cycles. Components wrap their phases in
//! [`Profiler::scope`] guards; the aggregated per-phase totals export into
//! the stats registry under `selfprof.*` at the end of a run.
//!
//! Timings are **inclusive**: a `TreeWalk` scope opened inside an
//! `Integrity` scope counts toward both. The phase set mirrors the
//! simulator's component structure; crypto has no phase of its own
//! because the timing model charges it as a fixed latency constant — no
//! host work happens there worth separating from `Integrity`.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// A simulator phase measured by the self-profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Synthetic trace generation (address stream production).
    TraceGen,
    /// Core-side cache hierarchy (L2 + LLC lookups).
    CoreCache,
    /// The integrity subsystem's `data_access` as a whole.
    Integrity,
    /// Integrity-tree walks (inside `Integrity`).
    TreeWalk,
    /// NFL buffer and forest maintenance (inside `Integrity`).
    Nfl,
    /// DRAM timing model.
    Dram,
    /// Secure-page allocation/deallocation.
    Alloc,
}

impl Phase {
    /// All phases, in export order.
    pub const ALL: [Phase; 7] = [
        Phase::TraceGen,
        Phase::CoreCache,
        Phase::Integrity,
        Phase::TreeWalk,
        Phase::Nfl,
        Phase::Dram,
        Phase::Alloc,
    ];

    /// Stable lowercase name used for `selfprof.*` registry paths.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::TraceGen => "trace_gen",
            Phase::CoreCache => "core_cache",
            Phase::Integrity => "integrity",
            Phase::TreeWalk => "tree_walk",
            Phase::Nfl => "nfl",
            Phase::Dram => "dram",
            Phase::Alloc => "alloc",
        }
    }

    const fn index(self) -> usize {
        match self {
            Phase::TraceGen => 0,
            Phase::CoreCache => 1,
            Phase::Integrity => 2,
            Phase::TreeWalk => 3,
            Phase::Nfl => 4,
            Phase::Dram => 5,
            Phase::Alloc => 6,
        }
    }
}

#[derive(Debug, Default)]
struct ProfilerInner {
    elapsed: [Duration; Phase::ALL.len()],
    entries: [u64; Phase::ALL.len()],
}

/// Cheap cloneable profiling handle; disabled by default (every scope is a
/// single `None` check), mirroring [`Tracer`](super::trace::Tracer).
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Rc<RefCell<ProfilerInner>>>,
}

impl Profiler {
    /// A no-op profiler.
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// An active profiler.
    pub fn enabled() -> Self {
        Profiler {
            inner: Some(Rc::new(RefCell::new(ProfilerInner::default()))),
        }
    }

    /// Whether scopes are measured.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a scoped timer for `phase`; the elapsed host time is added
    /// when the guard drops. The guard holds its own (cheap) clone of the
    /// handle, so holding it does not borrow the profiler's owner.
    pub fn scope(&self, phase: Phase) -> ScopedTimer {
        ScopedTimer {
            profiler: self.clone(),
            phase,
            start: if self.inner.is_some() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    fn record(&self, phase: Phase, elapsed: Duration) {
        if let Some(inner) = &self.inner {
            let mut p = inner.borrow_mut();
            let i = phase.index();
            p.elapsed[i] += elapsed;
            p.entries[i] = p.entries[i].saturating_add(1);
        }
    }

    /// Total host time accumulated in `phase`.
    pub fn elapsed(&self, phase: Phase) -> Duration {
        self.inner
            .as_ref()
            .map_or(Duration::ZERO, |i| i.borrow().elapsed[phase.index()])
    }

    /// Number of times `phase` was entered.
    pub fn entries(&self, phase: Phase) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.borrow().entries[phase.index()])
    }

    /// Exports `selfprof.<phase>.micros` / `.entries` counters into `reg`
    /// for every phase that was entered at least once.
    pub fn export(&self, reg: &mut super::registry::StatsRegistry) {
        if self.inner.is_none() {
            return;
        }
        for phase in Phase::ALL {
            let entries = self.entries(phase);
            if entries == 0 {
                continue;
            }
            let prefix = format!("selfprof.{}", phase.name());
            reg.set_counter(
                &format!("{prefix}.micros"),
                self.elapsed(phase).as_micros().min(u64::MAX as u128) as u64,
            );
            reg.set_counter(&format!("{prefix}.entries"), entries);
        }
    }
}

/// RAII guard returned by [`Profiler::scope`].
#[derive(Debug)]
pub struct ScopedTimer {
    profiler: Profiler,
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.profiler.record(self.phase, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_measures_nothing() {
        let p = Profiler::disabled();
        {
            let _t = p.scope(Phase::Dram);
        }
        assert_eq!(p.entries(Phase::Dram), 0);
        assert_eq!(p.elapsed(Phase::Dram), Duration::ZERO);
        let mut reg = super::super::registry::StatsRegistry::new();
        p.export(&mut reg);
        assert!(reg.is_empty());
    }

    #[test]
    fn scopes_accumulate_and_export() {
        let p = Profiler::enabled();
        {
            let _outer = p.scope(Phase::Integrity);
            let _inner = p.scope(Phase::TreeWalk);
            std::hint::black_box(0u64);
        }
        {
            let _again = p.scope(Phase::Integrity);
        }
        assert_eq!(p.entries(Phase::Integrity), 2);
        assert_eq!(p.entries(Phase::TreeWalk), 1);
        assert_eq!(p.entries(Phase::Dram), 0);

        let mut reg = super::super::registry::StatsRegistry::new();
        p.export(&mut reg);
        assert_eq!(reg.counter("selfprof.integrity.entries"), Some(2));
        assert!(reg.counter("selfprof.integrity.micros").is_some());
        assert!(
            reg.get("selfprof.dram.entries").is_none(),
            "unentered phases omitted"
        );
    }
}
