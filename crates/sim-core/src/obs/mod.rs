//! Workspace-wide observability layer.
//!
//! Three cooperating pieces (see DESIGN.md §8):
//!
//! * [`registry`] — hierarchical dotted-path statistics snapshots with
//!   delta support and JSON/table export;
//! * [`trace`] — a bounded, cycle-stamped, typed event ring with a JSONL
//!   sink and forensics helpers;
//! * [`profile`] — scoped host-time timers aggregated into a per-run
//!   self-profile;
//! * [`timeline`] — windowed simulated-time metric series (counters,
//!   gauges, log₂ histograms per cycle window) with deterministic
//!   per-worker merge and JSONL/CSV export.
//!
//! Models receive a cloneable [`Obs`] handle; a default-constructed
//! handle is fully disabled and costs one branch per would-be event.
//! Runners build the handle from the environment via
//! [`ObsConfig::from_env`]:
//!
//! | Variable | Effect |
//! |---|---|
//! | `IVL_TRACE` | `1`/`true` → trace to a default file; any other value → trace to that path |
//! | `IVL_TRACE_FILTER` | comma list of components, optional `domain=<n>` |
//! | `IVL_TRACE_CAP` | ring capacity (default `2^20` records) |
//! | `IVL_STATS_JSON` | write the measured stats registry (flat JSON) to this path |
//! | `IVL_PROFILE` | `1` → enable host-time self-profiling (exported into the stats) |
//! | `IVL_TIMELINE` | `1`/`true` → record windowed time series to a default file; any other value → to that path |
//! | `IVL_TIMELINE_WINDOW` | window width in simulated cycles (default `10_000`) |
//! | `IVL_TIMELINE_CAP` | retained windows per series (default `4096`, drop-oldest) |

pub mod profile;
pub mod registry;
pub mod timeline;
pub mod trace;

use std::path::{Path, PathBuf};

pub use profile::{Phase, Profiler};
pub use registry::{StatValue, StatsRegistry};
pub use timeline::{Timeline, TimelineData, DEFAULT_TIMELINE_CAP, DEFAULT_TIMELINE_WINDOW};
pub use trace::{
    CacheKind, EventKind, RowResult, TraceFilter, TraceRecord, Tracer, DEFAULT_TRACE_CAP,
};

/// The observability handle a run threads through its models: a tracer
/// and a profiler, both cloneable and both no-ops by default.
///
/// The handle is `!Send` by design (single-threaded per run worker);
/// never store it in results returned across threads.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Structured event tracer.
    pub tracer: Tracer,
    /// Host-time self-profiler.
    pub profiler: Profiler,
    /// Windowed simulated-time series recorder.
    pub timeline: Timeline,
}

impl Obs {
    /// A fully disabled handle.
    pub fn disabled() -> Self {
        Obs::default()
    }

    /// Builds the live handle an [`ObsConfig`] asks for.
    pub fn from_config(cfg: &ObsConfig) -> Self {
        Obs {
            tracer: if cfg.trace {
                Tracer::bounded(cfg.trace_cap, cfg.trace_filter.clone())
            } else {
                Tracer::disabled()
            },
            profiler: if cfg.profile {
                Profiler::enabled()
            } else {
                Profiler::disabled()
            },
            timeline: if cfg.timeline {
                Timeline::bounded(cfg.timeline_window, cfg.timeline_cap)
            } else {
                Timeline::disabled()
            },
        }
    }

    /// Whether anything is enabled.
    pub fn any_enabled(&self) -> bool {
        self.tracer.enabled() || self.profiler.is_enabled() || self.timeline.enabled()
    }
}

/// What a run should observe and where the sinks go, typically parsed
/// from the environment once per process.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsConfig {
    /// Record a structured trace.
    pub trace: bool,
    /// Trace ring capacity.
    pub trace_cap: usize,
    /// Component/domain filter.
    pub trace_filter: TraceFilter,
    /// JSONL sink path (`None` → caller decides / no file).
    pub trace_path: Option<PathBuf>,
    /// Stats-registry JSON sink path.
    pub stats_path: Option<PathBuf>,
    /// Measure host-time phases.
    pub profile: bool,
    /// Record windowed simulated-time series.
    pub timeline: bool,
    /// Timeline window width in simulated cycles.
    pub timeline_window: u64,
    /// Retained windows per timeline series.
    pub timeline_cap: usize,
    /// Timeline JSONL sink path (`None` → caller decides / no file).
    pub timeline_path: Option<PathBuf>,
}

impl ObsConfig {
    /// Everything off.
    pub fn off() -> Self {
        ObsConfig {
            trace_cap: DEFAULT_TRACE_CAP,
            timeline_window: DEFAULT_TIMELINE_WINDOW,
            timeline_cap: DEFAULT_TIMELINE_CAP,
            ..ObsConfig::default()
        }
    }

    /// Parses `IVL_TRACE` / `IVL_TRACE_FILTER` / `IVL_TRACE_CAP` /
    /// `IVL_STATS_JSON` / `IVL_PROFILE`.
    pub fn from_env() -> Self {
        let mut cfg = ObsConfig::off();
        if let Ok(v) = std::env::var("IVL_TRACE") {
            let v = v.trim();
            if !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false") {
                cfg.trace = true;
                cfg.trace_path = Some(PathBuf::from(
                    if v == "1" || v.eq_ignore_ascii_case("true") {
                        "ivl_trace.jsonl"
                    } else {
                        v
                    },
                ));
            }
        }
        if let Ok(v) = std::env::var("IVL_TRACE_FILTER") {
            cfg.trace_filter = TraceFilter::parse(&v);
        }
        if let Ok(v) = std::env::var("IVL_TRACE_CAP") {
            if let Ok(cap) = v.trim().parse::<usize>() {
                cfg.trace_cap = cap.max(1);
            }
        }
        if let Ok(v) = std::env::var("IVL_STATS_JSON") {
            if !v.trim().is_empty() {
                cfg.stats_path = Some(PathBuf::from(v.trim()));
            }
        }
        if let Ok(v) = std::env::var("IVL_PROFILE") {
            let v = v.trim();
            cfg.profile = !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false");
        }
        if let Ok(v) = std::env::var("IVL_TIMELINE") {
            let v = v.trim();
            if !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false") {
                cfg.timeline = true;
                cfg.timeline_path = Some(PathBuf::from(
                    if v == "1" || v.eq_ignore_ascii_case("true") {
                        "ivl_timeline.jsonl"
                    } else {
                        v
                    },
                ));
            }
        }
        if let Ok(v) = std::env::var("IVL_TIMELINE_WINDOW") {
            if let Ok(w) = v.trim().parse::<u64>() {
                cfg.timeline_window = w.max(1);
            }
        }
        if let Ok(v) = std::env::var("IVL_TIMELINE_CAP") {
            if let Ok(cap) = v.trim().parse::<usize>() {
                cfg.timeline_cap = cap.max(1);
            }
        }
        cfg
    }

    /// Whether any sink or instrument is on.
    pub fn any_enabled(&self) -> bool {
        self.trace || self.stats_path.is_some() || self.profile || self.timeline
    }
}

/// Inserts `tag` before the extension: `out.json` + `mix8.basic` →
/// `out.mix8.basic.json`. Parallel matrix runs use this so each
/// (mix, scheme) run writes its own sink file instead of clobbering one
/// path.
pub fn decorate_path(path: &Path, tag: &str) -> PathBuf {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
    let name = match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}.{tag}.{ext}"),
        None => format!("{stem}.{tag}"),
    };
    path.with_file_name(name)
}

/// Sanitizes a label (mix/scheme name) into a filename-safe tag.
pub fn path_tag(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes a stats registry to `path` as flat JSON.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_stats_json(reg: &StatsRegistry, path: &Path) -> std::io::Result<()> {
    std::fs::write(path, reg.to_json())
}

/// Writes trace records to `path` as JSONL.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_trace_jsonl(records: &[TraceRecord], path: &Path) -> std::io::Result<()> {
    std::fs::write(path, trace::records_to_jsonl(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_obs_is_fully_disabled() {
        let obs = Obs::disabled();
        assert!(!obs.any_enabled());
        assert!(!obs.tracer.enabled());
        assert!(!obs.profiler.is_enabled());
    }

    #[test]
    fn from_config_enables_requested_pieces() {
        let mut cfg = ObsConfig::off();
        cfg.trace = true;
        cfg.profile = true;
        cfg.timeline = true;
        let obs = Obs::from_config(&cfg);
        assert!(obs.tracer.enabled());
        assert!(obs.profiler.is_enabled());
        assert!(obs.timeline.enabled());
        assert!(!Obs::from_config(&ObsConfig::off()).any_enabled());
    }

    #[test]
    fn decorate_path_inserts_tag_before_extension() {
        assert_eq!(
            decorate_path(Path::new("/tmp/out.json"), "mix8.basic"),
            PathBuf::from("/tmp/out.mix8.basic.json")
        );
        assert_eq!(
            decorate_path(Path::new("trace"), "a"),
            PathBuf::from("trace.a")
        );
    }

    #[test]
    fn path_tag_sanitizes() {
        assert_eq!(path_tag("IvLeague-Pro (8 mixes)"), "IvLeague-Pro__8_mixes_");
    }
}
