//! Property tests on the observability layer: registry JSON round-trips
//! exactly, epoch deltas obey counter arithmetic, the trace ring stays
//! bounded with `(cycle, seq)`-sorted, monotonic output, and the windowed
//! timeline recorder is cap-bounded, merge-associative, and JSONL-exact.

use ivl_sim_core::obs::timeline::TimelineData;
use ivl_sim_core::obs::trace::{parse_jsonl, records_to_jsonl};
use ivl_sim_core::obs::{
    CacheKind, EventKind, RowResult, StatValue, StatsRegistry, TraceFilter, Tracer,
};
use ivl_sim_core::rng::Xoshiro256;
use ivl_sim_core::stats::HitMiss;
use ivl_sim_core::Cycle;
use ivl_testkit::prelude::*;

/// Deterministically fills a registry with a random mix of node kinds.
fn random_registry(seed: u64, entries: usize) -> StatsRegistry {
    let mut rng = Xoshiro256::seed_from(seed);
    let mut reg = StatsRegistry::new();
    for i in 0..entries {
        let path = format!("c{}.unit{}.metric{i}", rng.index(4), rng.index(8));
        match rng.index(4) {
            0 => reg.set_counter(&path, rng.next_u64() >> rng.index(40)),
            1 => reg.set_gauge(&path, (rng.next_u64() % 1_000_000) as f64 / 997.0),
            2 => reg.set_ratio(
                &path,
                HitMiss::from_parts(rng.next_u64() >> 40, rng.next_u64() >> 40),
            ),
            _ => {
                let bins: Vec<u64> = (0..1 + rng.index(8))
                    .map(|_| rng.next_u64() >> 48)
                    .collect();
                reg.set_histogram(&path, &bins);
            }
        }
    }
    reg
}

/// Deterministically builds one of every event kind family.
fn random_event(rng: &mut Xoshiro256) -> EventKind {
    let caches = [
        CacheKind::L2,
        CacheKind::Llc,
        CacheKind::Counter,
        CacheKind::Tree,
        CacheKind::Mac,
        CacheKind::Lmm,
    ];
    let rows = [RowResult::Hit, RowResult::Empty, RowResult::Conflict];
    match rng.index(9) {
        0 => EventKind::DramAccess {
            channel: rng.index(4) as u8,
            bank: rng.index(16) as u8,
            row: rows[rng.index(3)],
            is_write: rng.chance(0.5),
            latency: rng.next_u64() % 500,
        },
        1 => EventKind::CacheAccess {
            cache: caches[rng.index(6)],
            hit: rng.chance(0.5),
            evicted: rng.chance(0.3),
        },
        2 => EventKind::TreeWalkLevel {
            level: rng.index(8) as u8,
            hit: rng.chance(0.5),
        },
        3 => EventKind::NflbAccess {
            hit: rng.chance(0.5),
        },
        4 => EventKind::NflbEvict,
        5 => EventKind::Probe {
            bit: rng.next_u64() as u32,
            latency: rng.next_u64() % 1_000,
        },
        6 => EventKind::PageAlloc {
            failed: rng.chance(0.1),
        },
        7 => EventKind::PageDealloc,
        _ => EventKind::Epoch { label: "measure" },
    }
}

const COMPONENTS: [&str; 4] = ["dram", "scheme", "cache", "attacker"];

fn fill_tracer(tracer: &Tracer, seed: u64, events: usize) {
    let mut rng = Xoshiro256::seed_from(seed);
    for _ in 0..events {
        let kind = random_event(&mut rng);
        let domain = if rng.chance(0.5) {
            ivl_sim_core::domain::DomainId::new(rng.index(5) as u16)
        } else {
            None
        };
        let core = rng.chance(0.5).then(|| rng.index(8) as u8);
        tracer.emit(
            rng.next_u64() % 10_000 as Cycle,
            COMPONENTS[rng.index(4)],
            domain,
            core,
            kind,
        );
    }
}

/// One recorded timeline operation; generated up front so the same stream
/// can be replayed into one recorder or sharded across several.
#[derive(Debug, Clone)]
enum TlOp {
    Count(String, u64, u64),
    Gauge(String, u64, f64),
    Observe(String, u64, u64),
}

/// Random operation stream. Series names are prefixed by kind so a name
/// never changes cell type mid-stream (the recorder fixes the kind at the
/// first record).
fn random_tl_ops(seed: u64, ops: usize, max_cycle: u64) -> Vec<TlOp> {
    let mut rng = Xoshiro256::seed_from(seed);
    (0..ops)
        .map(|_| {
            let name = format!("s{}", rng.index(5));
            let cycle = rng.next_u64() % max_cycle.max(1);
            match rng.index(3) {
                0 => TlOp::Count(format!("c.{name}"), cycle, 1 + rng.next_u64() % 100),
                1 => TlOp::Gauge(
                    format!("g.{name}"),
                    cycle,
                    (rng.next_u64() % 1_000_000) as f64 / 997.0,
                ),
                _ => TlOp::Observe(format!("h.{name}"), cycle, rng.next_u64() >> rng.index(60)),
            }
        })
        .collect()
}

fn apply_tl_op(tl: &mut TimelineData, op: &TlOp) {
    match op {
        TlOp::Count(name, cycle, n) => tl.count(name, *cycle, *n),
        TlOp::Gauge(name, cycle, v) => tl.gauge(name, *cycle, *v),
        TlOp::Observe(name, cycle, v) => tl.observe(name, *cycle, *v),
    }
}

fn replay_tl(ops: &[TlOp], window: u64, cap: usize) -> TimelineData {
    let mut tl = TimelineData::new(window, cap);
    for op in ops {
        apply_tl_op(&mut tl, op);
    }
    tl
}

props! {
    #[test]
    fn timeline_windows_stay_bounded_and_sorted(
        seed in any::<u64>(),
        window in 1u64..500,
        cap in 1usize..32,
        ops in 0usize..300,
    ) {
        let tl = replay_tl(&random_tl_ops(seed, ops, 20_000), window, cap);
        for (name, s) in &tl.series {
            prop_assert!(
                s.windows.len() <= cap,
                "series {} holds {} windows over cap {}", name, s.windows.len(), cap
            );
            let indices: Vec<u64> = s.windows.iter().map(|(w, _)| *w).collect();
            for w in indices.windows(2) {
                prop_assert!(w[0] < w[1], "window indices must be strictly increasing");
            }
        }
    }

    #[test]
    fn timeline_merge_is_associative_and_commutative(
        sa in any::<u64>(),
        sb in any::<u64>(),
        sc in any::<u64>(),
        ops in 0usize..120,
    ) {
        // Cap far above the reachable window count: merge-order identities
        // hold whenever the cap never evicts (the engines run that way).
        const W: u64 = 64;
        const CAP: usize = 1 << 12;
        let a = replay_tl(&random_tl_ops(sa, ops, 50_000), W, CAP);
        let b = replay_tl(&random_tl_ops(sb, ops, 50_000), W, CAP);
        let c = replay_tl(&random_tl_ops(sc, ops, 50_000), W, CAP);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab;
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn merged_worker_shards_match_the_serial_recording(
        seed in any::<u64>(),
        parts in 1usize..6,
        ops in 0usize..200,
    ) {
        // The ParSystem contract: one stream recorded whole, or sharded
        // round-robin across workers and merged, lands bit-identical.
        const W: u64 = 128;
        const CAP: usize = 1 << 12;
        let stream = random_tl_ops(seed, ops, 60_000);
        let serial = replay_tl(&stream, W, CAP);
        let mut shards: Vec<TimelineData> =
            (0..parts).map(|_| TimelineData::new(W, CAP)).collect();
        for (i, op) in stream.iter().enumerate() {
            apply_tl_op(&mut shards[i % parts], op);
        }
        let mut merged = TimelineData::new(W, CAP);
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(merged, serial);
    }

    #[test]
    fn timeline_jsonl_round_trips(seed in any::<u64>(), ops in 0usize..200) {
        let tl = replay_tl(&random_tl_ops(seed, ops, 30_000), 256, 24);
        let parsed = TimelineData::parse_jsonl(&tl.to_jsonl()).expect("own JSONL parses");
        prop_assert_eq!(parsed, tl);
    }

    #[test]
    fn registry_json_round_trips(seed in any::<u64>(), entries in 0usize..40) {
        let reg = random_registry(seed, entries);
        let parsed = StatsRegistry::parse_json(&reg.to_json()).expect("own JSON parses");
        prop_assert_eq!(parsed, reg);
    }

    #[test]
    fn registry_delta_obeys_counter_arithmetic(
        seed in any::<u64>(),
        entries in 1usize..24,
        bump in any::<u32>(),
    ) {
        let earlier = random_registry(seed, entries);
        // Build "later" by bumping every counter/ratio; delta must recover
        // exactly the bump, and gauges must keep the later value.
        let mut later = earlier.clone();
        let paths: Vec<String> = earlier.iter().map(|(p, _)| p.to_string()).collect();
        for p in &paths {
            match earlier.get(p).unwrap() {
                StatValue::Counter(v) => later.set_counter(p, v.saturating_add(bump as u64)),
                StatValue::Gauge(_) => later.set_gauge(p, bump as f64),
                StatValue::Ratio { hits, misses } => later.set_ratio(
                    p,
                    HitMiss::from_parts(hits.saturating_add(bump as u64), *misses),
                ),
                StatValue::Histogram(bins) => {
                    let bumped: Vec<u64> =
                        bins.iter().map(|b| b.saturating_add(bump as u64)).collect();
                    later.set_histogram(p, &bumped);
                }
            }
        }
        let delta = later.delta(&earlier);
        for p in &paths {
            match delta.get(p).expect("path survives delta") {
                StatValue::Counter(v) => prop_assert_eq!(*v, bump as u64),
                StatValue::Gauge(g) => prop_assert_eq!(*g, bump as f64),
                StatValue::Ratio { hits, misses } => {
                    prop_assert_eq!(*hits, bump as u64);
                    prop_assert_eq!(*misses, 0);
                }
                StatValue::Histogram(bins) => {
                    prop_assert!(bins.iter().all(|b| *b == bump as u64));
                }
            }
        }
        // Self-delta zeroes every counter-like node.
        let zero = earlier.delta(&earlier);
        for p in &paths {
            match zero.get(p).expect("path survives self-delta") {
                StatValue::Counter(v) => prop_assert_eq!(*v, 0),
                StatValue::Ratio { hits, misses } => prop_assert_eq!(*hits + *misses, 0),
                StatValue::Histogram(bins) => prop_assert!(bins.iter().all(|b| *b == 0)),
                StatValue::Gauge(_) => {}
            }
        }
    }

    #[test]
    fn trace_ring_is_bounded_and_sorted(
        seed in any::<u64>(),
        cap in 1usize..64,
        events in 0usize..200,
    ) {
        let tracer = Tracer::bounded(cap, TraceFilter::default());
        fill_tracer(&tracer, seed, events);
        prop_assert_eq!(tracer.len(), events.min(cap));
        prop_assert_eq!(tracer.dropped(), events.saturating_sub(cap) as u64);
        let sorted = tracer.sorted_records();
        for w in sorted.windows(2) {
            prop_assert!(w[0].cycle <= w[1].cycle, "cycles must be monotonic");
            if w[0].cycle == w[1].cycle {
                prop_assert!(w[0].seq < w[1].seq, "sort must be stable by seq");
            }
        }
    }

    #[test]
    fn trace_jsonl_round_trips_random_streams(seed in any::<u64>(), events in 0usize..120) {
        let tracer = Tracer::bounded(1 << 12, TraceFilter::default());
        fill_tracer(&tracer, seed, events);
        let records = tracer.sorted_records();
        let parsed = parse_jsonl(&records_to_jsonl(&records)).expect("JSONL parses");
        prop_assert_eq!(parsed, records);
    }
}
