//! Property tests for the typed event calendar: heterogeneous payloads pop
//! in exact `(cycle, tie, insertion)` order against a sort oracle, and the
//! class tie-spaces pin same-cycle ordering to cores → banks → buses →
//! writebacks regardless of insertion order.

use ivl_sim_core::calendar::{CalendarEvent, EventCalendar};
use ivl_sim_core::rng::Xoshiro256;
use ivl_sim_core::Cycle;
use ivl_testkit::prelude::*;

fn random_event(rng: &mut Xoshiro256) -> CalendarEvent {
    match rng.index(4) {
        0 => CalendarEvent::CoreReady(rng.index(8)),
        1 => CalendarEvent::BankReady(rng.index(64) as u32),
        2 => CalendarEvent::BusDrain(rng.index(4) as u32),
        _ => CalendarEvent::DeferredWriteback(rng.index(4) as u32),
    }
}

props! {
    #![cases(64)]

    #[test]
    fn mixed_payloads_pop_in_sort_oracle_order(seed in any::<u64>(), n in 1usize..120) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut cal = EventCalendar::new();
        // Oracle: stable sort on (cycle, tie) — stability supplies the
        // FIFO tie-break the calendar's sequence number implements.
        let mut oracle: Vec<(Cycle, CalendarEvent)> = Vec::new();
        for _ in 0..n {
            let at = rng.next_u64() % 50; // dense: plenty of full ties
            let ev = random_event(&mut rng);
            cal.schedule(at, ev.tie(), ev);
            oracle.push((at, ev));
        }
        oracle.sort_by_key(|&(at, ev)| (at, ev.tie()));
        for (at, ev) in oracle {
            prop_assert_eq!(cal.pop(), Some((at, ev)));
        }
        prop_assert_eq!(cal.pop(), None);
    }

    #[test]
    fn same_cycle_classes_order_core_bank_bus_writeback(seed in any::<u64>()) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut cal = EventCalendar::new();
        let mut evs: Vec<CalendarEvent> = (0..20).map(|_| random_event(&mut rng)).collect();
        for &ev in &evs {
            cal.schedule(7, ev.tie(), ev);
        }
        // Expected: class rank, then instance id, then insertion order.
        let rank = |e: &CalendarEvent| e.tie();
        evs.sort_by_key(rank);
        for ev in evs {
            prop_assert_eq!(cal.pop(), Some((7, ev)));
        }
    }

    #[test]
    fn interleaved_pops_never_rewind_simulated_time(seed in any::<u64>(), n in 2usize..80) {
        // Scheduling interleaved with pops (the runner's real pattern):
        // as long as entries are never scheduled before the last popped
        // cycle, the pop stream's cycles are monotone. (Ties at the same
        // cycle may still reorder by key — that is the point of `tie`.)
        let mut rng = Xoshiro256::seed_from(seed);
        let mut cal = EventCalendar::new();
        let mut last: Option<Cycle> = None;
        let mut floor: Cycle = 0;
        for _ in 0..n {
            let at = floor + rng.next_u64() % 100;
            let ev = random_event(&mut rng);
            cal.schedule(at, ev.tie(), ev);
            if rng.chance(0.5) {
                if let Some((at, _)) = cal.pop() {
                    if let Some(prev) = last {
                        prop_assert!(prev <= at, "pop stream rewound time");
                    }
                    last = Some(at);
                    floor = at; // future schedules stay >= the popped cycle
                }
            }
        }
        while let Some((at, _)) = cal.pop() {
            if let Some(prev) = last {
                prop_assert!(prev <= at);
            }
            last = Some(at);
        }
    }
}
