//! The IV Domain Controller: runtime TreeLing ↔ domain management
//! (paper §VI-D1, Figure 5).
//!
//! Two on-chip structures steer inter-TreeLing management:
//!
//! * the **Unassigned TreeLing FIFO** of currently free TreeLings, and
//! * the **Assignment Table** mapping each live domain to its TreeLings.
//!
//! A new TreeLing is pulled from the FIFO only when every TreeLing already
//! owned by the domain is exhausted; destroying a domain returns all of its
//! TreeLings to the FIFO. *TreeLing starvation* (paper §VI-D2) is the state
//! where the FIFO is empty while a domain still needs coverage — the
//! controller reports it so callers can account failures (Figure 22).
//!
//! The FIFO itself is a [`FreeTreeLingList`]: a lock-free, bounded,
//! sequence-stamped ring (Vyukov's MPMC queue shape) that many domain
//! threads can push/pop concurrently. A Treiber stack would have been the
//! textbook lock-free free-list, but a stack is LIFO — it would reorder
//! TreeLing recycling relative to the paper's unassigned *FIFO* and change
//! every downstream allocation decision. The ring keeps exact FIFO order
//! (so the single-threaded simulator is bit-identical to the old
//! `VecDeque`) while the per-slot sequence stamps double as the ABA guard:
//! a CAS on `head`/`tail` can only move a ticket forward, and a slot is
//! only readable once its stamp proves the matching write completed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use ivl_sim_core::domain::DomainId;

use crate::geometry::TreeLingId;

/// Error returned when no TreeLing can be assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarvationError {
    /// The domain whose request failed.
    pub domain: DomainId,
}

impl std::fmt::Display for StarvationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TreeLing starvation: no unassigned TreeLing for {}",
            self.domain
        )
    }
}

impl std::error::Error for StarvationError {}

/// Lock-free bounded FIFO of unassigned TreeLings.
///
/// Each slot packs a 32-bit wrapping *sequence stamp* (high half) with a
/// biased TreeLing id (low half, `id + 1`, 0 = empty) into one `AtomicU64`,
/// so slot publication is a single release store and no slot is ever read
/// half-written. `head`/`tail` are ticket counters advanced by CAS; the
/// stamp arithmetic wraps at 32 bits, which is safe because the capacity is
/// far below `2^31` and comparisons use wrapping signed differences.
///
/// Determinism contract: with a single caller thread, `push`/`pop` are an
/// exact FIFO — identical order to the `VecDeque` this replaces. Under
/// concurrency the queue linearizes; a `pop` racing a half-finished `push`
/// may transiently observe "empty", which callers treat as starvation (a
/// counted, recoverable event), never as corruption.
#[derive(Debug)]
pub struct FreeTreeLingList {
    slots: Box<[AtomicU64]>,
    mask: u64,
    head: AtomicU64,
    tail: AtomicU64,
    /// Failed `head`/`tail` CAS attempts (contention observability).
    cas_retries: AtomicU64,
}

impl FreeTreeLingList {
    /// Creates a list pre-filled with TreeLings `0..treeling_count`, with
    /// capacity for all of them (so pushes of recycled TreeLings can never
    /// overflow).
    pub fn new(treeling_count: u32) -> Self {
        let cap = u64::from(treeling_count).next_power_of_two().max(2);
        let slots: Box<[AtomicU64]> = (0..cap)
            .map(|i| {
                if i < u64::from(treeling_count) {
                    // Pre-filled as if enqueued with ticket i: stamp i+1.
                    AtomicU64::new(((i as u32).wrapping_add(1) as u64) << 32 | (i + 1))
                } else {
                    // Empty slot awaiting ticket i: stamp i.
                    AtomicU64::new((i as u32 as u64) << 32)
                }
            })
            .collect();
        FreeTreeLingList {
            slots,
            mask: cap - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(u64::from(treeling_count)),
            cas_retries: AtomicU64::new(0),
        }
    }

    /// Appends a recycled TreeLing at the back of the FIFO.
    ///
    /// The list can never be genuinely full: capacity covers the whole
    /// construction-time TreeLing population, and only those ids circulate.
    /// A stale slot stamp therefore always means a pop on the previous lap
    /// is mid-flight (head-CAS won, slot not yet re-stamped) — the push
    /// spins until that pop publishes.
    pub fn push(&self, treeling: TreeLingId) {
        loop {
            let tail = self.tail.load(Ordering::Relaxed);
            let slot = &self.slots[(tail & self.mask) as usize];
            let stamp = (slot.load(Ordering::Acquire) >> 32) as u32;
            let diff = stamp.wrapping_sub(tail as u32) as i32;
            if diff == 0 {
                if self
                    .tail
                    .compare_exchange_weak(tail, tail + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    let stamped =
                        ((tail as u32).wrapping_add(1) as u64) << 32 | (u64::from(treeling.0) + 1);
                    slot.store(stamped, Ordering::Release);
                    return;
                }
                self.cas_retries.fetch_add(1, Ordering::Relaxed);
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Pops the TreeLing at the front of the FIFO, or `None` when the list
    /// is (or transiently appears) empty.
    pub fn pop(&self) -> Option<TreeLingId> {
        loop {
            let head = self.head.load(Ordering::Relaxed);
            let slot = &self.slots[(head & self.mask) as usize];
            let packed = slot.load(Ordering::Acquire);
            let stamp = (packed >> 32) as u32;
            let diff = stamp.wrapping_sub((head as u32).wrapping_add(1)) as i32;
            if diff == 0 {
                if self
                    .head
                    .compare_exchange_weak(head, head + 1, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    let id = (packed & u64::from(u32::MAX)) as u32 - 1;
                    // Re-stamp for the ticket that will fill this slot on
                    // the ring's next lap (the ABA guard).
                    let next = (head as u32).wrapping_add(self.mask as u32 + 1);
                    slot.store((next as u64) << 32, Ordering::Release);
                    return Some(TreeLingId(id));
                }
                self.cas_retries.fetch_add(1, Ordering::Relaxed);
            } else if diff < 0 {
                return None;
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Number of queued TreeLings (exact when quiescent, a snapshot under
    /// concurrency).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }

    /// Whether the list holds no TreeLings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Failed ticket-CAS attempts so far.
    pub fn cas_retries(&self) -> u64 {
        self.cas_retries.load(Ordering::Relaxed)
    }

    /// Quiescent snapshot (for [`DomainController::clone`]): callers must
    /// guarantee no concurrent pushes/pops.
    fn snapshot(&self) -> FreeTreeLingList {
        FreeTreeLingList {
            slots: self
                .slots
                .iter()
                .map(|s| AtomicU64::new(s.load(Ordering::Relaxed)))
                .collect(),
            mask: self.mask,
            head: AtomicU64::new(self.head.load(Ordering::Relaxed)),
            tail: AtomicU64::new(self.tail.load(Ordering::Relaxed)),
            cas_retries: AtomicU64::new(self.cas_retries.load(Ordering::Relaxed)),
        }
    }
}

/// The domain controller.
///
/// # Examples
///
/// ```
/// use ivleague::domains::DomainController;
/// use ivl_sim_core::domain::DomainId;
///
/// let mut ctl = DomainController::new(4);
/// let d = DomainId::new_unchecked(0);
/// let t = ctl.assign(d).unwrap();
/// assert_eq!(ctl.treelings_of(d), &[t]);
/// ctl.destroy(d);
/// assert_eq!(ctl.unassigned(), 4);
/// ```
#[derive(Debug)]
pub struct DomainController {
    unassigned: FreeTreeLingList,
    assignment: HashMap<DomainId, Vec<TreeLingId>>,
    starvation_events: u64,
}

impl Clone for DomainController {
    fn clone(&self) -> Self {
        DomainController {
            unassigned: self.unassigned.snapshot(),
            assignment: self.assignment.clone(),
            starvation_events: self.starvation_events,
        }
    }
}

impl DomainController {
    /// Creates a controller over `treeling_count` TreeLings, all unassigned.
    pub fn new(treeling_count: u32) -> Self {
        DomainController {
            unassigned: FreeTreeLingList::new(treeling_count),
            assignment: HashMap::new(),
            starvation_events: 0,
        }
    }

    /// Assigns the next unassigned TreeLing to `domain`.
    ///
    /// # Errors
    ///
    /// Returns [`StarvationError`] when the FIFO is empty.
    pub fn assign(&mut self, domain: DomainId) -> Result<TreeLingId, StarvationError> {
        match self.unassigned.pop() {
            Some(t) => {
                self.assignment.entry(domain).or_default().push(t);
                Ok(t)
            }
            None => {
                self.starvation_events += 1;
                Err(StarvationError { domain })
            }
        }
    }

    /// TreeLings currently assigned to `domain`, in assignment order.
    pub fn treelings_of(&self, domain: DomainId) -> &[TreeLingId] {
        self.assignment
            .get(&domain)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Detaches one TreeLing from a domain (e.g. after it drained), putting
    /// it back on the FIFO. Returns whether it was assigned to the domain.
    pub fn detach(&mut self, domain: DomainId, treeling: TreeLingId) -> bool {
        if let Some(list) = self.assignment.get_mut(&domain) {
            if let Some(pos) = list.iter().position(|t| *t == treeling) {
                list.remove(pos);
                self.unassigned.push(treeling);
                return true;
            }
        }
        false
    }

    /// Destroys a domain, recycling all of its TreeLings.
    pub fn destroy(&mut self, domain: DomainId) {
        if let Some(list) = self.assignment.remove(&domain) {
            for t in list {
                self.unassigned.push(t);
            }
        }
    }

    /// Number of unassigned TreeLings.
    pub fn unassigned(&self) -> usize {
        self.unassigned.len()
    }

    /// Number of live domains.
    pub fn live_domains(&self) -> usize {
        self.assignment.len()
    }

    /// Total starvation events observed.
    pub fn starvation_events(&self) -> u64 {
        self.starvation_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u16) -> DomainId {
        DomainId::new_unchecked(i)
    }

    #[test]
    fn fifo_order_assignment() {
        let mut c = DomainController::new(3);
        assert_eq!(c.assign(d(0)).unwrap(), TreeLingId(0));
        assert_eq!(c.assign(d(1)).unwrap(), TreeLingId(1));
        assert_eq!(c.assign(d(0)).unwrap(), TreeLingId(2));
        assert_eq!(c.treelings_of(d(0)), &[TreeLingId(0), TreeLingId(2)]);
    }

    #[test]
    fn starvation_reported_and_counted() {
        let mut c = DomainController::new(1);
        c.assign(d(0)).unwrap();
        assert!(c.assign(d(1)).is_err());
        assert_eq!(c.starvation_events(), 1);
    }

    #[test]
    fn destroy_recycles_treelings() {
        let mut c = DomainController::new(2);
        c.assign(d(0)).unwrap();
        c.assign(d(0)).unwrap();
        c.destroy(d(0));
        assert_eq!(c.unassigned(), 2);
        assert_eq!(c.live_domains(), 0);
        // Recycled TreeLings are assignable again.
        assert!(c.assign(d(1)).is_ok());
    }

    #[test]
    fn detach_single_treeling() {
        let mut c = DomainController::new(2);
        let t = c.assign(d(0)).unwrap();
        assert!(c.detach(d(0), t));
        assert!(!c.detach(d(0), t));
        assert_eq!(c.unassigned(), 2);
    }

    #[test]
    fn isolation_no_treeling_shared() {
        let mut c = DomainController::new(8);
        let mut all = Vec::new();
        for i in 0..4 {
            all.push(c.assign(d(i)).unwrap());
            all.push(c.assign(d(i)).unwrap());
        }
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len(), "TreeLings must never be shared");
    }

    #[test]
    fn free_list_is_exact_fifo_like_the_old_deque() {
        // The serial simulator's bit-identity rests on this: recycling is
        // FIFO, not LIFO, so re-assignment order matches the VecDeque era.
        let list = FreeTreeLingList::new(4);
        for expect in 0..4 {
            assert_eq!(list.pop(), Some(TreeLingId(expect)));
        }
        assert_eq!(list.pop(), None);
        list.push(TreeLingId(2));
        list.push(TreeLingId(0));
        list.push(TreeLingId(3));
        assert_eq!(list.pop(), Some(TreeLingId(2)));
        assert_eq!(list.pop(), Some(TreeLingId(0)));
        assert_eq!(list.pop(), Some(TreeLingId(3)));
        assert_eq!(list.pop(), None);
    }

    #[test]
    fn free_list_wraps_the_ring_many_laps() {
        // Capacity rounds 3 → 4; cycling 1000 items exercises stamp wraps
        // across ring laps (the ABA-sensitive path).
        let list = FreeTreeLingList::new(3);
        let mut order: Vec<u32> = vec![0, 1, 2];
        for _ in 0..1000 {
            let t = list.pop().expect("never empty while cycling");
            assert_eq!(t.0, order.remove(0));
            list.push(t);
            order.push(t.0);
        }
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn free_list_concurrent_cycling_loses_nothing() {
        use std::sync::atomic::{AtomicU64, Ordering};
        const THREADS: usize = 4;
        const OPS: usize = 20_000;
        let list = FreeTreeLingList::new(64);
        let popped = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let mut held: Vec<TreeLingId> = Vec::new();
                    for i in 0..OPS {
                        if i % 2 == 0 {
                            if let Some(t) = list.pop() {
                                popped.fetch_add(1, Ordering::Relaxed);
                                held.push(t);
                            }
                        } else if let Some(t) = held.pop() {
                            list.push(t);
                        }
                    }
                    for t in held {
                        list.push(t);
                    }
                });
            }
        });
        assert!(popped.load(Ordering::Relaxed) > 0, "threads made progress");
        // Every TreeLing is back and unique.
        assert_eq!(list.len(), 64);
        let mut seen = std::collections::HashSet::new();
        while let Some(t) = list.pop() {
            assert!(seen.insert(t.0), "TreeLing {} duplicated", t.0);
        }
        assert_eq!(seen.len(), 64);
    }
}
