//! The IV Domain Controller: runtime TreeLing ↔ domain management
//! (paper §VI-D1, Figure 5).
//!
//! Two on-chip structures steer inter-TreeLing management:
//!
//! * the **Unassigned TreeLing FIFO** of currently free TreeLings, and
//! * the **Assignment Table** mapping each live domain to its TreeLings.
//!
//! A new TreeLing is pulled from the FIFO only when every TreeLing already
//! owned by the domain is exhausted; destroying a domain returns all of its
//! TreeLings to the FIFO. *TreeLing starvation* (paper §VI-D2) is the state
//! where the FIFO is empty while a domain still needs coverage — the
//! controller reports it so callers can account failures (Figure 22).

use std::collections::{HashMap, VecDeque};

use ivl_sim_core::domain::DomainId;

use crate::geometry::TreeLingId;

/// Error returned when no TreeLing can be assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StarvationError {
    /// The domain whose request failed.
    pub domain: DomainId,
}

impl std::fmt::Display for StarvationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TreeLing starvation: no unassigned TreeLing for {}",
            self.domain
        )
    }
}

impl std::error::Error for StarvationError {}

/// The domain controller.
///
/// # Examples
///
/// ```
/// use ivleague::domains::DomainController;
/// use ivl_sim_core::domain::DomainId;
///
/// let mut ctl = DomainController::new(4);
/// let d = DomainId::new_unchecked(0);
/// let t = ctl.assign(d).unwrap();
/// assert_eq!(ctl.treelings_of(d), &[t]);
/// ctl.destroy(d);
/// assert_eq!(ctl.unassigned(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DomainController {
    unassigned: VecDeque<TreeLingId>,
    assignment: HashMap<DomainId, Vec<TreeLingId>>,
    starvation_events: u64,
}

impl DomainController {
    /// Creates a controller over `treeling_count` TreeLings, all unassigned.
    pub fn new(treeling_count: u32) -> Self {
        DomainController {
            unassigned: (0..treeling_count).map(TreeLingId).collect(),
            assignment: HashMap::new(),
            starvation_events: 0,
        }
    }

    /// Assigns the next unassigned TreeLing to `domain`.
    ///
    /// # Errors
    ///
    /// Returns [`StarvationError`] when the FIFO is empty.
    pub fn assign(&mut self, domain: DomainId) -> Result<TreeLingId, StarvationError> {
        match self.unassigned.pop_front() {
            Some(t) => {
                self.assignment.entry(domain).or_default().push(t);
                Ok(t)
            }
            None => {
                self.starvation_events += 1;
                Err(StarvationError { domain })
            }
        }
    }

    /// TreeLings currently assigned to `domain`, in assignment order.
    pub fn treelings_of(&self, domain: DomainId) -> &[TreeLingId] {
        self.assignment
            .get(&domain)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Detaches one TreeLing from a domain (e.g. after it drained), putting
    /// it back on the FIFO. Returns whether it was assigned to the domain.
    pub fn detach(&mut self, domain: DomainId, treeling: TreeLingId) -> bool {
        if let Some(list) = self.assignment.get_mut(&domain) {
            if let Some(pos) = list.iter().position(|t| *t == treeling) {
                list.remove(pos);
                self.unassigned.push_back(treeling);
                return true;
            }
        }
        false
    }

    /// Destroys a domain, recycling all of its TreeLings.
    pub fn destroy(&mut self, domain: DomainId) {
        if let Some(list) = self.assignment.remove(&domain) {
            self.unassigned.extend(list);
        }
    }

    /// Number of unassigned TreeLings.
    pub fn unassigned(&self) -> usize {
        self.unassigned.len()
    }

    /// Number of live domains.
    pub fn live_domains(&self) -> usize {
        self.assignment.len()
    }

    /// Total starvation events observed.
    pub fn starvation_events(&self) -> u64 {
        self.starvation_events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u16) -> DomainId {
        DomainId::new_unchecked(i)
    }

    #[test]
    fn fifo_order_assignment() {
        let mut c = DomainController::new(3);
        assert_eq!(c.assign(d(0)).unwrap(), TreeLingId(0));
        assert_eq!(c.assign(d(1)).unwrap(), TreeLingId(1));
        assert_eq!(c.assign(d(0)).unwrap(), TreeLingId(2));
        assert_eq!(c.treelings_of(d(0)), &[TreeLingId(0), TreeLingId(2)]);
    }

    #[test]
    fn starvation_reported_and_counted() {
        let mut c = DomainController::new(1);
        c.assign(d(0)).unwrap();
        assert!(c.assign(d(1)).is_err());
        assert_eq!(c.starvation_events(), 1);
    }

    #[test]
    fn destroy_recycles_treelings() {
        let mut c = DomainController::new(2);
        c.assign(d(0)).unwrap();
        c.assign(d(0)).unwrap();
        c.destroy(d(0));
        assert_eq!(c.unassigned(), 2);
        assert_eq!(c.live_domains(), 0);
        // Recycled TreeLings are assignable again.
        assert!(c.assign(d(1)).is_ok());
    }

    #[test]
    fn detach_single_treeling() {
        let mut c = DomainController::new(2);
        let t = c.assign(d(0)).unwrap();
        assert!(c.detach(d(0), t));
        assert!(!c.detach(d(0), t));
        assert_eq!(c.unassigned(), 2);
    }

    #[test]
    fn isolation_no_treeling_shared() {
        let mut c = DomainController::new(8);
        let mut all = Vec::new();
        for i in 0..4 {
            all.push(c.assign(d(i)).unwrap());
            all.push(c.assign(d(i)).unwrap());
        }
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len(), "TreeLings must never be shared");
    }
}
