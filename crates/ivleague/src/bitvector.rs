//! Naive bit-vector TreeLing allocators — the BV-v1 / BV-v2 baselines the
//! paper measures NFL against (Figure 17a).
//!
//! Each TreeLing carries one bit per leaf slot ("1" = occupied). A head
//! register marks the last active position. Allocation scans forward from
//! the head for a free bit — an O(N) search whose cost (bit-vector blocks
//! touched) delays normal memory traffic. The two variants differ in how
//! they see deallocations:
//!
//! * **BV-v1** reacts only to deallocations inside the *current* TreeLing
//!   (head never crosses TreeLings). Slots freed in older TreeLings leak,
//!   so churny workloads exhaust the TreeLing supply and the run fails —
//!   the "✗" bars of Figure 17a.
//! * **BV-v2** tracks reclamation across TreeLings and performs the
//!   corresponding cross-TreeLing scans, which is correct but slow.

use ivl_sim_core::addr::PageNum;
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::fxhash::FxHashMap;

use crate::domains::{DomainController, StarvationError};
use crate::forest::ForestError;
use crate::geometry::{LeafSlot, TlNode, TreeLingGeometry, TreeLingId};

/// Which naive variant to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BvVariant {
    /// Current-TreeLing-only deallocation tracking.
    V1,
    /// Cross-TreeLing deallocation tracking (and scans).
    V2,
}

impl BvVariant {
    /// Figure 17a label.
    pub fn label(self) -> &'static str {
        match self {
            BvVariant::V1 => "BV-v1",
            BvVariant::V2 => "BV-v2",
        }
    }
}

/// Leaf-slot bits per 64 B bit-vector block.
pub const BITS_PER_BLOCK: u64 = 512;

#[derive(Debug)]
struct BvTreeLing {
    /// One bit per leaf slot (`1` = occupied), packed 64 per word; the
    /// padding bits past `len` in the last word are permanently set so a
    /// word-wise first-zero scan can never step outside the TreeLing.
    words: Vec<u64>,
    /// Leaf-slot count (bit length of the vector).
    len: usize,
    /// Free-slot count; lets a scan of a full TreeLing charge its modeled
    /// block cost in O(1) instead of walking every word.
    free: usize,
    /// Scan start position (slot index).
    head: usize,
}

impl BvTreeLing {
    fn new(len: usize) -> Self {
        let mut words = vec![0u64; len.div_ceil(64).max(1)];
        for b in len..words.len() * 64 {
            words[b / 64] |= 1 << (b % 64);
        }
        BvTreeLing {
            words,
            len,
            free: len,
            head: 0,
        }
    }

    fn occupy(&mut self, idx: usize) {
        debug_assert!(!self.is_occupied(idx));
        self.words[idx / 64] |= 1 << (idx % 64);
        self.free -= 1;
    }

    fn release(&mut self, idx: usize) {
        debug_assert!(self.is_occupied(idx));
        self.words[idx / 64] &= !(1 << (idx % 64));
        self.free += 1;
    }

    fn is_occupied(&self, idx: usize) -> bool {
        self.words[idx / 64] >> (idx % 64) & 1 == 1
    }
}

/// Outcome of a bit-vector page mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BvMapOutcome {
    /// Where the page landed (always a leaf-level slot).
    pub slot: LeafSlot,
    /// Bit-vector blocks examined by the scan (memory traffic + delay).
    pub blocks_scanned: u64,
    /// Whether a fresh TreeLing was assigned.
    pub new_treeling: bool,
}

/// Outcome of a bit-vector page unmapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BvUnmapOutcome {
    /// The freed slot.
    pub slot: LeafSlot,
    /// Bit-vector blocks touched.
    pub blocks_scanned: u64,
    /// The freed slot leaked (BV-v1 cross-TreeLing deallocation).
    pub leaked: bool,
}

/// The naive allocator state for one run.
///
/// # Examples
///
/// ```
/// use ivleague::bitvector::{BvAllocator, BvVariant};
/// use ivleague::geometry::TreeLingGeometry;
/// use ivl_sim_core::{addr::PageNum, domain::DomainId};
///
/// let mut bv = BvAllocator::new(TreeLingGeometry::new(4, 3), 8, BvVariant::V2);
/// let d = DomainId::new_unchecked(0);
/// let out = bv.map_page(d, PageNum::new(1)).unwrap();
/// assert_eq!(out.slot.node.level, 1);
/// ```
#[derive(Debug)]
pub struct BvAllocator {
    geometry: TreeLingGeometry,
    variant: BvVariant,
    controller: DomainController,
    // Fast deterministic hashing, same rationale as `Forest`: `slot_of`
    // runs on every LLC miss and the page map is merged with ownership so
    // an alloc/free touches one large table, not two.
    treelings: FxHashMap<TreeLingId, BvTreeLing>,
    pages: FxHashMap<PageNum, (LeafSlot, DomainId)>,
    /// Slots leaked by BV-v1 (freed but never reallocatable).
    leaked_slots: u64,
    /// Total bit-vector blocks scanned (cost accounting).
    total_blocks_scanned: u64,
}

impl BvAllocator {
    /// Creates an allocator over `treeling_count` TreeLings.
    pub fn new(geometry: TreeLingGeometry, treeling_count: u32, variant: BvVariant) -> Self {
        BvAllocator {
            geometry,
            variant,
            controller: DomainController::new(treeling_count),
            treelings: FxHashMap::default(),
            pages: FxHashMap::default(),
            leaked_slots: 0,
            total_blocks_scanned: 0,
        }
    }

    /// The modeled variant.
    pub fn variant(&self) -> BvVariant {
        self.variant
    }

    /// Slots leaked so far (BV-v1 only).
    pub fn leaked_slots(&self) -> u64 {
        self.leaked_slots
    }

    /// Total bit-vector blocks scanned.
    pub fn total_blocks_scanned(&self) -> u64 {
        self.total_blocks_scanned
    }

    /// The slot mapping `page`, if any.
    pub fn slot_of(&self, page: PageNum) -> Option<LeafSlot> {
        self.pages.get(&page).map(|&(slot, _)| slot)
    }

    fn slot_from_index(&self, treeling: TreeLingId, slot_index: usize) -> LeafSlot {
        let arity = self.geometry.arity as usize;
        LeafSlot {
            treeling,
            node: TlNode {
                level: 1,
                index: (slot_index / arity) as u32,
            },
            slot: (slot_index % arity) as u8,
        }
    }

    fn slot_to_index(&self, slot: LeafSlot) -> usize {
        slot.node.index as usize * self.geometry.arity as usize + slot.slot as usize
    }

    /// Scans one TreeLing from `start`; returns (slot index, blocks
    /// scanned). The modeled cost — bits examined up to and including the
    /// first free slot, or the whole remainder on a fruitless scan — is
    /// what the paper charges the naive allocator with; the host-side
    /// search itself runs word-wise (64 slots per step) with an O(1)
    /// shortcut for full TreeLings.
    fn scan_from(tl: &BvTreeLing, start: usize) -> (Option<usize>, u64) {
        let start = start.min(tl.len);
        let exhausted = |examined: u64| (None, examined.div_ceil(BITS_PER_BLOCK).max(1));
        if start == tl.len {
            return exhausted(1);
        }
        if tl.free == 0 {
            return exhausted((tl.len - start) as u64);
        }
        let mut w = start / 64;
        // Mask off bits below `start`; padding past `len` is pre-set.
        let mut zeros = !tl.words[w] & (!0u64 << (start % 64));
        loop {
            if zeros != 0 {
                let idx = w * 64 + zeros.trailing_zeros() as usize;
                let examined = (idx - start + 1) as u64;
                return (Some(idx), examined.div_ceil(BITS_PER_BLOCK).max(1));
            }
            w += 1;
            if w == tl.words.len() {
                // Free slots exist only below `start`.
                return exhausted((tl.len - start) as u64);
            }
            zeros = !tl.words[w];
        }
    }

    /// Maps a page, scanning for a free leaf slot.
    ///
    /// # Errors
    ///
    /// Returns [`StarvationError`] when no TreeLing can serve the request —
    /// for BV-v1 this includes the leak-induced exhaustion the paper marks
    /// with "✗".
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped.
    pub fn map_page(
        &mut self,
        domain: DomainId,
        page: PageNum,
    ) -> Result<BvMapOutcome, StarvationError> {
        assert!(!self.pages.contains_key(&page), "page double-mapped");
        let mut blocks = 0u64;
        let owned: Vec<TreeLingId> = self.controller.treelings_of(domain).to_vec();

        // BV-v1 only ever looks at the current (last) TreeLing. BV-v2's
        // head "moves back across TreeLings" on deallocation (paper §X-A3),
        // so its allocation search walks the TreeLings oldest-first — the
        // current TreeLing keeps an accurate head, older ones are scanned
        // from scratch. This is the O(N) cost the paper charges it with.
        let candidates: Vec<TreeLingId> = match self.variant {
            BvVariant::V1 => owned.last().copied().into_iter().collect(),
            BvVariant::V2 => owned,
        };
        let current = *candidates.last().unwrap_or(&TreeLingId(u32::MAX));
        for tid in candidates {
            let tl = self.treelings.get_mut(&tid).expect("owned treeling");
            // The head register is only meaningful for the current
            // TreeLing; a naive cross-TreeLing search (BV-v2) must scan
            // older TreeLings from the beginning — the O(N) cost the paper
            // charges it with.
            let start = if tid == current { tl.head } else { 0 };
            let (found, scanned) = Self::scan_from(tl, start);
            blocks += scanned;
            if let Some(idx) = found {
                tl.occupy(idx);
                tl.head = idx + 1;
                self.total_blocks_scanned += blocks;
                let slot = self.slot_from_index(tid, idx);
                self.pages.insert(page, (slot, domain));
                return Ok(BvMapOutcome {
                    slot,
                    blocks_scanned: blocks,
                    new_treeling: false,
                });
            }
        }

        // Grow.
        let tid = self.controller.assign(domain)?;
        self.treelings
            .insert(tid, BvTreeLing::new(self.geometry.leaf_capacity() as usize));
        let tl = self.treelings.get_mut(&tid).expect("just inserted");
        tl.occupy(0);
        tl.head = 1;
        blocks += 1;
        self.total_blocks_scanned += blocks;
        let slot = self.slot_from_index(tid, 0);
        self.pages.insert(page, (slot, domain));
        Ok(BvMapOutcome {
            slot,
            blocks_scanned: blocks,
            new_treeling: true,
        })
    }

    /// Unmaps a page.
    ///
    /// # Errors
    ///
    /// [`ForestError::NotMapped`] / [`ForestError::WrongDomain`].
    pub fn unmap_page(
        &mut self,
        domain: DomainId,
        page: PageNum,
    ) -> Result<BvUnmapOutcome, ForestError> {
        let (slot, owner) = *self.pages.get(&page).ok_or(ForestError::NotMapped(page))?;
        if owner != domain {
            return Err(ForestError::WrongDomain(page));
        }
        self.pages.remove(&page);

        let idx = self.slot_to_index(slot);
        let current = self.controller.treelings_of(domain).last().copied();
        let in_current = current == Some(slot.treeling);
        let tl = self.treelings.get_mut(&slot.treeling).expect("treeling");
        tl.release(idx);

        let leaked = match self.variant {
            BvVariant::V1 => {
                if in_current {
                    tl.head = tl.head.min(idx);
                    false
                } else {
                    // Freed in an older TreeLing: BV-v1 never rescans it.
                    self.leaked_slots += 1;
                    true
                }
            }
            BvVariant::V2 => {
                tl.head = tl.head.min(idx);
                false
            }
        };
        self.total_blocks_scanned += 1;
        Ok(BvUnmapOutcome {
            slot,
            blocks_scanned: 1,
            leaked,
        })
    }

    /// Destroys a domain, recycling its TreeLings.
    pub fn destroy_domain(&mut self, domain: DomainId) {
        self.pages.retain(|_, &mut (_, d)| d != domain);
        for tid in self.controller.treelings_of(domain).to_vec() {
            self.treelings.remove(&tid);
        }
        self.controller.destroy(domain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u16) -> DomainId {
        DomainId::new_unchecked(i)
    }

    fn p(i: u64) -> PageNum {
        PageNum::new(i)
    }

    fn alloc(variant: BvVariant, treelings: u32) -> BvAllocator {
        BvAllocator::new(TreeLingGeometry::new(4, 3), treelings, variant)
    }

    #[test]
    fn sequential_fill_then_grow() {
        let mut bv = alloc(BvVariant::V2, 4);
        let cap = 64; // 4^3
        for i in 0..cap {
            assert!(!bv.map_page(d(0), p(i)).unwrap().new_treeling || i == 0);
        }
        assert!(bv.map_page(d(0), p(cap)).unwrap().new_treeling);
    }

    #[test]
    fn v2_reuses_cross_treeling_frees() {
        let mut bv = alloc(BvVariant::V2, 4);
        for i in 0..70 {
            bv.map_page(d(0), p(i)).unwrap();
        }
        // Free a slot in the *first* TreeLing (current is the second).
        let out = bv.unmap_page(d(0), p(3)).unwrap();
        assert!(!out.leaked);
        // V2 finds it again by scanning across TreeLings oldest-first.
        let re = bv.map_page(d(0), p(1000)).unwrap();
        assert_eq!(
            re.slot, out.slot,
            "cross-TreeLing scan finds the freed slot"
        );
        assert!(re.blocks_scanned >= 1);
    }

    #[test]
    fn v1_leaks_cross_treeling_frees() {
        let mut bv = alloc(BvVariant::V1, 4);
        for i in 0..70 {
            bv.map_page(d(0), p(i)).unwrap();
        }
        let out = bv.unmap_page(d(0), p(3)).unwrap();
        assert!(out.leaked);
        assert_eq!(bv.leaked_slots(), 1);
        // The freed slot is never found again.
        let re = bv.map_page(d(0), p(1000)).unwrap();
        assert_ne!(re.slot, out.slot);
    }

    #[test]
    fn v1_exhausts_under_churn() {
        // A working set larger than one TreeLing (64 slots) keeps frees
        // landing in *older* TreeLings, which BV-v1 never rescans →
        // starvation even though plenty of slots are logically free.
        let mut bv = alloc(BvVariant::V1, 3);
        let mut failed = false;
        let mut live = Vec::new();
        for next in 0u64..600 {
            match bv.map_page(d(0), p(next)) {
                Ok(_) => live.push(p(next)),
                Err(_) => {
                    failed = true;
                    break;
                }
            }
            if live.len() > 100 {
                let victim = live.remove(0);
                bv.unmap_page(d(0), victim).unwrap();
            }
        }
        assert!(failed, "BV-v1 must exhaust under cross-TreeLing churn");
        assert!(bv.leaked_slots() > 0);
    }

    #[test]
    fn v2_survives_the_same_churn() {
        let mut bv = alloc(BvVariant::V2, 3);
        let mut live = Vec::new();
        for next in 0u64..600 {
            bv.map_page(d(0), p(next)).expect("BV-v2 must not exhaust");
            live.push(p(next));
            if live.len() > 100 {
                let victim = live.remove(0);
                bv.unmap_page(d(0), victim).unwrap();
            }
        }
        assert!(bv.total_blocks_scanned() > 600, "V2 pays scan costs");
    }

    #[test]
    fn scan_cost_grows_with_occupancy() {
        let mut bv = alloc(BvVariant::V2, 4);
        // Fill most of the first TreeLing, free an early slot, then map:
        // the scan must walk past the occupied prefix.
        for i in 0..60 {
            bv.map_page(d(0), p(i)).unwrap();
        }
        bv.unmap_page(d(0), p(0)).unwrap();
        let out = bv.map_page(d(0), p(100)).unwrap();
        assert_eq!(out.slot.node.index, 0);
        assert_eq!(out.slot.slot, 0);
    }
}
