//! In-memory byte layout of NFL blocks (paper §X-D).
//!
//! Each NFL entry is 64 bits: a 56-bit node-block tag and an 8-bit
//! availability vector; eight entries pack into one 64 B memory block. The
//! timing model only needs block *addresses*, but a real memory controller
//! serializes these structures — this module provides the bidirectional
//! encoding and checks the paper's storage arithmetic (64 bits per TreeLing
//! node of NFL metadata).

/// Bits of the node-block tag within an entry.
pub const TAG_BITS: u32 = 56;
/// NFL entries per 64 B memory block.
pub const ENTRIES_PER_BLOCK: usize = 8;

/// One serialized NFL entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NflEntry {
    /// Node-block tag (56 bits used).
    pub tag: u64,
    /// Availability bit-vector over the node's slots.
    pub avail: u8,
}

/// Encoding failure: the tag exceeds its 56-bit field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagOverflow {
    /// The offending tag.
    pub tag: u64,
}

impl std::fmt::Display for TagOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NFL tag {:#x} does not fit in 56 bits", self.tag)
    }
}

impl std::error::Error for TagOverflow {}

impl NflEntry {
    /// Packs the entry into its 64-bit wire form: tag in the low 56 bits,
    /// availability vector in the high 8.
    ///
    /// # Errors
    ///
    /// [`TagOverflow`] if the tag needs more than 56 bits.
    pub fn pack(&self) -> Result<u64, TagOverflow> {
        if self.tag >> TAG_BITS != 0 {
            return Err(TagOverflow { tag: self.tag });
        }
        Ok(self.tag | ((self.avail as u64) << TAG_BITS))
    }

    /// Unpacks an entry from its 64-bit wire form.
    pub fn unpack(raw: u64) -> Self {
        NflEntry {
            tag: raw & ((1u64 << TAG_BITS) - 1),
            avail: (raw >> TAG_BITS) as u8,
        }
    }
}

/// Serializes up to [`ENTRIES_PER_BLOCK`] entries into a 64 B NFL block
/// (missing entries encode as zero).
///
/// # Errors
///
/// [`TagOverflow`] if any tag exceeds 56 bits.
///
/// # Examples
///
/// ```
/// use ivleague::nfl_encoding::{decode_block, encode_block, NflEntry};
/// let entries = [NflEntry { tag: 0xABCD, avail: 0b1010_0001 }; 8];
/// let block = encode_block(&entries).unwrap();
/// assert_eq!(decode_block(&block), entries);
/// ```
pub fn encode_block(entries: &[NflEntry]) -> Result<[u8; 64], TagOverflow> {
    let mut out = [0u8; 64];
    for (i, e) in entries.iter().take(ENTRIES_PER_BLOCK).enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&e.pack()?.to_le_bytes());
    }
    Ok(out)
}

/// Deserializes a 64 B NFL block into its eight entries.
pub fn decode_block(block: &[u8; 64]) -> [NflEntry; ENTRIES_PER_BLOCK] {
    let mut out = [NflEntry::default(); ENTRIES_PER_BLOCK];
    for (i, slot) in out.iter_mut().enumerate() {
        let raw = u64::from_le_bytes(block[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        *slot = NflEntry::unpack(raw);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let e = NflEntry {
            tag: (1u64 << TAG_BITS) - 1,
            avail: 0xA5,
        };
        assert_eq!(NflEntry::unpack(e.pack().unwrap()), e);
    }

    #[test]
    fn oversized_tag_rejected() {
        let e = NflEntry {
            tag: 1u64 << TAG_BITS,
            avail: 0,
        };
        assert_eq!(
            e.pack(),
            Err(TagOverflow {
                tag: 1u64 << TAG_BITS
            })
        );
        assert!(!format!("{}", e.pack().unwrap_err()).is_empty());
    }

    #[test]
    fn block_round_trip_and_padding() {
        let entries: Vec<NflEntry> = (0..5)
            .map(|i| NflEntry {
                tag: 0x1000 + i,
                avail: i as u8,
            })
            .collect();
        let block = encode_block(&entries).unwrap();
        let decoded = decode_block(&block);
        assert_eq!(&decoded[..5], entries.as_slice());
        assert_eq!(decoded[5], NflEntry::default());
    }

    #[test]
    fn paper_storage_arithmetic_holds() {
        // 64 bits of NFL metadata per TreeLing node (§X-D): eight entries
        // fill one 64 B block exactly.
        assert_eq!(ENTRIES_PER_BLOCK * 8, 64);
        // The default system's node keys fit the 56-bit tag.
        let cfg = ivl_sim_core::config::SystemConfig::default();
        let g = crate::geometry::TreeLingGeometry::new(
            cfg.secure.tree_arity as u32,
            cfg.ivleague.treeling_levels as u32,
        );
        let max_key = cfg.ivleague.treeling_count as u64 * g.nodes_per_treeling() as u64;
        assert!(max_key < (1u64 << TAG_BITS));
    }
}
