//! **IvLeague** — side channel-resistant isolated domains of dynamic
//! integrity trees (Chowdhuryy & Yao, MICRO 2024).
//!
//! IvLeague splits the global integrity tree into many small,
//! statically-addressed subtrees called **TreeLings** and assigns them to
//! integrity-verification (IV) domains on demand. Because no tree node is
//! shared between TreeLings and the nodes above TreeLing roots are locked
//! on-chip, memory accesses in one domain can never modulate metadata-cache
//! state observable by another domain — eliminating the MetaLeak-style
//! shared-metadata side channel by construction.
//!
//! Crate layout (one module per hardware mechanism in the paper):
//!
//! * [`geometry`] — TreeLing shape and static node addressing (§VI-B);
//! * [`nfl`] — the Node Free-List that assigns/reclaims TreeLing slots in
//!   O(1) (§VI-C1, Figures 7–8), with its in-memory byte layout in
//!   [`nfl_encoding`];
//! * [`lmm`] — Leaf Mapping Metadata embedded in the page table plus its
//!   on-chip cache (§VI-C2, Figure 9);
//! * [`domains`] — the IV Domain Controller: assignment table and
//!   unassigned-TreeLing FIFO (§VI-D1);
//! * [`forest`] — the functional TreeLing forest: slot states, page
//!   mapping/unmapping, Invert's top-down extension and slot conversion
//!   (§VII-A), Pro's hot region (§VII-B), utilization accounting;
//! * [`sharded`] — the concurrent allocator substrate: per-TreeLing
//!   occupancy bitsets claimed by CAS, per-shard free counters, and
//!   epoch-guarded TreeLing recycling for multi-threaded campaigns;
//! * [`tracker`] — IvLeague-Pro's hotpage access-frequency tracker (§VII-B);
//! * [`bitvector`] — the naive BV-v1/BV-v2 allocators the paper compares
//!   NFL against (Figure 17a);
//! * [`scheme`] — the timing model: an
//!   [`ivl_secure_mem::subsystem::IntegritySubsystem`] implementation for
//!   IvLeague-Basic / -Invert / -Pro;
//! * [`verify`] — a functionally-correct IvLeague-protected memory (real
//!   ciphertext/MACs/hashes chained to per-TreeLing on-chip roots).
//!
//! # Examples
//!
//! ```
//! use ivleague::forest::{Forest, ForestConfig};
//! use ivl_sim_core::{addr::PageNum, config::IvVariant, domain::DomainId};
//!
//! let mut forest = Forest::new(ForestConfig::small_for_tests(IvVariant::Basic));
//! let d = DomainId::new_unchecked(1);
//! let slot = forest.map_page(d, PageNum::new(100)).unwrap();
//! assert_eq!(forest.slot_of(PageNum::new(100)), Some(slot.slot));
//! forest.unmap_page(d, PageNum::new(100)).unwrap();
//! assert_eq!(forest.slot_of(PageNum::new(100)), None);
//! ```

pub mod bitvector;
pub mod domains;
pub mod forest;
pub mod geometry;
pub mod lmm;
pub mod nfl;
pub mod nfl_encoding;
pub mod scheme;
pub mod sharded;
pub mod tracker;
pub mod verify;
