//! The functional TreeLing forest: authoritative slot state for every
//! active TreeLing, page mapping/unmapping through the NFL, IvLeague-Invert
//! top-down extension with slot conversion (§VII-A, Figure 12), and
//! IvLeague-Pro's reserved hot region (§VII-B, Figures 13–14).
//!
//! The forest is the "what" of IvLeague — which page is verified by which
//! TreeLing slot — while [`crate::scheme`] adds the "how long" (caches,
//! DRAM traffic). Keeping the functional state separate lets property tests
//! drive millions of allocate/free/migrate operations and check invariants
//! (no slot double-mapped, no node shared across domains, NFL head
//! invariant) without timing noise.

use ivl_sim_core::addr::PageNum;
use ivl_sim_core::config::{IvLeagueConfig, IvVariant};
use ivl_sim_core::domain::DomainId;
use ivl_sim_core::fxhash::FxHashMap;

use crate::domains::{DomainController, StarvationError};
use crate::geometry::{LeafSlot, TlNode, TreeLingGeometry, TreeLingId};
use crate::nfl::{FreeOutcome, Nfl, NflOp};

/// Forest configuration (derived from [`IvLeagueConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForestConfig {
    /// TreeLing shape.
    pub geometry: TreeLingGeometry,
    /// Number of TreeLings provisioned.
    pub treeling_count: u32,
    /// Scheme variant.
    pub variant: IvVariant,
    /// NFL entries per in-memory NFL block.
    pub nfl_entries_per_block: usize,
    /// Level-(root−1) subtrees reserved for the hot region (Pro only).
    pub hot_top_nodes: u32,
}

impl ForestConfig {
    /// Builds a forest configuration from the system-level IvLeague config.
    pub fn from_ivleague(cfg: &IvLeagueConfig, arity: u32, variant: IvVariant) -> Self {
        let geometry = TreeLingGeometry::new(arity, cfg.treeling_levels as u32);
        let top = geometry.nodes_at_level(geometry.levels.saturating_sub(1).max(1));
        let hot_top_nodes = ((top as f64 * cfg.hot_region_fraction).ceil() as u32).clamp(1, top);
        ForestConfig {
            geometry,
            treeling_count: cfg.treeling_count as u32,
            variant,
            nfl_entries_per_block: cfg.nfl_entries_per_block,
            hot_top_nodes,
        }
    }

    /// A tiny configuration for unit tests and doctests.
    pub fn small_for_tests(variant: IvVariant) -> Self {
        ForestConfig {
            geometry: TreeLingGeometry::new(4, 4),
            treeling_count: 8,
            variant,
            nfl_entries_per_block: 4,
            hot_top_nodes: 1,
        }
    }
}

/// Content of one TreeLing node slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum SlotContent {
    /// Attachable.
    #[default]
    Free,
    /// Holds the counter-block hash of a page.
    Page(PageNum),
    /// Holds the hash of the child node below it (`is_parent` flag set).
    Parent,
}

#[derive(Debug)]
struct TreeLingState {
    #[allow(dead_code)]
    owner: DomainId,
    /// `slots[node_offset * arity + slot]`.
    slots: Vec<SlotContent>,
    /// Primary NFL (leaves for Basic; the frontier level for Invert/Pro).
    nfl: Nfl,
    /// Pages currently mapped into this TreeLing.
    mapped: u64,
    /// Page-mapping frontier level (1 for Basic; 2..levels-1 for
    /// Invert/Pro, escalating down as the domain grows).
    frontier: u32,
    /// Initial primary-NFL slot capacity (utilization accounting).
    top_capacity: u64,
    /// Depth-extension NFL over level-1 nodes (Invert/Pro frontier-2 only).
    nfl_depth: Option<Nfl>,
    /// Hot-region NFL (Pro frontier-2 only).
    nfl_hot: Option<Nfl>,
}

/// Which of a TreeLing's NFL structures an operation touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NflRegion {
    /// The primary region: leaves under Basic; the intermediate (top)
    /// levels under Invert/Pro, filled breadth-first across TreeLings.
    Top,
    /// The depth-extension region (level-1 leaves) used by Invert/Pro only
    /// under TreeLing scarcity ("limited TreeLing expansion").
    Depth,
    /// The reserved hotpage region (Pro).
    Hot,
}

/// NFL traffic emitted by a forest operation, tagged with the TreeLing whose
/// NFL was touched (NFL blocks are per-TreeLing in-memory structures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedNflOp {
    /// TreeLing whose NFL was accessed.
    pub treeling: TreeLingId,
    /// The touched NFL block.
    pub op: NflOp,
    /// Which NFL structure was touched.
    pub region: NflRegion,
}

/// Result of mapping a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapOutcome {
    /// Where the page landed.
    pub slot: LeafSlot,
    /// NFL blocks touched.
    pub nfl_ops: Vec<TaggedNflOp>,
    /// Whether a new TreeLing had to be assigned.
    pub new_treeling: bool,
    /// Invert slot conversions performed (each costs one hash copy).
    pub conversions: u32,
    /// Pages whose mapping moved as a side effect (conversion displacement);
    /// their LMM cache entries must be invalidated.
    pub remapped: Vec<PageNum>,
}

/// Result of unmapping a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnmapOutcome {
    /// The freed slot.
    pub slot: LeafSlot,
    /// NFL blocks touched.
    pub nfl_ops: Vec<TaggedNflOp>,
    /// The slot could not be re-tracked by any NFL and is lost until the
    /// TreeLing is recycled.
    pub untracked: bool,
}

/// Result of a hotpage migration (promotion or demotion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrateOutcome {
    /// Slot before the move.
    pub from: LeafSlot,
    /// Slot after the move.
    pub to: LeafSlot,
    /// NFL blocks touched.
    pub nfl_ops: Vec<TaggedNflOp>,
}

/// Errors from unmap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForestError {
    /// The page has no mapping.
    NotMapped(PageNum),
    /// The page is not owned by the given domain.
    WrongDomain(PageNum),
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForestError::NotMapped(p) => write!(f, "{p} is not mapped"),
            ForestError::WrongDomain(p) => write!(f, "{p} belongs to another domain"),
        }
    }
}

impl std::error::Error for ForestError {}

/// Aggregate forest statistics (Figure 17b's utilization and untracked-slot
/// counts come from here).
#[derive(Debug, Clone, Copy, Default)]
pub struct ForestStats {
    /// Freed slots no NFL could absorb.
    pub untracked_slots: u64,
    /// Invert conversions performed.
    pub conversions: u64,
    /// TreeLings assigned over the run.
    pub treelings_assigned: u64,
    /// TreeLings detached (drained and recycled) over the run.
    pub treelings_detached: u64,
    /// Hot promotions (Pro).
    pub promotions: u64,
    /// Hot demotions (Pro).
    pub demotions: u64,
    /// Sum and count of utilization samples (taken whenever a domain
    /// requests an additional TreeLing).
    pub util_sum: f64,
    /// Number of utilization samples.
    pub util_samples: u64,
    /// Minimum utilization sample.
    pub util_min: f64,
}

impl ForestStats {
    /// Mean TreeLing utilization at expansion points; `1.0` when a run
    /// never needed a second TreeLing.
    pub fn mean_utilization(&self) -> f64 {
        if self.util_samples == 0 {
            1.0
        } else {
            self.util_sum / self.util_samples as f64
        }
    }
}

/// Mapping record for one page: where it is verified and who owns it.
#[derive(Debug, Clone, Copy)]
struct PageEntry {
    slot: LeafSlot,
    domain: DomainId,
}

/// The TreeLing forest.
#[derive(Debug)]
pub struct Forest {
    cfg: ForestConfig,
    controller: DomainController,
    // Dense state table indexed by `TreeLingId.0`: TreeLing ids are small
    // integers bounded by the configured TreeLing count, so an
    // option-per-slot vector replaces the old hash map — every access the
    // allocation loops perform becomes one bounds-checked index. Nothing
    // iterates this table (ownership iteration goes through the
    // controller's ordered lists), so the layout swap cannot perturb
    // simulation results.
    treelings: TreeLingTable,
    /// Authoritative page → (slot, owner) map (the LMM contents). One map
    /// instead of parallel slot/owner maps: a page alloc or free touches a
    /// multi-MiB table once, not twice, which matters because the footprint
    /// ramp of a large mix performs hundreds of thousands of them.
    pages: FxHashMap<PageNum, PageEntry>,
    mapped_per_domain: FxHashMap<DomainId, u64>,
    stats: ForestStats,
    /// Recycled NFL-op buffers: outcome `Vec`s handed back through
    /// [`recycle_ops`](Forest::recycle_ops) are reused by later operations,
    /// so the steady-state map/unmap/migrate path stops allocating.
    spare_ops: Vec<Vec<TaggedNflOp>>,
    /// Reusable owned-TreeLing scratch for the allocation loops.
    tid_scratch: Vec<TreeLingId>,
}

/// Dense TreeLing-state storage, keyed by [`TreeLingId`]. Mimics the map
/// API (`get`/`get_mut`/`insert`/`remove`/index) the forest code uses so
/// the call sites read identically to the hash-map era.
#[derive(Debug, Default)]
struct TreeLingTable {
    slots: Vec<Option<TreeLingState>>,
}

impl TreeLingTable {
    fn with_capacity(n: u32) -> Self {
        TreeLingTable {
            slots: (0..n).map(|_| None).collect(),
        }
    }

    fn get(&self, t: &TreeLingId) -> Option<&TreeLingState> {
        self.slots.get(t.0 as usize).and_then(Option::as_ref)
    }

    fn get_mut(&mut self, t: &TreeLingId) -> Option<&mut TreeLingState> {
        self.slots.get_mut(t.0 as usize).and_then(Option::as_mut)
    }

    fn insert(&mut self, t: TreeLingId, state: TreeLingState) {
        let i = t.0 as usize;
        if i >= self.slots.len() {
            self.slots.resize_with(i + 1, || None);
        }
        self.slots[i] = Some(state);
    }

    fn remove(&mut self, t: &TreeLingId) -> Option<TreeLingState> {
        self.slots.get_mut(t.0 as usize).and_then(Option::take)
    }
}

impl std::ops::Index<&TreeLingId> for TreeLingTable {
    type Output = TreeLingState;
    fn index(&self, t: &TreeLingId) -> &TreeLingState {
        self.get(t).expect("TreeLing active")
    }
}

impl Forest {
    /// Creates an empty forest.
    pub fn new(cfg: ForestConfig) -> Self {
        Forest {
            controller: DomainController::new(cfg.treeling_count),
            treelings: TreeLingTable::with_capacity(cfg.treeling_count),
            cfg,
            pages: FxHashMap::default(),
            mapped_per_domain: FxHashMap::default(),
            stats: ForestStats {
                util_min: 1.0,
                ..ForestStats::default()
            },
            spare_ops: Vec::new(),
            tid_scratch: Vec::new(),
        }
    }

    /// Takes a recycled (empty) NFL-op buffer, or a fresh one.
    fn take_ops(&mut self) -> Vec<TaggedNflOp> {
        self.spare_ops.pop().unwrap_or_default()
    }

    /// Returns an outcome's `nfl_ops` buffer to the recycle pool. Callers
    /// that consume a [`MapOutcome`]/[`UnmapOutcome`]/[`MigrateOutcome`]
    /// may hand the vector back so the next operation reuses its capacity;
    /// dropping it instead is always correct, just slower.
    pub fn recycle_ops(&mut self, mut ops: Vec<TaggedNflOp>) {
        if self.spare_ops.len() < 8 && ops.capacity() > 0 {
            ops.clear();
            self.spare_ops.push(ops);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ForestConfig {
        &self.cfg
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ForestStats {
        self.stats
    }

    /// Starvation events recorded by the domain controller.
    pub fn starvation_events(&self) -> u64 {
        self.controller.starvation_events()
    }

    /// TreeLings currently assigned to `domain`.
    pub fn treelings_of(&self, domain: DomainId) -> &[TreeLingId] {
        self.controller.treelings_of(domain)
    }

    /// The page-mapping frontier level of an active TreeLing (1 under
    /// Basic; 2..levels-1 under Invert/Pro, by acquisition order).
    pub fn frontier_of(&self, treeling: TreeLingId) -> Option<u32> {
        self.treelings.get(&treeling).map(|t| t.frontier)
    }

    /// The slot currently verifying `page`.
    pub fn slot_of(&self, page: PageNum) -> Option<LeafSlot> {
        self.pages.get(&page).map(|e| e.slot)
    }

    /// The level a page is mapped at (Invert shortens paths by raising it).
    pub fn mapped_level(&self, page: PageNum) -> Option<u32> {
        self.slot_of(page).map(|s| s.node.level)
    }

    /// Whether `page` currently sits in the hot region of its TreeLing.
    pub fn is_hot_mapped(&self, page: PageNum) -> bool {
        match self.slot_of(page) {
            Some(slot) => self.in_hot_region(slot.node),
            None => false,
        }
    }

    /// Verification path of `page`: mapped node up to the TreeLing root,
    /// inclusive. The root's hash is checked against the locked on-chip
    /// upper structure, so the path never leaves the TreeLing.
    pub fn verification_path(&self, page: PageNum) -> Option<Vec<(TreeLingId, TlNode)>> {
        let slot = self.slot_of(page)?;
        let mut path = vec![(slot.treeling, slot.node)];
        let mut node = slot.node;
        while let Some(p) = self.cfg.geometry.parent(node) {
            path.push((slot.treeling, p));
            node = p;
        }
        Some(path)
    }

    // ------------------------------------------------------------------
    // Slot-state helpers
    // ------------------------------------------------------------------

    fn nodes_per_treeling(&self) -> u64 {
        self.cfg.geometry.nodes_per_treeling() as u64
    }

    fn node_key(&self, treeling: TreeLingId, node: TlNode) -> u64 {
        treeling.0 as u64 * self.nodes_per_treeling() + self.cfg.geometry.node_offset(node) as u64
    }

    fn decode_key(&self, key: u64) -> (TreeLingId, TlNode) {
        let npt = self.nodes_per_treeling();
        let treeling = TreeLingId((key / npt) as u32);
        let node = self.cfg.geometry.node_from_offset((key % npt) as u32);
        (treeling, node)
    }

    fn slot_idx(&self, node: TlNode, slot: u8) -> usize {
        self.cfg.geometry.node_offset(node) as usize * self.cfg.geometry.arity as usize
            + slot as usize
    }

    fn slot_state(&self, s: LeafSlot) -> SlotContent {
        // A detached (recycled) TreeLing may still be referenced by stale
        // cross-TreeLing NFL availability; report such slots as structural
        // (non-Free) so allocation skips them.
        match self.treelings.get(&s.treeling) {
            Some(state) => state.slots[self.slot_idx(s.node, s.slot)],
            None => SlotContent::Parent,
        }
    }

    fn bump_mapped(&mut self, treeling: TreeLingId, delta: i64) {
        if let Some(state) = self.treelings.get_mut(&treeling) {
            state.mapped = state.mapped.saturating_add_signed(delta);
        }
    }

    /// Detaches `treeling` back to the unassigned FIFO if it no longer maps
    /// any page (the paper's runtime TreeLing detachment). The recycled
    /// TreeLing is re-initialized on its next assignment; stale cross-
    /// TreeLing NFL availability pointing into it is skipped by the
    /// allocation loop's Free-state check.
    fn maybe_detach(&mut self, treeling: TreeLingId) {
        let Some(state) = self.treelings.get(&treeling) else {
            return;
        };
        if state.mapped > 0 {
            return;
        }
        let owner = state.owner;
        // Keep at least one TreeLing attached so the domain's allocation
        // cursor stays meaningful.
        if self.controller.treelings_of(owner).len() <= 1 {
            return;
        }
        if self.controller.detach(owner, treeling) {
            self.treelings.remove(&treeling);
            self.stats.treelings_detached += 1;
        }
    }

    fn set_slot_state(&mut self, s: LeafSlot, content: SlotContent) {
        let idx = self.slot_idx(s.node, s.slot);
        self.treelings
            .get_mut(&s.treeling)
            .expect("treeling active")
            .slots[idx] = content;
    }

    fn in_hot_region(&self, node: TlNode) -> bool {
        if self.cfg.variant != IvVariant::Pro {
            return false;
        }
        let g = self.cfg.geometry;
        if g.levels < 4 || node.level != 3 {
            return false;
        }
        let reserved = self.cfg.hot_top_nodes * g.arity.pow(g.levels - 1 - 3);
        node.index < reserved
    }

    // ------------------------------------------------------------------
    // TreeLing initialization
    // ------------------------------------------------------------------

    /// Page-mapping frontier for the `nth` TreeLing a domain acquires:
    /// Invert/Pro "gradually introduce nodes from lower levels" (§VII-A) —
    /// the first TreeLings map pages just below the root, later ones at
    /// level 2, and level 1 only under scarcity (depth extension).
    fn frontier_for(&self, nth: usize) -> u32 {
        let g = self.cfg.geometry;
        match self.cfg.variant {
            IvVariant::Basic => 1,
            IvVariant::Invert | IvVariant::Pro => {
                let top = g.levels.saturating_sub(1).max(1);
                top.saturating_sub(nth as u32).max(2.min(top))
            }
        }
    }

    /// NFL node order for the regular region of a fresh TreeLing.
    fn regular_node_order(&self, treeling: TreeLingId, frontier: u32) -> Vec<u64> {
        let g = self.cfg.geometry;
        let mut keys = Vec::new();
        match self.cfg.variant {
            IvVariant::Basic => {
                for i in 0..g.nodes_at_level(1) {
                    keys.push(self.node_key(treeling, TlNode { level: 1, index: i }));
                }
            }
            IvVariant::Invert | IvVariant::Pro => {
                // Frontier-level slots; parents above are static. Pro skips
                // the reserved hot-region prefix on frontier-2 TreeLings
                // (§VII-B). Filling is reversed so depth extension converts
                // the coldest (last-filled) slots first.
                let level = frontier;
                let reserved =
                    if self.cfg.variant == IvVariant::Pro && level == 2 && level < g.levels {
                        self.cfg.hot_top_nodes * g.arity.pow(g.levels - 1 - level)
                    } else {
                        0
                    };
                for i in (reserved..g.nodes_at_level(level)).rev() {
                    keys.push(self.node_key(treeling, TlNode { level, index: i }));
                }
            }
        }
        keys
    }

    /// NFL node order for the hot region (Pro): the reserved level-3 nodes
    /// — one level above the regular frontier, under static parents, so a
    /// hotpage's verification path is one hop shorter and its node blocks
    /// are few enough to stay cached. The level below the reserved subtree
    /// is discarded (§VII-B: the hot region drops its last level).
    fn hot_node_order(&self, treeling: TreeLingId) -> Vec<u64> {
        let g = self.cfg.geometry;
        if g.levels < 4 {
            return Vec::new();
        }
        let reserved = self.cfg.hot_top_nodes * g.arity.pow(g.levels - 1 - 3);
        (0..reserved.min(g.nodes_at_level(3)))
            .map(|i| self.node_key(treeling, TlNode { level: 3, index: i }))
            .collect()
    }

    /// Depth-extension NFL node order: level-1 leaves in forward order —
    /// the level-2 frontier fills in reverse, so forward extension converts
    /// its coldest (lowest-index, last-filled) slots first.
    fn depth_node_order(&self, treeling: TreeLingId) -> Vec<u64> {
        let g = self.cfg.geometry;
        (0..g.nodes_at_level(1))
            .map(|i| self.node_key(treeling, TlNode { level: 1, index: i }))
            .collect()
    }

    /// TreeLings kept in reserve before depth extension starts: Invert/Pro
    /// prefer breadth (new TreeLings, short paths) while supply lasts and
    /// extend into the leaf level only under scarcity — the paper's
    /// "limited TreeLing expansion".
    fn depth_reserve(&self) -> usize {
        (self.cfg.treeling_count as usize) / 8
    }

    fn init_treeling(&mut self, treeling: TreeLingId, owner: DomainId) {
        let g = self.cfg.geometry;
        let arity = g.arity as usize;
        // `assign` ran before `init_treeling`, so the ordinal of this
        // TreeLing within the domain is len - 1.
        let nth = self.controller.treelings_of(owner).len().saturating_sub(1);
        let frontier = self.frontier_for(nth);
        let mut slots = vec![SlotContent::Free; g.nodes_per_treeling() as usize * arity];
        // Static parent structure above the mapping frontier; the frontier
        // → frontier-1 boundary uses dynamic conversion (depth extension).
        for level in (frontier + 1)..=g.levels {
            for index in 0..g.nodes_at_level(level) {
                let node = TlNode { level, index };
                let base = g.node_offset(node) as usize * arity;
                for s in 0..arity {
                    slots[base + s] = SlotContent::Parent;
                }
            }
        }
        let order = self.regular_node_order(treeling, frontier);
        let top_capacity = order.len() as u64 * g.arity as u64;
        let nfl = Nfl::new(order, g.arity as u8, self.cfg.nfl_entries_per_block);
        let deep = self.cfg.variant != IvVariant::Basic && frontier == 2 && g.levels >= 2;
        let nfl_depth = if deep {
            Some(Nfl::new(
                self.depth_node_order(treeling),
                g.arity as u8,
                self.cfg.nfl_entries_per_block,
            ))
        } else {
            None
        };
        let nfl_hot = if self.cfg.variant == IvVariant::Pro && frontier == 2 && g.levels >= 4 {
            let order = self.hot_node_order(treeling);
            // The reserved level-3 nodes hold hotpage hashes, not child
            // pointers: their slots start Free (their own hashes chain into
            // the static level-4 parents above).
            for &key in &order {
                let (_, node) = self.decode_key(key);
                let base = g.node_offset(node) as usize * arity;
                for s in 0..arity {
                    slots[base + s] = SlotContent::Free;
                }
            }
            Some(Nfl::new(
                order,
                g.arity as u8,
                self.cfg.nfl_entries_per_block,
            ))
        } else {
            None
        };
        self.treelings.insert(
            treeling,
            TreeLingState {
                owner,
                slots,
                nfl,
                mapped: 0,
                frontier,
                top_capacity,
                nfl_depth,
                nfl_hot,
            },
        );
        self.stats.treelings_assigned += 1;
    }

    fn sample_utilization(&mut self, domain: DomainId) {
        let owned = self.controller.treelings_of(domain);
        if owned.is_empty() {
            return;
        }
        let mut free = 0u64;
        let mut capacity = 0u64;
        for t in owned {
            let state = &self.treelings[t];
            free += state.nfl.free_tracked();
            // Capacity: the slots the allocation policy consumes before
            // requesting a new TreeLing — the primary (top) region.
            capacity += state.top_capacity;
        }
        let used = capacity.saturating_sub(free);
        let sample = used as f64 / capacity as f64;
        self.stats.util_sum += sample;
        self.stats.util_samples += 1;
        if sample < self.stats.util_min {
            self.stats.util_min = sample;
        }
    }

    // ------------------------------------------------------------------
    // Mapping
    // ------------------------------------------------------------------

    /// Allocates a Free slot from the primary (top) NFLs of `domain`'s
    /// TreeLings, skipping stale availability (slots consumed structurally
    /// by conversions).
    fn alloc_top(&mut self, domain: DomainId, ops: &mut Vec<TaggedNflOp>) -> Option<LeafSlot> {
        let mut owned = std::mem::take(&mut self.tid_scratch);
        owned.clear();
        owned.extend_from_slice(self.controller.treelings_of(domain));
        let mut found = None;
        'outer: for &tid in owned.iter().rev() {
            while let Some(alloc) = self.treelings.get_mut(&tid).and_then(|t| t.nfl.alloc()) {
                for op in &alloc.ops {
                    ops.push(TaggedNflOp {
                        treeling: tid,
                        op: *op,
                        region: NflRegion::Top,
                    });
                }
                let (owner_tl, node) = self.decode_key(alloc.tag);
                let slot = LeafSlot {
                    treeling: owner_tl,
                    node,
                    slot: alloc.slot,
                };
                if self.slot_state(slot) == SlotContent::Free {
                    found = Some(slot);
                    break 'outer;
                }
                // Stale availability (converted to Parent meanwhile): retry.
            }
        }
        self.tid_scratch = owned;
        found
    }

    /// Allocates from the depth-extension NFLs (level-1 leaves), Invert/Pro
    /// under TreeLing scarcity.
    fn alloc_depth(&mut self, domain: DomainId, ops: &mut Vec<TaggedNflOp>) -> Option<LeafSlot> {
        let mut owned = std::mem::take(&mut self.tid_scratch);
        owned.clear();
        owned.extend_from_slice(self.controller.treelings_of(domain));
        let mut found = None;
        'outer: for &tid in owned.iter().rev() {
            while let Some(alloc) = self
                .treelings
                .get_mut(&tid)
                .and_then(|t| t.nfl_depth.as_mut())
                .and_then(Nfl::alloc)
            {
                for op in &alloc.ops {
                    ops.push(TaggedNflOp {
                        treeling: tid,
                        op: *op,
                        region: NflRegion::Depth,
                    });
                }
                let (owner_tl, node) = self.decode_key(alloc.tag);
                let slot = LeafSlot {
                    treeling: owner_tl,
                    node,
                    slot: alloc.slot,
                };
                if self.slot_state(slot) == SlotContent::Free {
                    found = Some(slot);
                    break 'outer;
                }
            }
        }
        self.tid_scratch = owned;
        found
    }

    /// The variant's allocation policy: Basic uses its (leaf) top NFL and
    /// grows on exhaustion; Invert/Pro fill intermediate levels
    /// breadth-first across TreeLings, extending into the leaves only when
    /// the unassigned-TreeLing FIFO runs low.
    fn alloc_regular(&mut self, domain: DomainId, ops: &mut Vec<TaggedNflOp>) -> Option<LeafSlot> {
        if let Some(slot) = self.alloc_top(domain, ops) {
            return Some(slot);
        }
        if self.cfg.variant != IvVariant::Basic
            && self.controller.unassigned() <= self.depth_reserve()
        {
            if let Some(slot) = self.alloc_depth(domain, ops) {
                return Some(slot);
            }
        }
        None
    }

    /// Last-resort depth allocation when no new TreeLing is available.
    fn alloc_regular_scarce(
        &mut self,
        domain: DomainId,
        ops: &mut Vec<TaggedNflOp>,
    ) -> Option<LeafSlot> {
        if self.cfg.variant == IvVariant::Basic {
            return None;
        }
        self.alloc_depth(domain, ops)
    }

    /// Establishes the parent chain for `slot`'s node (Invert/Pro). May
    /// displace pages occupying ancestor slots; displaced pages are
    /// re-mapped by the caller. Returns displaced pages with their owners.
    fn ensure_parent_chain(&mut self, slot: LeafSlot) -> Vec<(PageNum, DomainId)> {
        let mut displaced = Vec::new();
        let mut node = slot.node;
        while let Some(parent) = self.cfg.geometry.parent(node) {
            let pslot = LeafSlot {
                treeling: slot.treeling,
                node: parent,
                slot: self.cfg.geometry.slot_in_parent(node),
            };
            match self.slot_state(pslot) {
                SlotContent::Parent => break,
                SlotContent::Free => {
                    self.set_slot_state(pslot, SlotContent::Parent);
                    self.stats.conversions += 1;
                }
                SlotContent::Page(q) => {
                    // Figure 12: the occupying page's hash moves down into
                    // the newly opened child; the slot becomes a parent.
                    self.set_slot_state(pslot, SlotContent::Parent);
                    let e = self.pages.remove(&q).expect("displaced page is mapped");
                    self.bump_mapped(pslot.treeling, -1);
                    displaced.push((q, e.domain));
                    self.stats.conversions += 1;
                }
            }
            node = parent;
        }
        displaced
    }

    /// Maps `page` into `domain`'s TreeLings.
    ///
    /// # Errors
    ///
    /// Returns [`StarvationError`] when a new TreeLing is needed but none is
    /// unassigned.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped (callers track allocation).
    pub fn map_page(
        &mut self,
        domain: DomainId,
        page: PageNum,
    ) -> Result<MapOutcome, StarvationError> {
        assert!(!self.pages.contains_key(&page), "page {page} double-mapped");
        let mut ops = self.take_ops();
        let mut new_treeling = false;

        let mut slot = self.alloc_regular(domain, &mut ops);
        if slot.is_none() {
            // The policy wants a fresh TreeLing: sample utilization, grow.
            self.sample_utilization(domain);
            match self.controller.assign(domain) {
                Ok(tid) => {
                    self.init_treeling(tid, domain);
                    new_treeling = true;
                    slot = self.alloc_regular(domain, &mut ops);
                }
                Err(e) => {
                    // No TreeLing left: limited expansion into the leaves.
                    slot = self.alloc_regular_scarce(domain, &mut ops);
                    if slot.is_none() {
                        self.recycle_ops(ops);
                        return Err(e);
                    }
                }
            }
        }
        let slot = slot.expect("fresh treeling must serve an allocation");

        let conversions_before = self.stats.conversions;
        let mut remapped = Vec::new();
        if self.cfg.variant != IvVariant::Basic {
            let displaced = self.ensure_parent_chain(slot);
            // Re-map displaced pages. Each displaced page takes the next
            // free slot — in Figure 12 that is precisely the first slot of
            // the newly opened child node.
            for (q, qdomain) in displaced {
                let qslot = self
                    .alloc_regular(domain, &mut ops)
                    .expect("opened child provides slots for displaced pages");
                let more = self.ensure_parent_chain(qslot);
                debug_assert!(more.is_empty(), "displacement must not cascade");
                self.set_slot_state(qslot, SlotContent::Page(q));
                self.pages.insert(
                    q,
                    PageEntry {
                        slot: qslot,
                        domain: qdomain,
                    },
                );
                self.bump_mapped(qslot.treeling, 1);
                remapped.push(q);
            }
        }

        self.set_slot_state(slot, SlotContent::Page(page));
        self.pages.insert(page, PageEntry { slot, domain });
        self.bump_mapped(slot.treeling, 1);
        *self.mapped_per_domain.entry(domain).or_insert(0) += 1;

        Ok(MapOutcome {
            slot,
            nfl_ops: ops,
            new_treeling,
            conversions: (self.stats.conversions - conversions_before) as u32,
            remapped,
        })
    }

    /// Frees `page`'s slot back to the domain's NFLs.
    ///
    /// # Errors
    ///
    /// [`ForestError::NotMapped`] / [`ForestError::WrongDomain`].
    pub fn unmap_page(
        &mut self,
        domain: DomainId,
        page: PageNum,
    ) -> Result<UnmapOutcome, ForestError> {
        let e = self
            .pages
            .remove(&page)
            .ok_or(ForestError::NotMapped(page))?;
        if e.domain != domain {
            self.pages.insert(page, e);
            return Err(ForestError::WrongDomain(page));
        }
        let slot = e.slot;
        *self.mapped_per_domain.entry(domain).or_insert(1) -= 1;
        self.set_slot_state(slot, SlotContent::Free);
        self.bump_mapped(slot.treeling, -1);

        let mut ops = self.take_ops();
        let untracked = if self.in_hot_region(slot.node) {
            self.free_hot_slot(slot, &mut ops)
        } else {
            self.free_regular_slot(domain, slot, &mut ops)
        };
        if untracked {
            self.stats.untracked_slots += 1;
        }
        self.maybe_detach(slot.treeling);
        Ok(UnmapOutcome {
            slot,
            nfl_ops: ops,
            untracked,
        })
    }

    /// Frees a regular slot: the domain's current TreeLing's NFL first,
    /// falling back to the previous TreeLing (cross-TreeLing maintenance).
    /// Returns whether the slot ended up untracked.
    fn free_regular_slot(
        &mut self,
        domain: DomainId,
        slot: LeafSlot,
        ops: &mut Vec<TaggedNflOp>,
    ) -> bool {
        let key = self.node_key(slot.treeling, slot.node);
        let depth_slot = slot.node.level == 1 && self.cfg.variant != IvVariant::Basic;
        // Frontier slots freed on high-frontier TreeLings route to their
        // own primary NFLs via the cross-TreeLing tag machinery below.
        // Current TreeLing first, then exactly one step back (the paper's
        // cross-TreeLing maintenance). At most two candidates, so a fixed
        // array replaces the old per-free Vec pair.
        let owned = self.controller.treelings_of(domain);
        let n = owned.len();
        let candidates = [
            n.checked_sub(1).map(|i| owned[i]),
            n.checked_sub(2).map(|i| owned[i]),
        ];
        for tid in candidates.into_iter().flatten() {
            let state = self.treelings.get_mut(&tid).expect("owned treeling active");
            let (nfl, region) = if depth_slot {
                match state.nfl_depth.as_mut() {
                    Some(n) => (n, NflRegion::Depth),
                    None => (&mut state.nfl, NflRegion::Top),
                }
            } else {
                (&mut state.nfl, NflRegion::Top)
            };
            match nfl.free(key, slot.slot) {
                FreeOutcome::Tracked(o) => {
                    for op in o {
                        ops.push(TaggedNflOp {
                            treeling: tid,
                            op,
                            region,
                        });
                    }
                    return false;
                }
                FreeOutcome::Fallback(o) => {
                    for op in o {
                        ops.push(TaggedNflOp {
                            treeling: tid,
                            op,
                            region,
                        });
                    }
                }
            }
        }
        true
    }

    fn free_hot_slot(&mut self, slot: LeafSlot, ops: &mut Vec<TaggedNflOp>) -> bool {
        let key = self.node_key(slot.treeling, slot.node);
        let st = self
            .treelings
            .get_mut(&slot.treeling)
            .expect("treeling active");
        match st.nfl_hot.as_mut() {
            Some(nfl) => match nfl.free(key, slot.slot) {
                FreeOutcome::Tracked(o) | FreeOutcome::Fallback(o) => {
                    for op in o {
                        ops.push(TaggedNflOp {
                            treeling: slot.treeling,
                            op,
                            region: NflRegion::Hot,
                        });
                    }
                    false
                }
            },
            None => true,
        }
    }

    // ------------------------------------------------------------------
    // Hot region (Pro)
    // ------------------------------------------------------------------

    /// Migrates `page` into the hot region (promotion). Returns `None` when
    /// the page is already hot, unmapped, or the hot region is full.
    pub fn promote_page(&mut self, domain: DomainId, page: PageNum) -> Option<MigrateOutcome> {
        if self.cfg.variant != IvVariant::Pro {
            return None;
        }
        let e = *self.pages.get(&page)?;
        let from = e.slot;
        if e.domain != domain || self.in_hot_region(from.node) {
            return None;
        }
        let mut ops = self.take_ops();
        let mut owned = std::mem::take(&mut self.tid_scratch);
        owned.clear();
        owned.extend_from_slice(self.controller.treelings_of(domain));
        let mut to = None;
        'outer: for &tid in owned.iter().rev() {
            while let Some(alloc) = self
                .treelings
                .get_mut(&tid)
                .and_then(|t| t.nfl_hot.as_mut())
                .and_then(|n| n.alloc())
            {
                for op in &alloc.ops {
                    ops.push(TaggedNflOp {
                        treeling: tid,
                        op: *op,
                        region: NflRegion::Hot,
                    });
                }
                let (owner_tl, node) = self.decode_key(alloc.tag);
                let cand = LeafSlot {
                    treeling: owner_tl,
                    node,
                    slot: alloc.slot,
                };
                if self.slot_state(cand) == SlotContent::Free {
                    to = Some(cand);
                    break 'outer;
                }
            }
        }
        self.tid_scratch = owned;
        let Some(to) = to else {
            self.recycle_ops(ops);
            return None;
        };
        let displaced = self.ensure_parent_chain(to);
        debug_assert!(
            displaced.is_empty(),
            "hot-region parents are roots or hot slots consumed in order"
        );
        // Move the hash: free the old slot, occupy the new one.
        self.set_slot_state(from, SlotContent::Free);
        self.bump_mapped(from.treeling, -1);
        let untracked = self.free_regular_slot(domain, from, &mut ops);
        if untracked {
            self.stats.untracked_slots += 1;
        }
        self.set_slot_state(to, SlotContent::Page(page));
        self.pages.get_mut(&page).expect("page stays mapped").slot = to;
        self.bump_mapped(to.treeling, 1);
        self.stats.promotions += 1;
        Some(MigrateOutcome {
            from,
            to,
            nfl_ops: ops,
        })
    }

    /// Migrates `page` back to the regular region (demotion).
    pub fn demote_page(&mut self, domain: DomainId, page: PageNum) -> Option<MigrateOutcome> {
        let e = *self.pages.get(&page)?;
        let from = e.slot;
        if e.domain != domain || !self.in_hot_region(from.node) {
            return None;
        }
        let mut ops = self.take_ops();
        let Some(to) = self.alloc_regular(domain, &mut ops) else {
            self.recycle_ops(ops);
            return None;
        };
        let displaced = if self.cfg.variant != IvVariant::Basic {
            self.ensure_parent_chain(to)
        } else {
            Vec::new()
        };
        debug_assert!(displaced.is_empty(), "demotion into already-open levels");
        self.set_slot_state(from, SlotContent::Free);
        self.bump_mapped(from.treeling, -1);
        let untracked = self.free_hot_slot(from, &mut ops);
        if untracked {
            self.stats.untracked_slots += 1;
        }
        self.set_slot_state(to, SlotContent::Page(page));
        self.pages.get_mut(&page).expect("page stays mapped").slot = to;
        self.bump_mapped(to.treeling, 1);
        self.stats.demotions += 1;
        Some(MigrateOutcome {
            from,
            to,
            nfl_ops: ops,
        })
    }

    // ------------------------------------------------------------------
    // Domain lifecycle
    // ------------------------------------------------------------------

    /// Destroys a domain: unmaps its pages and recycles its TreeLings.
    pub fn destroy_domain(&mut self, domain: DomainId) {
        self.pages.retain(|_, e| e.domain != domain);
        for tid in self.controller.treelings_of(domain).to_vec() {
            self.treelings.remove(&tid);
        }
        self.mapped_per_domain.remove(&domain);
        self.controller.destroy(domain);
    }

    /// Pages currently mapped for `domain`.
    pub fn mapped_pages(&self, domain: DomainId) -> u64 {
        self.mapped_per_domain.get(&domain).copied().unwrap_or(0)
    }

    /// Cross-domain isolation check: no in-memory tree node appears in the
    /// verification paths of pages owned by different domains. This is the
    /// security property §VIII rests on; tests call it after stress runs.
    pub fn verify_isolation(&self) -> bool {
        let mut node_owner: FxHashMap<(TreeLingId, TlNode), DomainId> = FxHashMap::default();
        for (page, e) in self.pages.iter() {
            let domain = e.domain;
            if let Some(path) = self.verification_path(*page) {
                for node in path {
                    match node_owner.get(&node) {
                        Some(d) if *d != domain => return false,
                        _ => {
                            node_owner.insert(node, domain);
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(i: u16) -> DomainId {
        DomainId::new_unchecked(i)
    }

    fn p(i: u64) -> PageNum {
        PageNum::new(i)
    }

    #[test]
    fn basic_maps_leaves_only() {
        let mut f = Forest::new(ForestConfig::small_for_tests(IvVariant::Basic));
        for i in 0..10 {
            let out = f.map_page(d(0), p(i)).unwrap();
            assert_eq!(out.slot.node.level, 1, "Basic maps at leaves");
            assert_eq!(out.conversions, 0);
        }
    }

    #[test]
    fn invert_starts_at_top_level() {
        let mut f = Forest::new(ForestConfig::small_for_tests(IvVariant::Invert));
        let out = f.map_page(d(0), p(0)).unwrap();
        // Geometry 4-ary, 4 levels: the first TreeLing's frontier is the
        // level right below the root.
        assert_eq!(out.slot.node.level, 3);
        assert_eq!(f.frontier_of(out.slot.treeling), Some(3));
        assert_eq!(f.frontier_of(TreeLingId(999)), None);
    }

    #[test]
    fn invert_prefers_breadth_then_extends_downward() {
        let cfg = ForestConfig::small_for_tests(IvVariant::Invert);
        let mut f = Forest::new(cfg);
        // Map pages until TreeLing supply hits the depth reserve; mapped
        // levels never go below 2 while breadth remains, and the frontier
        // escalates downward as the domain grows.
        let mut levels_seen = Vec::new();
        let mut next = 0u64;
        loop {
            let reserve = f.controller.unassigned();
            if reserve <= cfg.treeling_count as usize / 8 {
                break;
            }
            let out = f.map_page(d(0), p(next)).unwrap();
            next += 1;
            assert!(out.slot.node.level >= 2, "breadth phase stays above leaves");
            levels_seen.push(out.slot.node.level);
        }
        assert_eq!(levels_seen[0], 3, "first TreeLing maps just below the root");
        assert!(levels_seen.contains(&2), "later TreeLings map at level 2");
        // Supply exhausted to the reserve: the next mappings extend into
        // the leaves, converting frontier slots (limited expansion).
        let before = f.stats().conversions;
        let mut saw_leaf = false;
        for i in 0..64 {
            let out = f.map_page(d(0), p(next + i)).unwrap();
            if out.slot.node.level == 1 {
                saw_leaf = true;
            }
        }
        assert!(saw_leaf, "depth extension must reach level 1");
        assert!(f.stats().conversions > before, "extension converts slots");
        assert!(f.verify_isolation());
    }

    #[test]
    fn unmap_returns_slot_for_reuse() {
        let mut f = Forest::new(ForestConfig::small_for_tests(IvVariant::Basic));
        let a = f.map_page(d(0), p(1)).unwrap().slot;
        f.unmap_page(d(0), p(1)).unwrap();
        assert_eq!(f.slot_of(p(1)), None);
        let b = f.map_page(d(0), p(2)).unwrap().slot;
        assert_eq!(a, b, "freed slot is reused first");
    }

    #[test]
    fn unmap_errors() {
        let mut f = Forest::new(ForestConfig::small_for_tests(IvVariant::Basic));
        assert_eq!(f.unmap_page(d(0), p(9)), Err(ForestError::NotMapped(p(9))));
        f.map_page(d(0), p(9)).unwrap();
        assert_eq!(
            f.unmap_page(d(1), p(9)),
            Err(ForestError::WrongDomain(p(9)))
        );
    }

    #[test]
    fn growth_assigns_new_treelings() {
        let cfg = ForestConfig::small_for_tests(IvVariant::Basic);
        let capacity = cfg.geometry.leaf_capacity(); // 64 pages
        let mut f = Forest::new(cfg);
        for i in 0..capacity {
            assert!(!f.map_page(d(0), p(i)).unwrap().new_treeling || i == 0);
        }
        let out = f.map_page(d(0), p(capacity)).unwrap();
        assert!(out.new_treeling, "capacity exceeded → second TreeLing");
        assert_eq!(f.treelings_of(d(0)).len(), 2);
        // Utilization at the expansion point was 100%.
        assert!(f.stats().mean_utilization() > 0.999);
    }

    #[test]
    fn starvation_when_fifo_empty() {
        let mut cfg = ForestConfig::small_for_tests(IvVariant::Basic);
        cfg.treeling_count = 1;
        let capacity = cfg.geometry.leaf_capacity();
        let mut f = Forest::new(cfg);
        for i in 0..capacity {
            f.map_page(d(0), p(i)).unwrap();
        }
        assert!(f.map_page(d(0), p(capacity)).is_err());
        assert_eq!(f.starvation_events(), 1);
    }

    #[test]
    fn domains_are_isolated() {
        let mut f = Forest::new(ForestConfig::small_for_tests(IvVariant::Invert));
        for i in 0..30 {
            f.map_page(d((i % 3) as u16), p(i + 100 * (i % 3))).unwrap();
        }
        assert!(f.verify_isolation());
    }

    #[test]
    fn destroy_recycles_and_isolation_survives_reuse() {
        let cfg = ForestConfig::small_for_tests(IvVariant::Basic);
        let mut f = Forest::new(cfg);
        for i in 0..10 {
            f.map_page(d(0), p(i)).unwrap();
        }
        f.destroy_domain(d(0));
        assert_eq!(f.mapped_pages(d(0)), 0);
        for i in 0..10 {
            f.map_page(d(1), p(1000 + i)).unwrap();
        }
        assert!(f.verify_isolation());
    }

    #[test]
    fn pro_promotes_to_hot_region_with_shorter_path() {
        let mut f = Forest::new(ForestConfig::small_for_tests(IvVariant::Pro));
        // Grow past the first (hot-region-less, high-frontier) TreeLings so
        // the domain owns a frontier-2 TreeLing with a reserved hot region.
        for i in 0..40 {
            f.map_page(d(0), p(i)).unwrap();
        }
        let victim = p(39); // a frontier-2 (level-2) mapped page
        assert_eq!(f.mapped_level(victim), Some(2));
        let before = f.verification_path(victim).unwrap().len();
        let out = f.promote_page(d(0), victim).unwrap();
        assert!(f.is_hot_mapped(victim));
        let after = f.verification_path(victim).unwrap().len();
        assert!(after < before, "hot path {after} vs regular {before}");
        assert_ne!(out.from, out.to);
        assert!(f.verify_isolation());
    }

    #[test]
    fn pro_demotes_back() {
        let mut f = Forest::new(ForestConfig::small_for_tests(IvVariant::Pro));
        for i in 0..40 {
            f.map_page(d(0), p(i)).unwrap();
        }
        let victim = p(39);
        f.promote_page(d(0), victim).unwrap();
        let out = f.demote_page(d(0), victim).unwrap();
        assert!(!f.is_hot_mapped(victim));
        assert!(f.slot_of(victim).is_some());
        assert_ne!(out.from, out.to);
        assert_eq!(f.stats().promotions, 1);
        assert_eq!(f.stats().demotions, 1);
    }

    #[test]
    fn promote_rejects_non_pro_and_unmapped() {
        let mut f = Forest::new(ForestConfig::small_for_tests(IvVariant::Invert));
        f.map_page(d(0), p(0)).unwrap();
        assert!(f.promote_page(d(0), p(0)).is_none());
        let mut f = Forest::new(ForestConfig::small_for_tests(IvVariant::Pro));
        assert!(f.promote_page(d(0), p(0)).is_none());
    }

    #[test]
    fn alloc_free_storm_keeps_mapping_consistent() {
        for variant in IvVariant::ALL {
            let mut f = Forest::new(ForestConfig::small_for_tests(variant));
            let mut rng = ivl_sim_core::rng::Xoshiro256::seed_from(7);
            let mut live: Vec<PageNum> = Vec::new();
            let mut next = 0u64;
            for _ in 0..3000 {
                if live.is_empty() || rng.chance(0.55) {
                    let page = p(next);
                    next += 1;
                    if f.map_page(d(0), page).is_ok() {
                        live.push(page);
                    }
                } else {
                    let idx = rng.index(live.len());
                    let page = live.swap_remove(idx);
                    f.unmap_page(d(0), page).unwrap();
                }
                if variant == IvVariant::Pro && !live.is_empty() && rng.chance(0.05) {
                    let page = live[rng.index(live.len())];
                    if f.is_hot_mapped(page) {
                        f.demote_page(d(0), page);
                    } else {
                        f.promote_page(d(0), page);
                    }
                }
            }
            // Every live page still mapped exactly once, to a distinct slot.
            let mut seen = std::collections::HashSet::new();
            for page in &live {
                let slot = f.slot_of(*page).unwrap_or_else(|| panic!("{page} lost"));
                assert!(seen.insert(slot), "slot double-mapped under {variant:?}");
            }
            assert!(f.verify_isolation());
        }
    }
}
